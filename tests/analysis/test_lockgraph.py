"""The dynamic lock-order detector: planted deadlocks must bite, benign
patterns must not."""

import queue
import threading

import pytest

from repro.analysis import lockgraph


def run_in_thread(fn):
    t = threading.Thread(target=fn)
    t.start()
    t.join(timeout=10)
    assert not t.is_alive()


def test_planted_ab_ba_deadlock_bites_with_both_stacks():
    """The satellite acceptance test: an A->B/B->A inversion is reported
    and the report names the stack of *both* conflicting acquisitions."""
    with lockgraph.watching() as graph:
        a = threading.Lock()
        b = threading.Lock()

        def locker_one():
            with a:
                with b:
                    pass

        def locker_two():
            with b:
                with a:
                    pass

        run_in_thread(locker_one)
        run_in_thread(locker_two)

    with pytest.raises(lockgraph.LockOrderViolation) as info:
        graph.assert_no_cycles()
    message = str(info.value)
    assert "locker_one" in message, "report must carry the A->B stack"
    assert "locker_two" in message, "report must carry the B->A stack"
    assert "potential deadlock" in message


def test_without_the_detector_the_inversion_is_silent():
    """Negative control: the same plant passes a plain run -- only the
    audit makes it fail loudly."""
    a = threading.Lock()
    b = threading.Lock()

    def locker_one():
        with a:
            with b:
                pass

    def locker_two():
        with b:
            with a:
                pass

    run_in_thread(locker_one)
    run_in_thread(locker_two)  # sequential: never actually deadlocks


def test_gate_lock_exclusion_suppresses_serialized_inversions():
    """Opposite inner-lock orders always taken under one outer lock (the
    engine-lock pattern) cannot deadlock and are not reported."""
    with lockgraph.watching() as graph:
        gate = threading.RLock()
        a = threading.Lock()
        b = threading.Lock()

        def one():
            with gate:
                with a:
                    with b:
                        pass

        def two():
            with gate:
                with b:
                    with a:
                        pass

        run_in_thread(one)
        run_in_thread(two)

    graph.assert_no_cycles()  # must not raise
    assert graph.edge_count() >= 4


def test_ungated_observation_defeats_the_gate():
    """If even one observation of the inversion happens outside the
    gate, the cycle is real again."""
    with lockgraph.watching() as graph:
        gate = threading.RLock()
        a = threading.Lock()
        b = threading.Lock()

        def gated():
            with gate:
                with a:
                    with b:
                        pass

        def ungated():
            with b:
                with a:
                    pass

        run_in_thread(gated)
        run_in_thread(ungated)

    with pytest.raises(lockgraph.LockOrderViolation):
        graph.assert_no_cycles()


def test_rlock_reentrancy_records_no_self_cycle():
    with lockgraph.watching() as graph:
        r = threading.RLock()
        with r:
            with r:
                pass
    graph.assert_no_cycles()


def test_condition_event_queue_still_work_under_audit():
    """The wrappers must stay Condition-compatible (threading.Condition,
    Event and queue.Queue are built on the patched factories)."""
    with lockgraph.watching() as graph:
        cond = threading.Condition()
        ev = threading.Event()
        q = queue.Queue()
        seen = []

        def consumer():
            with cond:
                cond.wait(timeout=5)
            ev.wait(timeout=5)
            seen.append(q.get(timeout=5))

        t = threading.Thread(target=consumer)
        t.start()
        with cond:
            cond.notify_all()
        ev.set()
        q.put("payload")
        t.join(timeout=10)
        assert not t.is_alive()
    graph.assert_no_cycles()
    assert seen == ["payload"]


def test_uninstall_restores_factories_and_wrappers_degrade():
    orig_lock = threading.Lock
    orig_rlock = threading.RLock
    with lockgraph.watching() as graph:
        assert threading.Lock is not orig_lock
        inside = threading.Lock()
    assert threading.Lock is orig_lock
    assert threading.RLock is orig_rlock
    # A lock created during the audit keeps working after uninstall and
    # records nothing new.
    edges_before = graph.edge_count()
    with inside:
        pass
    assert graph.edge_count() == edges_before


def test_only_one_graph_at_a_time():
    with lockgraph.watching():
        with pytest.raises(RuntimeError):
            lockgraph.LockGraph().install()


def test_three_lock_cycle_detected():
    with lockgraph.watching() as graph:
        a = threading.Lock()
        b = threading.Lock()
        c = threading.Lock()

        def t1():
            with a:
                with b:
                    pass

        def t2():
            with b:
                with c:
                    pass

        def t3():
            with c:
                with a:
                    pass

        for fn in (t1, t2, t3):
            run_in_thread(fn)
    with pytest.raises(lockgraph.LockOrderViolation) as info:
        graph.assert_no_cycles()
    assert str(info.value).count("edge ") == 3
