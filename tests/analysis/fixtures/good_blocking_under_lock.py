"""Fixture: blocking happens outside the engine lock."""
import time


def compute_then_wait(self, sock, frame):
    with self._engine_lock:
        result = self.compute(frame)
    time.sleep(0.01)
    sock.sendall(result)
    with self._cache_lock:
        time.sleep(0)  # an unrelated lock is not the engine lock
    return result
