"""Fixture: broad handlers that correctly re-raise, or narrow ones."""


def cleanup_then_reraise(op, resource):
    try:
        op()
    except BaseException:
        resource.close()
        raise


def reraise_bound_name(op):
    try:
        op()
    except BaseException as exc:
        print(exc)
        raise exc


def narrow_is_fine(op):
    try:
        op()
    except Exception:
        return None
