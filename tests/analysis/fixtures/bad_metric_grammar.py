"""Fixture: metric names violating the component.snake_name grammar."""


def emit(obs, value):
    obs.inc("BadName.count")
    obs.inc("nodots")
    obs.metrics.observe("net.Bad-Segment", value)
