"""Fixture: the three accepted faults-is-None guard idioms."""


def if_body_guard(self, data):
    if self.faults is not None:
        self.faults.hit("osfile.write")
    return data


def boolop_guard(faults):
    if faults is not None and faults.fire_action("net.recv"):
        return True
    return False


def ifexp_guard(faults):
    action = faults.fire_action("repl.send") if faults is not None else None
    return action
