"""Fixture: unlocked module-level mutable state in a threaded module,
plus a mutable default argument."""
import threading

HANDLERS = {}


def worker():
    return threading.current_thread()


def accumulate(item, bucket=[]):
    bucket.append(item)
    return bucket
