"""Fixture: grammatically valid name whose component belongs to another
package (linted under a synthetic repro/grtree/... path)."""


def emit(obs):
    obs.inc("net.frames_total")
