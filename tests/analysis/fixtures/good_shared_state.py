"""Fixture: threaded module whose shared state is frozen or locked."""
import threading
from types import MappingProxyType

CATALOG = MappingProxyType({"wal.append": "storage"})
KINDS = ("insert", "delete")

REGISTRY = {}
_registry_lock = threading.Lock()


def accumulate(item, bucket=None):
    if bucket is None:
        bucket = []
    bucket.append(item)
    return bucket
