"""Fixture: handlers broad enough to swallow SimulatedCrash."""


def swallow_everything(op):
    try:
        op()
    except:  # noqa: E722
        return None


def swallow_base(op, log):
    try:
        op()
    except BaseException as exc:
        log.append(exc)
        return None


def swallow_crash(op):
    try:
        op()
    except SimulatedCrash:  # noqa: F821
        return None
