"""Fixture: blocking calls lexically inside the engine lock."""
import os
import time


def stall_everyone(self, sock, fd, frame):
    with self._engine_lock:
        time.sleep(0.5)
        sock.sendall(frame)
        os.fsync(fd)
