"""Fixture: well-formed metric/span names, including prefix forms."""


def emit(obs, spans, kind, value):
    obs.inc("net.frames_total")
    obs.metrics.observe("net.queue_wait_seconds", value)
    with spans.span("sql." + kind):
        pass
    obs.inc("plan.seqscan" if value else "plan.indexscan")
