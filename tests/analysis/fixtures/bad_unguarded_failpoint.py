"""Fixture: failpoint hits without the faults-is-None guard."""


def write_page(self, data):
    self.faults.hit("osfile.write")
    return data


def send(faults, payload):
    action = faults.fire_action("net.send")
    return action, payload
