"""Fixture: a failpoint name that is not in faults.registry.CATALOG."""


def misspelled(faults):
    if faults is not None:
        faults.hit("wal.appendd")
