"""Fixture: failpoint names straight out of the catalog."""


def correct(faults):
    if faults is not None:
        faults.hit("wal.append")
        faults.fire_action("net.send")
