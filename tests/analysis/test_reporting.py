"""The --json report: schema round-trip, validation, CLI exit codes."""

import json
from pathlib import Path

from repro.analysis.cli import lint_main
from repro.analysis.linter import lint_source
from repro.analysis.reporting import REPORT_SCHEMA, validate_report
from repro.analysis.rules import BareExceptSwallowsCrash, all_rules

FIXTURES = Path(__file__).parent / "fixtures"


def test_report_round_trips_through_schema():
    source = (FIXTURES / "bad_bare_except.py").read_text()
    report = lint_source(source, rules=[BareExceptSwallowsCrash()])
    decoded = json.loads(report.to_json())
    assert validate_report(decoded) == []
    assert decoded["counts"]["active"] == 3
    assert decoded["version"] == 1


def test_schema_constants_match_producer():
    assert REPORT_SCHEMA["properties"]["version"]["const"] == 1
    assert REPORT_SCHEMA["properties"]["tool"]["const"] == "repro-lint"
    required = set(REPORT_SCHEMA["required"])
    report = lint_source("x = 1\n", rules=all_rules())
    assert required <= set(report.to_dict())


def test_validator_rejects_corrupted_reports():
    report = lint_source("x = 1\n", rules=[]).to_dict()
    assert validate_report(report) == []
    broken = dict(report, version=2)
    assert validate_report(broken)
    broken = dict(report)
    broken["counts"] = dict(report["counts"], total=99)
    assert validate_report(broken)
    assert validate_report("not an object")


def test_suppressed_findings_must_carry_reasons():
    source = (
        "def f(op):\n"
        "    try:\n"
        "        op()\n"
        "    except BaseException:  "
        "# repro: allow(bare-except-swallows-crash): fixture\n"
        "        pass\n"
    )
    report = lint_source(source, rules=[BareExceptSwallowsCrash()])
    decoded = json.loads(report.to_json())
    assert validate_report(decoded) == []
    (finding,) = decoded["findings"]
    assert finding["suppressed"] is True
    assert finding["suppress_reason"] == "fixture"


class TestCli:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        assert lint_main([str(target)]) == 0
        assert "0 active finding(s)" in capsys.readouterr().out

    def test_bad_file_exits_one_and_json_validates(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text((FIXTURES / "bad_bare_except.py").read_text())
        out_file = tmp_path / "report.json"
        code = lint_main([str(target), "--json", "--json-out", str(out_file)])
        assert code == 1
        stdout = capsys.readouterr().out
        assert validate_report(json.loads(stdout)) == []
        assert validate_report(json.loads(out_file.read_text())) == []

    def test_missing_path_is_usage_error(self, capsys):
        assert lint_main(["/nonexistent/nowhere"]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_strict_flag_reaches_report(self, tmp_path, capsys):
        target = tmp_path / "stale.py"
        target.write_text(
            "x = 1  # repro: allow(bare-except-swallows-crash): stale\n"
        )
        assert lint_main([str(target)]) == 0
        capsys.readouterr()
        assert lint_main([str(target), "--strict"]) == 1
        assert "unused-suppression" in capsys.readouterr().out
