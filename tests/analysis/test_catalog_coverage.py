"""Reverse completeness: every faults.CATALOG entry is actually wired
into the engine (a dead failpoint hides a coverage gap).

Pure stdlib + AST, so the no-numpy CI job runs it too.
"""

from pathlib import Path

from repro.analysis.linter import lint_paths
from repro.analysis.rules import UnknownFailpointName
from repro.faults import CATALOG

SRC = Path(__file__).resolve().parents[2] / "src"


def test_every_catalog_entry_has_a_call_site_in_src():
    """The linter's cross-check over the real tree: no unknown names at
    call sites, and no CATALOG entry without a call site."""
    report = lint_paths([str(SRC)], rules=[UnknownFailpointName()])
    assert report.active == [], "\n" + report.to_text()


def test_catalog_names_appear_literally_outside_the_registry():
    """Belt and braces for the AST check: each name occurs as a quoted
    literal in some non-registry source file."""
    sources = {
        path: path.read_text(encoding="utf-8")
        for path in SRC.rglob("*.py")
        if path.name != "registry.py" or path.parent.name != "faults"
    }
    missing = [
        name
        for name in CATALOG
        if not any(
            f'"{name}"' in text or f"'{name}'" in text
            for text in sources.values()
        )
    ]
    assert missing == [], f"CATALOG entries with no call site: {missing}"


def test_catalog_is_frozen():
    """The catalog is shared read-only across threads; it must reject
    mutation (the shared-state lint contract, enforced at runtime)."""
    try:
        CATALOG["sneaky.new"] = "nope"  # type: ignore[index]
    except TypeError:
        pass
    else:
        raise AssertionError("CATALOG accepted a mutation")
    assert "sneaky.new" not in CATALOG
