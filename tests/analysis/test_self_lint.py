"""The repo's own source tree must stay lint-clean under --strict.

This is the CI lint job exercised as a test, so a contract regression
fails locally before it fails in CI.
"""

import json
from pathlib import Path

from repro.analysis import lint_paths
from repro.analysis.reporting import validate_report

SRC = Path(__file__).resolve().parents[2] / "src"


def test_src_tree_is_strict_clean():
    report = lint_paths([str(SRC)], strict=True)
    assert report.files_scanned > 50
    assert report.active == [], "\n" + report.to_text()


def test_every_suppression_in_src_carries_a_reason():
    report = lint_paths([str(SRC)], strict=True)
    suppressed = [f for f in report.findings if f.suppressed]
    # The tree legitimately carries a handful of documented suppressions
    # (simulated crash swallow points, the simulated_io_s sleep).
    assert suppressed, "expected the known documented suppressions"
    for finding in suppressed:
        assert finding.suppress_reason and finding.suppress_reason.strip()


def test_full_tree_report_validates_against_schema():
    report = lint_paths([str(SRC)], strict=True)
    assert validate_report(json.loads(report.to_json())) == []
