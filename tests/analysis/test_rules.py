"""One test per lint rule: fires on the bad fixture, stays quiet on the
good one, and honors suppressions."""

from pathlib import Path

import pytest

from repro.analysis.linter import Project, lint_paths, lint_source
from repro.analysis.rules import (
    BareExceptSwallowsCrash,
    BlockingUnderEngineLock,
    MetricNameGrammar,
    MutableDefaultOrSharedState,
    UnguardedFailpoint,
    UnknownFailpointName,
    all_rules,
)

FIXTURES = Path(__file__).parent / "fixtures"


def run_rule(rule, fixture, path=None):
    source = (FIXTURES / fixture).read_text()
    report = lint_source(source, path=path or str(FIXTURES / fixture), rules=[rule])
    return report


class TestBareExceptSwallowsCrash:
    def test_fires_on_bad(self):
        report = run_rule(BareExceptSwallowsCrash(), "bad_bare_except.py")
        lines = sorted(f.line for f in report.active)
        assert len(lines) == 3  # bare, BaseException, SimulatedCrash

    def test_quiet_on_good(self):
        report = run_rule(BareExceptSwallowsCrash(), "good_bare_except.py")
        assert report.active == []


class TestUnguardedFailpoint:
    def test_fires_on_bad(self):
        report = run_rule(UnguardedFailpoint(), "bad_unguarded_failpoint.py")
        assert len(report.active) == 2

    def test_quiet_on_good_guard_idioms(self):
        report = run_rule(UnguardedFailpoint(), "good_unguarded_failpoint.py")
        assert report.active == []

    def test_faults_package_itself_is_exempt(self):
        source = "def hit(self, name):\n    self.faults.hit(name)\n"
        report = lint_source(
            source,
            path="src/repro/faults/registry.py",
            rules=[UnguardedFailpoint()],
        )
        assert report.active == []


class TestUnknownFailpointName:
    def test_fires_on_bad(self):
        report = run_rule(UnknownFailpointName(), "bad_unknown_failpoint.py")
        assert len(report.active) == 1
        assert "wal.appendd" in report.active[0].message

    def test_quiet_on_good(self):
        report = run_rule(UnknownFailpointName(), "good_unknown_failpoint.py")
        assert report.active == []

    def test_reverse_completeness_reports_dead_catalog_entries(self, tmp_path):
        """When the scan covers the registry module, every CATALOG entry
        must be referenced somewhere in the scanned tree."""
        tree = tmp_path / "repro" / "faults"
        tree.mkdir(parents=True)
        (tree / "registry.py").write_text("CATALOG = {}\n")
        caller = tmp_path / "repro" / "caller.py"
        caller.write_text(
            "def f(faults):\n"
            "    if faults is not None:\n"
            "        faults.hit('wal.append')\n"
        )
        report = lint_paths([str(tmp_path)], rules=[UnknownFailpointName()])
        messages = [f.message for f in report.active]
        assert any("'wal.fsync'" in m for m in messages)
        assert not any("'wal.append'" in m and "no call site" in m for m in messages)

    def test_reverse_check_off_for_fixture_scans(self):
        # A scan that does not include the registry module must not
        # complain about unreferenced CATALOG entries.
        report = run_rule(UnknownFailpointName(), "good_unknown_failpoint.py")
        assert report.active == []


class TestBlockingUnderEngineLock:
    def test_fires_on_bad(self):
        report = run_rule(BlockingUnderEngineLock(), "bad_blocking_under_lock.py")
        assert len(report.active) == 3  # sleep, sendall, fsync

    def test_quiet_on_good(self):
        report = run_rule(BlockingUnderEngineLock(), "good_blocking_under_lock.py")
        assert report.active == []


class TestMetricNameGrammar:
    def test_fires_on_bad_grammar(self):
        report = run_rule(MetricNameGrammar(), "bad_metric_grammar.py")
        assert len(report.active) == 3

    def test_quiet_on_good(self):
        report = run_rule(MetricNameGrammar(), "good_metric_grammar.py")
        assert report.active == []

    def test_component_must_match_owning_package(self):
        source = (FIXTURES / "bad_metric_component.py").read_text()
        report = lint_source(
            source,
            path="src/repro/grtree/emitter.py",
            rules=[MetricNameGrammar()],
        )
        assert len(report.active) == 1
        assert "not owned by package 'grtree'" in report.active[0].message
        # Same source under its rightful package is clean.
        report = lint_source(
            source,
            path="src/repro/net/emitter.py",
            rules=[MetricNameGrammar()],
        )
        assert report.active == []


class TestMutableDefaultOrSharedState:
    def test_fires_on_bad(self):
        report = run_rule(MutableDefaultOrSharedState(), "bad_shared_state.py")
        messages = [f.message for f in report.active]
        assert len(messages) == 2
        assert any("HANDLERS" in m for m in messages)
        assert any("mutable default" in m for m in messages)

    def test_quiet_on_good(self):
        report = run_rule(MutableDefaultOrSharedState(), "good_shared_state.py")
        assert report.active == []

    def test_unthreaded_module_state_is_fine(self):
        report = lint_source(
            "HANDLERS = {}\n", rules=[MutableDefaultOrSharedState()]
        )
        assert report.active == []


class TestSuppressions:
    BAD = (
        "def f(op):\n"
        "    try:\n"
        "        op()\n"
        "    except BaseException:  "
        "# repro: allow(bare-except-swallows-crash): test double\n"
        "        pass\n"
    )

    def test_trailing_suppression_silences(self):
        report = lint_source(self.BAD, rules=[BareExceptSwallowsCrash()])
        assert report.active == []
        assert report.suppressed_count == 1
        assert report.findings[0].suppress_reason == "test double"

    def test_standalone_comment_covers_next_code_line(self):
        source = (
            "def f(op):\n"
            "    try:\n"
            "        op()\n"
            "    # repro: allow(bare-except-swallows-crash): reason spans\n"
            "    # several comment lines before the handler\n"
            "    except BaseException:\n"
            "        pass\n"
        )
        report = lint_source(source, rules=[BareExceptSwallowsCrash()])
        assert report.active == []

    def test_file_wide_suppression(self):
        source = (
            "# repro: allow-file(bare-except-swallows-crash): fixture file\n"
            + self.BAD.replace(
                "  # repro: allow(bare-except-swallows-crash): test double", ""
            )
        )
        report = lint_source(source, rules=[BareExceptSwallowsCrash()])
        assert report.active == []

    def test_reason_is_mandatory(self):
        source = self.BAD.replace(": test double", "")
        report = lint_source(source, rules=[BareExceptSwallowsCrash()])
        rules_hit = {f.rule for f in report.active}
        # The finding stays active AND the reasonless comment is flagged.
        assert "bare-except-swallows-crash" in rules_hit
        assert "bad-suppression" in rules_hit

    def test_unused_suppression_flagged_under_strict(self):
        source = "x = 1  # repro: allow(bare-except-swallows-crash): stale\n"
        lax = lint_source(source, rules=[BareExceptSwallowsCrash()])
        assert lax.active == []
        strict = lint_source(
            source, rules=[BareExceptSwallowsCrash()], strict=True
        )
        assert [f.rule for f in strict.active] == ["unused-suppression"]

    def test_meta_rules_cannot_be_suppressed(self):
        source = "x = 1  # repro: allow(unused-suppression): nope\n"
        report = lint_source(source, rules=[])
        assert [f.rule for f in report.active] == ["bad-suppression"]


def test_all_rules_have_ids_and_summaries():
    rules = all_rules()
    assert len(rules) >= 6
    ids = [r.id for r in rules]
    assert len(set(ids)) == len(ids)
    assert all(r.id and r.summary for r in rules)
