"""The replica fault matrix: every stream pathology, one contract.

Dropped, torn, duplicated, and reordered WAL frames, plus crashes in
the middle of applying a committed transaction: after the harness's
recovery path runs, the replica must show a *committed prefix* of the
primary's history -- nothing torn, nothing lost within the prefix,
nothing beyond it -- and its GR-tree must pass the full structural
verification.  This is the suite the ``repl.send`` / ``repl.apply``
entries in the failpoint catalog point at.
"""

import pytest

from tests.faults.harness import (
    CRASHED,
    CrashHarness,
    ReplicaCrashHarness,
    scripted_workload,
)


def make_pair(frame_size=8):
    primary = CrashHarness(ship=True)
    scripted_workload(primary)
    return primary, ReplicaCrashHarness(primary, frame_size=frame_size)


def test_faithful_stream_reaches_the_primary_state():
    primary, replica = make_pair()
    assert replica.sync()
    assert replica.query_names() == primary.committed
    replica.verify()


def test_dropped_frame_leaves_a_gap_then_resubscribe_recovers():
    primary, replica = make_pair()
    frames = replica.outstanding_frames()
    assert len(frames) > 3
    survived = frames[:2] + frames[3:]  # frame 2 vanishes on the wire
    replica.deliver(survived)
    # The hole is visible; nothing past it was applied.
    assert replica.applier.pending, "the gap must be detected"
    assert replica.applier.received_lsn < primary.server.wal.last_lsn()
    # The link's recovery: drop the reorder buffer, resubscribe.
    replica.applier.pending.clear()
    assert replica.sync()
    assert replica.query_names() == primary.committed
    replica.verify()


def test_torn_frame_severs_then_resubscribe_recovers():
    primary, replica = make_pair()
    frames = replica.outstanding_frames()
    replica.deliver(frames[:2])
    # The torn frame never decodes -- the link severs instead.
    replica.torn_frame(frames[2])
    mid_names = replica.query_names()
    replica.verify()  # even mid-stream, the state is a committed prefix
    assert replica.sync()
    assert replica.query_names() >= mid_names
    assert replica.query_names() == primary.committed
    replica.verify()


def test_duplicated_frames_are_idempotent():
    primary, replica = make_pair()
    frames = replica.outstanding_frames()
    doubled = []
    for frame in frames:
        doubled.append(frame)
        doubled.append(frame)  # every frame arrives twice
    assert replica.deliver(doubled)
    assert replica.applier.counters["duplicates"] > 0
    assert replica.query_names() == primary.committed
    replica.verify()


def test_reordered_frames_buffer_and_apply_in_order():
    primary, replica = make_pair(frame_size=4)
    frames = replica.outstanding_frames()
    assert len(frames) >= 4
    # Swap adjacent frames pairwise: 1,0,3,2,...
    swapped = []
    for i in range(0, len(frames) - 1, 2):
        swapped.extend([frames[i + 1], frames[i]])
    if len(frames) % 2:
        swapped.append(frames[-1])
    assert replica.deliver(swapped)
    assert replica.applier.counters["reordered"] > 0
    assert replica.query_names() == primary.committed
    replica.verify()


@pytest.mark.parametrize("hit", [1, 2, 5, 9])
def test_mid_apply_crash_recovers_to_a_committed_prefix(hit):
    """A crash after some rows of a committed transaction were applied
    locally (but before the local commit) must disappear on recovery."""
    primary, replica = make_pair()
    replica.arm_apply("crash", hit=hit, times=1)
    assert not replica.sync(), "the armed crash never fired"
    assert replica.crashed == "repl.apply"
    replica.recover()
    replica.verify()  # relay replay: a committed prefix, nothing torn
    assert replica.sync()
    assert replica.query_names() == primary.committed
    replica.verify()


def test_repeated_crashes_then_catch_up():
    """Crash during apply, recover, crash again deeper, recover: each
    recovery output is itself a valid recovery input."""
    primary, replica = make_pair()
    for hit in (2, 6):
        replica.arm_apply("crash", hit=hit, times=1)
        replica.sync()
        if replica.crashed is not None:
            replica.recover()
            replica.verify()
    assert replica.sync()
    assert replica.query_names() == primary.committed
    replica.verify()


def test_crash_while_primary_keeps_writing():
    """New primary traffic lands after the replica crashed; recovery
    plus resubscribe still converges."""
    primary, replica = make_pair()
    replica.arm_apply("crash", hit=3, times=1)
    replica.sync()
    assert replica.crashed == "repl.apply"
    # The primary does not stop for a crashed replica.
    assert primary.run_batch(["late0", "late1"]) == "committed"
    primary.autocommit_insert("late2")
    replica.recover()
    replica.verify()
    assert replica.sync()
    assert replica.query_names() == primary.committed
    replica.verify()


def test_primary_crash_recovery_then_replication_resumes():
    """The two recovery stories compose: the primary crashes and
    recovers from its WAL, then ships; the replica converges on the
    recovered (committed-only) history."""
    primary = CrashHarness(ship=True)
    primary.run_batch(["pre0", "pre1", "pre2"])
    primary.arm("sbspace.page_write", "crash", hit=5, times=1)
    from tests.faults.harness import random_workload

    outcomes = random_workload(primary, seed=7, steps=60)
    assert outcomes[-1] == CRASHED
    primary.recover()
    primary.verify()
    primary.run_batch(["post0", "post1"])
    replica = ReplicaCrashHarness(primary)
    assert replica.sync()
    assert replica.query_names() == primary.committed
    replica.verify()
