"""The crash matrix: every storage failpoint, several trigger depths.

For each registered storage-layer failpoint the matrix arms a one-shot
``crash``, drives the same deterministic workload until the crash fires,
recovers, and asserts the full contract: zero lost committed
transactions, zero resurrected uncommitted ones, and a structurally
valid recovered tree.

A completeness guard keeps the matrix honest: adding a failpoint to the
catalog without routing it through here (or the explicit exclusion list)
fails the suite.
"""

import pytest

from repro.faults import CATALOG
from tests.faults.harness import (
    CRASHED,
    CrashHarness,
    HybridCrashHarness,
    hybrid_random_workload,
    random_workload,
)

#: Failpoints the sbspace-backed commit path traverses.
STORAGE_POINTS = [
    "wal.append",
    "wal.fsync",
    "sbspace.page_read",
    "sbspace.page_write",
    "sbspace.open",
    "buffer.flush",
    "lock.acquire",
]

#: Failpoints only the hybrid hash + B+-tree AM traverses: the window
#: before the hash-directory half of a mutation and the window between
#: the hash and tree halves (the classic "one structure updated, the
#: other not yet" torn state).
HYBRID_POINTS = [
    "hblade.hash_write",
    "hblade.tree_write",
]

#: Failpoints a sbspace-backed embedded engine never traverses: the
#: OS-file store is exercised by tests/storage/test_wal_idempotency.py
#: (checksummed reads are the *developer's* recovery story, Section 6),
#: the net points by tests/net/test_fault_injection.py, and the
#: replication points by tests/faults/test_replica_crash.py.
EXCLUDED = [
    "osfile.read",
    "osfile.write",
    "net.send",
    "net.recv",
    "repl.send",
    "repl.apply",
]


def test_matrix_covers_the_whole_catalog():
    assert sorted(STORAGE_POINTS + HYBRID_POINTS + EXCLUDED) == sorted(CATALOG)


@pytest.mark.parametrize("hit", [1, 2, 5, 13])
@pytest.mark.parametrize("point", STORAGE_POINTS)
def test_crash_recover_verify(point, hit):
    harness = CrashHarness()
    # Committed work laid down before the failpoint is armed: recovery
    # must preserve it whatever happens later.
    harness.run_batch([f"pre{i}" for i in range(6)])
    harness.arm(point, "crash", hit=hit, times=1)
    outcomes = random_workload(harness, seed=hit * 31 + len(point), steps=60)
    assert outcomes[-1] == CRASHED, (
        f"failpoint {point} (hit={hit}) never fired in "
        f"{len(outcomes)} workload steps"
    )
    assert harness.crashed == point
    harness.recover()
    harness.verify()


@pytest.mark.parametrize("hit", [1, 2, 7])
@pytest.mark.parametrize("point", HYBRID_POINTS)
def test_hybrid_crash_between_structure_writes(point, hit):
    """Crash between the hash-directory and tree writes; recovery heals.

    The mutation's transaction never committed, so after WAL replay
    neither structure may show it -- checked through the tree-side
    range scan, hash-side point probes, CHECK INDEX, and the direct
    hash/tree agreement verifier.
    """
    harness = HybridCrashHarness()
    harness.run_batch([f"pre{i}" for i in range(6)])
    harness.arm(point, "crash", hit=hit, times=1)
    outcomes = hybrid_random_workload(
        harness, seed=hit * 53 + len(point), steps=80
    )
    assert outcomes[-1] == CRASHED, (
        f"failpoint {point} (hit={hit}) never fired in "
        f"{len(outcomes)} workload steps"
    )
    assert harness.crashed == point
    harness.recover()
    harness.verify()


@pytest.mark.parametrize("point", HYBRID_POINTS)
def test_hybrid_raise_rolls_back_both_structures(point):
    """A non-crash failure at either write path rolls back cleanly:
    the statement fails, both structures stay agreed, and the engine
    keeps taking work with no recovery step at all."""
    harness = HybridCrashHarness()
    harness.run_batch([f"pre{i}" for i in range(4)])
    harness.arm(point, "raise", times=1)
    assert harness.autocommit_insert("doomed") == "failed"
    harness.verify()
    assert harness.autocommit_insert("after") == "committed"
    harness.verify()


def test_hybrid_repeated_crashes():
    """Crash at the hash half, recover, crash at the tree half deeper:
    recovery output must itself be a valid recovery input."""
    harness = HybridCrashHarness()
    for round_number, (point, hit) in enumerate(
        (("hblade.hash_write", 3), ("hblade.tree_write", 11))
    ):
        harness.arm(point, "crash", hit=hit, times=1)
        outcomes = hybrid_random_workload(
            harness, seed=200 + round_number, steps=80
        )
        assert outcomes[-1] == CRASHED
        harness.recover()
        harness.verify()
    assert harness.run_batch(["final0", "final1"]) == "committed"
    harness.verify()


@pytest.mark.parametrize("point", ["sbspace.page_write", "wal.append"])
def test_repeated_crashes_at_the_same_point(point):
    """Crash, recover, crash again deeper: recovery output must itself
    be a valid recovery input."""
    harness = CrashHarness()
    for round_number, hit in enumerate((3, 17)):
        harness.arm(point, "crash", hit=hit, times=1)
        outcomes = random_workload(
            harness, seed=100 + round_number, steps=60
        )
        assert outcomes[-1] == CRASHED
        harness.recover()
        harness.verify()
    # After the final recovery, the engine still takes commits.
    assert harness.run_batch(["final0", "final1"]) == "committed"
    harness.verify()
