"""Unit tests for the failpoint registry itself (determinism above all)."""

import pytest

from repro.faults import (
    ACTIONS,
    CATALOG,
    FaultInjected,
    FaultRegistry,
    SimulatedCrash,
)


class TestArming:
    def test_unknown_failpoint_is_an_error_not_a_noop(self):
        registry = FaultRegistry()
        with pytest.raises(ValueError, match="unknown failpoint"):
            registry.set_fault("wal.appendd")

    def test_unknown_action_rejected(self):
        registry = FaultRegistry()
        with pytest.raises(ValueError, match="unknown fault action"):
            registry.set_fault("wal.append", "explode")

    def test_hit_counts_are_one_based(self):
        registry = FaultRegistry()
        with pytest.raises(ValueError):
            registry.set_fault("wal.append", hit=0)

    def test_probability_bounds(self):
        registry = FaultRegistry()
        with pytest.raises(ValueError):
            registry.set_fault("wal.append", probability=1.5)

    def test_every_catalog_entry_arms(self):
        registry = FaultRegistry()
        for name in CATALOG:
            for action in ACTIONS:
                registry.set_fault(name, action)
        assert set(registry.armed()) == set(CATALOG)

    def test_clear_disarms_but_keeps_counters(self):
        registry = FaultRegistry()
        registry.set_fault("wal.append", times=None)
        with pytest.raises(FaultInjected):
            registry.hit("wal.append")
        registry.clear_fault("wal.append")
        registry.hit("wal.append")  # disarmed: no raise
        stats = registry.stats()
        assert stats["armed"] == 0
        assert stats["wal.append.triggers"] == 1
        # Counting stops once disarmed -- the fast path never sees it.
        assert stats["wal.append.hits"] == 1


class TestTriggering:
    def test_unarmed_hit_is_free_and_silent(self):
        registry = FaultRegistry()
        registry.hit("wal.append")
        assert registry.stats() == {"armed": 0}

    def test_fires_on_nth_hit_and_respects_times_budget(self):
        registry = FaultRegistry()
        registry.set_fault("wal.append", hit=3, times=1)
        registry.hit("wal.append")
        registry.hit("wal.append")
        with pytest.raises(FaultInjected) as exc:
            registry.hit("wal.append")
        assert exc.value.point == "wal.append"
        # The times=1 budget is spent: later hits pass through.
        registry.hit("wal.append")
        stats = registry.stats()
        assert stats["wal.append.hits"] == 4
        assert stats["wal.append.triggers"] == 1

    def test_times_none_fires_forever(self):
        registry = FaultRegistry()
        registry.set_fault("wal.append", times=None)
        for _ in range(5):
            with pytest.raises(FaultInjected):
                registry.hit("wal.append")

    def test_crash_action_raises_base_exception(self):
        registry = FaultRegistry()
        registry.set_fault("wal.fsync", "crash")
        with pytest.raises(SimulatedCrash) as exc:
            registry.hit("wal.fsync")
        assert not isinstance(exc.value, Exception)
        assert exc.value.point == "wal.fsync"

    def test_probability_is_deterministic_per_seed(self):
        def trigger_pattern(seed):
            registry = FaultRegistry()
            registry.set_fault(
                "wal.append", probability=0.5, seed=seed, times=None
            )
            pattern = []
            for _ in range(64):
                try:
                    registry.hit("wal.append")
                    pattern.append(0)
                except FaultInjected:
                    pattern.append(1)
            return pattern

        assert trigger_pattern(7) == trigger_pattern(7)
        assert trigger_pattern(7) != trigger_pattern(8)
        assert 0 < sum(trigger_pattern(7)) < 64


class TestWriteActions:
    def test_torn_write_keeps_new_prefix_and_old_tail(self):
        registry = FaultRegistry()
        registry.set_fault("sbspace.page_write", "torn")
        new, old = b"N" * 8, b"O" * 8
        assert registry.on_write("sbspace.page_write", new, old) == b"NNNNOOOO"

    def test_torn_write_zero_fills_past_old_end(self):
        registry = FaultRegistry()
        registry.set_fault("sbspace.page_write", "torn")
        assert (
            registry.on_write("sbspace.page_write", b"N" * 8, b"O" * 5)
            == b"NNNNO\x00\x00\x00"
        )

    def test_corrupt_write_flips_deterministic_bytes(self):
        def mangle(seed):
            registry = FaultRegistry()
            registry.set_fault("sbspace.page_write", "corrupt", seed=seed)
            return registry.on_write("sbspace.page_write", b"\x00" * 64, b"")

        first, again, other = mangle(3), mangle(3), mangle(4)
        assert first == again
        assert first != b"\x00" * 64
        assert first != other

    def test_raise_and_crash_fire_before_the_write(self):
        registry = FaultRegistry()
        registry.set_fault("sbspace.page_write", "raise")
        with pytest.raises(FaultInjected):
            registry.on_write("sbspace.page_write", b"new", b"old")
        registry.set_fault("sbspace.page_write", "crash")
        with pytest.raises(SimulatedCrash):
            registry.on_write("sbspace.page_write", b"new", b"old")

    def test_torn_degrades_to_raise_at_non_write_sites(self):
        registry = FaultRegistry()
        registry.set_fault("lock.acquire", "torn")
        with pytest.raises(FaultInjected):
            registry.hit("lock.acquire")


class TestNetPayloads:
    def test_raise_drops_the_whole_frame(self):
        registry = FaultRegistry()
        registry.set_fault("net.send", "raise")
        assert registry.torn_payload("net.send", b"x" * 10) == (b"", True)

    def test_torn_truncates_and_severs(self):
        registry = FaultRegistry()
        registry.set_fault("net.send", "torn")
        payload, severed = registry.torn_payload("net.send", b"x" * 10)
        assert payload == b"x" * 5 and severed

    def test_unarmed_payload_passes_through(self):
        registry = FaultRegistry()
        assert registry.torn_payload("net.send", b"frame") == (b"frame", False)
