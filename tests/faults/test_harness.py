"""Crash-consistency harness: scripted and randomized crash/recover runs."""

import pytest

from repro.faults import FaultInjected
from repro.grtree import TreeInvariantError, verify_tree
from tests.faults.harness import (
    COMMITTED,
    CRASHED,
    FAILED,
    CrashHarness,
    random_workload,
    scripted_workload,
)


class TestHealthyBaseline:
    def test_scripted_workload_without_faults(self):
        harness = CrashHarness()
        scripted_workload(harness)
        assert harness.crashed is None
        harness.verify()

    def test_recovery_without_a_crash_is_harmless(self):
        harness = CrashHarness()
        scripted_workload(harness)
        harness.recover()
        harness.verify()


class TestScriptedCrashes:
    def test_crash_during_commit_loses_only_that_transaction(self):
        harness = CrashHarness()
        scripted_workload(harness)
        harness.arm("wal.fsync", "crash")
        outcome = harness.run_batch(["doomed0", "doomed1"])
        assert outcome == CRASHED
        assert harness.crashed == "wal.fsync"
        harness.recover()
        harness.verify()
        assert "doomed0" not in harness.query_names()

    def test_crash_mid_transaction_discards_open_transaction(self):
        harness = CrashHarness()
        scripted_workload(harness)
        harness.arm("sbspace.page_write", "crash", hit=5)
        outcome = harness.run_batch([f"open{i}" for i in range(8)])
        assert outcome == CRASHED
        harness.recover()
        harness.verify()

    def test_committed_work_after_recovery_also_survives_next_crash(self):
        harness = CrashHarness()
        harness.run_batch(["first0", "first1"])
        harness.arm("wal.append", "crash", hit=3)
        harness.run_batch(["mid0", "mid1", "mid2"])
        harness.recover()
        harness.verify()
        # The recovered engine keeps working: new commits, a new crash.
        assert harness.run_batch(["second0", "second1"]) == COMMITTED
        harness.arm("buffer.flush", "crash")
        assert harness.autocommit_insert("doomed") == CRASHED
        harness.recover()
        harness.verify()

    def test_torn_page_write_is_healed_by_wal_redo(self):
        """Section 5.3: sbspace recovery is the *server's* job.  A torn
        write mangles the page, but the WAL holds the intended after
        image, so replay repairs the tree."""
        harness = CrashHarness()
        scripted_workload(harness)
        harness.arm("sbspace.page_write", "torn", times=1)
        outcome = harness.run_batch(["torn0", "torn1"])
        assert outcome == COMMITTED  # a torn write is silent at runtime
        assert harness.registry.stats()["sbspace.page_write.triggers"] == 1
        harness.recover()
        harness.verify()
        assert "torn0" in harness.query_names()

    def test_injected_error_rolls_back_and_engine_continues(self):
        harness = CrashHarness()
        harness.run_batch(["keep0", "keep1"])
        harness.arm("sbspace.page_write", "raise")
        assert harness.autocommit_insert("failed") == FAILED
        harness.disarm_all()
        assert harness.autocommit_insert("after") == COMMITTED
        # No crash happened: the live tree must already be consistent.
        harness.verify()


class TestRandomizedCrashes:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_random_workload_crash_recover_verify(self, seed):
        harness = CrashHarness()
        # Fire somewhere deep in the workload, deterministically.
        harness.arm("wal.append", "crash", hit=40 + 7 * seed)
        outcomes = random_workload(harness, seed=seed, steps=40)
        assert outcomes[-1] == CRASHED
        harness.recover()
        harness.verify()

    @pytest.mark.parametrize("seed", [5, 6])
    def test_probabilistic_page_write_crash(self, seed):
        harness = CrashHarness()
        harness.arm(
            "sbspace.page_write", "crash", probability=0.02, seed=seed
        )
        random_workload(harness, seed=seed, steps=40)
        harness.recover()
        harness.verify()

    def test_same_seed_same_history(self):
        def run(seed=9):
            harness = CrashHarness()
            harness.arm("wal.append", "crash", hit=60)
            outcomes = random_workload(harness, seed=seed, steps=40)
            return outcomes, sorted(harness.committed)

        assert run() == run()

    def test_specialize_knob_does_not_change_crash_history(self):
        """Crash, recover, verify with the specialization bundle on and
        off: same outcomes, same survivors (bit-exactness under WAL
        replay, not just under clean growth)."""

        def run(specialize):
            harness = CrashHarness(specialize=specialize)
            harness.arm("wal.append", "crash", hit=60)
            outcomes = random_workload(harness, seed=13, steps=40)
            harness.recover()
            harness.verify()
            return outcomes, sorted(harness.committed)

        assert run(True) == run(False)


class TestVerifierCatchesDamage:
    """The contract is only as strong as the verifier: prove it bites."""

    def test_verify_tree_detects_a_mangled_entry_count(self):
        harness = CrashHarness()
        scripted_workload(harness)
        with harness.open_tree() as tree:
            tree.size += 1  # simulate a recovery miscount
            with pytest.raises(TreeInvariantError, match="size mismatch"):
                verify_tree(tree)
            tree.size -= 1

    def test_verify_tree_detects_an_orphan_page(self):
        harness = CrashHarness()
        scripted_workload(harness)
        with harness.open_tree() as tree:
            # A page allocated but referenced by no parent: the classic
            # leak of a split that crashed halfway.
            tree.store.buffer.allocate()
            tree.store.buffer.flush()
            with pytest.raises(TreeInvariantError, match="orphan"):
                verify_tree(tree)

    def test_harness_detects_lost_committed_rows(self):
        harness = CrashHarness()
        scripted_workload(harness)
        harness.committed.add("never-inserted")
        with pytest.raises(AssertionError, match="lost"):
            harness.verify()

    def test_harness_detects_resurrected_rows(self):
        harness = CrashHarness()
        scripted_workload(harness)
        victim = harness.committed.pop()
        with pytest.raises(AssertionError, match="resurrected"):
            harness.verify()
        harness.committed.add(victim)
