"""Crash-consistency harness: crash the engine at a failpoint, recover,
verify.

The harness drives a :class:`DatabaseServer` with an armed
:class:`~repro.faults.FaultRegistry` through scripted or randomized
workloads.  When a ``crash`` failpoint fires, :class:`SimulatedCrash`
propagates to the harness (nothing in the engine catches it -- a real
crash runs no rollback), the harness "restarts" the server by discarding
everything volatile and replaying the WAL, and then asserts the
three-part crash-consistency contract:

* every transaction that committed before the crash is readable through
  the recovered GR-tree index;
* every transaction still open at the crash has vanished;
* the recovered tree passes the full structural verification
  (:func:`repro.grtree.verify_tree`: reachability, MBR containment,
  stair-shape validity, entry counts, no orphan pages).

The crash model for an embedded engine (one process, simulated clock):

=========================== ======================================
volatile -- lost at crash   durable -- survives
=========================== ======================================
sbspace pages               the write-ahead log
buffer pools, node caches   system catalog and heap tables
the lock table              (modeled as dbspace-resident data the
open sessions/transactions  host server logs on its own, Section
                            5.3 of the paper)
=========================== ======================================
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from typing import Iterable, List, Optional, Set

from repro.datablade import register_grtree_blade
from repro.faults import FaultRegistry, SimulatedCrash
from repro.grtree import verify_tree
from repro.hblade import register_hybrid_blade, verify_hybrid
from repro.net import protocol
from repro.repl.applier import ReplicationApplier
from repro.server import DatabaseServer
from repro.storage.wal import RecordKind
from repro.temporal.chronon import Clock, format_chronon


def day(chronon: int) -> str:
    return format_chronon(chronon)


#: Overlaps the region of every extent the harness inserts.
QUERY = (
    "SELECT name FROM t WHERE "
    f"Overlaps(te, '{{tt}}, UC, {{vt}}, NOW')"
)

#: Outcomes of one workload step.
COMMITTED = "committed"
ROLLED_BACK = "rolled_back"
FAILED = "failed"
CRASHED = "crashed"


class CrashHarness:
    """One engine instance plus the oracle of what must survive a crash.

    Small per-index caches (``buffer_capacity=8, node_cache=8``) keep the
    buffer pool churning so page-level failpoints are traversed often.
    """

    def __init__(
        self, now: int = 100, specialize: bool = True, ship: bool = False
    ) -> None:
        self.registry = FaultRegistry()
        self.server = DatabaseServer(clock=Clock(now=now), faults=self.registry)
        if ship:
            # A replication primary: the WAL carries the full logical
            # history (DDL + row images) from the very first statement,
            # so a ReplicaCrashHarness can bootstrap from LSN 0.
            self.server.enable_wal_shipping()
        self.space = self.server.create_sbspace("spc")
        register_grtree_blade(self.server)
        self.server.execute("CREATE TABLE t (name LVARCHAR, te GRT_TimeExtent_t)")
        self.server.execute(
            "CREATE INDEX gi ON t(te) USING grtree_am IN spc "
            "WITH (buffer_capacity = 8, node_cache = 8, "
            f"specialize = '{'on' if specialize else 'off'}')"
        )
        self.server.prefer_virtual_index = True
        self.session = self.server.create_session()
        #: Names of rows whose transaction committed (the oracle).
        self.committed: Set[str] = set()
        #: Failpoint name of the last crash, ``None`` while healthy.
        self.crashed: Optional[str] = None

    # ------------------------------------------------------------------
    # Arming
    # ------------------------------------------------------------------

    def arm(self, name: str, action: str = "crash", **conditions):
        return self.registry.set_fault(name, action, **conditions)

    def disarm_all(self) -> None:
        self.registry.clear_all()

    # ------------------------------------------------------------------
    # Workload steps
    # ------------------------------------------------------------------

    def _insert(self, name: str, tt: int = 100, vt: int = 95) -> None:
        self.server.execute(
            f"INSERT INTO t VALUES ('{name}', '{day(tt)}, UC, {day(vt)}, NOW')",
            self.session,
        )

    def autocommit_insert(self, name: str, vt: int = 95) -> str:
        """One single-statement transaction; returns its outcome."""
        try:
            self._insert(name, vt=vt)
        except SimulatedCrash as crash:
            self.crashed = crash.point
            return CRASHED
        except Exception:
            # An ordinary injected failure: the engine already rolled the
            # autocommit transaction back.
            return FAILED
        self.committed.add(name)
        return COMMITTED

    def run_batch(self, names: Iterable[str], commit: bool = True) -> str:
        """Run *names* as one explicit transaction; returns the outcome.

        The oracle is updated only when ``COMMIT WORK`` returns: a crash
        anywhere earlier -- including during the commit itself, before
        the COMMIT record is durable -- means the transaction must NOT
        survive recovery.
        """
        names = list(names)
        try:
            self.server.execute("BEGIN WORK", self.session)
            for name in names:
                self._insert(name)
            if not commit:
                self.server.execute("ROLLBACK WORK", self.session)
                return ROLLED_BACK
            self.server.execute("COMMIT WORK", self.session)
        except SimulatedCrash as crash:
            self.crashed = crash.point
            return CRASHED
        except Exception:
            if self.session.in_transaction:
                self.server.execute("ROLLBACK WORK", self.session)
            return FAILED
        self.committed.update(names)
        return COMMITTED

    # ------------------------------------------------------------------
    # Crash and restart
    # ------------------------------------------------------------------

    def recover(self) -> None:
        """The restart after a crash: volatile state dies, the WAL replays.

        Mirrors what a real server does at boot -- locks held by crashed
        transactions simply do not exist in the fresh lock table, the log
        is replayed onto an empty space, and clients reconnect with new
        sessions (the old ones died with the process).
        """
        self.disarm_all()
        for txn_id in self.server.wal.active_transactions():
            self.server.locks.release_all(txn_id)
        self.server.wal.recover(self.space)
        self.space.set_transaction(None)
        # Cached index handles hold buffer pools over pre-crash blobs;
        # bumping the epoch makes grt_open rebuild them from disk state.
        self.server.storage_epoch += 1
        self.session = self.server.create_session()
        self.crashed = None

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------

    def query_names(self, tt: int = 100, vt: int = 80) -> Set[str]:
        """Names reachable through the index (never a seqscan)."""
        rows = self.server.execute(
            QUERY.format(tt=day(tt), vt=day(vt)), self.session
        )
        plan = self.server.last_plan
        assert getattr(plan, "index", None) is not None, (
            f"expected an index scan, optimizer chose {type(plan).__name__}"
        )
        return {row["name"] for row in rows}

    @contextmanager
    def open_tree(self, index_name: str = "gi"):
        """Open the live GR-tree the way a statement would (am_open)."""
        info = self.server.catalog.get_index(index_name)
        am = self.server.catalog.access_methods.get(info.am_name)
        session = self.server.system_session
        td = self.server.executor._descriptor(info, session)
        with session.autocommit():
            self.server.executor.call_purpose(am, "am_open", td)
            try:
                yield td.user_data["tree"]
            finally:
                self.server.executor.call_purpose(am, "am_close", td)

    def verify(self) -> None:
        """Assert the full crash-consistency contract."""
        names = self.query_names()
        lost = self.committed - names
        resurrected = names - self.committed
        assert not lost, f"committed rows lost by recovery: {sorted(lost)}"
        assert not resurrected, (
            f"uncommitted rows resurrected by recovery: {sorted(resurrected)}"
        )
        self.server.execute("CHECK INDEX gi", self.session)
        with self.open_tree() as tree:
            verify_tree(tree)


# ----------------------------------------------------------------------
# Hybrid-AM crash consistency
# ----------------------------------------------------------------------


class HybridCrashHarness:
    """A :class:`CrashHarness` analogue over the hybrid hash + B+-tree AM.

    The interesting new failure window is *between* the two structure
    writes of one mutation (``hblade.hash_write`` fires before the hash
    directory is touched, ``hblade.tree_write`` between the hash and
    tree halves).  A crash there leaves the volatile pools disagreeing;
    recovery must heal it because the enclosing transaction never
    committed.  Verification therefore checks committed rows through
    *both* paths -- a tree-side range scan and hash-side point probes --
    plus the structural hash/tree agreement verifier.
    """

    def __init__(self) -> None:
        self.registry = FaultRegistry()
        self.server = DatabaseServer(faults=self.registry)
        self.space = self.server.create_sbspace("spc")
        register_hybrid_blade(self.server)
        self.server.execute("CREATE TABLE h (k INTEGER, name LVARCHAR)")
        self.server.execute(
            "CREATE INDEX hi ON h(k) USING hblade_am IN spc "
            "WITH (buffer_capacity = 8)"
        )
        self.server.prefer_virtual_index = True
        self.session = self.server.create_session()
        #: name -> key of rows whose transaction committed (the oracle).
        self.committed: dict = {}
        self.crashed: Optional[str] = None
        self._next_key = 0

    # -- arming --------------------------------------------------------

    def arm(self, name: str, action: str = "crash", **conditions):
        return self.registry.set_fault(name, action, **conditions)

    def disarm_all(self) -> None:
        self.registry.clear_all()

    # -- workload steps ------------------------------------------------

    def _fresh_key(self) -> int:
        self._next_key += 1
        return self._next_key

    def autocommit_insert(self, name: str) -> str:
        key = self._fresh_key()
        try:
            self.server.execute(
                f"INSERT INTO h VALUES ({key}, '{name}')", self.session
            )
        except SimulatedCrash as crash:
            self.crashed = crash.point
            return CRASHED
        except Exception:
            return FAILED
        self.committed[name] = key
        return COMMITTED

    def autocommit_delete(self, name: str) -> str:
        """Delete a committed row by its key (both write paths again).

        Only safe while no failpoint is armed: the heap model deletes
        rows eagerly and neither rollback nor WAL replay restores them
        (the same reason :func:`random_workload` is insert-only), so a
        fault mid-delete would strand a recovered index entry over a
        missing heap row.
        """
        key = self.committed[name]
        try:
            self.server.execute(
                f"DELETE FROM h WHERE k = {key}", self.session
            )
        except SimulatedCrash as crash:
            self.crashed = crash.point
            return CRASHED
        except Exception:
            return FAILED
        del self.committed[name]
        return COMMITTED

    def run_batch(self, names: Iterable[str], commit: bool = True) -> str:
        names = list(names)
        keys = {}
        try:
            self.server.execute("BEGIN WORK", self.session)
            for name in names:
                keys[name] = self._fresh_key()
                self.server.execute(
                    f"INSERT INTO h VALUES ({keys[name]}, '{name}')",
                    self.session,
                )
            if not commit:
                self.server.execute("ROLLBACK WORK", self.session)
                return ROLLED_BACK
            self.server.execute("COMMIT WORK", self.session)
        except SimulatedCrash as crash:
            self.crashed = crash.point
            return CRASHED
        except Exception:
            if self.session.in_transaction:
                self.server.execute("ROLLBACK WORK", self.session)
            return FAILED
        self.committed.update(keys)
        return COMMITTED

    # -- crash and restart ---------------------------------------------

    def recover(self) -> None:
        """Identical restart semantics to :meth:`CrashHarness.recover`."""
        self.disarm_all()
        for txn_id in self.server.wal.active_transactions():
            self.server.locks.release_all(txn_id)
        self.server.wal.recover(self.space)
        self.space.set_transaction(None)
        self.server.storage_epoch += 1
        self.session = self.server.create_session()
        self.crashed = None

    # -- verification --------------------------------------------------

    def tree_path_names(self) -> Set[str]:
        """Every name, through the tree side (a range scan)."""
        rows = self.server.execute(
            "SELECT name FROM h WHERE k >= 0", self.session
        )
        plan = self.server.last_plan
        assert getattr(plan, "index", None) is not None, (
            f"expected an index scan, optimizer chose {type(plan).__name__}"
        )
        return {row["name"] for row in rows}

    def hash_path_names(self) -> Set[str]:
        """The committed names, through hash-side point probes."""
        found: Set[str] = set()
        for name, key in self.committed.items():
            rows = self.server.execute(
                f"SELECT name FROM h WHERE k = {key}", self.session
            )
            found.update(row["name"] for row in rows)
        return found

    @contextmanager
    def open_hybrid(self, index_name: str = "hi"):
        info = self.server.catalog.get_index(index_name)
        am = self.server.catalog.access_methods.get(info.am_name)
        session = self.server.system_session
        td = self.server.executor._descriptor(info, session)
        with session.autocommit():
            self.server.executor.call_purpose(am, "am_open", td)
            try:
                yield td.user_data["tree"], td.user_data["directory"]
            finally:
                self.server.executor.call_purpose(am, "am_close", td)

    def verify(self) -> None:
        """Committed-rows oracle through both paths + structure checks."""
        expected = set(self.committed)
        tree_names = self.tree_path_names()
        lost = expected - tree_names
        resurrected = tree_names - expected
        assert not lost, f"committed rows lost by recovery: {sorted(lost)}"
        assert not resurrected, (
            f"uncommitted rows resurrected by recovery: {sorted(resurrected)}"
        )
        hash_names = self.hash_path_names()
        assert hash_names == expected, (
            f"hash path disagrees with the oracle: "
            f"missing {sorted(expected - hash_names)}, "
            f"extra {sorted(hash_names - expected)}"
        )
        self.server.execute("CHECK INDEX hi", self.session)
        with self.open_hybrid() as (tree, directory):
            verify_hybrid(tree, directory)


def hybrid_random_workload(
    harness: HybridCrashHarness, seed: int, steps: int = 40
) -> List[str]:
    """Seeded random inserts and batches; stops at the first crash.

    Insert-only while the failpoint is armed (see
    :meth:`HybridCrashHarness.autocommit_delete` for why), but inserts
    traverse both hybrid write paths, which is the window under test.
    """
    rng = random.Random(seed)
    outcomes: List[str] = []
    for step in range(steps):
        kind = rng.random()
        if kind < 0.45:
            outcome = harness.autocommit_insert(f"s{seed}.{step}")
        elif kind < 0.85:
            size = rng.randint(1, 5)
            outcome = harness.run_batch(
                [f"s{seed}.{step}.{i}" for i in range(size)]
            )
        else:
            size = rng.randint(1, 3)
            outcome = harness.run_batch(
                [f"s{seed}.{step}.{i}" for i in range(size)], commit=False
            )
        outcomes.append(outcome)
        if outcome == CRASHED:
            break
    return outcomes


# ----------------------------------------------------------------------
# Replica crash consistency
# ----------------------------------------------------------------------


class ReplicaCrashHarness:
    """A replica of a ``CrashHarness(ship=True)`` primary, socket-free.

    The harness plays the wire role of the shipper *and* the link: it
    chunks the primary's WAL into the exact frames ``wal_frame`` would
    carry (``LogRecord.to_dict`` payloads, encode/decode fidelity
    through ``protocol.encode_frame``) and feeds them to a real
    :class:`ReplicationApplier`.  Tests mangle the frame stream --
    drop, duplicate, reorder, tear -- and arm ``repl.apply`` crashes on
    the replica's own registry, then assert the committed-prefix
    contract with :meth:`verify`.
    """

    def __init__(self, primary: CrashHarness, frame_size: int = 8) -> None:
        assert primary.server.wal.ship_rows, (
            "the primary must be built with CrashHarness(ship=True)"
        )
        self.primary = primary
        self.frame_size = frame_size
        self.registry = FaultRegistry()
        self.server = self._fresh_engine()
        self.applier = ReplicationApplier(self.server)
        self.crashed: Optional[str] = None

    def _fresh_engine(self) -> DatabaseServer:
        server = DatabaseServer(
            clock=Clock(now=self.primary.server.clock.now),
            faults=self.registry,
        )
        server.create_sbspace("spc")
        register_grtree_blade(server)
        server.prefer_virtual_index = True
        return server

    # ------------------------------------------------------------------
    # The frame stream
    # ------------------------------------------------------------------

    def arm_apply(self, action: str = "crash", **conditions):
        """Arm the replica-side ``repl.apply`` failpoint (fires once per
        row of each committed transaction being applied)."""
        return self.registry.set_fault("repl.apply", action, **conditions)

    def outstanding_frames(self) -> List[List[dict]]:
        """The primary's log past our cursor, chunked like the shipper."""
        records = [
            record.to_dict()
            for record in self.primary.server.wal.records_from(
                self.applier.received_lsn + 1
            )
        ]
        return [
            records[start : start + self.frame_size]
            for start in range(0, len(records), self.frame_size)
        ]

    def deliver(self, frames: Iterable[List[dict]]) -> bool:
        """Feed frames through a wire round-trip; False after a crash.

        Every frame passes through ``encode_frame``/JSON decode, so what
        the applier sees is byte-for-byte what a socket would deliver.
        """
        import json

        last = self.primary.server.wal.last_lsn()
        for frame in frames:
            if self.crashed is not None:
                return False
            data = protocol.encode_frame(
                protocol.wal_frame(frame, last_lsn=last, now=0.0)
            )
            message = json.loads(data[4:].decode("utf-8"))
            try:
                self.applier.ingest(
                    message["records"], last_lsn=message["last_lsn"]
                )
            except SimulatedCrash as crash:
                self.crashed = crash.point
                return False
        return True

    def sync(self) -> bool:
        """Ship the whole outstanding log faithfully."""
        return self.deliver(self.outstanding_frames())

    def torn_frame(self, frame: List[dict]) -> None:
        """What a torn frame does: the truncated bytes fail to decode,
        the link severs, and nothing reaches the applier.  The caller
        then resubscribes via :meth:`sync`."""
        data = protocol.encode_frame(
            protocol.wal_frame(frame, last_lsn=0, now=0.0)
        )
        torn = data[: max(1, len(data) // 2)]
        try:
            body = torn[4:].decode("utf-8", errors="strict")
            import json

            json.loads(body)
        except Exception:
            return  # undecodable, as a torn frame must be
        raise AssertionError("torn frame unexpectedly decoded")

    # ------------------------------------------------------------------
    # Crash and restart
    # ------------------------------------------------------------------

    def recover(self) -> None:
        """Replica restart: fresh engine, replay the relay log from 0.

        Commit-gated replay lands exactly on the committed prefix the
        relay log records; the half-applied transaction a mid-apply
        crash froze never becomes visible.
        """
        self.registry.clear_all()
        relay = list(self.applier.relay)
        self.server = self._fresh_engine()
        self.applier = ReplicationApplier(self.server)
        self.applier.replay_relay_log(relay)
        self.crashed = None

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------

    def prefix_oracle(self) -> Set[str]:
        """Names visible after applying the committed prefix at our
        applied LSN -- computed independently from the primary's log."""
        limit = self.applier.applied_lsn
        live: dict = {}
        staged: dict = {}
        for record in self.primary.server.wal.records_from(0):
            if record.lsn > limit:
                break
            if record.kind is RecordKind.BEGIN:
                staged[record.txn_id] = []
            elif record.kind is RecordKind.ROW_INSERT:
                staged.setdefault(record.txn_id, []).append(
                    ("insert", record.rowid, record.row["name"])
                )
            elif record.kind is RecordKind.ROW_DELETE:
                staged.setdefault(record.txn_id, []).append(
                    ("delete", record.rowid, None)
                )
            elif record.kind is RecordKind.COMMIT:
                for op, rowid, name in staged.pop(record.txn_id, []):
                    if op == "insert":
                        live[rowid] = name
                    else:
                        live.pop(rowid, None)
            elif record.kind is RecordKind.ABORT:
                staged.pop(record.txn_id, None)
        return set(live.values())

    def _has(self, kind: str, name: str) -> bool:
        try:
            getattr(self.server.catalog, f"get_{kind}")(name)
            return True
        except Exception:
            return False

    def query_names(self, tt: int = 100, vt: int = 80) -> Set[str]:
        """Names reachable on the replica, through the index once it
        exists.  A committed prefix may legitimately predate the
        ``CREATE TABLE`` / ``CREATE INDEX`` statements."""
        if not self._has("table", "t"):
            return set()
        rows = self.server.execute(QUERY.format(tt=day(tt), vt=day(vt)))
        if self._has("index", "gi"):
            plan = self.server.last_plan
            assert getattr(plan, "index", None) is not None, (
                f"expected an index scan, optimizer chose "
                f"{type(plan).__name__}"
            )
        return {row["name"] for row in rows}

    def verify(self) -> None:
        """The replica contract: a committed prefix, structurally valid.

        * everything visible is committed on the primary (no torn or
          resurrected transactions);
        * everything committed at or below our applied LSN is visible
          (the prefix is complete, nothing was lost);
        * the replica's own GR-tree passes CHECK INDEX and the full
          structural verification.
        """
        names = self.query_names()
        oracle = self.prefix_oracle()
        torn = names - self.primary.committed
        assert not torn, (
            f"replica shows rows the primary never committed: {sorted(torn)}"
        )
        lost = oracle - names
        assert not lost, (
            f"rows committed within the applied prefix are missing: "
            f"{sorted(lost)}"
        )
        extra = names - oracle
        assert not extra, (
            f"replica shows rows beyond its applied prefix: {sorted(extra)}"
        )
        if not self._has("index", "gi"):
            return  # the prefix ends before the index was created
        self.server.execute("CHECK INDEX gi")
        info = self.server.catalog.get_index("gi")
        am = self.server.catalog.access_methods.get(info.am_name)
        session = self.server.system_session
        td = self.server.executor._descriptor(info, session)
        with session.autocommit():
            self.server.executor.call_purpose(am, "am_open", td)
            try:
                verify_tree(td.user_data["tree"])
            finally:
                self.server.executor.call_purpose(am, "am_close", td)


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------


def scripted_workload(harness: CrashHarness) -> None:
    """A canonical mixed history: autocommits, batches, a rollback."""
    for i in range(4):
        harness.autocommit_insert(f"auto{i}")
    harness.run_batch([f"batch0.{i}" for i in range(5)])
    harness.run_batch([f"gone{i}" for i in range(3)], commit=False)
    harness.run_batch([f"batch1.{i}" for i in range(5)])


def random_workload(
    harness: CrashHarness, seed: int, steps: int = 20
) -> List[str]:
    """Seeded random mix of workload steps; stops at the first crash.

    Returns the outcome of every step taken, so callers can assert the
    crash actually happened (or not).
    """
    rng = random.Random(seed)
    outcomes: List[str] = []
    for step in range(steps):
        kind = rng.random()
        if kind < 0.4:
            outcome = harness.autocommit_insert(
                f"s{seed}.{step}", vt=rng.randint(90, 99)
            )
        elif kind < 0.8:
            size = rng.randint(1, 6)
            outcome = harness.run_batch(
                [f"s{seed}.{step}.{i}" for i in range(size)]
            )
        else:
            size = rng.randint(1, 4)
            outcome = harness.run_batch(
                [f"s{seed}.{step}.{i}" for i in range(size)], commit=False
            )
        outcomes.append(outcome)
        if outcome == CRASHED:
            break
    return outcomes
