"""Stress tests: tiny buffers, long mixed sessions, page churn."""

import random

import pytest

from repro.grtree.node import GRNodeStore
from repro.grtree.tree import GRTree
from repro.storage.buffer import BufferPool
from repro.storage.pages import InMemoryPageStore
from repro.temporal.chronon import Clock
from repro.temporal.extent import TimeExtent
from repro.temporal.variables import NOW, UC
from repro.workloads import BitemporalWorkload, WorkloadConfig


class TestTinyBuffer:
    """A two-frame buffer pool forces eviction and write-back inside
    every multi-node operation; correctness must not depend on
    residency."""

    def test_build_and_search_with_two_frames(self):
        clock = Clock(now=100)
        store = InMemoryPageStore(page_size=512)
        pool = BufferPool(store, capacity=2)
        tree = GRTree.create(GRNodeStore(pool), clock)
        workload = BitemporalWorkload(clock, WorkloadConfig(seed=61))
        workload.run(tree, 500)
        tree.check()
        assert pool.stats.physical_reads > 0  # evictions really happened
        assert pool.stats.physical_writes > 0
        query = workload.window_query(15, 15)
        got = sorted(r for r, _ in tree.search_all(query))
        assert got == workload.oracle_overlapping(query)

    def test_flush_then_invalidate_round_trip(self):
        clock = Clock(now=100)
        pool = BufferPool(InMemoryPageStore(page_size=512), capacity=4)
        tree = GRTree.create(GRNodeStore(pool), clock)
        for i in range(100):
            tree.insert(TimeExtent(100, UC, 90, NOW), rowid=i)
        pool.flush()
        pool.invalidate()  # drop every cached frame
        # Everything must be re-readable from the backing store.
        reopened = GRTree.open(GRNodeStore(pool), clock, tree.meta_page)
        assert reopened.size == 100
        assert len(reopened.search_all(TimeExtent(100, UC, 100, NOW))) == 100


class TestLongSession:
    @pytest.mark.parametrize("seed", [7, 77])
    def test_thousands_of_mixed_operations(self, seed):
        clock = Clock(now=100)
        pool = BufferPool(InMemoryPageStore(page_size=512), capacity=16)
        tree = GRTree.create(GRNodeStore(pool), clock)
        workload = BitemporalWorkload(
            clock,
            WorkloadConfig(
                seed=seed,
                delete_fraction=0.2,
                update_fraction=0.15,
                clock_advance_probability=0.4,
            ),
        )
        for step in range(3000):
            workload.step(tree)
            if step % 750 == 749:
                tree.check()
        tree.check()
        for _ in range(5):
            query = workload.window_query(12, 12)
            got = sorted(r for r, _ in tree.search_all(query))
            assert got == workload.oracle_overlapping(query)

    def test_page_recycling(self):
        """Deleting most of the tree then rebuilding reuses freed pages
        rather than leaking them."""
        clock = Clock(now=100)
        store = InMemoryPageStore(page_size=512)
        pool = BufferPool(store, capacity=32)
        tree = GRTree.create(GRNodeStore(pool), clock)
        extents = {}
        for i in range(600):
            extent = TimeExtent(clock.now, UC, clock.now - (i % 30), NOW)
            tree.insert(extent, i)
            extents[i] = extent
            if i % 20 == 0:
                clock.advance(1)
        peak_pages = store.page_count
        for i in range(550):
            assert tree.delete(extents[i], i)
        for i in range(600, 1150):
            tree.insert(TimeExtent(clock.now, UC, clock.now - (i % 30), NOW), i)
        tree.check()
        assert store.page_count <= peak_pages * 1.5
