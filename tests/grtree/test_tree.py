"""Tests for the GR-tree: inserts, growth, searches, deletion, cursors."""

import random

import pytest

from repro.grtree.cursor import Cursor
from repro.grtree.entries import GREntry, Predicate
from repro.grtree.node import GRNodeStore
from repro.grtree.tree import GRTree
from repro.grtree.bulk import bulk_delete, bulk_load
from repro.storage.buffer import BufferPool
from repro.storage.pages import InMemoryPageStore
from repro.temporal.chronon import Clock
from repro.temporal.extent import TimeExtent
from repro.temporal.variables import NOW, UC


def make_tree(page_size=512, now=100, **kwargs):
    clock = Clock(now=now)
    store = GRNodeStore(BufferPool(InMemoryPageStore(page_size=page_size)))
    return GRTree.create(store, clock, **kwargs), clock


def random_extent(rng, clock, now_relative_prob=0.5):
    """An extent insertable at the current clock time."""
    now = clock.now
    tt_begin = now
    if rng.random() < now_relative_prob:
        vt_begin = now - rng.randint(0, 40)
        return TimeExtent(tt_begin, UC, vt_begin, NOW)
    vt_begin = now - rng.randint(-20, 40)
    vt_end = vt_begin + rng.randint(0, 30)
    return TimeExtent(tt_begin, UC, vt_begin, vt_end)


class Oracle:
    """Linear-scan reference for GR-tree searches."""

    def __init__(self):
        self.rows = {}  # rowid -> extent

    def insert(self, extent, rowid):
        self.rows[rowid] = extent

    def delete(self, rowid):
        del self.rows[rowid]

    def search(self, query, predicate, now):
        q = query.region(now)
        return sorted(
            rowid
            for rowid, extent in self.rows.items()
            if predicate.leaf_test(extent.region(now), q)
        )


class TestBasics:
    def test_empty_tree(self):
        tree, clock = make_tree()
        query = TimeExtent(100, UC, 100, NOW)
        assert tree.search_all(query) == []
        assert tree.size == 0

    def test_single_insert_and_search(self):
        tree, clock = make_tree()
        extent = TimeExtent(100, UC, 90, NOW)
        tree.insert(extent, rowid=1)
        assert tree.search_all(TimeExtent(100, UC, 100, NOW)) == [(1, 0)]
        assert tree.size == 1

    def test_search_respects_clock_growth(self):
        tree, clock = make_tree(now=100)
        tree.insert(TimeExtent(100, UC, 100, NOW), rowid=1)
        # A static query region in the future of the stair's current top.
        far_query = TimeExtent(100, 200, 150, 180)
        assert tree.search_all(far_query) == []
        clock.set(160)
        # The stair has grown past vt=150 by now.
        assert tree.search_all(far_query) == [(1, 0)]

    def test_meta_page_roundtrip(self):
        clock = Clock(now=100)
        pool = BufferPool(InMemoryPageStore(page_size=512))
        store = GRNodeStore(pool)
        tree = GRTree.create(store, clock, time_horizon=7)
        for i in range(50):
            tree.insert(TimeExtent(100, UC, 90, NOW), rowid=i)
        reopened = GRTree.open(store, clock, meta_page=tree.meta_page)
        assert reopened.size == 50
        assert reopened.height == tree.height
        assert reopened.time_horizon == 7
        assert sorted(reopened.search_all(TimeExtent(100, UC, 100, NOW))) == [
            (i, 0) for i in range(50)
        ]

    def test_open_rejects_garbage(self):
        pool = BufferPool(InMemoryPageStore(page_size=512))
        store = GRNodeStore(pool)
        page = pool.allocate()
        pool.write(page, b"not a tree")
        with pytest.raises(ValueError):
            GRTree.open(store, Clock(), meta_page=page)


class TestOracleEquivalence:
    @pytest.mark.parametrize("now_relative_prob", [0.0, 0.5, 1.0])
    def test_growing_workload_matches_oracle(self, now_relative_prob):
        rng = random.Random(42)
        tree, clock = make_tree(page_size=512)
        oracle = Oracle()
        for rowid in range(400):
            extent = random_extent(rng, clock, now_relative_prob)
            tree.insert(extent, rowid)
            oracle.insert(extent, rowid)
            if rng.random() < 0.3:
                clock.advance(1)
        tree.check()
        for predicate in Predicate:
            for _ in range(10):
                vt = clock.now - rng.randint(0, 150)
                query = TimeExtent(
                    clock.now - rng.randint(0, 100),
                    clock.now + rng.randint(0, 50),
                    vt,
                    vt + rng.randint(0, 80),
                )
                expected = oracle.search(query, predicate, clock.now)
                got = sorted(r for r, _ in tree.search_all(query, predicate))
                assert got == expected, (predicate, query)

    def test_growth_after_load_matches_oracle(self):
        """Regions keep growing after the tree is built; bounds with
        UC/NOW must keep up without any page updates."""
        rng = random.Random(7)
        tree, clock = make_tree(page_size=512)
        oracle = Oracle()
        for rowid in range(300):
            extent = random_extent(rng, clock, 0.7)
            tree.insert(extent, rowid)
            oracle.insert(extent, rowid)
        io_before = tree.store.buffer.stats.logical_writes
        clock.advance(500)  # half a career later, nothing rewritten
        assert tree.store.buffer.stats.logical_writes == io_before
        tree.check()
        query = TimeExtent(clock.now - 80, clock.now, clock.now - 300, clock.now - 100)
        expected = oracle.search(query, Predicate.OVERLAPS, clock.now)
        assert sorted(r for r, _ in tree.search_all(query)) == expected

    def test_query_as_of_open_time(self):
        """Searches honour an explicit 'now' (the statement time sampled
        at index open, Section 5.4)."""
        tree, clock = make_tree(now=100)
        tree.insert(TimeExtent(100, UC, 100, NOW), rowid=1)
        clock.set(200)
        frozen_query = TimeExtent(150, 160, 150, 155)
        # At the frozen time 120 the stair had not yet reached the query.
        assert tree.search_all(frozen_query, now=120) == []
        assert tree.search_all(frozen_query, now=200) == [(1, 0)]


class TestDeletion:
    def test_delete_roundtrip(self):
        tree, clock = make_tree()
        extent = TimeExtent(100, UC, 90, NOW)
        tree.insert(extent, rowid=1)
        assert tree.delete(extent, rowid=1)
        assert tree.size == 0
        assert tree.search_all(TimeExtent(100, UC, 100, NOW)) == []

    def test_delete_missing(self):
        tree, clock = make_tree()
        tree.insert(TimeExtent(100, UC, 90, NOW), rowid=1)
        assert not tree.delete(TimeExtent(100, UC, 90, NOW), rowid=2)
        assert not tree.delete(TimeExtent(100, UC, 89, NOW), rowid=1)

    def test_mass_delete_matches_oracle(self):
        rng = random.Random(3)
        tree, clock = make_tree(page_size=512)
        oracle = Oracle()
        extents = {}
        for rowid in range(400):
            extent = random_extent(rng, clock, 0.5)
            tree.insert(extent, rowid)
            oracle.insert(extent, rowid)
            extents[rowid] = extent
            if rng.random() < 0.2:
                clock.advance(1)
        victims = rng.sample(sorted(extents), 250)
        for rowid in victims:
            assert tree.delete(extents[rowid], rowid)
            oracle.delete(rowid)
        tree.check()
        query = TimeExtent(clock.now - 100, clock.now, clock.now - 100, clock.now)
        assert sorted(r for r, _ in tree.search_all(query)) == oracle.search(
            query, Predicate.OVERLAPS, clock.now
        )

    def test_update_is_delete_plus_insert(self):
        """A logical deletion replaces the UC entry with a frozen one."""
        tree, clock = make_tree(now=100)
        live = TimeExtent(100, UC, 90, NOW)
        tree.insert(live, rowid=1)
        clock.set(150)
        frozen = live.logically_deleted(150)
        assert tree.delete(live, rowid=1)
        tree.insert(frozen, rowid=1)
        tree.check()
        # The frozen stair no longer grows.
        assert tree.search_all(TimeExtent(200, 300, 200, 300), now=350) == []


class TestCursor:
    def test_cursor_returns_one_at_a_time(self):
        tree, clock = make_tree()
        for i in range(5):
            tree.insert(TimeExtent(100, UC, 90, NOW), rowid=i)
        cursor = tree.search(TimeExtent(100, UC, 100, NOW))
        seen = set()
        while True:
            entry = cursor.next()
            if entry is None:
                break
            seen.add(entry.rowid)
        assert seen == set(range(5))
        assert cursor.next() is None  # stays exhausted

    def test_reset_restarts_scan(self):
        tree, clock = make_tree()
        for i in range(5):
            tree.insert(TimeExtent(100, UC, 90, NOW), rowid=i)
        cursor = tree.search(TimeExtent(100, UC, 100, NOW))
        assert cursor.next() is not None
        cursor.reset()
        assert len(cursor.fetch_all()) == 5

    def test_retrieve_and_delete_loop(self):
        """The grt_delete pattern: fetch next qualifying entry, delete it,
        repeat -- across condensations (Section 5.5)."""
        rng = random.Random(11)
        tree, clock = make_tree(page_size=512)
        extents = {}
        for rowid in range(300):
            extent = random_extent(rng, clock, 0.6)
            tree.insert(extent, rowid)
            extents[rowid] = extent
        query = TimeExtent(clock.now, UC, clock.now - 200, NOW)
        expected = {
            rowid
            for rowid, ext in extents.items()
            if ext.region(clock.now).overlaps(query.region(clock.now))
        }
        cursor = tree.search(query)
        deleted = set()
        while True:
            entry = cursor.next()
            if entry is None:
                break
            assert tree.delete(entry.extent(), entry.rowid)
            deleted.add(entry.rowid)
        assert deleted == expected
        tree.check()

    def test_cursor_restart_only_on_condense(self):
        tree, clock = make_tree(page_size=512)
        for i in range(200):
            tree.insert(TimeExtent(100, UC, 90, NOW), rowid=i)
        cursor = tree.search(TimeExtent(100, UC, 100, NOW))
        version = tree.condense_version
        cursor.next()
        assert cursor._seen_version == version

    def test_node_access_accounting(self):
        tree, clock = make_tree(page_size=512)
        for i in range(400):
            tree.insert(TimeExtent(100, UC, 90, NOW), rowid=i)
        cursor = tree.search(TimeExtent(100, UC, 100, NOW))
        cursor.fetch_all()
        assert cursor.node_accesses >= tree.height


class TestStatsAndQuality:
    def test_stats(self):
        tree, clock = make_tree(page_size=512)
        for i in range(300):
            tree.insert(TimeExtent(100, UC, 90, NOW), rowid=i)
        stats = tree.stats()
        assert stats["size"] == 300
        assert stats["height"] == tree.height > 1
        assert 0 < stats["avg_fill"] <= 1

    def test_quality_metrics_present(self):
        rng = random.Random(5)
        tree, clock = make_tree(page_size=512)
        for i in range(300):
            tree.insert(random_extent(rng, clock, 0.5), rowid=i)
            if i % 10 == 0:
                clock.advance(1)
        quality = tree.quality()
        assert quality["dead_space"] >= 0
        assert quality["sibling_overlap"] >= 0

    def test_scan_cost_monotone_in_query_size(self):
        rng = random.Random(5)
        tree, clock = make_tree(page_size=512)
        for i in range(400):
            tree.insert(random_extent(rng, clock, 0.5), rowid=i)
            if i % 10 == 0:
                clock.advance(1)
        small = TimeExtent(clock.now, clock.now + 1, clock.now, clock.now + 1)
        large = TimeExtent(clock.now - 100, clock.now + 100, 0, clock.now + 100)
        assert tree.scan_cost(small) <= tree.scan_cost(large)

    def test_dump_renders_structure(self):
        tree, clock = make_tree()
        tree.insert(TimeExtent(100, UC, 90, NOW), rowid=1)
        text = tree.dump()
        assert "leaf" in text and "rowid=1" in text


class TestBulk:
    def test_bulk_load_matches_incremental(self):
        rng = random.Random(21)
        clock = Clock(now=100)
        items = []
        for rowid in range(500):
            vt_begin = clock.now - rng.randint(0, 50)
            if rng.random() < 0.5:
                items.append((TimeExtent(clock.now, UC, vt_begin, NOW), rowid))
            else:
                items.append(
                    (TimeExtent(clock.now, UC, vt_begin, vt_begin + 10), rowid)
                )
        store = GRNodeStore(BufferPool(InMemoryPageStore(page_size=512)))
        tree = bulk_load(store, clock, items)
        tree.check()
        assert tree.size == 500
        clock.advance(50)
        query = TimeExtent(clock.now, UC, clock.now - 60, NOW)
        expected = sorted(
            rowid
            for extent, rowid in items
            if extent.region(clock.now).overlaps(query.region(clock.now))
        )
        assert sorted(r for r, _ in tree.search_all(query)) == expected

    def test_bulk_load_then_insert(self):
        clock = Clock(now=100)
        items = [(TimeExtent(100, UC, 90, NOW), i) for i in range(200)]
        store = GRNodeStore(BufferPool(InMemoryPageStore(page_size=512)))
        tree = bulk_load(store, clock, items)
        clock.advance(5)
        tree.insert(TimeExtent(105, UC, 100, NOW), rowid=999)
        tree.check()
        assert tree.size == 201

    def test_bulk_load_empty(self):
        clock = Clock(now=100)
        store = GRNodeStore(BufferPool(InMemoryPageStore(page_size=512)))
        tree = bulk_load(store, clock, [])
        assert tree.size == 0
        assert tree.search_all(TimeExtent(100, UC, 100, NOW)) == []

    def test_bulk_delete_vacuums_old_data(self):
        """Section 5.5: 'delete all data that is more than five years
        old' via drop-and-rebuild."""
        rng = random.Random(31)
        tree, clock = make_tree(page_size=512)
        extents = {}
        for rowid in range(300):
            extent = random_extent(rng, clock, 0.3)
            tree.insert(extent, rowid)
            extents[rowid] = extent
            clock.advance(1)
        cutoff = clock.now - 150
        old = {
            rowid
            for rowid, ext in extents.items()
            if ext.tt_end is not UC or ext.tt_begin < cutoff
        }
        tree, removed = bulk_delete(
            tree, lambda e: e.tt_end is not UC or e.tt_begin < cutoff
        )
        tree.check()
        assert removed == len(old)
        assert tree.size == 300 - len(old)
        # A static rectangle comfortably covering every region.
        everything = TimeExtent(0, clock.now + 200, 0, clock.now + 200)
        assert sorted(r for r, _ in tree.search_all(everything)) == sorted(
            set(extents) - old
        )
