"""Tests for GR-tree entries: region decoding, flags, bounding."""

import pytest

from repro.grtree.entries import GREntry, Predicate, bound_entries, same_timestamps
from repro.temporal.extent import TimeExtent
from repro.temporal.regions import Region
from repro.temporal.variables import NOW, UC


class TestLeafRegionDecoding:
    def test_growing_stair(self):
        entry = GREntry(10, UC, 10, NOW)
        region = entry.region(25)
        assert region.stair
        assert (region.tt_lo, region.tt_hi) == (10, 25)
        assert (region.vt_lo, region.vt_hi) == (10, 25)

    def test_static_rectangle(self):
        entry = GREntry(10, 20, 5, 15)
        assert entry.region(99) == Region.make(10, 20, 5, 15)

    def test_from_extent_roundtrip(self):
        extent = TimeExtent(10, UC, 5, NOW)
        entry = GREntry.from_extent(extent, rowid=3, fragid=1)
        assert entry.extent() == extent
        assert (entry.rowid, entry.fragid) == (3, 1)
        assert entry.region(30) == extent.region(30)

    def test_growing_property(self):
        assert GREntry(10, UC, 10, NOW).growing
        assert not GREntry(10, 20, 10, NOW).growing


class TestInternalRegionDecoding:
    def test_rectangle_flag_disambiguates(self):
        # (tt1, UC, vt1, NOW) in a non-leaf entry: stair or rectangle
        # growing in both dimensions, depending on the flag.
        stair = GREntry(10, UC, 5, NOW, rectangle=False)
        rect = GREntry(10, UC, 5, NOW, rectangle=True)
        assert stair.region(30).stair
        assert not rect.region(30).stair
        assert rect.region(30) == Region.make(10, 30, 5, 30)

    def test_hidden_adjustment_before_outgrowing(self):
        # Fixed top 50 still above the clock: no adjustment.
        entry = GREntry(10, UC, 5, 50, rectangle=True, hidden=True)
        region = entry.region(40)
        assert region.vt_hi == 50

    def test_hidden_adjustment_after_outgrowing(self):
        # The paper's algorithm: Hidden set, VTend fixed, VTend < now
        # => treat VTend as NOW.
        entry = GREntry(10, UC, 5, 50, rectangle=True, hidden=True)
        region = entry.region(60)
        assert region.vt_hi == 60  # follows the clock again

    def test_unhidden_fixed_top_never_adjusts(self):
        entry = GREntry(10, UC, 5, 50, rectangle=True, hidden=False)
        assert entry.region(60).vt_hi == 50


class TestFitsUnderDiagonal:
    def test_stairs_always_fit(self):
        assert GREntry(10, UC, 10, NOW).fits_under_diagonal_forever()
        assert GREntry(10, 20, 5, NOW).fits_under_diagonal_forever()

    def test_fixed_rect_fits_iff_top_at_or_below_ttbegin(self):
        assert GREntry(10, 20, 5, 10).fits_under_diagonal_forever()
        assert not GREntry(10, 20, 5, 11).fits_under_diagonal_forever()

    def test_growing_both_rect_never_fits(self):
        assert not GREntry(10, UC, 5, NOW, rectangle=True).fits_under_diagonal_forever()

    def test_hidden_never_fits(self):
        assert not GREntry(10, UC, 5, 8, hidden=True).fits_under_diagonal_forever()


class TestBoundEntries:
    def test_all_stairs_bound_with_stair(self):
        entries = [GREntry(10, UC, 10, NOW), GREntry(12, UC, 8, NOW)]
        bound = bound_entries(entries, now=20)
        assert bound.vt_end is NOW and not bound.rectangle
        assert bound.tt_end is UC
        assert bound.tt_begin == 10 and bound.vt_begin == 8

    def test_stair_plus_under_diagonal_rect_is_stair(self):
        # Figure 4(b): the rectangle never rises above vt = tt.
        entries = [GREntry(10, UC, 10, NOW), GREntry(20, 30, 5, 18)]
        bound = bound_entries(entries, now=35)
        assert bound.vt_end is NOW and not bound.rectangle

    def test_tall_rect_forces_rectangle(self):
        # Figure 4(a): a rectangle above the diagonal forces a rectangle
        # bound; with a growing stair inside and the rect top above now,
        # the stair is hidden (Figure 4(c)).
        entries = [GREntry(10, UC, 10, NOW), GREntry(12, UC, 20, 60)]
        bound = bound_entries(entries, now=30)
        assert bound.rectangle
        assert bound.hidden
        assert bound.vt_end == 60
        assert bound.tt_end is UC

    def test_growing_stair_tallest_gives_growing_rectangle(self):
        # Once the stair has outgrown every fixed top, the bound must be
        # a rectangle growing in both dimensions.
        entries = [GREntry(10, UC, 10, NOW), GREntry(12, UC, 20, 25)]
        bound = bound_entries(entries, now=30)
        assert bound.rectangle
        assert bound.vt_end is NOW
        assert not bound.hidden

    def test_all_static_rectangle_bound(self):
        entries = [GREntry(10, 20, 15, 30), GREntry(5, 12, 18, 40)]
        bound = bound_entries(entries, now=50)
        assert bound.rectangle and not bound.hidden
        assert bound.tt_end == 20 and bound.vt_end == 40
        assert bound.tt_begin == 5 and bound.vt_begin == 15

    def test_stopped_stair_top_is_its_ttend(self):
        entries = [GREntry(10, 20, 10, NOW), GREntry(5, 30, 25, 28)]
        bound = bound_entries(entries, now=50)
        # Stopped stair tops out at tt_end=20; the rect at 28.
        assert bound.vt_end == 28

    def test_hidden_propagates_upward(self):
        child = GREntry(10, UC, 5, 50, rectangle=True, hidden=True)
        sibling = GREntry(12, 20, 30, 60)
        bound = bound_entries([child, sibling], now=30)
        assert bound.hidden

    def test_bound_contains_members_now_and_later(self):
        entries = [
            GREntry(10, UC, 10, NOW),
            GREntry(12, UC, 20, 60),
            GREntry(5, 15, 2, 4),
            GREntry(20, 25, 18, NOW),
        ]
        bound = bound_entries(entries, now=30)
        for t in (30, 45, 59, 60, 61, 100, 500):
            bound_region = bound.region(t)
            for entry in entries:
                assert bound_region.contains(entry.region(t)), (entry, t)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bound_entries([], now=10)


class TestSameTimestamps:
    def test_equal(self):
        assert same_timestamps(GREntry(1, UC, 0, NOW), GREntry(1, UC, 0, NOW))
        assert same_timestamps(GREntry(1, 5, 0, 3), GREntry(1, 5, 0, 3))

    def test_variable_vs_ground(self):
        assert not same_timestamps(GREntry(1, UC, 0, 3), GREntry(1, 5, 0, 3))
        assert not same_timestamps(GREntry(1, 5, 0, NOW), GREntry(1, 5, 0, 5))


class TestPredicates:
    def test_overlaps(self):
        a = Region.make(0, 10, 0, 10)
        b = Region.make(5, 15, 5, 15)
        assert Predicate.OVERLAPS.leaf_test(a, b)
        assert Predicate.OVERLAPS.internal_test(a, b)

    def test_equal_pruning_uses_containment(self):
        bound = Region.make(0, 20, 0, 20)
        query = Region.make(5, 10, 5, 10)
        assert Predicate.EQUAL.internal_test(bound, query)
        assert not Predicate.EQUAL.leaf_test(bound, query)
        outside = Region.make(15, 30, 0, 10)
        assert not Predicate.EQUAL.internal_test(outside, query)

    def test_contains_and_contained_in(self):
        big = Region.make(0, 20, 0, 20)
        small = Region.make(5, 10, 5, 10)
        assert Predicate.CONTAINS.leaf_test(big, small)
        assert not Predicate.CONTAINS.leaf_test(small, big)
        assert Predicate.CONTAINED_IN.leaf_test(small, big)
        assert not Predicate.CONTAINED_IN.leaf_test(big, small)
