"""Unit and property tests for the specialization layer.

Every vectorized kernel is held against the generic per-entry call
sequence it replaces: the four strategy predicates against
:meth:`Predicate.leaf_test`/:meth:`Predicate.internal_test`, the R*
penalties against the literal loop the tree falls back to, and the
vectorized bound against :func:`bound_entries` -- same index, same
timestamps, same flags, for the same entry lists.  The decline contract
(``None`` routes the node back through the generic path) is pinned down
explicitly: no numpy, small nodes, and entries the generic path would
raise on.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grtree.entries import GREntry, Predicate, bound_entries
from repro.grtree.specialize import (
    MIN_BATCH,
    SpecializedOps,
    numpy_available,
)
from repro.temporal.variables import NOW, UC

from tests.grtree.test_properties import leaf_entries, internal_entries

NOW_BASE = 100

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="vectorized path requires numpy"
)


class FakeNode:
    """The slice of GRNode the specialization layer consumes."""

    _next_page = iter(range(10_000, 1_000_000))

    def __init__(self, entries):
        self.entries = entries
        self.page_id = next(self._next_page)
        self.cols = None


@st.composite
def batches(draw, strategy, min_size=MIN_BATCH, max_size=MIN_BATCH + 8):
    return draw(st.lists(strategy, min_size=min_size, max_size=max_size))


@st.composite
def query_regions(draw):
    """Canonical query regions, drawn through the entry decoder."""
    entry = draw(leaf_entries())
    at = draw(st.integers(min_value=NOW_BASE, max_value=NOW_BASE + 20))
    return entry.region(at)


# ----------------------------------------------------------------------
# Predicate kernels vs the generic strategy functions
# ----------------------------------------------------------------------


@needs_numpy
class TestScanKernels:
    @given(
        batches(leaf_entries()),
        query_regions(),
        st.sampled_from(list(Predicate)),
        st.integers(min_value=NOW_BASE, max_value=NOW_BASE + 20),
    )
    @settings(max_examples=300, deadline=None)
    def test_leaf_matches_equal_generic_leaf_test(
        self, entries, query, predicate, now
    ):
        spec = SpecializedOps()
        matcher = spec.compile_scan(predicate, query, now)
        node = FakeNode(entries)
        hits = matcher.leaf_matches(node)
        assert hits is not None, "batch-size node must not decline"
        expected = [
            i
            for i, e in enumerate(entries)
            if predicate.leaf_test(e.region(now), query)
        ]
        assert hits == expected

    @given(
        batches(internal_entries()),
        query_regions(),
        st.sampled_from(list(Predicate)),
        st.integers(min_value=NOW_BASE, max_value=NOW_BASE + 20),
    )
    @settings(max_examples=300, deadline=None)
    def test_internal_mask_equals_generic_internal_test(
        self, entries, query, predicate, now
    ):
        spec = SpecializedOps()
        matcher = spec.compile_scan(predicate, query, now)
        node = FakeNode(entries)
        mask = matcher.internal_mask(node)
        assert mask is not None
        expected = [
            predicate.internal_test(e.region(now), query) for e in entries
        ]
        assert mask.tolist() == expected

    def test_mask_cache_hits_on_unchanged_columns(self):
        entries = [
            GREntry(50 + i, UC, 40, NOW) for i in range(MIN_BATCH)
        ]
        node = FakeNode(entries)
        spec = SpecializedOps()
        query = entries[0].region(NOW_BASE)
        matcher = spec.compile_scan(Predicate.OVERLAPS, query, NOW_BASE)
        first = matcher.leaf_matches(node)
        assert spec.stats.mask_cache_hits == 0
        second = matcher.leaf_matches(node)
        assert second == first
        assert spec.stats.mask_cache_hits == 1
        # A store write drops node.cols; the stale mask must not be
        # served for the rebuilt columns.
        node.cols = None
        node.entries = entries[:-1] + [GREntry(99, UC, 40, NOW)]
        third = matcher.leaf_matches(node)
        assert spec.stats.mask_cache_hits == 1
        assert third is not None


# ----------------------------------------------------------------------
# R* penalties vs the generic loops
# ----------------------------------------------------------------------


def ref_least_area(entries, region, t):
    best, best_key = 0, None
    for i, entry in enumerate(entries):
        r = entry.region(t)
        key = (r.union_bounds(region).area() - r.area(), r.area())
        if best_key is None or key < best_key:
            best, best_key = i, key
    return best


def ref_least_overlap(entries, region, t):
    regions = [e.region(t) for e in entries]
    best, best_key = 0, None
    for i, r in enumerate(regions):
        enlarged = r.union_bounds(region)
        before = after = 0
        for j, other in enumerate(regions):
            if j == i:
                continue
            inter = r.intersection(other)
            if inter is not None:
                before += inter.area()
            grown = enlarged.intersection(other)
            if grown is not None:
                after += grown.area()
        key = (after - before, enlarged.area() - r.area(), r.area())
        if best_key is None or key < best_key:
            best, best_key = i, key
    return best


@needs_numpy
class TestPenalties:
    @given(
        batches(internal_entries()),
        query_regions(),
        st.integers(min_value=NOW_BASE, max_value=NOW_BASE + 20),
    )
    @settings(max_examples=300, deadline=None)
    def test_least_area_enlargement_matches_generic(
        self, entries, region, t
    ):
        spec = SpecializedOps()
        got = spec.least_area_enlargement(FakeNode(entries), region, t)
        assert got is not None
        assert got == ref_least_area(entries, region, t)

    @given(
        batches(internal_entries()),
        query_regions(),
        st.integers(min_value=NOW_BASE, max_value=NOW_BASE + 20),
    )
    @settings(max_examples=300, deadline=None)
    def test_least_overlap_enlargement_matches_generic(
        self, entries, region, t
    ):
        spec = SpecializedOps()
        got = spec.least_overlap_enlargement(FakeNode(entries), region, t)
        assert got is not None
        assert got == ref_least_overlap(entries, region, t)


# ----------------------------------------------------------------------
# Vectorized bound vs bound_entries
# ----------------------------------------------------------------------


@needs_numpy
class TestBound:
    @given(
        batches(st.one_of(leaf_entries(), internal_entries())),
        st.integers(min_value=NOW_BASE, max_value=NOW_BASE + 20),
    )
    @settings(max_examples=400, deadline=None)
    def test_bound_matches_bound_entries_exactly(self, entries, now):
        spec = SpecializedOps()
        got = spec.bound(entries, now)
        assert got is not None
        expected = bound_entries(entries, now)
        assert (
            got.tt_begin,
            got.tt_end,
            got.vt_begin,
            got.vt_end,
            got.rectangle,
            got.hidden,
        ) == (
            expected.tt_begin,
            expected.tt_end,
            expected.vt_begin,
            expected.vt_end,
            expected.rectangle,
            expected.hidden,
        )

    def test_bound_declines_when_generic_would_raise(self):
        # A ground TTend beyond the current time is the documented
        # bound_entries error; the vectorized path must route it back.
        entries = [
            GREntry(50, NOW_BASE + 5, 40, 60) for _ in range(MIN_BATCH)
        ]
        spec = SpecializedOps()
        assert spec.bound(entries, NOW_BASE) is None
        with pytest.raises(ValueError):
            bound_entries(entries, NOW_BASE)


# ----------------------------------------------------------------------
# The decline contract
# ----------------------------------------------------------------------


class TestDecline:
    def _entries(self, n=MIN_BATCH):
        return [GREntry(50 + i, UC, 40, NOW) for i in range(n)]

    def test_scalar_bundle_declines_everything(self):
        spec = SpecializedOps(use_numpy=False)
        assert not spec.vectorized
        entries = self._entries()
        node = FakeNode(entries)
        query = entries[0].region(NOW_BASE)
        matcher = spec.compile_scan(Predicate.OVERLAPS, query, NOW_BASE)
        assert matcher.leaf_matches(node) is None
        assert matcher.internal_mask(node) is None
        assert spec.least_area_enlargement(node, query, NOW_BASE) is None
        assert spec.least_overlap_enlargement(node, query, NOW_BASE) is None
        assert spec.bound(entries, NOW_BASE) is None

    @needs_numpy
    def test_small_nodes_decline(self):
        spec = SpecializedOps()
        entries = self._entries(MIN_BATCH - 1)
        node = FakeNode(entries)
        query = entries[0].region(NOW_BASE)
        matcher = spec.compile_scan(Predicate.OVERLAPS, query, NOW_BASE)
        assert matcher.leaf_matches(node) is None
        assert spec.least_area_enlargement(node, query, NOW_BASE) is None
        assert spec.bound(entries, NOW_BASE) is None

    @needs_numpy
    def test_empty_region_entry_declines_scan(self):
        # This entry decodes to an empty region (vt_begin above the
        # resolved top): the generic loop raises, so the batch declines.
        entries = self._entries()
        entries[3] = GREntry(50, 60, 200, NOW)
        node = FakeNode(entries)
        spec = SpecializedOps()
        query = entries[0].region(NOW_BASE)
        matcher = spec.compile_scan(Predicate.OVERLAPS, query, NOW_BASE)
        assert matcher.leaf_matches(node) is None
        assert spec.stats.nodes_fallback == 1
        with pytest.raises(ValueError):
            entries[3].region(NOW_BASE)
