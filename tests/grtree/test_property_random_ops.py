"""Randomized insert/delete/search runs checked against a naive oracle.

The oracle is a plain dict of live ``rowid -> TimeExtent``.  After every
batch of operations the tree must agree with it on several search
queries (computed geometrically, entry by entry, with no tree code
involved) and pass the full structural verification from
``repro.grtree.check`` -- the same verifier the crash harness trusts,
here exercised on trees that never crashed.

Plain seeded ``random`` rather than hypothesis: these runs are long
(hundreds of mutations), and a failing seed must replay exactly.
"""

import random

import pytest

from repro.grtree import verify_tree
from repro.grtree.entries import GREntry, Predicate
from repro.grtree.node import GRNodeStore
from repro.grtree.tree import GRTree
from repro.storage.buffer import BufferPool
from repro.storage.pages import InMemoryPageStore
from repro.temporal.chronon import Clock
from repro.temporal.extent import TimeExtent
from repro.temporal.variables import NOW, UC

NOW_BASE = 100


def make_tree(now=NOW_BASE, capacity=16):
    clock = Clock(now=now)
    pool = BufferPool(InMemoryPageStore(2048), capacity=capacity)
    return GRTree.create(GRNodeStore(pool, node_cache_size=16), clock), clock


def random_extent(rng, now):
    """An insertable bitemporal extent around the current time."""
    tt_begin = rng.randint(now - 40, now)
    tt_end = UC if rng.random() < 0.5 else rng.randint(tt_begin, now)
    if rng.random() < 0.5:
        vt_begin = rng.randint(0, tt_begin)
        vt_end = NOW
    else:
        vt_begin = rng.randint(0, 160)
        vt_end = rng.randint(vt_begin, vt_begin + 60)
    return TimeExtent(tt_begin, tt_end, vt_begin, vt_end)


def oracle_search(oracle, query, now):
    """Expected rowids, computed geometrically with no tree involved."""
    region = query.region(now)
    expected = set()
    for rowid, extent in oracle.items():
        entry = GREntry.from_extent(extent, rowid=rowid)
        if region.overlaps(entry.region(now)):
            expected.add(rowid)
    return expected


def check_against_oracle(tree, oracle, rng, now):
    queries = [random_extent(rng, now) for _ in range(4)]
    # A wide query that must return everything alive.
    queries.append(TimeExtent(now - 40, UC, 0, NOW))
    for query in queries:
        got = {rowid for rowid, _ in tree.search_all(query, Predicate.OVERLAPS)}
        assert got == oracle_search(oracle, query, now), (
            f"tree disagrees with oracle on query {query}"
        )
    assert tree.size == len(oracle)
    verify_tree(tree)


@pytest.mark.parametrize("seed", [11, 23, 47])
def test_random_inserts_and_deletes_agree_with_oracle(seed):
    rng = random.Random(seed)
    tree, clock = make_tree()
    oracle = {}
    next_rowid = 0
    for batch in range(6):
        for _ in range(50):
            # Deletions build up to ~40% of operations once the tree has
            # content, so condense/underflow paths run too.
            if oracle and rng.random() < 0.4:
                rowid = rng.choice(sorted(oracle))
                assert tree.delete(oracle.pop(rowid), rowid)
            else:
                extent = random_extent(rng, clock.now)
                tree.insert(extent, rowid=next_rowid)
                oracle[next_rowid] = extent
                next_rowid += 1
        check_against_oracle(tree, oracle, rng, clock.now)


def test_delete_everything_then_rebuild():
    rng = random.Random(7)
    tree, clock = make_tree()
    oracle = {}
    for rowid in range(120):
        extent = random_extent(rng, clock.now)
        tree.insert(extent, rowid=rowid)
        oracle[rowid] = extent
    check_against_oracle(tree, oracle, rng, clock.now)
    for rowid in sorted(oracle, key=lambda r: (r * 37) % 120):
        assert tree.delete(oracle.pop(rowid), rowid)
    assert tree.size == 0
    verify_tree(tree)
    # The emptied tree accepts a fresh generation.
    for rowid in range(200, 260):
        extent = random_extent(rng, clock.now)
        tree.insert(extent, rowid=rowid)
        oracle[rowid] = extent
    check_against_oracle(tree, oracle, rng, clock.now)


def test_advancing_clock_between_batches():
    """NOW/UC-relative entries grow as time passes; the oracle and the
    verifier must track the tree across clock advances."""
    rng = random.Random(31)
    tree, clock = make_tree()
    oracle = {}
    next_rowid = 0
    for batch in range(4):
        for _ in range(40):
            extent = random_extent(rng, clock.now)
            tree.insert(extent, rowid=next_rowid)
            oracle[next_rowid] = extent
            next_rowid += 1
        check_against_oracle(tree, oracle, rng, clock.now)
        clock.advance(5)
    check_against_oracle(tree, oracle, rng, clock.now)
