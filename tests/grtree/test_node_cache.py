"""The deserialized-node cache: coherence, invalidation, and cursors.

The cache must be invisible except for speed: every scenario here runs
the same workload with the cache on and off (or against an oracle) and
demands identical results, including the hard cases -- condense under an
open cursor, crash-style buffer invalidation, page-id recycling after a
condense, and LRU eviction pressure.
"""

import random

import pytest

from repro.grtree.node import GRNodeStore
from repro.grtree.tree import GRTree
from repro.storage.buffer import BufferPool
from repro.storage.pages import InMemoryPageStore
from repro.temporal.chronon import Clock
from repro.temporal.extent import TimeExtent
from repro.temporal.variables import NOW, UC


def make_tree(node_cache_size=128, page_size=512, now=100, capacity=64):
    clock = Clock(now=now)
    pool = BufferPool(InMemoryPageStore(page_size=page_size), capacity=capacity)
    store = GRNodeStore(pool, node_cache_size=node_cache_size)
    return GRTree.create(store, clock), clock, pool, store


def extent(vt_begin, vt_end=NOW):
    return TimeExtent(100, UC, vt_begin, vt_end)


QUERY = TimeExtent(100, UC, 100, NOW)


class TestCacheCounters:
    def test_warm_reads_hit_the_cache(self):
        tree, clock, pool, store = make_tree()
        for i in range(200):
            tree.insert(extent(90 - (i % 7)), rowid=i)
        store.cache_stats.hits = store.cache_stats.misses = 0
        first = tree.search_all(QUERY)
        second = tree.search_all(QUERY)
        assert first == second
        assert len(first) == 200
        # The tree was just built writing through the cache, so the
        # whole traversal is warm: no misses, plenty of hits.
        assert store.cache_stats.misses == 0
        assert store.cache_stats.hits > 0

    def test_disabled_cache_never_counts(self):
        tree, clock, pool, store = make_tree(node_cache_size=0)
        for i in range(50):
            tree.insert(extent(90), rowid=i)
        tree.search_all(QUERY)
        assert store.cached_nodes == 0
        assert store.cache_stats.hits == 0
        assert store.cache_stats.misses == 0

    def test_negative_cache_size_rejected(self):
        pool = BufferPool(InMemoryPageStore(page_size=512))
        with pytest.raises(ValueError):
            GRNodeStore(pool, node_cache_size=-1)

    def test_eviction_respects_bound(self):
        tree, clock, pool, store = make_tree(node_cache_size=2)
        for i in range(300):
            tree.insert(extent(90 - (i % 11)), rowid=i)
        assert store.cached_nodes <= 2
        assert store.cache_stats.evictions > 0
        # Correctness under heavy eviction: results match the cache-off
        # twin built from the same inserts.
        twin, _, _, _ = make_tree(node_cache_size=0)
        for i in range(300):
            twin.insert(extent(90 - (i % 11)), rowid=i)
        assert tree.search_all(QUERY) == twin.search_all(QUERY)
        tree.check()

    def test_io_stats_identical_with_and_without_cache(self):
        """The node cache removes deserialization, not page accesses:
        logical/physical read counts must be byte-identical."""
        runs = {}
        for size in (0, 128):
            tree, clock, pool, store = make_tree(node_cache_size=size, capacity=8)
            rng = random.Random(7)
            for i in range(250):
                tree.insert(extent(60 + rng.randint(0, 40)), rowid=i)
            pool.stats.reset()
            results = tree.search_all(QUERY)
            runs[size] = (results, pool.stats.to_dict())
        assert runs[0] == runs[128]


class TestWriteThrough:
    def test_write_updates_cached_node(self):
        tree, clock, pool, store = make_tree()
        tree.insert(extent(90), rowid=1)
        before = tree.search_all(QUERY)
        tree.insert(extent(90), rowid=2)
        after = tree.search_all(QUERY)
        assert [r for r, _ in before] == [1]
        assert sorted(r for r, _ in after) == [1, 2]

    def test_delete_and_condense_stay_coherent(self):
        tree, clock, pool, store = make_tree(page_size=512)
        rng = random.Random(3)
        live = {}
        for i in range(400):
            e = extent(60 + rng.randint(0, 40))
            tree.insert(e, rowid=i)
            live[i] = e
        for rowid in list(live)[::2]:
            assert tree.delete(live[rowid], rowid)
            del live[rowid]
        got = sorted(r for r, _ in tree.search_all(QUERY))
        assert got == sorted(live)
        tree.check()


class TestCursorOverCache:
    def test_condense_under_cursor_retrieve_and_delete(self):
        """Section 5.5: a retrieve-and-delete loop over a condensing
        tree must neither repeat nor miss entries -- with the node cache
        interposed, the restarted cursor must see post-condense nodes,
        not cached pre-condense ones."""
        tree, clock, pool, store = make_tree(page_size=512)
        total = 300
        for i in range(total):
            tree.insert(extent(60 + (i % 40)), rowid=i)
        cursor = tree.search(QUERY)
        deleted = []
        while True:
            entry = cursor.next()
            if entry is None:
                break
            assert tree.delete(entry.extent(), entry.rowid, entry.fragid)
            deleted.append(entry.rowid)
        assert sorted(deleted) == list(range(total))
        assert len(deleted) == len(set(deleted))  # no repeats
        assert tree.search_all(QUERY) == []
        assert tree.size == 0
        tree.check()

    def test_crash_invalidate_discards_cached_nodes(self):
        """After flush + invalidate (crash simulation) the store must
        serve the *flushed* state -- unflushed inserts must vanish from
        node-cache reads exactly as they vanish from the page level."""
        tree, clock, pool, store = make_tree()
        for i in range(100):
            tree.insert(extent(90), rowid=i)
        pool.flush()
        for i in range(100, 140):
            tree.insert(extent(90), rowid=i)  # never flushed
        pool.invalidate()  # crash: frames AND cached nodes dropped
        assert store.cached_nodes == 0
        assert store.cache_stats.invalidations > 0
        reopened = GRTree.open(store, clock, tree.meta_page)
        got = sorted(r for r, _ in reopened.search_all(QUERY))
        assert got == list(range(100))
        reopened.check()

    def test_recycled_page_after_condense_not_served_stale(self):
        """Condense frees pages; a later split may recycle their ids.
        The cache must never serve the freed node under the new id."""
        tree, clock, pool, store = make_tree(page_size=512)
        rng = random.Random(11)
        live = {}
        next_rowid = 0
        for _ in range(6):
            for _ in range(150):
                e = extent(60 + rng.randint(0, 40))
                tree.insert(e, rowid=next_rowid)
                live[next_rowid] = e
                next_rowid += 1
            victims = rng.sample(sorted(live), k=120)
            for rowid in victims:
                assert tree.delete(live.pop(rowid), rowid)
            got = sorted(r for r, _ in tree.search_all(QUERY))
            assert got == sorted(live)
            tree.check()
