"""Tests for developer-implemented node-level locking (Section 5.3)."""

import pytest

from repro.grtree.locking import (
    LockCouplingScan,
    NodeLockingProtocol,
    locked_insert,
)
from repro.grtree.node import GRNodeStore
from repro.grtree.tree import GRTree
from repro.storage.buffer import BufferPool
from repro.storage.locks import LockConflictError, LockManager, LockMode
from repro.storage.pages import InMemoryPageStore
from repro.temporal.chronon import Clock
from repro.temporal.extent import TimeExtent
from repro.temporal.variables import NOW, UC


@pytest.fixture()
def setup():
    clock = Clock(now=100)
    store = GRNodeStore(BufferPool(InMemoryPageStore(page_size=512)))
    tree = GRTree.create(store, clock)
    # Two well-separated *static* populations so queries touch distinct
    # subtrees (growing stairs would all converge on the diagonal).
    rowid = 0
    for i in range(150):
        tree.insert(TimeExtent(60 + (i % 20), 100, 80 + (i % 20), 120), rowid)
        rowid += 1
    clock.advance(300)
    for i in range(150):
        tree.insert(TimeExtent(360 + (i % 20), 400, 380 + (i % 20), 420), rowid)
        rowid += 1
    locks = LockManager()
    protocol = NodeLockingProtocol(locks, "gi")
    return clock, tree, locks, protocol


def query_around(t, span=20):
    return TimeExtent(t, t + span, t - span, t + span)


class TestLockCoupling:
    def test_scan_results_match_plain_search(self, setup):
        clock, tree, locks, protocol = setup
        query = TimeExtent(clock.now, UC, clock.now - 50, NOW)
        scan = LockCouplingScan(tree, protocol, txn_id=1, query=query)
        locked = sorted(e.rowid for e in scan.fetch_all())
        plain = sorted(r for r, _ in tree.search_all(query))
        assert locked == plain

    def test_all_locks_released_after_scan(self, setup):
        clock, tree, locks, protocol = setup
        query = TimeExtent(clock.now, UC, clock.now - 50, NOW)
        LockCouplingScan(tree, protocol, txn_id=1, query=query).fetch_all()
        assert locks.locked_resources == 0

    def test_coupling_holds_bounded_locks(self, setup):
        """Mid-scan, only the current path (not the whole tree) is
        locked: the count never approaches the node count."""
        clock, tree, locks, protocol = setup
        query = TimeExtent(clock.now, UC, clock.now - 400, NOW)
        scan = LockCouplingScan(tree, protocol, txn_id=1, query=query)
        max_held = 0
        while scan.next() is not None:
            max_held = max(max_held, protocol.held_count(1))
        scan.close()
        assert 0 < max_held <= tree.height + 3
        assert max_held < tree.node_count()

    def test_readers_in_disjoint_subtrees_do_not_conflict(self, setup):
        clock, tree, locks, protocol = setup
        early = LockCouplingScan(tree, protocol, 1, query_around(80))
        late = LockCouplingScan(tree, protocol, 2, query_around(390))
        assert early.next() is not None
        assert late.next() is not None  # no LockConflictError
        early.close()
        late.close()

    def test_writer_conflicts_only_on_shared_path(self, setup):
        clock, tree, locks, protocol = setup
        # Reader parks inside the "early" subtree.
        reader = LockCouplingScan(tree, protocol, 1, query_around(80))
        assert reader.next() is not None
        # A writer inserting into the "late" region only shares the root,
        # which the reader has already released (coupling!).
        extent = TimeExtent(clock.now, UC, clock.now - 1, NOW)
        locked_insert(tree, protocol, 2, extent, rowid=99_999)
        reader.close()
        assert locks.locked_resources == 0

    def test_writer_blocks_reader_on_same_leaf(self, setup):
        clock, tree, locks, protocol = setup
        # Manually hold an X lock on the root to model a writer that has
        # not finished yet, then start a reader.
        protocol.acquire(7, tree.root_id, LockMode.EXCLUSIVE)
        with pytest.raises(LockConflictError):
            LockCouplingScan(tree, protocol, 8, query_around(80))
        protocol.finish(7)

    def test_locked_insert_releases_everything(self, setup):
        clock, tree, locks, protocol = setup
        extent = TimeExtent(clock.now, UC, clock.now - 5, NOW)
        locked_insert(tree, protocol, 3, extent, rowid=77_777)
        assert locks.locked_resources == 0
        assert tree.size == 301
        tree.check()
