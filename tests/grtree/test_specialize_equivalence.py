"""Specialized-vs-generic equivalence: the whole tree, end to end.

The specialization layer's contract is *bit-exactness*: a tree grown
with the vectorized penalties and bounds must be byte-identical on disk
to one grown by the paper's literal call sequence, and a specialized
scan must return exactly the generic result set for every predicate.
These tests grow same-seed trees through the bitemporal workload
generator (inserts, logical deletes, updates, clock advance) in three
configurations -- vectorized bundle, scalar bundle (every entry point
declines), and no bundle -- and compare pages and answers.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grtree.entries import Predicate
from repro.grtree.node import GRNodeStore
from repro.grtree.specialize import SpecializedOps, numpy_available
from repro.grtree.tree import GRTree
from repro.storage.buffer import BufferPool
from repro.storage.pages import InMemoryPageStore
from repro.temporal.chronon import Clock
from repro.workloads import BitemporalWorkload, WorkloadConfig

STEPS = 220
PAGE_SIZE = 512


def grow(seed: int, spec) -> tuple:
    """Grow one tree through the randomized bitemporal workload."""
    clock = Clock(now=100)
    pool = BufferPool(InMemoryPageStore(page_size=PAGE_SIZE), capacity=256)
    store = GRNodeStore(pool, node_cache_size=256)
    tree = GRTree.create(store, clock, time_horizon=20, spec=spec)
    workload = BitemporalWorkload(
        clock,
        WorkloadConfig(
            seed=seed,
            now_relative_fraction=0.5,
            delete_fraction=0.15,
            update_fraction=0.15,
        ),
    )
    workload.run(tree, STEPS)
    queries = [workload.window_query(30, 30) for _ in range(6)]
    return tree, pool, queries


def pages(tree, pool) -> dict:
    return {
        node.page_id: pool.read(node.page_id) for node in tree.iter_nodes()
    }


def answers(tree, queries) -> list:
    return [
        sorted(tree.search_all(q, predicate))
        for predicate in Predicate
        for q in queries
    ]


def assert_equivalent(seed: int, spec) -> None:
    spec_tree, spec_pool, queries = grow(seed, spec)
    gen_tree, gen_pool, _ = grow(seed, None)
    assert pages(spec_tree, spec_pool) == pages(gen_tree, gen_pool), (
        f"seed {seed}: specialized tree bytes diverged from generic"
    )
    spec_tree.check()
    assert answers(spec_tree, queries) == answers(gen_tree, queries), (
        f"seed {seed}: specialized search answers diverged"
    )


class TestEquivalence:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=8, deadline=None)
    def test_vectorized_tree_is_byte_identical(self, seed):
        """With numpy the bundle vectorizes; without, it declines --
        either way the tree and every answer must match generic."""
        assert_equivalent(seed, SpecializedOps())

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=3, deadline=None)
    def test_scalar_bundle_is_byte_identical(self, seed):
        """``use_numpy=False`` forces the decline path even when numpy
        is importable -- the generic fallback must carry every call."""
        assert_equivalent(seed, SpecializedOps(use_numpy=False))

    def test_vectorized_bundle_actually_vectorized(self):
        """Guard against the suite passing vacuously: when numpy is
        present the bundle must have batched real work."""
        spec = SpecializedOps()
        spec_tree, _, queries = grow(7, spec)
        for q in queries:
            spec_tree.search_all(q)
        stats = spec.stats.to_dict()
        if numpy_available():
            assert stats["choices_vectorized"] > 0
            assert stats["bounds_vectorized"] > 0
            assert stats["nodes_batched"] > 0
        else:
            assert stats["nodes_batched"] == 0
            assert stats["choices_vectorized"] == 0

    def test_detach_mid_life_keeps_answers(self):
        """A tree opened generic over pages written specialized (and the
        reverse) reads identically -- nothing spec-specific is on disk."""
        spec_tree, _, queries = grow(11, SpecializedOps())
        expected = answers(spec_tree, queries)
        spec_tree.spec = None
        assert answers(spec_tree, queries) == expected
        spec_tree.spec = SpecializedOps(use_numpy=False)
        assert answers(spec_tree, queries) == expected
