"""Property-based tests for the GR-tree (hypothesis)."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.grtree.entries import GREntry, Predicate, bound_entries
from repro.grtree.node import GRNodeStore
from repro.grtree.tree import GRTree
from repro.storage.buffer import BufferPool
from repro.storage.pages import InMemoryPageStore
from repro.temporal.chronon import Clock
from repro.temporal.extent import TimeExtent
from repro.temporal.variables import NOW, UC

NOW_BASE = 100


@st.composite
def leaf_entries(draw):
    """Leaf entries insertable around time NOW_BASE."""
    tt_begin = draw(st.integers(min_value=50, max_value=NOW_BASE))
    growing = draw(st.booleans())
    # A ground transaction-time end can never exceed the current time.
    tt_end = UC if growing else draw(
        st.integers(min_value=tt_begin, max_value=NOW_BASE)
    )
    now_relative = draw(st.booleans())
    if now_relative:
        vt_begin = draw(st.integers(min_value=0, max_value=tt_begin))
        vt_end = NOW
    else:
        vt_begin = draw(st.integers(min_value=0, max_value=160))
        vt_end = draw(st.integers(min_value=vt_begin, max_value=vt_begin + 60))
    return GREntry(tt_begin, tt_end, vt_begin, vt_end, rowid=draw(st.integers(0, 10)))


@st.composite
def internal_entries(draw):
    """Non-leaf entries with arbitrary flag combinations."""
    entry = draw(leaf_entries())
    entry.rowid = None
    entry.child = 1
    if entry.vt_end is NOW:
        entry.rectangle = draw(st.booleans())
    else:
        entry.rectangle = True
        # Hidden implies a growing stair in the subtree, so the entry
        # itself must still be growing and hold the stair's floor.
        if entry.tt_end is UC and entry.vt_begin <= entry.tt_begin:
            entry.hidden = draw(st.booleans())
    return entry


class TestBoundProperties:
    @given(
        st.lists(st.one_of(leaf_entries(), internal_entries()), min_size=1, max_size=8),
        st.integers(min_value=NOW_BASE, max_value=NOW_BASE + 20),
        st.lists(st.integers(min_value=0, max_value=400), min_size=1, max_size=6),
    )
    @settings(max_examples=300, deadline=None)
    def test_bound_contains_members_at_all_future_times(
        self, entries, now, offsets
    ):
        bound = bound_entries(entries, now)
        for offset in offsets:
            t = now + offset
            bound_region = bound.region(t)
            for entry in entries:
                assert bound_region.contains(entry.region(t)), (
                    f"{bound} fails to contain {entry} at {t}"
                )

    @given(
        st.lists(leaf_entries(), min_size=1, max_size=8),
        st.integers(min_value=NOW_BASE, max_value=NOW_BASE + 20),
    )
    @settings(max_examples=200, deadline=None)
    def test_bound_is_growing_iff_some_member_grows(self, entries, now):
        bound = bound_entries(entries, now)
        assert (bound.tt_end is UC) == any(e.tt_end is UC for e in entries)

    @given(
        st.lists(leaf_entries(), min_size=1, max_size=8),
        st.integers(min_value=NOW_BASE, max_value=NOW_BASE + 20),
    )
    @settings(max_examples=200, deadline=None)
    def test_stair_bound_only_when_all_under_diagonal(self, entries, now):
        bound = bound_entries(entries, now)
        if not bound.rectangle and bound.vt_end is NOW:
            assert all(e.fits_under_diagonal_forever() for e in entries)


class TestTreeFuzz:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=12, deadline=None, suppress_health_check=list(HealthCheck))
    def test_randomised_session_matches_oracle(self, seed):
        """A full random session: inserts, deletions, clock advances,
        then all four predicates against a linear-scan oracle."""
        rng = random.Random(seed)
        clock = Clock(now=100)
        store = GRNodeStore(BufferPool(InMemoryPageStore(page_size=512)))
        tree = GRTree.create(store, clock)
        live = {}
        next_rowid = 0
        for _ in range(rng.randint(30, 150)):
            action = rng.random()
            if action < 0.6 or not live:
                if rng.random() < 0.5:
                    extent = TimeExtent(
                        clock.now, UC, clock.now - rng.randint(0, 30), NOW
                    )
                else:
                    vtb = clock.now - rng.randint(-10, 30)
                    extent = TimeExtent(clock.now, UC, vtb, vtb + rng.randint(0, 20))
                tree.insert(extent, next_rowid)
                live[next_rowid] = extent
                next_rowid += 1
            elif action < 0.85:
                rowid = rng.choice(sorted(live))
                assert tree.delete(live.pop(rowid), rowid)
            else:
                clock.advance(rng.randint(1, 5))
        tree.check()
        now = clock.now
        for predicate in Predicate:
            vtb = now - rng.randint(0, 60)
            query = TimeExtent(
                now - rng.randint(0, 60), now + rng.randint(0, 30),
                vtb, vtb + rng.randint(0, 50),
            )
            q_region = query.region(now)
            expected = sorted(
                rowid
                for rowid, ext in live.items()
                if predicate.leaf_test(ext.region(now), q_region)
            )
            got = sorted(r for r, _ in tree.search_all(query, predicate))
            assert got == expected, (seed, predicate)
