"""The serving layer: sessions, admission control, lock waits, teardown."""

import select
import socket
import threading
import time

import pytest

from repro.datablade import register_grtree_blade
from repro.net import NetServer, ReproClient, RemoteStatementError, protocol
from repro.server import DatabaseServer
from repro.temporal.chronon import Clock, format_chronon


def day(c):
    return format_chronon(c)


def wait_until(predicate, timeout=5.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.fixture()
def db():
    server = DatabaseServer(clock=Clock(now=100))
    server.create_sbspace("spc")
    register_grtree_blade(server)
    return server


@pytest.fixture()
def served(db):
    net = NetServer(db, workers=4, queue_depth=16, lock_timeout=2.0).start()
    yield db, net
    net.shutdown()


def make_client(net, **kwargs):
    kwargs.setdefault("read_timeout", 10.0)
    return ReproClient(net.host, net.port, **kwargs).connect()


GRT_TABLE = (
    "CREATE TABLE emp (name LVARCHAR, te GRT_TimeExtent_t)"
)
GRT_INDEX = "CREATE INDEX e_te ON emp(te) USING grtree_am IN spc"


def insert_emp(client, name, begin=95):
    client.execute(
        f"INSERT INTO emp VALUES ('{name}', "
        f"'{day(100)}, UC, {day(begin)}, NOW')"
    )


class TestBasicServing:
    def test_each_connection_gets_its_own_session(self, served):
        db, net = served
        a = make_client(net)
        b = make_client(net)
        try:
            a.execute("BEGIN WORK")
            # b is not inside a's transaction: BEGIN succeeds over there.
            b.execute("BEGIN WORK")
            a.execute("ROLLBACK WORK")
            b.execute("ROLLBACK WORK")
            assert a.connection_id != b.connection_id
        finally:
            a.close()
            b.close()

    def test_result_rows_cross_the_wire(self, served):
        db, net = served
        with make_client(net) as client:
            client.execute("CREATE TABLE t (a INTEGER, b LVARCHAR)")
            client.execute("INSERT INTO t VALUES (1, 'x')")
            rows = client.execute("SELECT * FROM t")
            assert rows == [{"a": 1, "b": "x"}]

    def test_sql_error_is_typed_and_not_retried(self, served):
        db, net = served
        with make_client(net) as client:
            with pytest.raises(RemoteStatementError) as info:
                client.execute("SELECT * FROM missing_table")
            assert info.value.code == protocol.SQL_ERROR
            assert not info.value.retryable

    def test_show_stats_reports_serving_section(self, served):
        db, net = served
        with make_client(net) as client:
            client.execute("CREATE TABLE t (a INTEGER)")
            report = client.execute("SHOW STATS")
            assert "== serving ==" in report
            assert "connections_open" in report

    def test_spans_tagged_with_connection_id(self, served):
        db, net = served
        with make_client(net) as client:
            client.execute("CREATE TABLE t (a INTEGER)")
            client.execute("INSERT INTO t VALUES (1)")
        spans = db.obs.spans.to_dicts()
        tagged = [
            span for span in spans if span.get("attrs", {}).get("conn")
        ]
        assert tagged, f"no conn-tagged spans in {spans!r}"


class TestAdmissionControl:
    def test_overload_returns_server_busy_not_hang(self, db):
        net = NetServer(db, workers=1, queue_depth=1).start()
        try:
            # Stall the engine so jobs pile up: worker 1 blocks inside
            # execute, the queue holds one more, the rest must bounce.
            db._engine_lock.acquire()
            sockets = []
            try:
                replies = []
                for _ in range(4):
                    sock = socket.create_connection(
                        (net.host, net.port), timeout=5
                    )
                    sock.settimeout(5)
                    sockets.append(sock)
                    protocol.write_frame(sock, protocol.execute("SELECT 1"))
                # Two statements are absorbed (one in flight, one queued);
                # the other two must be rejected immediately -- but which
                # two depends on reader-thread scheduling, so poll.
                busy = 0
                rejected = set()
                deadline = time.monotonic() + 3
                while busy < 2 and time.monotonic() < deadline:
                    pending = [s for s in sockets if s not in rejected]
                    ready, _, _ = select.select(pending, [], [], 0.1)
                    for sock in ready:
                        reply = protocol.read_frame(sock)
                        assert reply["kind"] == "error"
                        assert reply["code"] == protocol.SERVER_BUSY
                        assert reply["retryable"] is True
                        rejected.add(sock)
                        busy += 1
                assert busy == 2, "overloaded statements were not rejected"
            finally:
                db._engine_lock.release()
                for sock in sockets:
                    sock.close()
            assert db.obs.metrics.snapshot()["net.busy_rejections"] == 2
        finally:
            net.shutdown()

    def test_busy_is_transient_under_real_load(self, db):
        net = NetServer(db, workers=2, queue_depth=2).start()
        try:
            with make_client(net, max_retries=30) as client:
                client.execute("CREATE TABLE t (a INTEGER)")

            def hammer(n):
                with make_client(net, max_retries=50) as c:
                    for i in range(20):
                        c.execute(f"INSERT INTO t VALUES ({n * 100 + i})")

            threads = [
                threading.Thread(target=hammer, args=(n,)) for n in range(6)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert not any(t.is_alive() for t in threads)
            with make_client(net) as client:
                rows = client.execute("SELECT * FROM t")
            assert len(rows) == 120  # every retried statement landed once
        finally:
            net.shutdown()


class TestLockHandling:
    def test_conflicting_statement_waits_then_succeeds(self, served):
        db, net = served
        a = make_client(net)
        b = make_client(net)
        try:
            a.execute(GRT_TABLE)
            a.execute(GRT_INDEX)
            a.execute("BEGIN WORK")
            insert_emp(a, "holder")  # X lock on the index LO until commit

            done = threading.Event()
            errors = []

            def contender():
                try:
                    insert_emp(b, "waiter")  # blocks server-side
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)
                finally:
                    done.set()

            thread = threading.Thread(target=contender)
            thread.start()
            time.sleep(0.15)
            assert not done.is_set(), "contender should be lock-blocked"
            a.execute("COMMIT WORK")
            assert done.wait(timeout=5), "contender never unblocked"
            thread.join()
            assert errors == []
            rows = a.execute("SELECT name FROM emp")
            assert {row["name"] for row in rows} == {"holder", "waiter"}
        finally:
            a.close()
            b.close()

    def test_lock_timeout_aborts_and_reports(self, db):
        net = NetServer(db, workers=4, queue_depth=16, lock_timeout=0.2).start()
        try:
            a = make_client(net)
            b = make_client(net)
            try:
                a.execute(GRT_TABLE)
                a.execute(GRT_INDEX)
                a.execute("BEGIN WORK")
                insert_emp(a, "holder")
                b.execute("BEGIN WORK")
                with pytest.raises(RemoteStatementError) as info:
                    insert_emp(b, "victim")
                assert info.value.code == protocol.LOCK_TIMEOUT
                assert info.value.retryable
                assert info.value.aborted_transaction
                assert not b.in_transaction  # driver learned of the abort
                a.execute("COMMIT WORK")
                # b's transaction is gone; a fresh one works fine.
                b.execute("BEGIN WORK")
                insert_emp(b, "second_try")
                b.execute("COMMIT WORK")
            finally:
                a.close()
                b.close()
            assert db.locks.locked_resources == 0
        finally:
            net.shutdown()


class TestDroppedConnections:
    def test_killed_client_releases_its_locks(self, served):
        db, net = served
        a = make_client(net)
        with make_client(net) as setup:
            setup.execute(GRT_TABLE)
            setup.execute(GRT_INDEX)
        a.execute("BEGIN WORK")
        insert_emp(a, "doomed")
        assert db.locks.locked_resources > 0
        # Kill the socket without QUIT/ROLLBACK: the reader must roll the
        # transaction back and release every lock.
        a._sock.close()
        assert wait_until(lambda: db.locks.locked_resources == 0)
        assert wait_until(
            lambda: db.obs.metrics.snapshot()["net.aborted_on_disconnect"] >= 1
        )
        # The index rolled back (sbspace pages restored) and the server
        # keeps serving: a fresh client can write the same index without
        # tripping over leaked locks.
        with make_client(net) as checker:
            checker.execute("BEGIN WORK")
            insert_emp(checker, "survivor")
            checker.execute("COMMIT WORK")
            assert "consistent" in checker.execute("CHECK INDEX e_te")
        assert db.locks.locked_resources == 0

    def test_killed_client_unblocks_waiters_within_lock_timeout(self, db):
        lock_timeout = 3.0
        net = NetServer(
            db, workers=4, queue_depth=16, lock_timeout=lock_timeout
        ).start()
        try:
            a = make_client(net)
            b = make_client(net)
            try:
                a.execute(GRT_TABLE)
                a.execute(GRT_INDEX)
                a.execute("BEGIN WORK")
                insert_emp(a, "holder")

                blocked_at = time.monotonic()
                unblocked = []

                def contender():
                    insert_emp(b, "survivor")
                    unblocked.append(time.monotonic() - blocked_at)

                thread = threading.Thread(target=contender)
                thread.start()
                time.sleep(0.1)
                a._sock.close()  # kill the holder mid-transaction
                thread.join(timeout=lock_timeout + 2)
                assert unblocked, "survivor stayed blocked past the timeout"
                assert unblocked[0] <= lock_timeout + 1.0
            finally:
                a.close()
                b.close()
        finally:
            net.shutdown()


class TestGracefulShutdown:
    def test_drain_completes_inflight_and_aborts_idle_transactions(self, db):
        net = NetServer(db, workers=2, queue_depth=8).start()
        idle = make_client(net)
        with make_client(net) as setup:
            setup.execute(GRT_TABLE)
            setup.execute(GRT_INDEX)
        idle.execute("BEGIN WORK")
        insert_emp(idle, "abandoned")
        assert db.locks.locked_resources > 0
        net.shutdown()
        # The idle transaction was aborted and its locks released.
        assert db.locks.locked_resources == 0
        with db._engine_lock:
            pass  # engine is quiescent

    def test_statements_after_drain_get_shutting_down(self, db):
        net = NetServer(db, workers=2, queue_depth=8).start()
        sock = socket.create_connection((net.host, net.port), timeout=5)
        sock.settimeout(5)
        try:
            net._draining.set()
            protocol.write_frame(sock, protocol.execute("SELECT 1"))
            reply = protocol.read_frame(sock)
            assert reply["kind"] == "error"
            assert reply["code"] == protocol.SHUTTING_DOWN
        finally:
            sock.close()
            net.shutdown()

    def test_shutdown_is_idempotent(self, db):
        net = NetServer(db).start()
        net.shutdown()
        net.shutdown()
