"""Wire-level fault injection: dropped, torn, and corrupt frames.

The contract under test is the driver's retry discipline against the
server's connection-drop semantics:

* a reply lost *outside* a transaction is retried transparently
  (``stats["network_retries"]``);
* a reply lost *inside* a transaction surfaces as
  :class:`ConnectionLostInTransaction`, and the server-side abort
  releases every lock the transaction held;
* ``run_transaction`` re-runs the whole body across a mid-flight drop;
* a ``crash`` failpoint firing in the engine severs only that client --
  over the wire a shared server cannot stay wedged, so crash degrades
  to instant restart-and-recover (the frozen-state crash model lives in
  ``tests/faults/harness.py``).

Failpoints are armed through ``db.ensure_faults()`` rather than
``SET FAULT`` over the wire where the armed point would fire on the
``SET FAULT`` reply frame itself (see ``TestSetFaultOverTheWire`` for
the SQL surface, which arms storage points only).
"""

import pytest

from repro.net.client import (
    ConnectionLostInTransaction,
    RemoteStatementError,
)

from tests.net.test_server import (
    GRT_INDEX,
    GRT_TABLE,
    day,
    db,  # noqa: F401  (fixture re-export)
    insert_emp,
    make_client,
    served,  # noqa: F401
    wait_until,
)

QUERY = f"SELECT name FROM emp WHERE Overlaps(te, '{day(100)}, UC, {day(90)}, NOW')"


def prepare(db, net):
    with make_client(net) as client:
        client.execute(GRT_TABLE)
        client.execute(GRT_INDEX)
    db.prefer_virtual_index = True
    return db.ensure_faults()


class TestReplyDrops:
    def test_dropped_reply_outside_transaction_is_retried(self, served):
        db, net = served
        registry = prepare(db, net)
        with make_client(net) as client:
            insert_emp(client, "alice")
            registry.set_fault("net.send", "raise", times=1)
            rows = client.execute(QUERY)
            assert {r["name"] for r in rows} == {"alice"}
            assert client.stats["network_retries"] >= 1
            assert registry.stats()["net.send.triggers"] == 1

    def test_torn_reply_frame_is_retried(self, served):
        db, net = served
        registry = prepare(db, net)
        with make_client(net) as client:
            insert_emp(client, "bob")
            registry.set_fault("net.send", "torn", times=1)
            rows = client.execute(QUERY)
            assert {r["name"] for r in rows} == {"bob"}
            assert client.stats["network_retries"] >= 1

    def test_corrupt_reply_frame_is_retried(self, served):
        db, net = served
        registry = prepare(db, net)
        with make_client(net) as client:
            insert_emp(client, "carol")
            registry.set_fault("net.send", "corrupt", times=1)
            rows = client.execute(QUERY)
            assert {r["name"] for r in rows} == {"carol"}
            assert client.stats["network_retries"] >= 1

    def test_dropped_request_is_safe_to_retry(self, served):
        """``net.recv`` fires *before* execution: the statement never
        ran, so the driver's retry cannot duplicate work."""
        db, net = served
        registry = prepare(db, net)
        with make_client(net) as client:
            registry.set_fault("net.recv", "raise", times=1)
            insert_emp(client, "dave")
            assert client.stats["network_retries"] >= 1
        with make_client(net) as client:
            rows = client.execute(QUERY)
        assert [r["name"] for r in rows] == ["dave"]


class TestMidTransactionDrops:
    def test_drop_inside_transaction_raises_and_releases_locks(self, served):
        db, net = served
        registry = prepare(db, net)
        with make_client(net) as committed:
            insert_emp(committed, "keep")
        client = make_client(net)
        try:
            client.execute("BEGIN WORK")
            insert_emp(client, "ghost0")
            registry.set_fault("net.send", "raise", times=1)
            with pytest.raises(ConnectionLostInTransaction):
                insert_emp(client, "ghost1")
        finally:
            client.close()
        # The server aborted the orphaned transaction: locks released,
        # uncommitted work rolled back out of the index.
        assert wait_until(lambda: db.locks.locked_resources == 0)
        assert wait_until(
            lambda: db.obs.metrics.snapshot()["net.aborted_on_disconnect"] >= 1
        )
        with make_client(net) as fresh:
            rows = fresh.execute(QUERY)
        assert {r["name"] for r in rows} == {"keep"}

    def test_run_transaction_retries_across_a_drop(self, served):
        db, net = served
        registry = prepare(db, net)
        client = make_client(net)
        try:
            # Fires on the 3rd reply of the first attempt (BEGIN, first
            # INSERT, second INSERT), killing the transaction mid-body.
            registry.set_fault("net.send", "raise", hit=3, times=1)

            def body(c):
                insert_emp(c, "pair0")
                insert_emp(c, "pair1")

            client.run_transaction(body)
            assert client.stats["transaction_retries"] >= 1
        finally:
            client.close()
        with make_client(net) as fresh:
            rows = fresh.execute(QUERY)
        # The aborted first attempt left nothing behind: exactly one
        # committed copy of each row.
        assert sorted(r["name"] for r in rows) == ["pair0", "pair1"]


class TestEngineCrashOverTheWire:
    def test_crash_failpoint_severs_only_that_client(self, served):
        db, net = served
        registry = prepare(db, net)
        with make_client(net) as bystander, make_client(net) as victim:
            insert_emp(bystander, "before")
            registry.set_fault("buffer.flush", "crash", times=1)
            # The victim's statement dies in the engine; the driver sees
            # a dead connection, reconnects, retries, and the one-shot
            # budget is already spent.
            insert_emp(victim, "retried")
            assert victim.stats["network_retries"] >= 1
            rows = bystander.execute(QUERY)
            assert {r["name"] for r in rows} == {"before", "retried"}
            assert db.obs.metrics.snapshot()["net.fault_crashes"] >= 1


class TestSetFaultOverTheWire:
    def test_storage_fault_via_sql_and_stats_surface(self, served):
        db, net = served
        prepare(db, net)
        with make_client(net) as client:
            insert_emp(client, "keep")
            message = client.execute(
                "SET FAULT 'sbspace.page_write' RAISE TIMES 1"
            )
            assert "armed" in message
            with pytest.raises(RemoteStatementError) as exc:
                insert_emp(client, "doomed")
            assert exc.value.code == "INTERNAL_ERROR"
            client.execute("SET FAULT ALL OFF")
            insert_emp(client, "after")
            rows = client.execute(QUERY)
            assert {r["name"] for r in rows} == {"keep", "after"}
            stats = client.execute("SHOW STATS")
            assert "== faults ==" in stats
            assert "sbspace.page_write" in stats
