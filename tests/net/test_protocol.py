"""Wire-protocol framing: roundtrips, EOF semantics, malformed frames."""

import socket
import struct

import pytest

from repro.net import protocol


def pair():
    return socket.socketpair()


class TestRoundtrip:
    def test_execute_roundtrip(self):
        a, b = pair()
        try:
            protocol.write_frame(a, protocol.execute("SELECT 1"))
            message = protocol.read_frame(b)
            assert message == {"kind": "execute", "sql": "SELECT 1"}
        finally:
            a.close()
            b.close()

    def test_many_frames_in_sequence(self):
        a, b = pair()
        try:
            for i in range(50):
                protocol.write_frame(a, protocol.execute(f"SELECT {i}"))
            for i in range(50):
                assert protocol.read_frame(b)["sql"] == f"SELECT {i}"
        finally:
            a.close()
            b.close()

    def test_result_carries_jsonable_value(self):
        a, b = pair()
        try:
            protocol.write_frame(
                a, protocol.result([{"n": 1, "s": "x"}], elapsed=0.25)
            )
            message = protocol.read_frame(b)
            assert message["kind"] == "result"
            assert message["value"] == [{"n": 1, "s": "x"}]
            assert message["elapsed"] == 0.25
        finally:
            a.close()
            b.close()

    def test_error_frame_fields(self):
        message = protocol.error(
            protocol.LOCK_TIMEOUT,
            "gave up",
            retryable=True,
            error_type="LockTimeoutError",
            aborted_transaction=True,
        )
        assert message["retryable"] is True
        assert message["aborted_transaction"] is True
        assert message["code"] == protocol.LOCK_TIMEOUT


class TestJsonable:
    def test_scalars_pass_through(self):
        for value in (None, True, 3, 2.5, "s"):
            assert protocol.jsonable(value) == value

    def test_containers_walked(self):
        assert protocol.jsonable({"a": [1, (2, 3)]}) == {"a": [1, [2, 3]]}

    def test_engine_objects_become_text(self):
        from repro.temporal.extent import TimeExtent
        from repro.temporal.variables import NOW, UC

        extent = TimeExtent(1, UC, 1, NOW)
        rendered = protocol.jsonable([{"te": extent}])
        assert rendered == [{"te": str(extent)}]

    def test_non_string_keys_coerced(self):
        assert protocol.jsonable({1: "x"}) == {"1": "x"}


class TestEofAndErrors:
    def test_clean_eof_returns_none(self):
        a, b = pair()
        a.close()
        try:
            assert protocol.read_frame(b) is None
        finally:
            b.close()

    def test_eof_mid_header_raises(self):
        a, b = pair()
        try:
            a.sendall(b"\x00\x00")
            a.close()
            with pytest.raises(protocol.ProtocolError):
                protocol.read_frame(b)
        finally:
            b.close()

    def test_eof_mid_body_raises(self):
        a, b = pair()
        try:
            a.sendall(struct.pack(">I", 100) + b'{"kind"')
            a.close()
            with pytest.raises(protocol.ProtocolError):
                protocol.read_frame(b)
        finally:
            b.close()

    def test_oversized_length_prefix_refused(self):
        a, b = pair()
        try:
            a.sendall(struct.pack(">I", protocol.MAX_FRAME_BYTES + 1))
            with pytest.raises(protocol.ProtocolError):
                protocol.read_frame(b)
        finally:
            a.close()
            b.close()

    def test_bad_json_refused(self):
        a, b = pair()
        try:
            body = b"not json"
            a.sendall(struct.pack(">I", len(body)) + body)
            with pytest.raises(protocol.ProtocolError):
                protocol.read_frame(b)
        finally:
            a.close()
            b.close()

    def test_untagged_object_refused(self):
        a, b = pair()
        try:
            body = b'{"no": "kind"}'
            a.sendall(struct.pack(">I", len(body)) + body)
            with pytest.raises(protocol.ProtocolError):
                protocol.read_frame(b)
        finally:
            a.close()
            b.close()
