"""Hammer tests for the shared structures the worker threads touch.

Each test throws 8 threads at one structure and then checks exact
invariants: lost updates, corrupted LRU bookkeeping, or leaked locks all
show up as hard assertion failures, not flakes.

Every test also runs under the ``lock_audit`` fixture
(:mod:`repro.analysis.lockgraph`): any lock-order cycle observed during
the hammer fails the test with both acquisition stacks.
"""

import random
import threading
import time

import pytest

from repro.grtree.entries import GREntry
from repro.grtree.node import GRNode, GRNodeStore
from repro.obs.metrics import MetricsRegistry
from repro.server import DatabaseServer
from repro.storage.buffer import BufferPool
from repro.storage.locks import (
    LockManager,
    LockMode,
    LockTimeoutError,
)
from repro.storage.pages import InMemoryPageStore

THREADS = 8


def hammer(worker, threads=THREADS):
    """Run *worker(thread_index)* on N threads; re-raise any failure."""
    errors = []

    def run(index):
        try:
            worker(index)
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    pool = [
        threading.Thread(target=run, args=(index,)) for index in range(threads)
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join(timeout=60)
    assert not any(thread.is_alive() for thread in pool), "hammer hung"
    if errors:
        raise errors[0]


class TestMetricsRegistry:
    def test_concurrent_increments_lose_nothing(self, lock_audit):
        registry = MetricsRegistry()
        rounds = 2000

        def worker(index):
            for i in range(rounds):
                registry.inc("hammer.count")
                registry.inc("hammer.weighted", 2)
                registry.observe("hammer.lat", 0.001 * (i % 7))

        hammer(worker)
        assert registry.counter("hammer.count") == THREADS * rounds
        assert registry.counter("hammer.weighted") == 2 * THREADS * rounds
        histogram = registry.histogram("hammer.lat")
        assert histogram.count == THREADS * rounds
        # Internal consistency: every observation landed in exactly one
        # bucket.
        assert sum(histogram.bucket_counts) == histogram.count

    def test_snapshots_during_mutation_stay_consistent(self, lock_audit):
        registry = MetricsRegistry()
        registry.register_collector("pull", lambda: {"constant": 42})
        stop = threading.Event()
        bad = []

        def snapshotter():
            while not stop.is_set():
                snap = registry.snapshot()
                if snap.get("pull.constant") != 42:
                    bad.append(snap)
                registry.to_dict()

        watcher = threading.Thread(target=snapshotter)
        watcher.start()

        def worker(index):
            for i in range(500):
                registry.inc("spin")
                registry.set_gauge(f"gauge.{index}", i)
                registry.observe("spin.lat", 0.0001)

        try:
            hammer(worker)
        finally:
            stop.set()
            watcher.join(timeout=10)
        assert bad == []
        assert registry.counter("spin") == THREADS * 500


class TestStatementCache:
    def test_parse_cache_stays_bounded_and_consistent(self, lock_audit):
        db = DatabaseServer(statement_cache_size=8)
        texts = [f"SELECT * FROM relation_{i}" for i in range(32)]

        def worker(index):
            rng = random.Random(index)
            for _ in range(400):
                sql = rng.choice(texts)
                statement = db._parse(sql)
                assert statement is not None

        hammer(worker)
        stats = db.obs.metrics.snapshot()
        assert stats["sql.stmtcache.entries"] <= 8
        # Every _parse call resolved as exactly one hit or one miss.
        assert (
            stats["sql.stmtcache.hits"] + stats["sql.stmtcache.misses"]
            == THREADS * 400
        )
        # The cache still serves correct statements after the hammer.
        session = db.create_session()
        db.execute("CREATE TABLE relation_0 (a INTEGER)", session)
        db.execute("INSERT INTO relation_0 VALUES (5)", session)
        assert db.execute("SELECT * FROM relation_0", session) == [{"a": 5}]


class TestNodeCacheStore:
    PAGES = 48
    CACHE = 16

    def build_store(self):
        pool = BufferPool(InMemoryPageStore(page_size=512), capacity=8)
        store = GRNodeStore(pool, node_cache_size=self.CACHE)
        page_ids = []
        for i in range(self.PAGES):
            node = store.allocate(leaf=True)
            # The page id round-trips through the entry payload, so a
            # cross-wired cache slot is caught by content, not just key.
            node.entries.append(
                GREntry(node.page_id, node.page_id + 1, 0, 1, rowid=i)
            )
            store.write(node)
            page_ids.append(node.page_id)
        return store, page_ids

    def test_concurrent_reads_return_correct_nodes(self, lock_audit):
        store, page_ids = self.build_store()
        reads_per_thread = 600

        def worker(index):
            rng = random.Random(index)
            for _ in range(reads_per_thread):
                page_id = rng.choice(page_ids)
                node = store.read(page_id)
                assert node.page_id == page_id
                assert node.entries[0].tt_begin == page_id

        hammer(worker)
        assert store.cached_nodes <= self.CACHE
        stats = store.cache_stats
        assert stats.hits + stats.misses == THREADS * reads_per_thread

    def test_concurrent_read_write_mix_never_corrupts(self, lock_audit):
        store, page_ids = self.build_store()

        def worker(index):
            rng = random.Random(100 + index)
            for _ in range(300):
                page_id = rng.choice(page_ids)
                if index % 2:
                    node = store.read(page_id)
                    assert node.entries[0].tt_begin == page_id
                else:
                    node = GRNode(page_id, leaf=True)
                    node.entries.append(
                        GREntry(page_id, page_id + 1, 0, 1, rowid=index)
                    )
                    store.write(node)

        hammer(worker)
        assert store.cached_nodes <= self.CACHE
        for page_id in page_ids:
            assert store.read(page_id).entries[0].tt_begin == page_id


class TestLockManager:
    def test_blocking_acquire_wakes_on_release(self, lock_audit):
        locks = LockManager()
        locks.acquire(1, "res", LockMode.EXCLUSIVE)
        granted_after = []

        def waiter():
            start = time.monotonic()
            locks.acquire(2, "res", LockMode.EXCLUSIVE, wait_timeout=5.0)
            granted_after.append(time.monotonic() - start)

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.05)
        assert not granted_after, "waiter must block while the lock is held"
        locks.release_all(1)
        thread.join(timeout=5)
        assert granted_after and granted_after[0] < 4.0
        locks.release_all(2)
        assert locks.locked_resources == 0

    def test_blocking_acquire_times_out_and_counts(self, lock_audit):
        locks = LockManager()
        locks.acquire(1, "res", LockMode.EXCLUSIVE)
        with pytest.raises(LockTimeoutError) as info:
            locks.acquire(2, "res", LockMode.SHARED, wait_timeout=0.05)
        assert info.value.holders == {1}
        assert locks.timeouts == 1
        assert locks.conflicts >= 1
        locks.release_all(1)
        assert locks.locked_resources == 0

    def test_contended_mutual_exclusion_no_lost_updates(self, lock_audit):
        locks = LockManager()
        rounds = 150
        state = {"value": 0}

        def worker(index):
            txn_id = index + 1
            for _ in range(rounds):
                locks.acquire(
                    txn_id, "slot", LockMode.EXCLUSIVE, wait_timeout=30.0
                )
                try:
                    # Deliberately non-atomic read-modify-write: only
                    # mutual exclusion makes the final total exact.
                    current = state["value"]
                    time.sleep(0)
                    state["value"] = current + 1
                finally:
                    locks.release(txn_id, "slot")

        hammer(worker)
        assert state["value"] == THREADS * rounds
        assert locks.locked_resources == 0

    def test_shared_readers_interleave_with_writers(self, lock_audit):
        locks = LockManager()

        def worker(index):
            txn_id = index + 1
            rng = random.Random(index)
            for _ in range(100):
                mode = (
                    LockMode.EXCLUSIVE if rng.random() < 0.2
                    else LockMode.SHARED
                )
                locks.acquire(txn_id, "page", mode, wait_timeout=30.0)
                locks.release(txn_id, "page")

        hammer(worker)
        assert locks.locked_resources == 0
        assert locks.acquires == locks.releases
