"""End-to-end distributed tracing over the wire: trace-context
propagation, stitched ``explain_profile`` trees, ``SHOW TRACE``,
the ``metrics`` scrape frame, the workload model under a remote mixed
workload, and the 8-thread disjoint-trace-trees hammer."""

import json
import threading

import pytest

from repro.datablade import register_grtree_blade
from repro.net import NetServer, Profiled, ReproClient
from repro.obs import SpanRecorder
from repro.obs.export import parse_prometheus_text
from repro.obs.metrics import MetricsRegistry
from repro.obs.workload import fingerprint
from repro.server import DatabaseServer
from repro.temporal.chronon import Clock, format_chronon

THREADS = 8


def day(c):
    return format_chronon(c)


@pytest.fixture()
def db():
    server = DatabaseServer(clock=Clock(now=100))
    server.create_sbspace("spc")
    register_grtree_blade(server)
    return server


@pytest.fixture()
def served(db):
    net = NetServer(db, workers=4, queue_depth=16, lock_timeout=2.0).start()
    yield db, net
    net.shutdown()


def make_client(net, **kwargs):
    kwargs.setdefault("read_timeout", 10.0)
    return ReproClient(net.host, net.port, **kwargs).connect()


def setup_emp(client, rows=4):
    client.execute("CREATE TABLE emp (name LVARCHAR, te GRT_TimeExtent_t)")
    client.execute(
        "CREATE INDEX e_te ON emp(te) USING grtree_am IN spc"
    )
    for i in range(rows):
        client.execute(
            f"INSERT INTO emp VALUES ('e{i}', "
            f"'{day(100)}, UC, {day(90 + i)}, NOW')"
        )


class TestExplainProfile:
    def test_profile_returns_a_stitched_trace(self, served):
        db, net = served
        with make_client(net) as client:
            setup_emp(client)
            profiled = client.execute(
                "SELECT name FROM emp WHERE "
                f"Overlaps(te, '{day(100)}, UC, {day(91)}, NOW')",
                explain_profile=True,
            )
            assert isinstance(profiled, Profiled)
            assert [row["name"] for row in profiled.value]
            names = profiled.span_names()
            # Client root, then the server's statement tree under it.
            assert names[0] == "client.execute"
            assert "sql.select" in names
            assert "sql.parse" in names
            assert profiled.trace_id == client.last_trace_id
            assert profiled.server_elapsed is not None
            # The stitched tree carries the propagated context.
            server_root = profiled.trace["children"][0]
            assert server_root["attrs"]["trace_id"] == profiled.trace_id
            assert (
                server_root["attrs"]["parent_span_id"]
                == profiled.trace["span_id"]
            )

    def test_profile_leaves_reach_the_storage_layer(self, served):
        db, net = served
        with make_client(net) as client:
            setup_emp(client)
            profiled = client.execute(
                "SELECT name FROM emp WHERE "
                f"Overlaps(te, '{day(100)}, UC, {day(91)}, NOW')",
                explain_profile=True,
            )
            leaves = profiled.leaves()
            assert leaves, "stitched trace has no leaves"
            # At least one leaf is below the server root: the tree is
            # deeper than client -> server.
            leaf_names = {leaf["name"] for leaf in leaves}
            assert leaf_names - {"client.execute", "sql.select"}

    def test_plain_execute_still_returns_rows(self, served):
        db, net = served
        with make_client(net) as client:
            setup_emp(client, rows=1)
            rows = client.execute("SELECT name FROM emp")
            assert rows == [{"name": "e0"}]

    def test_untraced_client_sends_bare_frames(self, served):
        db, net = served
        with make_client(net, tracing=False) as client:
            setup_emp(client, rows=1)
            client.execute("SELECT name FROM emp")
            assert client.last_trace_id is None
            root = db.obs.spans.last_root("sql.select")
            assert root is not None
            assert root.trace_id is None

    def test_untraced_client_can_still_ask_for_a_profile(self, served):
        db, net = served
        with make_client(net, tracing=False) as client:
            setup_emp(client, rows=1)
            profiled = client.execute(
                "SELECT name FROM emp", explain_profile=True
            )
            assert isinstance(profiled, Profiled)
            assert profiled.trace_id is not None


class TestShowTrace:
    def test_show_trace_finds_the_statement_tree(self, served):
        db, net = served
        with make_client(net) as client:
            setup_emp(client, rows=2)
            client.execute("SELECT name FROM emp")
            trace_id = client.last_trace_id
            assert trace_id is not None
            rendered = client.execute(f"SHOW TRACE {trace_id}")
            assert "sql.select" in rendered
            assert trace_id in rendered

    def test_show_trace_json_round_trips(self, served):
        db, net = served
        with make_client(net) as client:
            setup_emp(client, rows=2)
            client.execute("SELECT name FROM emp")
            trace_id = client.last_trace_id
            trees = json.loads(client.execute(f"SHOW TRACE {trace_id} JSON"))
            assert len(trees) == 1
            assert trees[0]["attrs"]["trace_id"] == trace_id
            assert trees[0]["name"] == "sql.select"

    def test_show_trace_unknown_id(self, served):
        db, net = served
        with make_client(net) as client:
            rendered = client.execute("SHOW TRACE deadbeef")
            assert "no spans recorded for trace deadbeef" in rendered


class TestMetricsFrame:
    def test_scrape_round_trips_prometheus_text(self, served):
        db, net = served
        with make_client(net) as client:
            setup_emp(client, rows=1)
            client.execute("SELECT name FROM emp")
            text = client.metrics()
            samples, types = parse_prometheus_text(text)
            assert samples["repro_sql_statements_total"] >= 1
            assert types["repro_sql_statements_total"] == "counter"
            assert samples["repro_net_metrics_scrapes_total"] >= 1

    def test_scrape_does_not_consume_a_worker_slot(self, db):
        # queue_depth=1, workers=1: if the scrape were queued behind
        # statements it could be rejected SERVER_BUSY; as a reader-thread
        # frame it always answers.
        net = NetServer(db, workers=1, queue_depth=1).start()
        try:
            with make_client(net) as client:
                for _ in range(4):
                    assert "repro_" in client.metrics()
        finally:
            net.shutdown()


class TestWorkloadOverTheWire:
    def test_mixed_workload_builds_the_model(self, served):
        db, net = served
        with make_client(net) as client:
            setup_emp(client, rows=2)
            select_shape = None
            for i in range(100):
                if i % 2 == 0:
                    select_shape = (
                        f"SELECT name FROM emp WHERE name = 'e{i % 2}'"
                    )
                    client.execute(select_shape)
                else:
                    client.execute(
                        f"INSERT INTO emp VALUES ('w{i}', "
                        f"'{day(100)}, UC, {day(95)}, NOW')"
                    )
            model = db.obs.workload
            select_stats = model.get(fingerprint(select_shape))
            assert select_stats.calls == 50
            assert select_stats.rows_returned >= 50
            insert_stats = model.get(
                fingerprint("INSERT INTO emp VALUES ('x', 'y')")
            )
            # 50 from the loop plus the 2 setup rows: same shape.
            assert insert_stats.calls == 52
            assert insert_stats.latency.quantile(0.95) > 0.0

            payload = json.loads(
                client.execute("SHOW WORKLOAD JSON TOP 5 BY calls")
            )
            assert payload["ordered_by"] == "calls"
            top_calls = [f["calls"] for f in payload["fingerprints"]]
            assert top_calls[0] == 52
            assert top_calls == sorted(top_calls, reverse=True)

            report = client.execute("SHOW WORKLOAD")
            assert "workload model" in report
            assert "SELECT NAME FROM EMP WHERE NAME = ?" in report


class TestDisjointTraceTrees:
    def test_recorder_hammer_keeps_trees_disjoint(self):
        """8 threads build interleaved span trees on one recorder: every
        finished tree must contain only its own thread's spans."""
        recorder = SpanRecorder(MetricsRegistry(), max_roots=4096)
        rounds = 50

        def worker(index):
            for i in range(rounds):
                with recorder.span(
                    "root", thread=index, trace_id=f"t{index}"
                ):
                    with recorder.span("child", thread=index):
                        with recorder.span("leaf", thread=index):
                            pass

        errors = []

        def run(index):
            try:
                worker(index)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        pool = [
            threading.Thread(target=run, args=(index,))
            for index in range(THREADS)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join(timeout=60)
        assert not errors
        for index in range(THREADS):
            trees = recorder.select(trace_id=f"t{index}")
            assert len(trees) == rounds
            for root in trees:
                owners = {root.attrs["thread"]}
                for leaf in root.leaves():
                    owners.add(leaf.attrs["thread"])
                assert owners == {index}, "tree mixes threads"

    def test_wire_hammer_keeps_traces_disjoint(self, served):
        """8 concurrent traced clients: each client's last trace id must
        select exactly one tree, and that tree's statement must be the
        one this client ran."""
        db, net = served
        with make_client(net) as admin:
            setup_emp(admin, rows=1)
        last_ids = [None] * THREADS
        errors = []

        def worker(index):
            try:
                with make_client(net) as client:
                    for i in range(10):
                        client.execute(
                            f"SELECT name FROM emp WHERE name = 'c{index}'"
                        )
                    last_ids[index] = client.last_trace_id
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        pool = [
            threading.Thread(target=worker, args=(index,))
            for index in range(THREADS)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join(timeout=60)
        assert not errors
        assert all(last_ids)
        assert len(set(last_ids)) == THREADS
        for index, trace_id in enumerate(last_ids):
            trees = db.obs.spans.select(trace_id=trace_id)
            assert len(trees) == 1
            assert f"'c{index}'" in trees[0].attrs["sql"]
