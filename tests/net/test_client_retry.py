"""The client driver's retry machinery, against scripted fake servers
and a real served engine."""

import random
import socket
import threading
import time

import pytest

from repro.net import (
    NetServer,
    ReproClient,
    RetryExhaustedError,
    TransientNetworkError,
    protocol,
)
from repro.server import DatabaseServer


class FakeServer:
    """A single-threaded scripted endpoint speaking the wire protocol.

    ``script`` is a list of per-connection handler callables; connection
    *n* is driven by ``script[min(n, len(script)-1)]``.  Each handler
    gets the connected socket after the welcome handshake was sent.
    """

    def __init__(self, script):
        self.script = script
        self.listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.listener.bind(("127.0.0.1", 0))
        self.listener.listen(8)
        self.host, self.port = self.listener.getsockname()[:2]
        self.connections = 0
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()

    def _run(self):
        while True:
            try:
                sock, _ = self.listener.accept()
            except OSError:
                return
            index = min(self.connections, len(self.script) - 1)
            handler = self.script[index]
            self.connections += 1
            try:
                hello = protocol.read_frame(sock)
                assert hello["kind"] == "hello"
                protocol.write_frame(sock, protocol.welcome(self.connections))
                handler(sock)
            except (OSError, protocol.ProtocolError, AssertionError):
                pass
            finally:
                sock.close()

    def close(self):
        self.listener.close()


def serve_result(value="ok"):
    def handler(sock):
        while True:
            message = protocol.read_frame(sock)
            if message is None or message["kind"] == "quit":
                return
            protocol.write_frame(sock, protocol.result(value, 0.0))

    return handler


def busy_then_result(busy_count, value="ok"):
    state = {"busy": busy_count}

    def handler(sock):
        while True:
            message = protocol.read_frame(sock)
            if message is None or message["kind"] == "quit":
                return
            if state["busy"] > 0:
                state["busy"] -= 1
                protocol.write_frame(
                    sock,
                    protocol.error(
                        protocol.SERVER_BUSY, "full", retryable=True
                    ),
                )
            else:
                protocol.write_frame(sock, protocol.result(value, 0.0))

    return handler


def drop_on_execute(sock):
    message = protocol.read_frame(sock)
    if message and message["kind"] == "execute":
        return  # close without replying: mid-statement connection loss


def client_for(server, **kwargs):
    kwargs.setdefault("rng", random.Random(7))
    kwargs.setdefault("backoff_base", 0.001)
    kwargs.setdefault("read_timeout", 5.0)
    return ReproClient(server.host, server.port, **kwargs)


class TestBackoff:
    def test_backoff_grows_and_caps(self):
        client = ReproClient(
            "127.0.0.1",
            1,
            backoff_base=0.01,
            backoff_cap=0.5,
            rng=random.Random(3),
        )
        delays = [client._backoff(attempt) for attempt in range(1, 12)]
        assert all(0.0025 <= d <= 0.5 for d in delays)
        # The jitter ceiling doubles per attempt up to the cap.
        assert max(delays[6:]) > max(delays[:2])

    def test_jitter_varies(self):
        client = ReproClient(
            "127.0.0.1", 1, backoff_base=0.01, rng=random.Random(5)
        )
        assert len({client._backoff(4) for _ in range(8)}) > 1


class TestStatementRetry:
    def test_server_busy_retried_until_success(self):
        fake = FakeServer([busy_then_result(3)])
        try:
            with client_for(fake, max_retries=6) as client:
                assert client.execute("SELECT 1") == "ok"
            assert client.stats["busy_retries"] == 3
        finally:
            fake.close()

    def test_server_busy_exhausts(self):
        fake = FakeServer([busy_then_result(100)])
        try:
            from repro.net import ServerBusyError

            with client_for(fake, max_retries=2) as client:
                with pytest.raises(ServerBusyError):
                    client.execute("SELECT 1")
        finally:
            fake.close()

    def test_connection_drop_outside_transaction_reconnects(self):
        fake = FakeServer([drop_on_execute, serve_result("recovered")])
        try:
            with client_for(fake, max_retries=4) as client:
                assert client.execute("SELECT 1") == "recovered"
                assert client.stats["network_retries"] >= 1
                assert fake.connections == 2
        finally:
            fake.close()

    def test_connection_drop_inside_transaction_raises(self):
        from repro.net import ConnectionLostInTransaction

        fake = FakeServer([serve_result(), drop_on_execute])

        def txn_then_die(sock):
            # First statement (BEGIN) succeeds, second dies mid-flight.
            message = protocol.read_frame(sock)
            assert message["kind"] == "execute"
            protocol.write_frame(sock, protocol.result("begun", 0.0))
            protocol.read_frame(sock)
            return

        fake.script = [txn_then_die, serve_result()]
        try:
            with client_for(fake, max_retries=4) as client:
                client.execute("BEGIN WORK")
                assert client.in_transaction
                with pytest.raises(ConnectionLostInTransaction):
                    client.execute("INSERT INTO t VALUES (1)")
                assert not client.in_transaction
        finally:
            fake.close()

    def test_connect_gives_up_when_nothing_listens(self):
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()  # nothing listens here now
        client = ReproClient(
            "127.0.0.1",
            port,
            max_retries=1,
            backoff_base=0.001,
            connect_timeout=0.2,
            rng=random.Random(1),
        )
        with pytest.raises(TransientNetworkError):
            client.connect()


class TestTransactionRetry:
    def test_lock_timeout_retries_transaction_to_success(self):
        """Two clients hammer one serialized read-modify-write slot;
        deadlock-by-timeout victims retry until both land."""
        from repro.datablade import register_grtree_blade
        from repro.temporal.chronon import Clock, format_chronon

        db = DatabaseServer(clock=Clock(now=100))
        db.create_sbspace("spc")
        register_grtree_blade(db)
        net = NetServer(db, workers=4, queue_depth=16, lock_timeout=0.3).start()
        try:
            day = format_chronon
            with client_for(net) as setup:
                setup.execute(
                    "CREATE TABLE emp (name LVARCHAR, te GRT_TimeExtent_t)"
                )
                setup.execute(
                    "CREATE INDEX e_te ON emp(te) USING grtree_am IN spc"
                )

            rounds = 4
            failures = []

            def worker(tag):
                try:
                    with client_for(net, rng=random.Random(tag)) as client:
                        for i in range(rounds):
                            def body(c, tag=tag, i=i):
                                c.execute(
                                    f"INSERT INTO emp VALUES ('{tag}_{i}', "
                                    f"'{day(100)}, UC, {day(95)}, NOW')"
                                )
                                time.sleep(0.01)  # hold the X lock a beat
                                return True

                            client.run_transaction(
                                body,
                                isolation="REPEATABLE READ",
                                attempts=20,
                            )
                except Exception as exc:  # pragma: no cover
                    failures.append(exc)

            threads = [
                threading.Thread(target=worker, args=(tag,))
                for tag in ("alpha", "beta")
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert failures == []
            with client_for(net) as checker:
                rows = checker.execute("SELECT name FROM emp")
                names = {row["name"] for row in rows}
            expected = {
                f"{tag}_{i}" for tag in ("alpha", "beta") for i in range(rounds)
            }
            assert names == expected
            assert db.locks.locked_resources == 0
        finally:
            net.shutdown()

    def test_retry_budget_exhausts_cleanly(self):
        def always_lock_timeout(sock):
            while True:
                message = protocol.read_frame(sock)
                if message is None or message["kind"] == "quit":
                    return
                if message["sql"].startswith(("BEGIN", "SET", "ROLLBACK")):
                    protocol.write_frame(sock, protocol.result("ok", 0.0))
                else:
                    protocol.write_frame(
                        sock,
                        protocol.error(
                            protocol.LOCK_TIMEOUT,
                            "victim",
                            retryable=True,
                            aborted_transaction=True,
                        ),
                    )

        fake = FakeServer([always_lock_timeout])
        try:
            with client_for(fake) as client:
                with pytest.raises(RetryExhaustedError):
                    client.run_transaction(
                        lambda c: c.execute("INSERT INTO t VALUES (1)"),
                        attempts=3,
                    )
            assert client.stats["transaction_retries"] == 3
        finally:
            fake.close()
