"""Section 5.4 under real concurrency: each session pins its own
transaction-start current time.

The paper: the GR-tree blade samples the current time once per
transaction into named memory (there is no transaction-begin event to
hook, so the first index use samples) and frees it through the
transaction-end callback.  Served concurrently, that means two clients
whose transactions start at different clock values must each see a
*stable* resolution of ``UC``/``NOW`` for their whole transaction --
stable within the transaction, independent across sessions.

The observable: a tuple valid ``[95, NOW]``.  A transaction pinned at
``now = 100`` resolves the tuple's valid-time end to 100, so a query
window starting at 150 misses it; a transaction pinned at ``now = 200``
resolves it to 200 and the same window hits it.
"""

import threading

import pytest

from repro.datablade import register_grtree_blade
from repro.net import NetServer, ReproClient
from repro.server import DatabaseServer
from repro.temporal.chronon import Clock, format_chronon


def day(c):
    return format_chronon(c)


#: Query window [150, 160] in both valid and transaction time: only
#: overlaps the [95, NOW] tuple once NOW resolves past 150.
LATE_WINDOW = (
    f"SELECT name FROM emp WHERE "
    f"Overlaps(te, '{day(150)}, {day(160)}, {day(150)}, {day(160)}')"
)


@pytest.fixture()
def served():
    db = DatabaseServer(clock=Clock(now=100))
    db.create_sbspace("spc")
    register_grtree_blade(db)
    net = NetServer(db, workers=4, queue_depth=16).start()
    with ReproClient(net.host, net.port).connect() as setup:
        setup.execute("CREATE TABLE emp (name LVARCHAR, te GRT_TimeExtent_t)")
        setup.execute("CREATE INDEX e_te ON emp(te) USING grtree_am IN spc")
        setup.execute(
            f"INSERT INTO emp VALUES ('alice', "
            f"'{day(100)}, UC, {day(95)}, NOW')"
        )
    yield db, net
    net.shutdown()


class TestCurrentTimePinning:
    def test_pins_are_stable_within_and_independent_across_sessions(
        self, served
    ):
        db, net = served
        a = ReproClient(net.host, net.port).connect()
        b = ReproClient(net.host, net.port).connect()
        try:
            # A begins while now=100 and touches the index, pinning 100.
            a.execute("BEGIN WORK")
            assert a.execute(LATE_WINDOW) == []

            # The world moves on; A must not notice.
            db.clock.advance(100)  # now = 200

            # B begins at now=200 and pins 200: same query, other answer.
            b.execute("BEGIN WORK")
            assert [r["name"] for r in b.execute(LATE_WINDOW)] == ["alice"]

            # A's pin is untouched by B's transaction...
            assert a.execute(LATE_WINDOW) == []
            # ...and B's is untouched by A re-querying.
            assert [r["name"] for r in b.execute(LATE_WINDOW)] == ["alice"]

            # Server-side: two distinct named-memory pins, one per session.
            assert self._pins(db) == {100, 200}

            a.execute("COMMIT WORK")
            b.execute("COMMIT WORK")
            # Transaction-end callbacks freed both pins.
            assert self._pins(db) == set()

            # A fresh transaction on A samples the new clock.
            a.execute("BEGIN WORK")
            assert [r["name"] for r in a.execute(LATE_WINDOW)] == ["alice"]
            a.execute("ROLLBACK WORK")
        finally:
            a.close()
            b.close()

    @staticmethod
    def _pins(db):
        """Every live per-session current-time pin in named memory."""
        return {
            value
            for key, value in db.memory.named_items()
            if key.startswith("grt_now.session")
        }

    def test_interleaved_threads_never_cross_pins(self, served):
        """Two sessions interleaving statements from threads: each
        session's NOW stays its own for the life of its transaction."""
        db, net = served
        barrier = threading.Barrier(2, timeout=30)
        failures = []

        def run(tag, expected_names):
            try:
                with ReproClient(net.host, net.port).connect() as client:
                    barrier.wait()  # connect together
                    if tag == "early":
                        client.execute("BEGIN WORK")
                        client.execute(LATE_WINDOW)  # pin now=100
                    barrier.wait()  # now the clock moves
                    if tag == "early":
                        barrier.wait()
                    else:
                        db.clock.advance(100)  # now = 200
                        client.execute("BEGIN WORK")
                        client.execute(LATE_WINDOW)  # pin now=200
                        barrier.wait()
                    # Both transactions live; hammer queries interleaved.
                    for _ in range(10):
                        rows = client.execute(LATE_WINDOW)
                        names = sorted(r["name"] for r in rows)
                        if names != expected_names:
                            failures.append((tag, names))
                    client.execute("COMMIT WORK")
            except Exception as exc:  # pragma: no cover
                failures.append((tag, repr(exc)))

        threads = [
            threading.Thread(target=run, args=("early", [])),
            threading.Thread(target=run, args=("late", ["alice"])),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert failures == []
        assert db.locks.locked_resources == 0
