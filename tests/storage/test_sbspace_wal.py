"""Tests for the smart-blob space, WAL, rollback, and crash recovery."""

import pytest

from repro.storage.locks import (
    IsolationLevel,
    LockConflictError,
    LockManager,
    LockMode,
)
from repro.storage.sbspace import (
    LargeObjectHandle,
    OpenMode,
    Sbspace,
    SbspaceError,
)
from repro.storage.wal import WriteAheadLog


@pytest.fixture
def space():
    return Sbspace(page_size=128)


@pytest.fixture
def logged_space():
    wal = WriteAheadLog()
    space = Sbspace(page_size=128, wal=wal)
    return space, wal


class TestLargeObjects:
    def test_create_get_drop(self, space):
        blob = space.create()
        assert space.get(blob.handle) is blob
        assert blob.handle in space
        space.drop(blob.handle)
        assert blob.handle not in space
        with pytest.raises(SbspaceError):
            space.get(blob.handle)

    def test_handles_are_unique_and_bulky(self, space):
        a, b = space.create(), space.create()
        assert a.handle != b.handle
        # The paper: LO handles are "relatively large" -- a real cost when
        # embedded per child pointer in index nodes.
        assert a.handle.size_bytes >= 32

    def test_blob_is_a_page_store(self, space):
        blob = space.create()
        pid = blob.allocate_page()
        blob.write_page(pid, b"node-0")
        assert blob.read_page(pid).startswith(b"node-0")
        assert blob.page_count == 1

    def test_byte_range_io_spans_pages(self, space):
        blob = space.create()
        payload = bytes(range(200))  # > one 128-byte page
        blob.write_bytes(100, payload)
        assert blob.read_bytes(100, 200) == payload
        assert blob.page_count == 3  # pages 0, 1, 2 touched

    def test_read_past_end_zero_filled(self, space):
        blob = space.create()
        blob.write_bytes(0, b"xy")
        assert blob.read_bytes(0, 4) == b"xy\x00\x00"
        assert blob.read_bytes(1000, 3) == b"\x00\x00\x00"

    def test_page_io_statistics(self, space):
        blob = space.create()
        pid = blob.allocate_page()
        blob.write_page(pid, b"a")
        blob.read_page(pid)
        assert space.stats_page_writes == 1
        assert space.stats_page_reads == 1


class TestObjectLevelLocking:
    """The paper's sbspace locking semantics (Section 5.3)."""

    def make(self):
        locks = LockManager()
        space = Sbspace(page_size=128, lock_manager=locks)
        blob = space.create()
        return space, locks, blob

    def test_open_for_write_locks_exclusively(self):
        space, locks, blob = self.make()
        space.open(blob.handle, OpenMode.WRITE, txn_id=1)
        with pytest.raises(LockConflictError):
            space.open(blob.handle, OpenMode.READ, txn_id=2)

    def test_readers_share(self):
        space, locks, blob = self.make()
        space.open(blob.handle, OpenMode.READ, txn_id=1)
        space.open(blob.handle, OpenMode.READ, txn_id=2)
        assert locks.holders(("lo", blob.handle.value)) == {1, 2}

    def test_shared_lock_released_on_close_at_committed_read(self):
        space, locks, blob = self.make()
        space.open(blob.handle, OpenMode.READ, txn_id=1,
                   isolation=IsolationLevel.COMMITTED_READ)
        space.close(blob.handle, OpenMode.READ, txn_id=1,
                    isolation=IsolationLevel.COMMITTED_READ)
        assert locks.holders(("lo", blob.handle.value)) == set()

    def test_shared_lock_kept_at_repeatable_read(self):
        # "If the repeatable-read isolation level is set, even the shared
        # locks ... will be released only when a transaction commits."
        space, locks, blob = self.make()
        space.open(blob.handle, OpenMode.READ, txn_id=1,
                   isolation=IsolationLevel.REPEATABLE_READ)
        space.close(blob.handle, OpenMode.READ, txn_id=1,
                    isolation=IsolationLevel.REPEATABLE_READ)
        assert locks.holders(("lo", blob.handle.value)) == {1}
        space.end_transaction(1)
        assert locks.holders(("lo", blob.handle.value)) == set()

    def test_exclusive_lock_never_released_before_txn_end(self):
        space, locks, blob = self.make()
        space.open(blob.handle, OpenMode.WRITE, txn_id=1)
        space.close(blob.handle, OpenMode.WRITE, txn_id=1)
        assert locks.mode_held(1, ("lo", blob.handle.value)) is LockMode.EXCLUSIVE

    def test_dirty_read_skips_locking(self):
        space, locks, blob = self.make()
        space.open(blob.handle, OpenMode.WRITE, txn_id=1)
        # A dirty reader does not even ask for a lock.
        space.open(blob.handle, OpenMode.READ, txn_id=2,
                   isolation=IsolationLevel.DIRTY_READ)

    def test_close_unopened_raises(self):
        space, locks, blob = self.make()
        with pytest.raises(SbspaceError):
            space.close(blob.handle, OpenMode.READ, txn_id=1)

    def test_open_close_statistics(self):
        space, locks, blob = self.make()
        space.open(blob.handle, OpenMode.READ, txn_id=1)
        space.close(blob.handle, OpenMode.READ, txn_id=1)
        assert space.stats_opens == 1
        assert space.stats_closes == 1


class TestRollback:
    def test_page_write_undone(self, logged_space):
        space, wal = logged_space
        space.set_transaction(1)
        wal.log_begin(1)
        blob = space.create()
        pid = blob.allocate_page()
        blob.write_page(pid, b"v1")
        wal.log_commit(1)

        space.set_transaction(2)
        wal.log_begin(2)
        blob.write_page(pid, b"v2")
        space.rollback(2)
        wal.log_abort(2)
        assert blob.read_page(pid).startswith(b"v1")

    def test_created_object_removed_on_rollback(self, logged_space):
        space, wal = logged_space
        space.set_transaction(1)
        wal.log_begin(1)
        blob = space.create()
        space.rollback(1)
        wal.log_abort(1)
        assert blob.handle not in space

    def test_allocated_page_released_on_rollback(self, logged_space):
        space, wal = logged_space
        space.set_transaction(1)
        wal.log_begin(1)
        blob = space.create()
        wal.log_commit(1)

        space.set_transaction(2)
        wal.log_begin(2)
        blob.allocate_page()
        space.rollback(2)
        wal.log_abort(2)
        assert blob.page_count == 0


class TestCrashRecovery:
    def test_committed_state_survives(self, logged_space):
        space, wal = logged_space
        space.set_transaction(1)
        wal.log_begin(1)
        blob = space.create()
        pid = blob.allocate_page()
        blob.write_page(pid, b"durable")
        wal.log_commit(1)
        handle = blob.handle

        space._reset_for_recovery()  # crash: volatile state gone
        wal.recover(space)
        recovered = space.get(handle)
        assert recovered.read_page(pid).startswith(b"durable")

    def test_uncommitted_work_lost(self, logged_space):
        space, wal = logged_space
        space.set_transaction(1)
        wal.log_begin(1)
        blob = space.create()
        pid = blob.allocate_page()
        blob.write_page(pid, b"v1")
        wal.log_commit(1)
        handle = blob.handle

        space.set_transaction(2)
        wal.log_begin(2)
        blob.write_page(pid, b"v2-uncommitted")
        # crash before commit
        wal.recover(space)
        assert space.get(handle).read_page(pid).startswith(b"v1")
        assert not wal.is_active(2)

    def test_dropped_object_stays_dropped(self, logged_space):
        space, wal = logged_space
        space.set_transaction(1)
        wal.log_begin(1)
        blob = space.create()
        wal.log_commit(1)
        space.set_transaction(2)
        wal.log_begin(2)
        space.drop(blob.handle)
        wal.log_commit(2)

        wal.recover(space)
        assert blob.handle not in space

    def test_recovery_is_idempotent(self, logged_space):
        space, wal = logged_space
        space.set_transaction(1)
        wal.log_begin(1)
        blob = space.create()
        pid = blob.allocate_page()
        blob.write_page(pid, b"x")
        wal.log_commit(1)
        handle = blob.handle

        wal.recover(space)
        first = space.get(handle).read_page(pid)
        wal.recover(space)
        assert space.get(handle).read_page(pid) == first


class TestWalDiscipline:
    def test_double_begin_rejected(self):
        wal = WriteAheadLog()
        wal.log_begin(1)
        with pytest.raises(ValueError):
            wal.log_begin(1)

    def test_commit_requires_active(self):
        wal = WriteAheadLog()
        with pytest.raises(ValueError):
            wal.log_commit(7)

    def test_txn_ids_not_reusable(self):
        wal = WriteAheadLog()
        wal.log_begin(1)
        wal.log_commit(1)
        with pytest.raises(ValueError):
            wal.log_begin(1)

    def test_records_are_lsn_ordered(self):
        wal = WriteAheadLog()
        wal.log_begin(1)
        wal.log_create_lo(1, "LO:x")
        wal.log_commit(1)
        lsns = [r.lsn for r in wal.records()]
        assert lsns == sorted(lsns) == [0, 1, 2]
