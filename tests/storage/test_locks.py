"""Tests for the lock manager (two-phase, S/X, isolation levels)."""

import pytest

from repro.storage.locks import (
    LockConflictError,
    LockManager,
    LockMode,
)


@pytest.fixture
def locks():
    return LockManager()


class TestBasicLocking:
    def test_shared_locks_coexist(self, locks):
        locks.acquire(1, "lo", LockMode.SHARED)
        locks.acquire(2, "lo", LockMode.SHARED)
        assert locks.holders("lo") == {1, 2}

    def test_exclusive_blocks_shared(self, locks):
        locks.acquire(1, "lo", LockMode.EXCLUSIVE)
        with pytest.raises(LockConflictError) as exc:
            locks.acquire(2, "lo", LockMode.SHARED)
        assert exc.value.holders == {1}

    def test_shared_blocks_exclusive(self, locks):
        locks.acquire(1, "lo", LockMode.SHARED)
        with pytest.raises(LockConflictError):
            locks.acquire(2, "lo", LockMode.EXCLUSIVE)

    def test_exclusive_blocks_exclusive(self, locks):
        locks.acquire(1, "lo", LockMode.EXCLUSIVE)
        with pytest.raises(LockConflictError):
            locks.acquire(2, "lo", LockMode.EXCLUSIVE)

    def test_reacquisition_is_noop(self, locks):
        locks.acquire(1, "lo", LockMode.SHARED)
        locks.acquire(1, "lo", LockMode.SHARED)
        locks.acquire(1, "lo2", LockMode.EXCLUSIVE)
        locks.acquire(1, "lo2", LockMode.EXCLUSIVE)

    def test_upgrade_by_sole_holder(self, locks):
        locks.acquire(1, "lo", LockMode.SHARED)
        locks.acquire(1, "lo", LockMode.EXCLUSIVE)
        assert locks.mode_held(1, "lo") is LockMode.EXCLUSIVE

    def test_upgrade_blocked_by_other_reader(self, locks):
        locks.acquire(1, "lo", LockMode.SHARED)
        locks.acquire(2, "lo", LockMode.SHARED)
        with pytest.raises(LockConflictError):
            locks.acquire(1, "lo", LockMode.EXCLUSIVE)

    def test_exclusive_holder_may_read(self, locks):
        locks.acquire(1, "lo", LockMode.EXCLUSIVE)
        locks.acquire(1, "lo", LockMode.SHARED)
        assert locks.mode_held(1, "lo") is LockMode.EXCLUSIVE


class TestRelease:
    def test_release_frees_resource(self, locks):
        locks.acquire(1, "lo", LockMode.EXCLUSIVE)
        locks.release(1, "lo")
        locks.acquire(2, "lo", LockMode.EXCLUSIVE)

    def test_release_is_idempotent(self, locks):
        locks.release(1, "never-locked")

    def test_release_all_two_phase(self, locks):
        locks.acquire(1, "a", LockMode.SHARED)
        locks.acquire(1, "b", LockMode.EXCLUSIVE)
        locks.acquire(2, "a", LockMode.SHARED)
        assert locks.release_all(1) == 2
        assert locks.holders("a") == {2}
        assert locks.holders("b") == set()

    def test_release_keeps_other_holders(self, locks):
        locks.acquire(1, "lo", LockMode.SHARED)
        locks.acquire(2, "lo", LockMode.SHARED)
        locks.release(1, "lo")
        assert locks.holders("lo") == {2}


class TestAccounting:
    def test_conflicts_counted(self, locks):
        locks.acquire(1, "lo", LockMode.EXCLUSIVE)
        for _ in range(3):
            with pytest.raises(LockConflictError):
                locks.acquire(2, "lo", LockMode.SHARED)
        assert locks.conflicts == 3

    def test_locked_resources(self, locks):
        locks.acquire(1, "a", LockMode.SHARED)
        locks.acquire(1, "b", LockMode.SHARED)
        assert locks.locked_resources == 2
        locks.release_all(1)
        assert locks.locked_resources == 0

    def test_mode_held_none(self, locks):
        assert locks.mode_held(1, "lo") is None
