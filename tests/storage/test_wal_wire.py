"""LogRecord wire round-trips and WAL stats (replication satellites).

The replication stream serializes every ``LogRecord`` through
``to_dict``/``from_dict``; these tests pin the round-trip for *every*
``RecordKind`` -- adding a kind without wire support fails here -- and
the explicit rejection of unknown kinds (a version-skewed primary must
produce a loud error, not a silently skipped record).
"""

import pytest

from repro.storage.wal import DDL_TXN, LogRecord, RecordKind, WriteAheadLog

#: One fully-populated exemplar per kind.  The parametrization below
#: iterates ``RecordKind`` itself, so a kind missing from this table
#: fails the suite instead of silently shrinking coverage.
_EXEMPLARS = {
    RecordKind.BEGIN: dict(txn_id=7),
    RecordKind.COMMIT: dict(txn_id=7),
    RecordKind.ABORT: dict(txn_id=7),
    RecordKind.CREATE_LO: dict(txn_id=7, lo_handle="spc:3"),
    RecordKind.DROP_LO: dict(txn_id=7, lo_handle="spc:3"),
    RecordKind.PAGE_ALLOC: dict(txn_id=7, lo_handle="spc:3", page_id=11),
    RecordKind.PAGE_FREE: dict(txn_id=7, lo_handle="spc:3", page_id=11),
    RecordKind.PAGE_WRITE: dict(
        txn_id=7,
        lo_handle="spc:3",
        page_id=11,
        before=b"\x00\x01old page \xff",
        after=b"new page bytes \xfe\x00",
    ),
    RecordKind.ROW_INSERT: dict(
        txn_id=7, table="t", rowid=4, row={"id": "4", "te": "[3-5]"}
    ),
    RecordKind.ROW_DELETE: dict(txn_id=7, table="t", rowid=4),
    RecordKind.ROW_UPDATE: dict(
        txn_id=7, table="t", rowid=4, row={"id": "4", "te": "[3-NOW]"}
    ),
    RecordKind.DDL: dict(txn_id=DDL_TXN, sql="CREATE TABLE t (id INTEGER)"),
}


@pytest.mark.parametrize("kind", list(RecordKind), ids=lambda k: k.value)
def test_every_kind_round_trips(kind):
    assert kind in _EXEMPLARS, f"no wire exemplar for {kind.value}"
    record = LogRecord(lsn=42, kind=kind, **_EXEMPLARS[kind])
    payload = record.to_dict()
    # The payload is JSON-safe: bytes went through base64.
    import json

    json.dumps(payload)
    back = LogRecord.from_dict(payload)
    assert back == record


@pytest.mark.parametrize("kind", list(RecordKind), ids=lambda k: k.value)
def test_wire_form_omits_unset_fields(kind):
    record = LogRecord(lsn=1, kind=kind, **_EXEMPLARS[kind])
    payload = record.to_dict()
    for field in ("lo_handle", "page_id", "before", "after", "table",
                  "rowid", "row", "sql"):
        if getattr(record, field) is None:
            assert field not in payload


@pytest.mark.parametrize(
    "payload",
    [
        {"lsn": 0, "txn_id": 1, "kind": "row_upsert"},
        {"lsn": 0, "txn_id": 1, "kind": ""},
        {"lsn": 0, "txn_id": 1, "kind": None},
        {"lsn": 0, "txn_id": 1},
    ],
    ids=["unknown", "empty", "none", "missing"],
)
def test_unknown_kinds_are_rejected_explicitly(payload):
    with pytest.raises(ValueError, match="unknown log record kind"):
        LogRecord.from_dict(payload)


def test_round_trip_through_the_replication_frame_shape():
    """A batch of wire dicts survives a JSON hop, order intact."""
    import json

    records = [
        LogRecord(lsn=i, kind=kind, **_EXEMPLARS[kind])
        for i, kind in enumerate(RecordKind)
    ]
    hopped = json.loads(json.dumps([r.to_dict() for r in records]))
    assert [LogRecord.from_dict(p) for p in hopped] == records


# ----------------------------------------------------------------------
# WriteAheadLog.stats(): last_lsn and per-kind counts (satellite 2)
# ----------------------------------------------------------------------


def test_stats_exposes_last_lsn_and_kind_counts():
    wal = WriteAheadLog()
    assert wal.stats()["last_lsn"] == -1
    txn = 1
    wal.log_begin(txn)
    wal.log_create_lo(txn, "spc:1")
    wal.log_page_alloc(txn, "spc:1", 0)
    wal.log_page_write(txn, "spc:1", 0, b"old", b"new")
    wal.log_page_write(txn, "spc:1", 0, b"new", b"newer")
    wal.log_commit(txn)
    stats = wal.stats()
    assert stats["last_lsn"] == 5
    assert stats["kind.begin"] == 1
    assert stats["kind.create_lo"] == 1
    assert stats["kind.page_alloc"] == 1
    assert stats["kind.page_write"] == 2
    assert stats["kind.commit"] == 1
    assert stats["records"] == 6


def test_stats_counts_logical_kinds_and_ddl():
    wal = WriteAheadLog()
    wal.ship_rows = True
    wal.log_ddl("CREATE TABLE t (id INTEGER)")
    txn = 9
    wal.log_begin(txn)
    wal.log_row_insert(txn, "t", 0, {"id": "1"})
    wal.log_row_update(txn, "t", 0, {"id": "2"})
    wal.log_row_delete(txn, "t", 0)
    wal.log_commit(txn)
    stats = wal.stats()
    assert stats["kind.ddl"] == 1
    assert stats["kind.row_insert"] == 1
    assert stats["kind.row_update"] == 1
    assert stats["kind.row_delete"] == 1
    assert stats["last_lsn"] == 5
    # DDL is auto-committed by construction; the row txn committed too.
    assert wal.is_committed(DDL_TXN)
    assert wal.is_committed(txn)


def test_stats_does_not_require_reaching_into_records():
    """The counters come from bookkeeping, not a scan of ``_records``
    -- stats on a long log is O(kinds), and the per-kind counts agree
    with the record list."""
    from collections import Counter

    wal = WriteAheadLog()
    for txn in range(1, 30):
        wal.log_begin(txn)
        wal.log_page_write(txn, "spc:1", txn, b"a", b"b")
        (wal.log_commit if txn % 3 else wal.log_abort)(txn)
    stats = wal.stats()
    records = list(wal.records())
    expected = Counter(record.kind.value for record in records)
    for kind, count in expected.items():
        assert stats[f"kind.{kind}"] == count
    assert stats["last_lsn"] == len(records) - 1
