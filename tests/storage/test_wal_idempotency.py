"""WAL replay idempotency and post-recovery correctness.

Recovering twice from the same log must yield byte-identical state, and
a recovered space must behave exactly like a live one afterwards.  The
second half covers the bug this requirement uncovered: recovery used to
rebuild ``_objects`` but not the handle sequence, so the first
``create()`` after a recovery minted a *colliding* handle and silently
replaced a recovered large object -- committed data destroyed by a new
transaction after a perfectly good replay.

Also here: the per-storage-option recovery contrast of Section 5.3/6.
A torn sbspace write is healed by WAL redo (the server's recovery); a
torn OS-file write really lands on disk, and only the developer-built
checksum wrapper turns it from silent corruption into a loud error.
"""

import pytest

from repro.datablade import register_grtree_blade
from repro.faults import FaultRegistry
from repro.server import DatabaseServer
from repro.storage.osfile import OSFilePageStore
from repro.storage.pages import ChecksummedPageStore, PageChecksumError
from repro.storage.sbspace import Sbspace
from repro.storage.wal import WriteAheadLog
from repro.temporal.chronon import Clock, format_chronon


def day(chronon):
    return format_chronon(chronon)


def make_loaded_server(rows=40):
    server = DatabaseServer(clock=Clock(now=100))
    server.create_sbspace("spc")
    register_grtree_blade(server)
    server.execute("CREATE TABLE t (name LVARCHAR, te GRT_TimeExtent_t)")
    server.execute("CREATE INDEX gi ON t(te) USING grtree_am IN spc")
    server.prefer_virtual_index = True
    for i in range(rows):
        server.execute(
            f"INSERT INTO t VALUES ('r{i}', '{day(100)}, UC, {day(95)}, NOW')"
        )
    return server


def space_image(space):
    """Everything recovery is responsible for, in comparable form."""
    return {
        handle: (dict(blob._pages), blob._next_id, sorted(blob._free))
        for handle, blob in space._objects.items()
    }


class TestReplayIdempotency:
    def test_recover_twice_yields_identical_state(self):
        server = make_loaded_server()
        space = server.get_sbspace("spc")
        server.wal.recover(space)
        first = space_image(space)
        server.wal.recover(space)
        assert space_image(space) == first

    def test_recovery_after_recovery_plus_new_commits(self):
        """New work after one recovery must replay on top of the old log
        without double-applying either generation."""
        server = make_loaded_server(rows=10)
        space = server.get_sbspace("spc")
        server.wal.recover(space)
        server.storage_epoch += 1
        for i in range(10, 20):
            server.execute(
                f"INSERT INTO t VALUES ('r{i}', '{day(100)}, UC, {day(95)}, NOW')"
            )
        before = space_image(space)
        server.wal.recover(space)
        server.storage_epoch += 1
        assert space_image(space) == before
        rows = server.execute(
            f"SELECT name FROM t WHERE Overlaps(te, '{day(100)}, UC, {day(100)}, NOW')"
        )
        assert {r["name"] for r in rows} == {f"r{i}" for i in range(20)}


class TestSequenceRestoration:
    """The double-apply bug: a colliding handle after recovery."""

    def test_create_after_recovery_does_not_clobber_recovered_objects(self):
        server = make_loaded_server(rows=5)
        old_space = server.get_sbspace("spc")
        survivors = set(old_space._objects)
        # A true restart: the Sbspace object itself died with the
        # process, so its in-memory handle counter is back at 1.  Only
        # what _finish_recovery rebuilds from the log protects the
        # recovered objects from a colliding fresh handle.
        reborn = Sbspace("spc", page_size=old_space.page_size, wal=server.wal)
        server.wal.recover(reborn)
        assert set(reborn._objects) == survivors
        fresh = reborn.create()
        assert fresh.handle.value not in survivors
        assert reborn.object_count == len(survivors) + 1

    def test_free_lists_rebuilt_from_the_log(self):
        wal = WriteAheadLog()
        space = Sbspace("s", page_size=64, wal=wal)
        wal.log_begin(1)
        space.set_transaction(1)
        blob = space.create()
        for _ in range(4):
            blob.allocate_page()
        blob.write_page(0, b"zero")
        blob.write_page(2, b"two")
        blob.free_page(1)
        blob.free_page(3)
        wal.log_commit(1)
        space.set_transaction(None)
        wal.recover(space)
        recovered = space.get(blob.handle)
        assert sorted(recovered._free) == [1, 3]
        # Gaps are reused LIFO exactly as a live space would.
        assert recovered.allocate_page() == 1
        assert recovered.read_page(0).rstrip(b"\x00") == b"zero"


class TestOsFileTornWrites:
    """Section 6: with OS-file storage the developer builds recovery."""

    def test_torn_write_lands_on_disk_and_checksum_catches_it(self, tmp_path):
        registry = FaultRegistry()
        path = str(tmp_path / "index.grt")
        with OSFilePageStore(path, page_size=256, faults=registry) as raw:
            store = ChecksummedPageStore(raw)
            page = store.allocate_page()
            store.write_page(page, b"A" * store.page_size)
            assert store.read_page(page) == b"A" * store.page_size
            registry.set_fault("osfile.write", "torn", times=1)
            store.write_page(page, b"B" * store.page_size)
        # Reopen from disk: the torn page is still there (no WAL healed
        # it) and the read fails loudly instead of serving half a page.
        with OSFilePageStore(path, page_size=256) as raw:
            store = ChecksummedPageStore(raw)
            with pytest.raises(PageChecksumError):
                store.read_page(page)
            assert store.checksum_failures == 1

    def test_corrupt_write_detected_without_reopen(self, tmp_path):
        registry = FaultRegistry()
        path = str(tmp_path / "index.grt")
        with OSFilePageStore(path, page_size=256, faults=registry) as raw:
            store = ChecksummedPageStore(raw)
            page = store.allocate_page()
            registry.set_fault("osfile.write", "corrupt", times=1)
            store.write_page(page, b"C" * store.page_size)
            with pytest.raises(PageChecksumError):
                store.read_page(page)

    def test_untouched_store_verifies_every_read(self, tmp_path):
        path = str(tmp_path / "index.grt")
        with OSFilePageStore(path, page_size=256) as raw:
            store = ChecksummedPageStore(raw)
            page = store.allocate_page()
            store.write_page(page, b"D" * 16)
            store.read_page(page)
            assert store.verified_reads == 1
            assert store.checksum_failures == 0
