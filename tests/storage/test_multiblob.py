"""Tests for the in-between (several-nodes-per-LO) storage design."""

import pytest

from repro.grtree.node import GRNodeStore
from repro.grtree.tree import GRTree
from repro.storage.buffer import BufferPool
from repro.storage.multiblob import MultiBlobPageStore
from repro.storage.sbspace import Sbspace
from repro.temporal.chronon import Clock
from repro.temporal.extent import TimeExtent
from repro.temporal.variables import NOW, UC
from repro.workloads import BitemporalWorkload, WorkloadConfig


@pytest.fixture()
def store():
    return MultiBlobPageStore(Sbspace(page_size=512), pages_per_lo=4)


class TestMultiBlobPageStore:
    def test_basic_page_io(self, store):
        pid = store.allocate_page()
        store.write_page(pid, b"hello")
        assert store.read_page(pid).startswith(b"hello")
        assert len(store.read_page(pid)) == 512

    def test_groups_materialize_on_demand(self, store):
        assert store.group_count() == 0
        ids = [store.allocate_page() for _ in range(4)]
        assert store.group_count() == 1
        store.allocate_page()
        assert store.group_count() == 2
        assert store.page_count == 5

    def test_pages_map_to_distinct_handles_across_groups(self, store):
        a = store.allocate_page()          # group 0
        for _ in range(4):
            last = store.allocate_page()
        assert store.handle_for_page(a) != store.handle_for_page(last)

    def test_free_and_reuse(self, store):
        a = store.allocate_page()
        store.free_page(a)
        with pytest.raises(KeyError):
            store.read_page(a)
        assert store.allocate_page() == a

    def test_unallocated_access_rejected(self, store):
        with pytest.raises(KeyError):
            store.read_page(99)
        with pytest.raises(KeyError):
            store.write_page(99, b"x")

    def test_bad_group_size_rejected(self):
        with pytest.raises(ValueError):
            MultiBlobPageStore(Sbspace(page_size=512), pages_per_lo=0)

    def test_handle_overhead_amortizes(self, store):
        store.allocate_page()
        # One ~56-byte handle shared by 4 node pages.
        assert 0 < store.handle_bytes_per_child_pointer < 56

    def test_drop_releases_large_objects(self, store):
        for _ in range(9):
            store.allocate_page()
        assert store.space.object_count == 3
        store.drop()
        assert store.space.object_count == 0


class TestGRTreeOverMultiBlob:
    def test_full_tree_lifecycle(self):
        """The GR-tree runs unchanged over the in-between design -- the
        storage choice is invisible above the PageStore interface."""
        clock = Clock(now=100)
        space = Sbspace(page_size=512)
        store = MultiBlobPageStore(space, pages_per_lo=4)
        pool = BufferPool(store, capacity=32)
        tree = GRTree.create(GRNodeStore(pool), clock)
        workload = BitemporalWorkload(clock, WorkloadConfig(seed=87))
        workload.run(tree, 400)
        tree.check()
        query = workload.window_query(15, 15)
        got = sorted(r for r, _ in tree.search_all(query))
        assert got == workload.oracle_overlapping(query)
        # Several groups exist: the index is spread over multiple LOs,
        # each a separate locking unit.
        assert store.group_count() > 3

    def test_lock_granularity_is_per_group(self):
        from repro.storage.locks import (
            LockConflictError,
            LockManager,
            LockMode,
        )

        locks = LockManager()
        space = Sbspace(page_size=512, lock_manager=locks)
        store = MultiBlobPageStore(space, pages_per_lo=2)
        pages = [store.allocate_page() for _ in range(4)]
        h0 = store.handle_for_page(pages[0]).value
        h2 = store.handle_for_page(pages[2]).value
        locks.acquire(1, ("lo", h0), LockMode.EXCLUSIVE)
        # A different group is a different lock: no conflict.
        locks.acquire(2, ("lo", h2), LockMode.SHARED)
        # The same group conflicts.
        with pytest.raises(LockConflictError):
            locks.acquire(2, ("lo", h0), LockMode.SHARED)
