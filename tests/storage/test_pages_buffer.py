"""Tests for page stores and the buffer pool."""

import pytest

from repro.storage.buffer import BufferPool, IOStats
from repro.storage.pages import InMemoryPageStore
from repro.storage.osfile import OSFilePageStore


class TestInMemoryPageStore:
    def test_allocate_write_read(self):
        store = InMemoryPageStore(page_size=128)
        pid = store.allocate_page()
        store.write_page(pid, b"hello")
        data = store.read_page(pid)
        assert data.startswith(b"hello")
        assert len(data) == 128

    def test_pages_zero_initialised(self):
        store = InMemoryPageStore(page_size=64)
        pid = store.allocate_page()
        assert store.read_page(pid) == b"\x00" * 64

    def test_free_recycles_ids(self):
        store = InMemoryPageStore()
        a = store.allocate_page()
        store.free_page(a)
        b = store.allocate_page()
        assert b == a

    def test_read_unallocated_raises(self):
        store = InMemoryPageStore()
        with pytest.raises(KeyError):
            store.read_page(99)

    def test_write_overflow_rejected(self):
        store = InMemoryPageStore(page_size=16)
        pid = store.allocate_page()
        with pytest.raises(ValueError):
            store.write_page(pid, b"x" * 17)

    def test_page_count(self):
        store = InMemoryPageStore()
        ids = [store.allocate_page() for _ in range(3)]
        store.free_page(ids[1])
        assert store.page_count == 2


class TestOSFilePageStore:
    def test_persists_across_reopen(self, tmp_path):
        path = str(tmp_path / "index.grt")
        with OSFilePageStore(path, page_size=256) as store:
            pid = store.allocate_page()
            store.write_page(pid, b"durable")
        with OSFilePageStore(path, page_size=256) as store:
            assert store.read_page(pid).startswith(b"durable")
            assert store.page_count == 1

    def test_free_list_survives_reopen(self, tmp_path):
        path = str(tmp_path / "index.grt")
        with OSFilePageStore(path, page_size=256) as store:
            a = store.allocate_page()
            b = store.allocate_page()
            store.free_page(a)
            assert store.page_count == 1
        with OSFilePageStore(path, page_size=256) as store:
            assert store.page_count == 1
            reused = store.allocate_page()
            assert reused == a

    def test_page_size_mismatch_detected(self, tmp_path):
        path = str(tmp_path / "index.grt")
        OSFilePageStore(path, page_size=256).close()
        with pytest.raises(ValueError):
            OSFilePageStore(path, page_size=512)

    def test_wrong_magic_rejected(self, tmp_path):
        path = tmp_path / "bogus.bin"
        path.write_bytes(b"not a grt file at all" + b"\x00" * 100)
        with pytest.raises(ValueError):
            OSFilePageStore(str(path))


class TestBufferPool:
    def make(self, capacity=2, page_size=64):
        store = InMemoryPageStore(page_size=page_size)
        return store, BufferPool(store, capacity=capacity)

    def test_read_hits_cache(self):
        store, pool = self.make()
        pid = pool.allocate()
        store.write_page(pid, b"v1")
        pool.read(pid)
        pool.read(pid)
        assert pool.stats.physical_reads == 1
        assert pool.stats.logical_reads == 2

    def test_write_back_on_eviction(self):
        store, pool = self.make(capacity=1)
        a, b = pool.allocate(), pool.allocate()
        pool.write(a, b"aaa")
        pool.write(b, b"bbb")  # evicts a, forcing write-back
        assert store.read_page(a).startswith(b"aaa")
        assert pool.stats.physical_writes == 1

    def test_flush_writes_dirty_frames(self):
        store, pool = self.make()
        pid = pool.allocate()
        pool.write(pid, b"dirty")
        assert store.read_page(pid) == b"\x00" * 64
        pool.flush()
        assert store.read_page(pid).startswith(b"dirty")

    def test_flush_is_idempotent(self):
        store, pool = self.make()
        pid = pool.allocate()
        pool.write(pid, b"dirty")
        pool.flush()
        before = pool.stats.physical_writes
        pool.flush()
        assert pool.stats.physical_writes == before

    def test_invalidate_discards_dirty_data(self):
        store, pool = self.make()
        pid = pool.allocate()
        pool.write(pid, b"lost")
        pool.invalidate()
        assert store.read_page(pid) == b"\x00" * 64

    def test_lru_order(self):
        store, pool = self.make(capacity=2)
        a, b, c = (pool.allocate() for _ in range(3))
        pool.read(a)
        pool.read(b)
        pool.read(a)  # a is now most recent
        pool.read(c)  # evicts b (a was touched more recently)
        pool.read(a)  # still resident: hit
        assert pool.stats.physical_reads == 3  # a, b, c each faulted once
        pool.read(b)  # b was evicted: physical again
        assert pool.stats.physical_reads == 4

    def test_free_drops_cached_frame(self):
        store, pool = self.make()
        pid = pool.allocate()
        pool.write(pid, b"gone")
        pool.free(pid)
        with pytest.raises(KeyError):
            store.read_page(pid)

    def test_recycled_page_id_does_not_resurrect_stale_frame(self):
        """Regression: free() + reallocate of the same page id (the
        store's LIFO free list) must not serve the old frame's bytes."""
        store, pool = self.make()
        pid = pool.allocate()
        pool.write(pid, b"old incarnation")
        pool.read(pid)  # frame is resident
        pool.free(pid)
        recycled = pool.allocate()
        assert recycled == pid  # LIFO recycling really happened
        assert pool.read(recycled) == b"\x00" * 64

    def test_recycled_id_drops_frame_even_if_freed_elsewhere(self):
        """Even when the free bypasses the pool (another pool over the
        same store), allocate() must not trust a stale resident frame."""
        store, pool = self.make()
        pid = pool.allocate()
        pool.write(pid, b"stale")
        pool.flush()
        pool.read(pid)
        store.free_page(pid)  # freed behind the pool's back
        recycled = pool.allocate()
        assert recycled == pid
        assert pool.read(recycled) == b"\x00" * 64

    def test_invalidation_listeners_fire(self):
        store, pool = self.make()
        dropped = []
        pool.add_invalidation_listener(lambda: dropped.append(True))
        pool.invalidate()
        pool.invalidate()
        assert dropped == [True, True]

    def test_full_page_write_preserved_verbatim(self):
        """_check_data must pass exactly-page-sized bytes through
        unchanged (the serializer fast path emits full pages)."""
        store, pool = self.make()
        pid = pool.allocate()
        payload = bytes(range(64))
        pool.write(pid, payload)
        pool.flush()
        assert store.read_page(pid) == payload
        assert pool.read(pid) == payload

    def test_stats_snapshot_and_diff(self):
        store, pool = self.make()
        pid = pool.allocate()
        pool.read(pid)
        before = pool.stats.snapshot()
        pool.read(pid)
        delta = pool.stats - before
        assert delta.logical_reads == 1
        assert delta.physical_reads == 0

    def test_hit_ratio(self):
        stats = IOStats(logical_reads=10, physical_reads=2)
        assert stats.hit_ratio == pytest.approx(0.8)
        assert IOStats().hit_ratio == 1.0
