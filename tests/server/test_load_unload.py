"""Tests for LOAD/UNLOAD: the text-file import/export support functions."""

import pytest

from repro.datablade import register_grtree_blade
from repro.server import DatabaseServer
from repro.server.errors import ExecutionError, SqlError
from repro.temporal.chronon import Clock


@pytest.fixture()
def server():
    s = DatabaseServer(clock=Clock(now=100))
    s.create_sbspace("spc")
    register_grtree_blade(s)
    s.execute("CREATE TABLE t (name LVARCHAR, te GRT_TimeExtent_t)")
    s.execute("CREATE INDEX gi ON t(te) USING grtree_am IN spc")
    s.prefer_virtual_index = True
    return s


def extent_text(now=100):
    from repro.temporal.chronon import format_chronon

    return f"{format_chronon(now)}, UC, {format_chronon(now - 5)}, NOW"


class TestLoad:
    def test_load_uses_import_support_function(self, server, tmp_path):
        """The paper's third type-support category: 'making it possible
        to use the command LOAD for loading values of a new type from a
        text file to a table'."""
        path = tmp_path / "data.unl"
        path.write_text(
            "\n".join(f"row{i}|{extent_text()}" for i in range(25)) + "\n"
        )
        loaded = server.execute(f"LOAD FROM '{path}' INSERT INTO t")
        assert loaded == 25
        rows = server.execute(
            f"SELECT name FROM t WHERE Overlaps(te, '{extent_text()}')"
        )
        assert len(rows) == 25
        assert "consistent" in server.execute("CHECK INDEX gi")

    def test_load_custom_delimiter(self, server, tmp_path):
        path = tmp_path / "data.unl"
        path.write_text(f"a;{extent_text()}\n")
        assert server.execute(
            f"LOAD FROM '{path}' DELIMITER ';' INSERT INTO t"
        ) == 1

    def test_load_skips_blank_lines(self, server, tmp_path):
        path = tmp_path / "data.unl"
        path.write_text(f"a|{extent_text()}\n\nb|{extent_text()}\n")
        assert server.execute(f"LOAD FROM '{path}' INSERT INTO t") == 2

    def test_load_field_count_mismatch(self, server, tmp_path):
        path = tmp_path / "data.unl"
        path.write_text("only-one-field\n")
        with pytest.raises(ExecutionError):
            server.execute(f"LOAD FROM '{path}' INSERT INTO t")

    def test_load_bad_literal_reports_type_error(self, server, tmp_path):
        from repro.server.errors import DataTypeError

        path = tmp_path / "data.unl"
        path.write_text("a|not a time extent\n")
        with pytest.raises(DataTypeError):
            server.execute(f"LOAD FROM '{path}' INSERT INTO t")

    def test_parse_errors(self, server):
        with pytest.raises(SqlError):
            server.execute("LOAD FROM missing_quotes INSERT INTO t")
        with pytest.raises(SqlError):
            server.execute("LOAD FROM 'x' DELIMITER '||' INSERT INTO t")


class TestUnload:
    def test_roundtrip_through_text_files(self, server, tmp_path):
        for i in range(10):
            server.execute(
                f"INSERT INTO t VALUES ('r{i}', '{extent_text()}')"
            )
        out = tmp_path / "out.unl"
        count = server.execute(f"UNLOAD TO '{out}' SELECT * FROM t")
        assert count == 10
        lines = out.read_text().strip().splitlines()
        assert len(lines) == 10
        assert all("UC" in line and "NOW" in line for line in lines)

        # Reload into a second table: export and import are inverses.
        server.execute("CREATE TABLE t2 (name LVARCHAR, te GRT_TimeExtent_t)")
        assert server.execute(f"LOAD FROM '{out}' INSERT INTO t2") == 10
        original = server.execute("SELECT name FROM t")
        reloaded = server.execute("SELECT name FROM t2")
        assert sorted(r["name"] for r in original) == sorted(
            r["name"] for r in reloaded
        )

    def test_unload_with_where(self, server, tmp_path):
        for i in range(5):
            server.execute(f"INSERT INTO t VALUES ('r{i}', '{extent_text()}')")
        out = tmp_path / "subset.unl"
        count = server.execute(
            f"UNLOAD TO '{out}' SELECT name FROM t WHERE name = 'r3'"
        )
        assert count == 1
        assert out.read_text().strip() == "r3"
