"""Tests for server components: types, UDRs, memory, trace, catalog."""

import pytest

from repro.server.datatypes import (
    BooleanType,
    DataTypeError,
    DateType,
    IntegerType,
    OpaqueType,
    TypeRegistry,
)
from repro.server.errors import AccessMethodError, CatalogError, UdrError
from repro.server.access_method import (
    PURPOSE_SLOTS,
    PURPOSE_TASKS,
    SecondaryAccessMethod,
    SpaceType,
)
from repro.server.catalog import IndexInfo, SystemCatalog
from repro.server.memory import Duration, MemoryManager, NamedMemoryError
from repro.server.opclass import OperatorClass, OperatorClassRegistry
from repro.server.table import Column, Table
from repro.server.trace import TraceFacility
from repro.server.udr import Routine, RoutineRegistry, SharedLibraryRegistry
from repro.temporal.chronon import Granularity


class TestTypes:
    def test_builtin_roundtrips(self):
        registry = TypeRegistry()
        assert registry.get("integer").input("42") == 42
        assert registry.get("BOOLEAN").input("t") is True
        assert registry.get("float").input("1.5") == 1.5

    def test_date_uses_paper_format(self):
        date = DateType(Granularity.DAY)
        value = date.input("12/10/95")
        assert date.output(value) == "12/10/1995"

    def test_validation_errors(self):
        with pytest.raises(DataTypeError):
            IntegerType().validate("not an int")
        with pytest.raises(DataTypeError):
            BooleanType().validate(1)
        with pytest.raises(DataTypeError):
            IntegerType().input("xyz")

    def test_opaque_type_support_functions(self):
        opaque = OpaqueType(
            "Pair",
            input_fn=lambda text: tuple(int(p) for p in text.split(":")),
            output_fn=lambda value: f"{value[0]}:{value[1]}",
        )
        assert opaque.input("3:4") == (3, 4)
        assert opaque.output((3, 4)) == "3:4"
        # Send/receive and import/export default to the text pair.
        assert opaque.receive(opaque.send((3, 4))) == (3, 4)
        assert opaque.import_text(opaque.export_text((3, 4))) == (3, 4)

    def test_duplicate_type_rejected(self):
        registry = TypeRegistry()
        with pytest.raises(DataTypeError):
            registry.register(IntegerType())

    def test_unregister(self):
        registry = TypeRegistry()
        registry.register(OpaqueType("X", input_fn=str, output_fn=str))
        registry.unregister("x")
        assert "X" not in registry


class TestSharedLibrary:
    def test_external_name_resolution(self):
        lib = SharedLibraryRegistry()
        lib.register("usr/functions/grtree.bld", "grt_open", lambda td: 0)
        fn = lib.resolve_external("usr/functions/grtree.bld(grt_open)")
        assert fn({}) == 0

    def test_missing_symbol(self):
        lib = SharedLibraryRegistry()
        with pytest.raises(UdrError):
            lib.resolve_external("lib.bld(nope)")

    def test_malformed_external_name(self):
        lib = SharedLibraryRegistry()
        with pytest.raises(UdrError):
            lib.resolve_external("no-parentheses")


class TestRoutines:
    def make(self):
        registry = RoutineRegistry()
        registry.register(
            Routine("f", ("INTEGER",), "INTEGER", lambda x: x + 1)
        )
        registry.register(
            Routine("f", ("FLOAT",), "FLOAT", lambda x: x + 0.5)
        )
        return registry

    def test_overload_resolution(self):
        registry = self.make()
        assert registry.resolve("f", ["INTEGER"])(1) == 2
        assert registry.resolve("f", ["FLOAT"])(1.0) == 1.5

    def test_resolution_counts_overhead(self):
        registry = self.make()
        registry.resolve("f", ["INTEGER"])
        registry.resolve("f", ["INTEGER"])
        assert registry.resolutions == 2

    def test_duplicate_signature_rejected(self):
        registry = self.make()
        with pytest.raises(UdrError):
            registry.register(
                Routine("F", ("INTEGER",), "INTEGER", lambda x: x)
            )

    def test_resolve_any_requires_single_overload(self):
        registry = self.make()
        with pytest.raises(UdrError):
            registry.resolve_any("f")
        registry.register(Routine("g", (), "INTEGER", lambda: 7))
        assert registry.resolve_any("g")() == 7

    def test_negator_commutator(self):
        registry = self.make()
        registry.set_commutator("f", "f")
        registry.set_negator("f", "not_f")
        routine = registry.resolve("f", ["INTEGER"])
        assert routine.commutator == "f"
        assert routine.negator == "not_f"

    def test_unknown_name(self):
        registry = self.make()
        with pytest.raises(UdrError):
            registry.resolve("missing", [])


class TestMemory:
    def test_duration_scoping(self):
        memory = MemoryManager()
        memory.allocate(Duration.PER_STATEMENT)
        memory.allocate(Duration.PER_TRANSACTION)
        memory.end_duration(Duration.PER_STATEMENT)
        assert memory.live_count(Duration.PER_STATEMENT) == 0
        assert memory.live_count(Duration.PER_TRANSACTION) == 1
        memory.end_duration(Duration.PER_TRANSACTION)
        assert memory.live_count(Duration.PER_TRANSACTION) == 0

    def test_ending_longer_duration_frees_shorter(self):
        memory = MemoryManager()
        memory.allocate(Duration.PER_FUNCTION)
        memory.allocate(Duration.PER_STATEMENT)
        memory.end_duration(Duration.PER_TRANSACTION)
        assert memory.live_count(Duration.PER_FUNCTION) == 0
        assert memory.live_count(Duration.PER_STATEMENT) == 0

    def test_named_memory_lifecycle(self):
        memory = MemoryManager()
        memory.named_allocate("grt_now.session1", 42)
        assert memory.named_get("grt_now.session1") == 42
        assert memory.named_exists("grt_now.session1")
        memory.named_free("grt_now.session1")
        assert not memory.named_exists("grt_now.session1")

    def test_named_memory_errors(self):
        memory = MemoryManager()
        memory.named_allocate("x", 1)
        with pytest.raises(NamedMemoryError):
            memory.named_allocate("x", 2)
        with pytest.raises(NamedMemoryError):
            memory.named_get("y")
        with pytest.raises(NamedMemoryError):
            memory.named_free("y")


class TestTrace:
    def test_disabled_by_default(self):
        trace = TraceFacility()
        trace.emit("grt", 1, "hidden")
        assert trace.messages() == []

    def test_level_filtering(self):
        trace = TraceFacility()
        trace.set_level("grt", 1)
        trace.emit("grt", 1, "shown")
        trace.emit("grt", 2, "too detailed")
        trace.emit("other", 1, "wrong class")
        assert trace.texts("grt") == ["shown"]

    def test_messages_are_sequenced(self):
        trace = TraceFacility()
        trace.set_level("a", 1)
        trace.set_level("b", 1)
        trace.emit("a", 1, "first")
        trace.emit("b", 1, "second")
        sequences = [m.sequence for m in trace.messages()]
        assert sequences == sorted(sequences)

    def test_disable_class(self):
        trace = TraceFacility()
        trace.set_level("grt", 2)
        trace.set_level("grt", 0)
        trace.emit("grt", 1, "off again")
        assert trace.messages() == []

    def test_clear(self):
        trace = TraceFacility()
        trace.set_level("x", 1)
        trace.emit("x", 1, "m")
        trace.clear()
        assert trace.messages() == []


class TestAccessMethodRegistry:
    def test_am_getnext_mandatory(self):
        with pytest.raises(AccessMethodError):
            SecondaryAccessMethod("bad_am", {"am_open": "f"})

    def test_unknown_slot_rejected(self):
        with pytest.raises(AccessMethodError):
            SecondaryAccessMethod("bad_am", {"am_getnext": "g", "am_frobnicate": "f"})

    def test_table2_covers_all_slots(self):
        from_tasks = {slot for slots in PURPOSE_TASKS.values() for slot in slots}
        assert from_tasks == set(PURPOSE_SLOTS)

    def test_sptype(self):
        am = SecondaryAccessMethod("a", {"am_getnext": "g"}, SpaceType.EXTERNAL_FILE)
        assert am.sptype is SpaceType.EXTERNAL_FILE


class TestOperatorClasses:
    def test_strategy_membership_case_insensitive(self):
        oc = OperatorClass("oc", "am", ("Overlaps", "Equal"), ("GRT_Union",))
        assert oc.is_strategy("overlaps")
        assert oc.is_support("grt_union")
        assert not oc.is_strategy("grt_union")

    def test_extension_preserves_name(self):
        oc = OperatorClass("oc", "am", ("Overlaps",))
        extended = oc.extended_with(strategies=("Neighbour", "Overlaps"))
        assert extended.strategies == ("Overlaps", "Neighbour")
        assert extended.name == "oc"

    def test_registry_replace_for_extension(self):
        registry = OperatorClassRegistry()
        oc = registry.register(OperatorClass("oc", "am", ("Overlaps",)))
        registry.replace(oc.extended_with(strategies=("Neighbour",)))
        assert registry.get("oc").is_strategy("Neighbour")

    def test_for_access_method(self):
        registry = OperatorClassRegistry()
        registry.register(OperatorClass("a1", "am1", ("f",)))
        registry.register(OperatorClass("a2", "am1", ("g",)))
        registry.register(OperatorClass("b1", "am2", ("h",)))
        assert len(registry.for_access_method("am1")) == 2


class TestTablesAndCatalog:
    def make_table(self):
        return Table(
            "emp",
            [Column("name", TypeRegistry().get("LVARCHAR")),
             Column("age", TypeRegistry().get("INTEGER"))],
        )

    def test_insert_fetch_delete(self):
        table = self.make_table()
        rowid = table.insert_row({"name": "a", "age": 30})
        assert table.fetch(rowid)["age"] == 30
        table.delete_row(rowid)
        with pytest.raises(Exception):
            table.fetch(rowid)

    def test_insert_validates_types(self):
        table = self.make_table()
        with pytest.raises(DataTypeError):
            table.insert_row({"name": "a", "age": "old"})

    def test_missing_column_rejected(self):
        table = self.make_table()
        with pytest.raises(Exception):
            table.insert_row({"name": "a"})

    def test_scan_charges_pages(self):
        table = self.make_table()
        for i in range(100):
            table.insert_row({"name": f"r{i}", "age": i})
        before = table.pages_read
        list(table.scan())
        assert table.pages_read - before == table.page_count

    def test_rowids_stable_across_deletes(self):
        table = self.make_table()
        ids = [table.insert_row({"name": f"r{i}", "age": i}) for i in range(5)]
        table.delete_row(ids[2])
        assert table.fetch(ids[3])["age"] == 3

    def test_catalog_index_bookkeeping(self):
        catalog = SystemCatalog(TypeRegistry())
        catalog.create_table(self.make_table())
        info = IndexInfo("i1", "emp", ("age",), "am", ("oc",), "spc")
        catalog.create_index(info)
        assert catalog.has_index("I1")
        assert catalog.indices_on("emp", "age") == [info]
        assert catalog.indices_on("emp", "name") == []
        assert len(catalog.fragments("i1")) == 1
        with pytest.raises(CatalogError):
            catalog.drop_table("emp")  # index still exists
        catalog.drop_index("i1")
        catalog.drop_table("emp")

    def test_duplicate_detection(self):
        catalog = SystemCatalog(TypeRegistry())
        catalog.create_table(self.make_table())
        info = IndexInfo("i1", "emp", ("age",), "am", ("oc",), "spc")
        catalog.create_index(info)
        found = catalog.find_equivalent_index("emp", ("AGE",), "AM", {})
        assert found is info
        assert catalog.find_equivalent_index("emp", ("name",), "am", {}) is None
