"""Integration tests for the SQL engine: DML, plans, transactions."""

import pytest

from repro.server import DatabaseServer
from repro.server.errors import CatalogError, SqlError, TransactionError
from repro.server.optimizer import IndexScanPlan, SeqScanPlan
from repro.storage.locks import IsolationLevel


@pytest.fixture
def server():
    s = DatabaseServer()
    s.execute("CREATE TABLE emp (name LVARCHAR, age INTEGER)")
    for i in range(10):
        s.execute(f"INSERT INTO emp VALUES ('p{i}', {20 + i})")
    return s


class TestBasicDml:
    def test_select_star(self, server):
        rows = server.execute("SELECT * FROM emp")
        assert len(rows) == 10
        assert rows[0] == {"name": "p0", "age": 20}

    def test_projection(self, server):
        rows = server.execute("SELECT age FROM emp WHERE name = 'p3'")
        assert rows == [{"age": 23}]

    def test_comparisons(self, server):
        assert len(server.execute("SELECT * FROM emp WHERE age >= 25")) == 5
        assert len(server.execute("SELECT * FROM emp WHERE age <> 20")) == 9
        assert len(server.execute("SELECT * FROM emp WHERE age < 22")) == 2

    def test_boolean_combinations(self, server):
        rows = server.execute(
            "SELECT * FROM emp WHERE age > 21 AND age < 25 OR name = 'p0'"
        )
        assert {r["name"] for r in rows} == {"p0", "p2", "p3", "p4"}

    def test_not(self, server):
        rows = server.execute("SELECT * FROM emp WHERE NOT age > 21")
        assert {r["age"] for r in rows} == {20, 21}

    def test_update(self, server):
        count = server.execute("UPDATE emp SET age = 99 WHERE name = 'p1'")
        assert count == 1
        assert server.execute("SELECT age FROM emp WHERE name = 'p1'") == [
            {"age": 99}
        ]

    def test_delete(self, server):
        assert server.execute("DELETE FROM emp WHERE age < 25") == 5
        assert len(server.execute("SELECT * FROM emp")) == 5

    def test_insert_arity_mismatch(self, server):
        with pytest.raises(SqlError):
            server.execute("INSERT INTO emp VALUES (1)")

    def test_unknown_table(self, server):
        with pytest.raises(CatalogError):
            server.execute("SELECT * FROM nope")

    def test_plan_is_seqscan_without_index(self, server):
        server.execute("SELECT * FROM emp WHERE age = 20")
        assert isinstance(server.last_plan, SeqScanPlan)


class TestScripts:
    def test_run_script_splits_on_semicolons(self):
        s = DatabaseServer()
        results = s.run_script(
            "CREATE TABLE a (x INTEGER);\n"
            "INSERT INTO a VALUES (1);\n"
            "SELECT * FROM a;"
        )
        assert results[-1] == [{"x": 1}]

    def test_semicolons_inside_strings_preserved(self):
        s = DatabaseServer()
        s.execute("CREATE TABLE a (x LVARCHAR)")
        results = s.run_script("INSERT INTO a VALUES ('a;b'); SELECT * FROM a;")
        assert results[-1] == [{"x": "a;b"}]


class TestTransactions:
    def test_explicit_commit(self, server):
        session = server.create_session()
        server.execute("BEGIN WORK", session)
        server.execute("INSERT INTO emp VALUES ('tx', 50)", session)
        server.execute("COMMIT WORK", session)
        assert len(server.execute("SELECT * FROM emp WHERE age = 50")) == 1

    def test_nested_begin_rejected(self, server):
        session = server.create_session()
        server.execute("BEGIN WORK", session)
        with pytest.raises(TransactionError):
            server.execute("BEGIN WORK", session)

    def test_commit_without_begin_rejected(self, server):
        session = server.create_session()
        with pytest.raises(TransactionError):
            server.execute("COMMIT WORK", session)

    def test_set_isolation(self, server):
        session = server.create_session()
        server.execute("SET ISOLATION TO REPEATABLE READ", session)
        assert session.isolation is IsolationLevel.REPEATABLE_READ
        with pytest.raises(SqlError):
            server.execute("SET ISOLATION TO CHAOS", session)

    def test_transaction_end_callbacks_fire(self, server):
        session = server.create_session()
        server.execute("BEGIN WORK", session)
        observed = []
        session.register_end_callback(
            lambda sess, committed: observed.append(committed)
        )
        server.execute("COMMIT WORK", session)
        assert observed == [True]

        server.execute("BEGIN WORK", session)
        session.register_end_callback(
            lambda sess, committed: observed.append(committed)
        )
        server.execute("ROLLBACK WORK", session)
        assert observed == [True, False]


class TestSbspaceManagement:
    def test_create_and_get(self):
        s = DatabaseServer()
        space = s.create_sbspace("spc")
        assert s.get_sbspace("SPC") is space

    def test_duplicate_rejected(self):
        s = DatabaseServer()
        s.create_sbspace("spc")
        with pytest.raises(CatalogError):
            s.create_sbspace("spc")

    def test_missing_space(self):
        s = DatabaseServer()
        with pytest.raises(CatalogError):
            s.get_sbspace("nope")
