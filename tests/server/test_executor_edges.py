"""Edge cases of the executor and optimizer."""

import pytest

from repro.datablade import register_grtree_blade
from repro.bblade import register_btree_blade
from repro.server import DatabaseServer
from repro.server.errors import (
    CatalogError,
    DataTypeError,
    ExecutionError,
    SqlError,
)
from repro.server.optimizer import IndexScanPlan, SeqScanPlan
from repro.temporal.chronon import Clock, format_chronon


def day(c):
    return format_chronon(c)


@pytest.fixture()
def server():
    s = DatabaseServer(clock=Clock(now=100))
    s.create_sbspace("spc")
    return s


class TestSeqScanUdrEvaluation:
    def test_unknown_function_in_where(self, server):
        server.execute("CREATE TABLE t (a INTEGER)")
        server.execute("INSERT INTO t VALUES (1)")
        with pytest.raises(ExecutionError):
            server.execute("SELECT * FROM t WHERE Frobnicate(a, 1)")

    def test_udr_with_wrong_arity(self, server):
        register_grtree_blade(server)
        server.execute("CREATE TABLE t (te GRT_TimeExtent_t)")
        server.execute(
            f"INSERT INTO t VALUES ('{day(100)}, UC, {day(95)}, NOW')"
        )
        with pytest.raises(ExecutionError):
            server.execute("SELECT * FROM t WHERE Overlaps(te)")

    def test_function_predicate_without_index_runs_as_udr(self, server):
        register_grtree_blade(server)
        server.execute("CREATE TABLE t (te GRT_TimeExtent_t)")
        server.execute(
            f"INSERT INTO t VALUES ('{day(100)}, UC, {day(95)}, NOW')"
        )
        rows = server.execute(
            f"SELECT * FROM t WHERE Overlaps(te, '{day(100)}, UC, {day(100)}, NOW')"
        )
        assert isinstance(server.last_plan, SeqScanPlan)
        assert len(rows) == 1

    def test_type_coercion_failure_in_literal(self, server):
        register_grtree_blade(server)
        server.execute("CREATE TABLE t (te GRT_TimeExtent_t)")
        with pytest.raises(DataTypeError):
            server.execute("INSERT INTO t VALUES ('garbage')")


class TestOptimizerChoices:
    def test_residual_kept_with_index_plan(self, server):
        register_btree_blade(server)
        server.execute("CREATE TABLE t (name LVARCHAR, v INTEGER)")
        server.execute("CREATE INDEX bi ON t(v) USING btree_am IN spc")
        server.prefer_virtual_index = True
        for i in range(50):
            server.execute(f"INSERT INTO t VALUES ('r{i}', {i})")
        rows = server.execute(
            "SELECT name FROM t WHERE v > 40 AND name = 'r45'"
        )
        assert isinstance(server.last_plan, IndexScanPlan)
        assert server.last_plan.residual is not None
        assert [r["name"] for r in rows] == ["r45"]

    def test_or_with_non_strategy_disables_index(self, server):
        register_btree_blade(server)
        server.execute("CREATE TABLE t (name LVARCHAR, v INTEGER)")
        server.execute("CREATE INDEX bi ON t(v) USING btree_am IN spc")
        server.prefer_virtual_index = True
        for i in range(30):
            server.execute(f"INSERT INTO t VALUES ('r{i}', {i})")
        # The OR mixes an indexable atom with a different column: the
        # whole disjunct cannot go to the index.
        rows = server.execute(
            "SELECT name FROM t WHERE v > 25 OR name = 'r1'"
        )
        assert isinstance(server.last_plan, SeqScanPlan)
        assert {r["name"] for r in rows} == {"r1", "r26", "r27", "r28", "r29"}

    def test_two_indexes_candidate_selection(self, server):
        register_btree_blade(server)
        server.execute("CREATE TABLE t (a INTEGER, b INTEGER)")
        server.execute("CREATE INDEX ia ON t(a) USING btree_am IN spc")
        server.execute("CREATE INDEX ib ON t(b) USING btree_am IN spc")
        server.prefer_virtual_index = True
        for i in range(40):
            server.execute(f"INSERT INTO t VALUES ({i}, {39 - i})")
        rows = server.execute("SELECT a FROM t WHERE b = 5")
        assert isinstance(server.last_plan, IndexScanPlan)
        assert server.last_plan.index.name == "ib"
        assert rows == [{"a": 34}]

    def test_not_never_reaches_the_index(self, server):
        register_btree_blade(server)
        server.execute("CREATE TABLE t (v INTEGER)")
        server.execute("CREATE INDEX bi ON t(v) USING btree_am IN spc")
        server.prefer_virtual_index = True
        for i in range(10):
            server.execute(f"INSERT INTO t VALUES ({i})")
        rows = server.execute("SELECT v FROM t WHERE NOT v < 8")
        assert isinstance(server.last_plan, SeqScanPlan)
        assert sorted(r["v"] for r in rows) == [8, 9]


class TestDdlEdges:
    def test_drop_table_with_index_refused(self, server):
        register_btree_blade(server)
        server.execute("CREATE TABLE t (v INTEGER)")
        server.execute("CREATE INDEX bi ON t(v) USING btree_am IN spc")
        with pytest.raises(CatalogError):
            server.execute("DROP TABLE t")
        server.execute("DROP INDEX bi")
        server.execute("DROP TABLE t")

    def test_create_index_on_missing_column(self, server):
        register_btree_blade(server)
        server.execute("CREATE TABLE t (v INTEGER)")
        with pytest.raises(CatalogError):
            server.execute("CREATE INDEX bi ON t(nope) USING btree_am IN spc")

    def test_create_index_without_using_clause(self, server):
        server.execute("CREATE TABLE t (v INTEGER)")
        with pytest.raises(SqlError):
            server.execute("CREATE INDEX bi ON t(v)")

    def test_create_index_in_missing_space(self, server):
        register_btree_blade(server)
        server.execute("CREATE TABLE t (v INTEGER)")
        with pytest.raises(CatalogError):
            server.execute("CREATE INDEX bi ON t(v) USING btree_am IN nowhere")

    def test_opclass_for_wrong_am_rejected(self, server):
        register_btree_blade(server)
        register_grtree_blade(server)
        server.execute("CREATE TABLE t (v INTEGER)")
        with pytest.raises(CatalogError):
            server.execute(
                "CREATE INDEX bi ON t(v grt_opclass) USING btree_am IN spc"
            )

    def test_failed_create_index_rolls_back_catalog(self, server):
        register_grtree_blade(server)
        server.execute("CREATE TABLE t (v INTEGER)")  # wrong column type
        from repro.server.errors import AccessMethodError

        with pytest.raises(AccessMethodError):
            server.execute("CREATE INDEX gi ON t(v) USING grtree_am IN spc")
        assert not server.catalog.has_index("gi")

    def test_autocommit_rolls_back_on_midstatement_error(self, server):
        register_grtree_blade(server)
        server.execute("CREATE TABLE t (te GRT_TimeExtent_t)")
        server.execute("CREATE INDEX gi ON t(te) USING grtree_am IN spc")
        space = server.get_sbspace("spc")
        pages_before = {
            h: dict(b._pages) for h, b in space._objects.items()
        }
        # Delete of a rowid the index does not know about: the blade
        # raises after the table row is gone; autocommit rolls back the
        # index pages (the table row removal is heap-level and outside
        # the WAL's scope in this reproduction).
        info = server.catalog.get_index("gi")
        from repro.server.errors import AccessMethodError
        from repro.temporal.extent import TimeExtent
        from repro.temporal.variables import NOW, UC

        td = server.executor._descriptor(info, server.system_session)
        session = server.create_session()
        server.execute("BEGIN WORK", session)
        am = server.catalog.access_methods.get("grtree_am")
        server.executor.call_purpose(am, "am_open", td)
        with pytest.raises(AccessMethodError):
            server.executor.call_purpose(
                am, "am_delete", td, (TimeExtent(100, UC, 90, NOW),), 12345
            )
        server.execute("ROLLBACK WORK", session)
        pages_after = {h: dict(b._pages) for h, b in space._objects.items()}
        assert pages_after == pages_before
