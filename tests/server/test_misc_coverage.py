"""Odds and ends: trace sinks, empty relations, facade internals."""

import io

import pytest

from repro.server.trace import TraceFacility
from repro.temporal.chronon import Clock
from repro.temporal.relation import BitemporalRelation
from repro.temporal.regions import Region, union_area


class TestTraceSink:
    def test_messages_stream_to_sink(self):
        sink = io.StringIO()
        trace = TraceFacility(sink=sink)
        trace.set_level("grt", 2)
        trace.emit("grt", 1, "level one")
        trace.emit("grt", 2, "level two")
        trace.emit("grt", 3, "too deep")
        lines = sink.getvalue().strip().splitlines()
        assert lines == ["[grt:1] level one", "[grt:2] level two"]


class TestEmptyRelation:
    def test_format_table_with_no_rows(self):
        rel = BitemporalRelation(["who"], clock=Clock(now=10))
        text = rel.format_table()
        assert "who" in text and "TTbegin" in text
        assert len(text.splitlines()) == 2  # header + rule only

    def test_queries_on_empty_relation(self):
        rel = BitemporalRelation(["who"], clock=Clock(now=10))
        assert rel.current_state() == []
        assert rel.timeslice(5, 5) == []
        assert rel.delete(lambda r: True) == 0


class TestRegionOddities:
    def test_margin(self):
        region = Region.make(0, 4, 0, 2)
        assert region.margin() == 5 + 3

    def test_str_renders_shape(self):
        assert "rect" in str(Region.make(0, 1, 0, 1))
        assert "stair" in str(Region.make(0, 5, 0, 5, stair=True))

    def test_union_area_empty(self):
        assert union_area([]) == 0

    def test_union_bounds_shortcut(self):
        a = Region.make(0, 1, 0, 1)
        b = Region.make(3, 4, 3, 4)
        bound = a.union_bounds(b)
        assert bound.contains(a) and bound.contains(b)


class TestFacadeInternals:
    def test_current_rows_sql_filters_by_column(self):
        from repro.core import BitemporalDatabase

        db = BitemporalDatabase(["who"])
        db.clock.set(50)
        db.insert({"who": "a"}, vt_begin=50)
        db.insert({"who": "b"}, vt_begin=50)
        rows = db.current_rows_sql("who", "a")
        assert [r["who"] for r in rows] == ["a"]

    def test_overlapping_uses_index(self):
        from repro.core import BitemporalDatabase
        from repro.server.optimizer import IndexScanPlan
        from repro.temporal.extent import TimeExtent
        from repro.temporal.variables import NOW, UC

        db = BitemporalDatabase(["who"])
        db.clock.set(50)
        for i in range(80):
            db.insert({"who": f"p{i}"}, vt_begin=40)
        rows = db.overlapping(TimeExtent(50, UC, 50, NOW))
        assert isinstance(db.server.last_plan, IndexScanPlan)
        assert len(rows) == 80
