"""Observability x fault-injection interplay: fault-aborted statements
must leave error-tagged spans carrying the failpoint name, bump the
``sql.errors_total`` counter, feed the workload model's error column,
and land in the structured event log (with the slow-query log picking
them up too when the threshold is armed)."""

import pytest

from repro.datablade import register_grtree_blade
from repro.faults import FaultInjected
from repro.obs.workload import fingerprint
from repro.server import DatabaseServer

EXTENT = "'01/01/98, UC, 01/01/98, NOW'"


@pytest.fixture
def server():
    s = DatabaseServer()
    s.create_sbspace("spc")
    register_grtree_blade(s)
    s.execute("CREATE TABLE e (n LVARCHAR, te GRT_TimeExtent_t)")
    s.execute("CREATE INDEX gi ON e(te) USING grtree_am IN spc")
    s.clock.set_text("01/01/98")
    s.execute(f"INSERT INTO e VALUES ('seed', {EXTENT})")
    return s


def arm(server, point="sbspace.page_write"):
    message = server.execute(f"SET FAULT '{point}' RAISE TIMES 1")
    assert "armed" in message
    return point


class TestFaultTaggedSpans:
    def test_fault_abort_tags_the_root_span(self, server):
        point = arm(server)
        with pytest.raises(FaultInjected):
            server.execute(f"INSERT INTO e VALUES ('doomed', {EXTENT})")
        root = server.obs.spans.last_root("sql.insert")
        assert root is not None
        assert root.attrs["fault"] == point
        assert "FaultInjected" in root.attrs["error"]

    def test_errors_total_counts_fault_aborts(self, server):
        before = server.obs.metrics.counter("sql.errors_total")
        arm(server)
        with pytest.raises(FaultInjected):
            server.execute(f"INSERT INTO e VALUES ('doomed', {EXTENT})")
        assert server.obs.metrics.counter("sql.errors_total") == before + 1
        # A clean statement afterwards does not move the counter.
        server.execute(f"INSERT INTO e VALUES ('fine', {EXTENT})")
        assert server.obs.metrics.counter("sql.errors_total") == before + 1

    def test_workload_model_counts_the_error(self, server):
        arm(server)
        sql = f"INSERT INTO e VALUES ('doomed', {EXTENT})"
        with pytest.raises(FaultInjected):
            server.execute(sql)
        stats = server.obs.workload.get(fingerprint(sql))
        # Same shape as the seed insert: 1 clean call + 1 errored call.
        assert stats.errors == 1
        assert stats.calls == 2

    def test_sql_errors_also_tag_spans_without_fault_name(self, server):
        with pytest.raises(Exception):
            server.execute("SELECT nope FROM missing_table")
        root = server.obs.spans.last_root("sql.select")
        assert root is not None
        assert "error" in root.attrs
        assert "fault" not in root.attrs


class TestFaultEvents:
    def test_error_event_carries_the_fault_name(self, server):
        point = arm(server)
        sql = f"INSERT INTO e VALUES ('doomed', {EXTENT})"
        with pytest.raises(FaultInjected):
            server.execute(sql)
        (event,) = [e for e in server.obs.events.tail() if e.type == "error"]
        assert event.fields["fault"] == point
        assert event.fields["sql"] == sql
        assert event.fields["fingerprint"] == fingerprint(sql)
        assert event.fields["duration_ms"] >= 0.0

    def test_slow_query_log_picks_up_fault_aborted_statements(self, server):
        # Threshold 0 ms: every statement is "slow", including the
        # fault-aborted one -- its slow_query entry names the fault.
        server.execute("SET SLOW QUERY THRESHOLD 0")
        point = arm(server)
        with pytest.raises(FaultInjected):
            server.execute(f"INSERT INTO e VALUES ('doomed', {EXTENT})")
        slow = [
            e for e in server.obs.events.tail() if e.type == "slow_query"
        ]
        assert slow, "threshold 0 recorded no slow queries"
        tagged = [e for e in slow if e.fields.get("fault") == point]
        assert len(tagged) == 1

    def test_threshold_off_stops_slow_logging(self, server):
        server.execute("SET SLOW QUERY THRESHOLD 0")
        server.execute(f"INSERT INTO e VALUES ('a', {EXTENT})")
        assert any(
            e.type == "slow_query" for e in server.obs.events.tail()
        )
        message = server.execute("SET SLOW QUERY THRESHOLD OFF")
        assert message == "slow query logging off"
        server.obs.events.clear()
        server.execute(f"INSERT INTO e VALUES ('b', {EXTENT})")
        assert not any(
            e.type == "slow_query" for e in server.obs.events.tail()
        )

    def test_show_events_renders_the_error(self, server):
        arm(server)
        with pytest.raises(FaultInjected):
            server.execute(f"INSERT INTO e VALUES ('doomed', {EXTENT})")
        rendered = server.execute("SHOW EVENTS")
        assert "error" in rendered
        assert "sbspace.page_write" in rendered

    def test_negative_threshold_rejected(self, server):
        with pytest.raises(Exception):
            server.execute("SET SLOW QUERY THRESHOLD -5")
