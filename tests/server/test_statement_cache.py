"""Server-side caching: the parsed-statement cache, configurable
buffer/node-cache sizes (server-wide and per ``CREATE INDEX ... WITH``),
the blade's handle cache, and their SHOW STATS surfacing."""

import pytest

from repro.datablade import register_grtree_blade
from repro.server import DatabaseServer
from repro.server import sql as ast

EXTENT = "'01/01/98, UC, 01/01/98, NOW'"


@pytest.fixture
def server():
    s = DatabaseServer()
    s.create_sbspace("spc")
    register_grtree_blade(s)
    s.prefer_virtual_index = True
    s.execute("CREATE TABLE e (n LVARCHAR, te GRT_TimeExtent_t)")
    s.execute("CREATE INDEX gi ON e(te) USING grtree_am IN spc")
    s.clock.set_text("01/01/98")
    return s


class TestStatementCache:
    def test_repeated_sql_text_hits_the_cache(self, server):
        sql = f"SELECT n FROM e WHERE Overlaps(te, {EXTENT})"
        before_hits = server._stmt_cache_hits
        server.execute(sql)
        server.execute(sql)
        server.execute(sql)
        assert server._stmt_cache_hits == before_hits + 2

    def test_cached_statement_reexecutes_correctly(self, server):
        sql = f"SELECT n FROM e WHERE Overlaps(te, {EXTENT})"
        assert server.execute(sql) == []
        server.execute(f"INSERT INTO e VALUES ('a', {EXTENT})")
        # Same text, cached parse tree, fresh data.
        assert [r["n"] for r in server.execute(sql)] == ["a"]

    def test_introspection_statements_bypass_the_cache(self, server):
        before = len(server._statement_cache)
        server.execute("SHOW STATS")
        server.execute("SHOW SPANS")
        server.execute("SET TRACE CLASS am LEVEL 1")
        assert len(server._statement_cache) == before
        assert all(
            not isinstance(stmt, server._INTROSPECTION)
            for stmt in server._statement_cache.values()
        )

    def test_lru_bound_is_enforced(self):
        s = DatabaseServer(statement_cache_size=2)
        s.execute("CREATE TABLE a (x INTEGER)")
        s.execute("CREATE TABLE b (x INTEGER)")
        s.execute("CREATE TABLE c (x INTEGER)")
        assert len(s._statement_cache) == 2

    def test_zero_size_disables_caching(self):
        s = DatabaseServer(statement_cache_size=0)
        s.execute("CREATE TABLE a (x INTEGER)")
        s.execute("INSERT INTO a VALUES (1)")
        s.execute("INSERT INTO a VALUES (1)")
        assert len(s._statement_cache) == 0
        assert s._stmt_cache_hits == 0

    def test_counters_surface_in_show_stats(self, server):
        sql = f"SELECT n FROM e WHERE Overlaps(te, {EXTENT})"
        server.execute(sql)
        server.execute(sql)
        snapshot = server.obs.metrics.snapshot()
        assert snapshot["sql.stmtcache.hits"] >= 1
        assert snapshot["sql.stmtcache.misses"] >= 1
        report = server.execute("SHOW STATS")
        assert "sql.stmtcache.hits" in report


class TestCreateIndexWith:
    def test_with_clause_parses_into_parameters(self):
        stmt = ast.parse(
            "CREATE INDEX gi ON e(te) USING grtree_am IN spc "
            "WITH (buffer_capacity = 8, node_cache = 16)"
        )
        assert stmt.parameters == {"buffer_capacity": 8, "node_cache": 16}

    def test_with_clause_sizes_the_caches(self, server):
        server.execute(
            "CREATE TABLE t2 (n LVARCHAR, te GRT_TimeExtent_t)"
        )
        server.execute(
            "CREATE INDEX gi2 ON t2(te) USING grtree_am IN spc "
            "WITH (buffer_capacity = 8, node_cache = 16)"
        )
        server.execute(f"INSERT INTO t2 VALUES ('a', {EXTENT})")
        pool = server.obs.pools["index.gi2"]
        store = server.obs.node_caches["index.gi2"]
        assert pool.capacity == 8
        assert store.node_cache_size == 16
        info = server.catalog.get_index("gi2")
        assert info.parameters["buffer_capacity"] == 8

    def test_server_wide_defaults_apply(self):
        s = DatabaseServer(buffer_capacity=24, node_cache_size=48)
        s.create_sbspace("spc")
        register_grtree_blade(s)
        s.prefer_virtual_index = True
        s.execute("CREATE TABLE e (n LVARCHAR, te GRT_TimeExtent_t)")
        s.execute("CREATE INDEX gi ON e(te) USING grtree_am IN spc")
        assert s.obs.pools["index.gi"].capacity == 24
        assert s.obs.node_caches["index.gi"].node_cache_size == 48

    def test_node_cache_zero_disables_per_index(self, server):
        server.execute("CREATE TABLE t3 (n LVARCHAR, te GRT_TimeExtent_t)")
        server.execute(
            "CREATE INDEX gi3 ON t3(te) USING grtree_am IN spc "
            "WITH (node_cache = 0)"
        )
        server.execute(f"INSERT INTO t3 VALUES ('a', {EXTENT})")
        store = server.obs.node_caches["index.gi3"]
        assert store.node_cache_size == 0
        assert store.cached_nodes == 0

    def test_capacity_column_in_show_stats(self, server):
        server.execute(f"INSERT INTO e VALUES ('a', {EXTENT})")
        report = server.execute("SHOW STATS")
        assert "frames" in report       # buffer-pool capacity column
        assert "node caches" in report  # node-cache section


class TestHandleCache:
    def test_pool_survives_across_statements(self, server):
        server.execute(f"INSERT INTO e VALUES ('a', {EXTENT})")
        pool = server.obs.pools["index.gi"]
        server.execute(f"SELECT n FROM e WHERE Overlaps(te, {EXTENT})")
        assert server.obs.pools["index.gi"] is pool

    def test_handle_cache_off_rebuilds_per_statement(self):
        s = DatabaseServer()
        s.create_sbspace("spc")
        register_grtree_blade(s, handle_cache=False)
        s.prefer_virtual_index = True
        s.execute("CREATE TABLE e (n LVARCHAR, te GRT_TimeExtent_t)")
        s.execute("CREATE INDEX gi ON e(te) USING grtree_am IN spc")
        s.execute(f"INSERT INTO e VALUES ('a', {EXTENT})")
        pool = s.obs.pools["index.gi"]
        s.execute(f"SELECT n FROM e WHERE Overlaps(te, {EXTENT})")
        assert s.obs.pools["index.gi"] is not pool

    def test_drop_and_recreate_does_not_reuse_stale_handle(self, server):
        server.execute(f"INSERT INTO e VALUES ('a', {EXTENT})")
        server.execute("DROP INDEX gi")
        server.execute("CREATE INDEX gi ON e(te) USING grtree_am IN spc")
        rows = server.execute(f"SELECT n FROM e WHERE Overlaps(te, {EXTENT})")
        assert [r["n"] for r in rows] == ["a"]
        server.execute("CHECK INDEX gi")

    def test_rollback_invalidates_cached_handles(self, server):
        session = server.create_session()
        server.execute(f"INSERT INTO e VALUES ('kept', {EXTENT})", session)
        server.execute("BEGIN WORK", session)
        server.execute(f"INSERT INTO e VALUES ('doomed', {EXTENT})", session)
        server.execute("ROLLBACK WORK", session)
        rows = server.execute(
            f"SELECT n FROM e WHERE Overlaps(te, {EXTENT})", session
        )
        assert [r["n"] for r in rows] == ["kept"]
        server.execute("CHECK INDEX gi", session)
