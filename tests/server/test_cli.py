"""Tests for the SQL shell."""

import io

import pytest

from repro.cli import Shell


@pytest.fixture()
def shell():
    return Shell()


def run(shell, *lines):
    out = io.StringIO()
    for line in lines:
        shell.run_line(line, out)
    return out.getvalue()


class TestShell:
    def test_sql_roundtrip(self, shell):
        output = run(
            shell,
            "CREATE TABLE t (a INTEGER)",
            "INSERT INTO t VALUES (7)",
            "SELECT * FROM t",
        )
        assert "table t created" in output
        assert "7" in output
        assert "(1 row(s))" in output

    def test_errors_are_reported_not_raised(self, shell):
        output = run(shell, "SELECT * FROM missing")
        assert output.startswith("error:")

    def test_install_and_query_blade(self, shell):
        output = run(
            shell,
            "\\sbspace spc",
            "\\install grtree",
            "\\prefer on",
            "CREATE TABLE e (n LVARCHAR, te GRT_TimeExtent_t)",
            "CREATE INDEX gi ON e(te) USING grtree_am IN spc",
            "\\clock set 01/01/98",
            "INSERT INTO e VALUES ('a', '01/01/98, UC, 01/01/98, NOW')",
            "SELECT n FROM e WHERE Overlaps(te, '01/01/98, UC, 01/01/98, NOW')",
        )
        assert "DataBlade grtree registered" in output
        assert "(1 row(s))" in output

    def test_install_twice_is_friendly(self, shell):
        output = run(shell, "\\install btree", "\\install btree")
        assert "already installed" in output

    def test_clock_commands(self, shell):
        output = run(shell, "\\clock", "\\clock +5", "\\clock")
        assert "now = 0" in output
        assert "now = 5" in output

    def test_trace_and_messages(self, shell):
        output = run(
            shell,
            "\\sbspace spc",
            "\\install grtree",
            "\\trace am 1",
            "CREATE TABLE e (te GRT_TimeExtent_t)",
            "CREATE INDEX gi ON e(te) USING grtree_am IN spc",
            "\\messages am",
        )
        assert "grtree_am.am_create" in output

    def test_catalog_listing(self, shell):
        output = run(shell, "CREATE TABLE t (a INTEGER)", "\\catalog")
        assert "tables     : t" in output

    def test_unknown_meta_command(self, shell):
        assert "unknown command" in run(shell, "\\frobnicate")

    def test_quit_raises_eof(self, shell):
        with pytest.raises(EOFError):
            shell.run_line("\\quit", io.StringIO())

    def test_empty_result(self, shell):
        output = run(shell, "CREATE TABLE t (a INTEGER)", "SELECT * FROM t")
        assert "(no rows)" in output

    def test_workload_and_events_commands(self, shell):
        output = run(
            shell,
            "CREATE TABLE t (a INTEGER)",
            "SET SLOW QUERY THRESHOLD 0",
            "INSERT INTO t VALUES (7)",
            "\\workload",
            "\\events",
        )
        assert "workload model" in output
        assert "INSERT INTO T VALUES (?)" in output
        assert "slow_query" in output

    def test_spans_filter_arguments(self, shell):
        output = run(
            shell,
            "CREATE TABLE t (a INTEGER)",
            "INSERT INTO t VALUES (7)",
            "\\spans limit 1",
        )
        assert "sql.insert" in output
        # limit 1 keeps only the most recent tree
        assert "sql.create" not in output
        assert "usage:" in run(shell, "\\spans sideways")

    def test_script_runner(self, shell, tmp_path):
        script = tmp_path / "s.sql"
        script.write_text(
            "-- comment\n"
            "CREATE TABLE t (a INTEGER);\n"
            "INSERT INTO t\n  VALUES (1);\n"
            "\\catalog\n"
        )
        shell.run_script(str(script))
        assert shell.server.catalog.get_table("t").row_count == 1
