"""End-to-end tests for the observability layer: SHOW STATS / SHOW SPANS
/ SET TRACE CLASS, span trees over a GR-tree workload, the satellite
invariant tying span page-read deltas to BufferPool miss counts, and the
``repro.cli stats`` subcommand."""

import io
import json

import pytest

from repro.cli import Shell, main, stats_main
from repro.datablade import register_grtree_blade
from repro.server import DatabaseServer

EXTENT = "'01/01/98, UC, 01/01/98, NOW'"

WORKLOAD = [
    "CREATE TABLE e (n LVARCHAR, te GRT_TimeExtent_t)",
    "CREATE INDEX gi ON e(te) USING grtree_am IN spc",
]


@pytest.fixture
def server():
    s = DatabaseServer()
    s.create_sbspace("spc")
    register_grtree_blade(s)
    s.prefer_virtual_index = True
    for statement in WORKLOAD:
        s.execute(statement)
    s.clock.set_text("01/01/98")
    for i in range(8):
        s.execute(f"INSERT INTO e VALUES ('r{i}', {EXTENT})")
        s.clock.advance(1)
    return s


class TestShowStats:
    def test_text_report_has_nonzero_sections(self, server):
        server.execute(f"SELECT n FROM e WHERE Overlaps(te, {EXTENT})")
        report = server.execute("SHOW STATS")
        assert "repro observability" in report
        assert "am.calls" in report
        assert "buffer hit ratio:" in report
        assert "acquires" in report
        # the workload really moved the counters
        obs = server.obs
        assert obs.metrics.counter("am.calls") > 0
        assert obs.metrics.counter("am.calls.am_insert") >= 8
        assert obs.metrics.counter("grtree.inserts") >= 8
        assert obs.metrics.snapshot()["locks.acquires"] > 0

    def test_json_matches_text_data(self, server):
        server.execute(f"SELECT n FROM e WHERE Overlaps(te, {EXTENT})")
        payload = json.loads(server.execute("SHOW STATS JSON"))
        assert payload["enabled"] is True
        counters = payload["metrics"]["counters"]
        assert counters["am.calls"] == server.obs.metrics.counter("am.calls")
        assert payload["buffer_totals"]["logical_reads"] > 0
        assert 0.0 <= payload["buffer_totals"]["hit_ratio"] <= 1.0

    def test_statement_latency_histogram_fills(self, server):
        h = server.obs.metrics.histogram("sql.statement_seconds")
        assert h.count >= len(WORKLOAD) + 8


class TestSpans:
    def test_select_produces_a_span_tree(self, server):
        rows = server.execute(f"SELECT n FROM e WHERE Overlaps(te, {EXTENT})")
        assert len(rows) == 8
        root = server.obs.spans.last_root("sql.select")
        assert root is not None
        assert root.find("sql.parse") is not None
        assert root.find("plan.choose") is not None
        assert root.find("am.am_getnext") is not None
        rendered = server.execute("SHOW SPANS")
        assert "sql.select" in rendered
        assert "am.am_getnext" in rendered

    def test_show_spans_json(self, server):
        server.execute(f"SELECT n FROM e WHERE Overlaps(te, {EXTENT})")
        trees = json.loads(server.execute("SHOW SPANS JSON"))
        names = {tree["name"] for tree in trees}
        assert "sql.select" in names and "sql.insert" in names

    def test_introspection_statements_are_unspanned(self, server):
        before = len(server.obs.spans.roots)
        server.execute("SHOW STATS")
        server.execute("SHOW SPANS")
        server.execute("SET TRACE CLASS am LEVEL 1")
        assert len(server.obs.spans.roots) == before

    def test_span_page_reads_match_buffer_pool_misses(self, server):
        """Satellite: the root span's buffer-pool deltas must agree with
        the IOStats counters of the pool the query ran against.

        The blade's handle cache keeps the pool (and its warm frames)
        alive across statements, so the query's own I/O is the snapshot
        diff over the SELECT -- and warm frames legitimately mean zero
        physical reads."""
        pool = server.obs.pools["index.gi"]
        before = pool.stats.snapshot()
        server.execute(f"SELECT n FROM e WHERE Overlaps(te, {EXTENT})")
        assert server.obs.pools["index.gi"] is pool  # handle cache reuse
        io = pool.stats - before
        root = server.obs.spans.last_root("sql.select")
        deltas = root.metric_deltas
        assert io.logical_reads > 0
        assert deltas["buffer.index.gi.logical_reads"] == io.logical_reads
        # zero-delta metrics are omitted from the span's delta map
        assert deltas.get("buffer.index.gi.physical_reads", 0) == io.physical_reads

    def test_disabled_obs_records_nothing_but_sql_still_runs(self, server):
        server.obs.disable()
        before = len(server.obs.spans.roots)
        calls = server.obs.metrics.counter("am.calls")
        rows = server.execute(f"SELECT n FROM e WHERE Overlaps(te, {EXTENT})")
        assert len(rows) == 8
        assert len(server.obs.spans.roots) == before
        assert server.obs.metrics.counter("am.calls") == calls


class TestSetTraceClass:
    def test_sets_level(self, server):
        message = server.execute("SET TRACE CLASS am LEVEL 2")
        assert "am" in message and "2" in message
        assert server.trace.levels()["am"] == 2
        assert "am=2" in server.execute("SHOW STATS")


SCRIPT = """\
\\sbspace spc
\\install grtree
\\prefer on
CREATE TABLE e (n LVARCHAR, te GRT_TimeExtent_t);
CREATE INDEX gi ON e(te) USING grtree_am IN spc;
\\clock set 01/01/98
INSERT INTO e VALUES ('a', '01/01/98, UC, 01/01/98, NOW');
SELECT n FROM e WHERE Overlaps(te, '01/01/98, UC, 01/01/98, NOW');
"""


class TestCli:
    @pytest.fixture
    def script(self, tmp_path):
        path = tmp_path / "workload.sql"
        path.write_text(SCRIPT)
        return str(path)

    def test_stats_subcommand_emits_valid_json(self, script):
        out = io.StringIO()
        assert stats_main(["-f", script], out=out) == 0
        payload = json.loads(out.getvalue())
        assert payload["metrics"]["counters"]["am.calls"] > 0
        assert payload["buffer_totals"]["logical_reads"] > 0
        assert "spans" not in payload  # only with --spans

    def test_stats_subcommand_spans_and_text(self, script):
        out = io.StringIO()
        stats_main(["-f", script, "--spans"], out=out)
        assert "sql.select" in json.dumps(json.loads(out.getvalue())["spans"])
        out = io.StringIO()
        stats_main(["-f", script, "--format", "text", "--spans"], out=out)
        assert "buffer hit ratio:" in out.getvalue()
        assert "am.am_getnext" in out.getvalue()

    def test_main_dispatches_stats(self, script, capsys):
        assert main(["stats", "-f", script]) == 0
        lines = capsys.readouterr().out.splitlines()
        start = lines.index("{")
        payload = json.loads("\n".join(lines[start:]))
        assert payload["enabled"] is True

    def test_shell_meta_commands(self):
        shell = Shell()
        out = io.StringIO()
        shell.run_line("CREATE TABLE t (a INTEGER)", out)
        shell.run_line("\\stats", out)
        shell.run_line("\\stats json", out)
        shell.run_line("\\spans", out)
        text = out.getvalue()
        assert "repro observability" in text
        assert '"sql.statements"' in text
        assert "sql.createtable" in text
