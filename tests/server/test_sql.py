"""Tests for the SQL tokenizer and parser."""

import pytest

from repro.server import sql as ast
from repro.server.errors import SqlError
from repro.server.sql import parse, tokenize


class TestTokenizer:
    def test_words_and_numbers(self):
        tokens = tokenize("SELECT 42 FROM t")
        assert [(t.kind, t.value) for t in tokens] == [
            ("word", "SELECT"), ("number", "42"), ("word", "FROM"), ("word", "t"),
        ]

    def test_single_quoted_string(self):
        tokens = tokenize("'12/10/95, UC, 12/10/95, NOW'")
        assert tokens[0].kind == "string"
        assert tokens[0].value == "12/10/95, UC, 12/10/95, NOW"

    def test_double_quoted_string(self):
        assert tokenize('"S"')[0].value == "S"

    def test_escaped_quote(self):
        assert tokenize("'it''s'")[0].value == "it's"

    def test_operators(self):
        kinds = [t.value for t in tokenize("a <= b >= c <> d != e")]
        assert kinds == ["a", "<=", "b", ">=", "c", "<>", "d", "!=", "e"]

    def test_path_like_words(self):
        # External names contain dots and slashes.
        tokens = tokenize("usr/functions/grtree.bld")
        assert len(tokens) == 1 and tokens[0].kind == "word"

    def test_garbage_rejected(self):
        with pytest.raises(SqlError):
            tokenize("SELECT @ FROM t")


class TestDdlParsing:
    def test_create_table(self):
        stmt = parse("CREATE TABLE emp (name LVARCHAR, age INTEGER);")
        assert isinstance(stmt, ast.CreateTable)
        assert stmt.name == "emp"
        assert stmt.columns == [("name", "LVARCHAR"), ("age", "INTEGER")]

    def test_create_function_paper_example(self):
        stmt = parse(
            "CREATE FUNCTION grt_open(pointer) RETURNING int "
            "EXTERNAL NAME 'usr/functions/grtree.bld(grt_open)' LANGUAGE c"
        )
        assert isinstance(stmt, ast.CreateFunction)
        assert stmt.name == "grt_open"
        assert stmt.arg_types == ("pointer",)
        assert stmt.external_name == "usr/functions/grtree.bld(grt_open)"
        assert stmt.language == "c"

    def test_create_access_method_paper_example(self):
        stmt = parse(
            "CREATE SECONDARY ACCESS_METHOD grtree_am ("
            "am_create = grt_create, am_open = grt_open, "
            "am_getnext = grt_getnext, am_close = grt_close, "
            'am_drop = grt_drop, am_sptype = "S")'
        )
        assert isinstance(stmt, ast.CreateAccessMethod)
        assert stmt.name == "grtree_am"
        assert stmt.slots["am_getnext"] == "grt_getnext"
        assert stmt.sptype == "S"

    def test_create_opclass_paper_example(self):
        stmt = parse(
            "CREATE OPCLASS grt_opclass FOR grtree_am "
            "STRATEGIES(grt_overlap, grt_contains, grt_containedin, grt_equal) "
            "SUPPORT(grt_union, grt_size, grt_intersection)"
        )
        assert isinstance(stmt, ast.CreateOpclass)
        assert stmt.am_name == "grtree_am"
        assert len(stmt.strategies) == 4
        assert len(stmt.supports) == 3
        assert not stmt.default

    def test_create_default_opclass(self):
        stmt = parse("CREATE DEFAULT OPCLASS oc FOR am STRATEGIES(f)")
        assert stmt.default

    def test_create_index_paper_example(self):
        stmt = parse(
            "CREATE INDEX grt_index ON employees(column1 grt_opclass) "
            "USING grtree_am IN spc"
        )
        assert isinstance(stmt, ast.CreateIndex)
        assert stmt.columns == [("column1", "grt_opclass")]
        assert stmt.am_name == "grtree_am"
        assert stmt.space == "spc"

    def test_create_index_without_opclass(self):
        stmt = parse("CREATE INDEX i ON t(c) USING am")
        assert stmt.columns == [("c", None)]
        assert stmt.space is None

    def test_drop_statements(self):
        assert isinstance(parse("DROP TABLE t"), ast.DropTable)
        assert isinstance(parse("DROP INDEX i"), ast.DropIndex)
        assert isinstance(parse("DROP FUNCTION f"), ast.DropFunction)
        assert isinstance(
            parse("DROP SECONDARY ACCESS_METHOD am"), ast.DropAccessMethod
        )
        assert isinstance(parse("DROP OPCLASS oc"), ast.DropOpclass)


class TestDmlParsing:
    def test_insert(self):
        stmt = parse("INSERT INTO t VALUES (1, 'x')")
        assert isinstance(stmt, ast.Insert)
        assert stmt.columns is None
        assert [v.python_value for v in stmt.values] == [1, "x"]

    def test_insert_with_columns(self):
        stmt = parse("INSERT INTO t (a, b) VALUES (1, 2)")
        assert stmt.columns == ["a", "b"]

    def test_select_star(self):
        stmt = parse("SELECT * FROM t")
        assert stmt.columns == ["*"] and stmt.where is None

    def test_select_with_function_where(self):
        stmt = parse(
            "SELECT Name FROM Employees "
            "WHERE Overlaps(Time_Extent, \"12/10/95, UC, 12/10/95, NOW\")"
        )
        assert isinstance(stmt.where, ast.FunctionCall)
        assert stmt.where.name == "Overlaps"
        assert isinstance(stmt.where.args[0], ast.ColumnRef)
        assert isinstance(stmt.where.args[1], ast.Literal)

    def test_where_precedence_and_over_or(self):
        stmt = parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
        assert isinstance(stmt.where, ast.Or)
        assert isinstance(stmt.where.children[1], ast.And)

    def test_where_parentheses(self):
        stmt = parse("SELECT * FROM t WHERE (a = 1 OR b = 2) AND c = 3")
        assert isinstance(stmt.where, ast.And)
        assert isinstance(stmt.where.children[0], ast.Or)

    def test_where_not(self):
        stmt = parse("SELECT * FROM t WHERE NOT a = 1")
        assert isinstance(stmt.where, ast.Not)

    def test_update(self):
        stmt = parse("UPDATE t SET a = 1, b = 'x' WHERE a = 2")
        assert isinstance(stmt, ast.Update)
        assert len(stmt.assignments) == 2

    def test_delete(self):
        stmt = parse("DELETE FROM t WHERE f(c, 'q')")
        assert isinstance(stmt, ast.Delete)
        assert isinstance(stmt.where, ast.FunctionCall)

    def test_negative_numbers(self):
        stmt = parse("SELECT * FROM t WHERE a > -5")
        assert stmt.where.right.python_value == -5

    def test_float_literal(self):
        stmt = parse("INSERT INTO t VALUES (1.5)")
        assert stmt.values[0].python_value == 1.5


class TestControlParsing:
    def test_transactions(self):
        assert isinstance(parse("BEGIN WORK"), ast.BeginWork)
        assert isinstance(parse("COMMIT WORK"), ast.CommitWork)
        assert isinstance(parse("ROLLBACK WORK"), ast.RollbackWork)
        assert isinstance(parse("COMMIT"), ast.CommitWork)

    def test_set_isolation(self):
        stmt = parse("SET ISOLATION TO REPEATABLE READ")
        assert isinstance(stmt, ast.SetIsolation)
        assert stmt.level == "REPEATABLE READ"

    def test_check_index(self):
        stmt = parse("CHECK INDEX grt_index")
        assert isinstance(stmt, ast.CheckIndex)

    def test_update_statistics(self):
        stmt = parse("UPDATE STATISTICS FOR INDEX gi")
        assert isinstance(stmt, ast.UpdateStatistics)
        assert stmt.index_name == "gi"


class TestErrors:
    def test_trailing_tokens_rejected(self):
        with pytest.raises(SqlError):
            parse("DROP TABLE t garbage")

    def test_unknown_statement(self):
        with pytest.raises(SqlError):
            parse("GRANT ALL TO nobody")

    def test_truncated_statement(self):
        with pytest.raises(SqlError):
            parse("CREATE TABLE t (a")

    def test_missing_comparison(self):
        with pytest.raises(SqlError):
            parse("SELECT * FROM t WHERE a")


class TestFunctionHints:
    """Section 5.2: NEGATOR and COMMUTATOR are the only inter-routine
    associations a developer can declare."""

    def test_with_clause_parsed(self):
        stmt = parse(
            "CREATE FUNCTION Contains(Box, Box) RETURNING boolean "
            "EXTERNAL NAME 'lib.bld(f)' LANGUAGE c "
            "WITH (COMMUTATOR = Within, NEGATOR = NotContains)"
        )
        assert stmt.commutator == "Within"
        assert stmt.negator == "NotContains"

    def test_unknown_hint_rejected(self):
        with pytest.raises(SqlError):
            parse(
                "CREATE FUNCTION f(Box) RETURNING boolean "
                "EXTERNAL NAME 'lib.bld(f)' LANGUAGE c "
                "WITH (IMPLIES = g)"
            )

    def test_hints_reach_the_registry(self):
        from repro.server import DatabaseServer

        server = DatabaseServer()
        server.library.register("lib.bld", "f", lambda a, b: True)
        server.execute(
            "CREATE FUNCTION Touches(INTEGER, INTEGER) RETURNING boolean "
            "EXTERNAL NAME 'lib.bld(f)' LANGUAGE c "
            "WITH (COMMUTATOR = Touches)"
        )
        routine = server.catalog.routines.resolve(
            "Touches", ("INTEGER", "INTEGER")
        )
        assert routine.commutator == "Touches"
