"""Shared fixtures for the whole test tree."""

import pytest

from repro.analysis import lockgraph


@pytest.fixture
def lock_audit():
    """Audit lock acquisition order for the duration of a test.

    Every ``threading.Lock``/``RLock`` created inside the test (engine
    lock, LockManager mutex, buffer-pool and node-store latches, net
    server locks, ...) is wrapped by :mod:`repro.analysis.lockgraph`;
    at teardown the acquisition-order graph is checked and the test
    fails with both stacks if a potential deadlock cycle was observed.

    Depend on this fixture *before* any fixture that builds the server
    so the wrapper is installed when the locks are created.
    """
    with lockgraph.watching() as graph:
        yield graph
    graph.assert_no_cycles()
