"""Property-based tests for the R-tree family (hypothesis)."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.rtree.geometry import Rect
from repro.rtree.guttman import GuttmanRTree
from repro.rtree.node import NodeStore
from repro.rtree.rstar import RStarTree
from repro.storage.buffer import BufferPool
from repro.storage.pages import InMemoryPageStore


@st.composite
def rects(draw):
    x = draw(st.floats(min_value=0, max_value=500, allow_nan=False))
    y = draw(st.floats(min_value=0, max_value=500, allow_nan=False))
    w = draw(st.floats(min_value=0, max_value=40, allow_nan=False))
    h = draw(st.floats(min_value=0, max_value=40, allow_nan=False))
    return Rect((x, y), (x + w, y + h))


def make_tree(cls=RStarTree):
    pool = BufferPool(InMemoryPageStore(page_size=512), capacity=64)
    return cls(NodeStore(pool, ndim=2))


class TestRectProperties:
    @given(rects(), rects())
    @settings(max_examples=200, deadline=None)
    def test_union_contains_both(self, a, b):
        merged = a.union(b)
        assert merged.contains(a) and merged.contains(b)

    @given(rects(), rects())
    @settings(max_examples=200, deadline=None)
    def test_intersection_symmetric_and_contained(self, a, b):
        inter_ab = a.intersection(b)
        inter_ba = b.intersection(a)
        assert inter_ab == inter_ba
        if inter_ab is not None:
            assert a.contains(inter_ab) and b.contains(inter_ab)
            assert a.intersects(b)
        else:
            assert not a.intersects(b)

    @given(rects(), rects())
    @settings(max_examples=200, deadline=None)
    def test_enlargement_nonnegative(self, a, b):
        assert a.enlargement(b) >= -1e-9

    @given(rects(), rects())
    @settings(max_examples=200, deadline=None)
    def test_overlap_area_bounded(self, a, b):
        overlap = a.overlap_area(b)
        assert -1e-9 <= overlap <= min(a.area(), b.area()) + 1e-9


class TestTreeProperties:
    @given(
        st.lists(rects(), min_size=1, max_size=120),
        rects(),
        st.sampled_from([RStarTree, GuttmanRTree]),
    )
    @settings(max_examples=40, deadline=None,
              suppress_health_check=list(HealthCheck))
    def test_search_matches_linear_scan(self, data, query, cls):
        tree = make_tree(cls)
        for rowid, rect in enumerate(data):
            tree.insert(rect, rowid)
        tree.check()
        got = sorted(r for r, _ in tree.search(query))
        expected = sorted(
            i for i, r in enumerate(data) if r.intersects(query)
        )
        assert got == expected

    @given(
        st.lists(rects(), min_size=5, max_size=100),
        st.lists(st.integers(0, 10**6), min_size=1, max_size=50),
    )
    @settings(max_examples=30, deadline=None,
              suppress_health_check=list(HealthCheck))
    def test_random_deletions_keep_invariants(self, data, victims):
        tree = make_tree()
        live = {}
        for rowid, rect in enumerate(data):
            tree.insert(rect, rowid)
            live[rowid] = rect
        for v in victims:
            if not live:
                break
            rowid = sorted(live)[v % len(live)]
            assert tree.delete(live.pop(rowid), rowid)
        tree.check()
        everything = Rect((-10.0, -10.0), (600.0, 600.0))
        assert sorted(r for r, _ in tree.search(everything)) == sorted(live)
