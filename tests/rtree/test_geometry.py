"""Tests for n-dimensional rectangle arithmetic."""

import pytest

from repro.rtree.geometry import Rect, union_all


class TestConstruction:
    def test_of_interleaved(self):
        r = Rect.of(0, 2, 1, 3)
        assert r.lo == (0, 1) and r.hi == (2, 3)

    def test_point(self):
        p = Rect.point(5, 7)
        assert p.area() == 0
        assert p.contains_point(5, 7)

    def test_rejects_mismatched_dims(self):
        with pytest.raises(ValueError):
            Rect((0, 0), (1,))

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            Rect.of(2, 0, 0, 1)

    def test_rejects_odd_bounds(self):
        with pytest.raises(ValueError):
            Rect.of(0, 1, 2)


class TestMetrics:
    def test_area(self):
        assert Rect.of(0, 4, 0, 3).area() == 12

    def test_margin(self):
        assert Rect.of(0, 4, 0, 3).margin() == 7

    def test_center(self):
        assert Rect.of(0, 4, 0, 2).center() == (2, 1)

    def test_three_dimensional(self):
        r = Rect.of(0, 2, 0, 3, 0, 4)
        assert r.area() == 24
        assert r.ndim == 3


class TestSetOperations:
    def test_union(self):
        assert Rect.of(0, 1, 0, 1).union(Rect.of(2, 3, 2, 3)) == Rect.of(0, 3, 0, 3)

    def test_enlargement(self):
        assert Rect.of(0, 1, 0, 1).enlargement(Rect.of(2, 3, 0, 1)) == 2.0

    def test_intersects_edge_touch(self):
        assert Rect.of(0, 1, 0, 1).intersects(Rect.of(1, 2, 1, 2))

    def test_disjoint(self):
        assert not Rect.of(0, 1, 0, 1).intersects(Rect.of(2, 3, 2, 3))

    def test_intersection(self):
        inter = Rect.of(0, 2, 0, 2).intersection(Rect.of(1, 3, 1, 3))
        assert inter == Rect.of(1, 2, 1, 2)
        assert Rect.of(0, 1, 0, 1).intersection(Rect.of(5, 6, 5, 6)) is None

    def test_overlap_area(self):
        assert Rect.of(0, 2, 0, 2).overlap_area(Rect.of(1, 3, 1, 3)) == 1.0
        assert Rect.of(0, 1, 0, 1).overlap_area(Rect.of(5, 6, 5, 6)) == 0.0

    def test_contains(self):
        assert Rect.of(0, 5, 0, 5).contains(Rect.of(1, 2, 1, 2))
        assert not Rect.of(1, 2, 1, 2).contains(Rect.of(0, 5, 0, 5))
        assert Rect.of(0, 5, 0, 5).contains(Rect.of(0, 5, 0, 5))

    def test_union_all(self):
        rects = [Rect.of(0, 1, 0, 1), Rect.of(4, 5, 2, 3), Rect.of(-1, 0, 0, 2)]
        assert union_all(rects) == Rect.of(-1, 5, 0, 3)

    def test_union_all_empty_rejected(self):
        with pytest.raises(ValueError):
            union_all([])
