"""Tests for the R*-tree and Guttman R-tree over paged storage."""

import random

import pytest

from repro.rtree.geometry import Rect
from repro.rtree.guttman import GuttmanRTree
from repro.rtree.node import NodeStore
from repro.rtree.rstar import RStarTree
from repro.storage.buffer import BufferPool
from repro.storage.pages import InMemoryPageStore


def make_tree(cls=RStarTree, page_size=512, capacity=256):
    store = InMemoryPageStore(page_size=page_size)
    pool = BufferPool(store, capacity=capacity)
    return cls(NodeStore(pool, ndim=2)), pool


def random_rect(rng, extent=1000.0, max_side=20.0):
    x = rng.uniform(0, extent)
    y = rng.uniform(0, extent)
    w = rng.uniform(0, max_side)
    h = rng.uniform(0, max_side)
    return Rect.of(x, x + w, y, y + h)


class TestNodeSerialization:
    def test_leaf_roundtrip(self):
        tree, pool = make_tree()
        store = tree.store
        node = store.allocate(leaf=True, level=0)
        from repro.rtree.node import Entry

        node.entries = [
            Entry(Rect.of(0.5, 1.5, -2.0, 3.25), rowid=42, fragid=7),
            Entry(Rect.of(9, 10, 11, 12), rowid=-1, fragid=0),
        ]
        store.write(node)
        again = store.read(node.page_id)
        assert again.leaf and again.level == 0
        assert [e.rowid for e in again.entries] == [42, -1]
        assert [e.fragid for e in again.entries] == [7, 0]
        assert again.entries[0].rect == Rect.of(0.5, 1.5, -2.0, 3.25)

    def test_internal_roundtrip(self):
        tree, pool = make_tree()
        store = tree.store
        node = store.allocate(leaf=False, level=2)
        from repro.rtree.node import Entry

        node.entries = [Entry(Rect.of(0, 1, 0, 1), child=99)]
        store.write(node)
        again = store.read(node.page_id)
        assert not again.leaf and again.level == 2
        assert again.entries[0].child == 99

    def test_capacity_from_page_size(self):
        tree, _ = make_tree(page_size=512)
        # 512-byte pages, 44-byte entries, 4-byte header.
        assert tree.store.capacity == (512 - 4) // (32 + 12)

    def test_overflow_write_rejected(self):
        tree, _ = make_tree(page_size=512)
        from repro.rtree.node import Entry

        node = tree.store.allocate(leaf=True)
        node.entries = [
            Entry(Rect.of(0, 1, 0, 1), rowid=i) for i in range(tree.store.capacity + 1)
        ]
        with pytest.raises(ValueError):
            tree.store.write(node)

    def test_tiny_page_rejected(self):
        store = InMemoryPageStore(page_size=64)
        pool = BufferPool(store)
        with pytest.raises(ValueError):
            NodeStore(pool, ndim=2)


class TestInsertSearch:
    def test_empty_tree_search(self):
        tree, _ = make_tree()
        assert tree.search(Rect.of(0, 100, 0, 100)) == []

    def test_single_insert(self):
        tree, _ = make_tree()
        tree.insert(Rect.of(1, 2, 1, 2), rowid=7)
        assert tree.search(Rect.of(0, 3, 0, 3)) == [(7, 0)]
        assert tree.search(Rect.of(5, 6, 5, 6)) == []

    def test_search_matches_oracle_after_many_inserts(self):
        rng = random.Random(42)
        tree, _ = make_tree(page_size=256)
        data = []
        for rowid in range(600):
            rect = random_rect(rng)
            tree.insert(rect, rowid)
            data.append((rect, rowid))
        tree.check()
        assert tree.height > 1
        for _ in range(25):
            query = random_rect(rng, max_side=120.0)
            expected = sorted(r for rect, r in data if rect.intersects(query))
            got = sorted(r for r, _ in tree.search(query))
            assert got == expected

    def test_duplicate_rectangles_supported(self):
        tree, _ = make_tree()
        rect = Rect.of(5, 6, 5, 6)
        for rowid in range(10):
            tree.insert(rect, rowid)
        assert sorted(r for r, _ in tree.search(rect)) == list(range(10))

    def test_size_and_stats(self):
        tree, _ = make_tree(page_size=256)
        for rowid in range(100):
            tree.insert(Rect.point(rowid, rowid), rowid)
        assert tree.size == 100
        stats = tree.stats()
        assert stats["size"] == 100
        assert stats["height"] == tree.height
        assert 0 < stats["avg_fill"] <= 1

    def test_node_accesses_counted(self):
        tree, _ = make_tree(page_size=256)
        rng = random.Random(1)
        for rowid in range(400):
            tree.insert(random_rect(rng), rowid)
        tree.search(Rect.of(0, 10, 0, 10))
        assert tree.last_node_accesses >= 1
        tree.search(Rect.of(0, 1000, 0, 1000))
        assert tree.last_node_accesses == tree.node_count()


class TestDelete:
    def test_delete_existing(self):
        tree, _ = make_tree()
        rect = Rect.of(1, 2, 1, 2)
        tree.insert(rect, rowid=7)
        assert tree.delete(rect, rowid=7)
        assert tree.size == 0
        assert tree.search(Rect.of(0, 3, 0, 3)) == []

    def test_delete_missing_returns_false(self):
        tree, _ = make_tree()
        tree.insert(Rect.of(1, 2, 1, 2), rowid=7)
        assert not tree.delete(Rect.of(1, 2, 1, 2), rowid=8)
        assert not tree.delete(Rect.of(3, 4, 3, 4), rowid=7)
        assert tree.size == 1

    def test_delete_everything(self):
        rng = random.Random(7)
        tree, _ = make_tree(page_size=256)
        data = [(random_rect(rng), i) for i in range(300)]
        for rect, rowid in data:
            tree.insert(rect, rowid)
        rng.shuffle(data)
        for rect, rowid in data:
            assert tree.delete(rect, rowid)
        assert tree.size == 0
        assert tree.height == 1
        assert tree.search(Rect.of(0, 2000, 0, 2000)) == []

    def test_interleaved_inserts_deletes_match_oracle(self):
        rng = random.Random(99)
        tree, _ = make_tree(page_size=256)
        live = {}
        next_id = 0
        for step in range(1500):
            if live and rng.random() < 0.4:
                rowid = rng.choice(list(live))
                rect = live.pop(rowid)
                assert tree.delete(rect, rowid)
            else:
                rect = random_rect(rng)
                live[next_id] = rect
                tree.insert(rect, next_id)
                next_id += 1
        tree.check()
        query = random_rect(rng, max_side=250.0)
        expected = sorted(r for r, rect in live.items() if rect.intersects(query))
        assert sorted(r for r, _ in tree.search(query)) == expected

    def test_condensed_flag(self):
        tree, _ = make_tree(page_size=256)
        rng = random.Random(3)
        data = [(random_rect(rng, extent=100), i) for i in range(300)]
        for rect, rowid in data:
            tree.insert(rect, rowid)
        saw_condense = False
        for rect, rowid in data:
            tree.delete(rect, rowid)
            saw_condense = saw_condense or tree.condensed
        assert saw_condense

    def test_check_detects_size_corruption(self):
        tree, _ = make_tree()
        tree.insert(Rect.of(0, 1, 0, 1), rowid=1)
        tree.size = 5
        with pytest.raises(AssertionError):
            tree.check()


class TestGuttman:
    def test_oracle_equivalence(self):
        rng = random.Random(5)
        tree, _ = make_tree(GuttmanRTree, page_size=256)
        data = []
        for rowid in range(500):
            rect = random_rect(rng)
            tree.insert(rect, rowid)
            data.append((rect, rowid))
        tree.check()
        for _ in range(10):
            query = random_rect(rng, max_side=150.0)
            expected = sorted(r for rect, r in data if rect.intersects(query))
            assert sorted(r for r, _ in tree.search(query)) == expected

    def test_rstar_has_no_more_overlap_than_guttman(self):
        """The R* split should produce a 'better' tree on clustered data
        (smaller total sibling overlap) -- the Figure 3 goodness metric."""
        rng = random.Random(11)
        rects = []
        for cluster in range(20):
            cx, cy = rng.uniform(0, 1000), rng.uniform(0, 1000)
            for _ in range(30):
                x, y = cx + rng.uniform(0, 40), cy + rng.uniform(0, 40)
                rects.append(Rect.of(x, x + 5, y, y + 5))

        def total_leaf_overlap(cls):
            tree, _ = make_tree(cls, page_size=256)
            for rowid, rect in enumerate(rects):
                tree.insert(rect, rowid)
            leaves = [n for n in tree.iter_nodes() if n.leaf]
            mbrs = [n.mbr() for n in leaves]
            return sum(
                a.overlap_area(b)
                for i, a in enumerate(mbrs)
                for b in mbrs[i + 1 :]
            )

        assert total_leaf_overlap(RStarTree) <= total_leaf_overlap(GuttmanRTree)

    def test_deletes_work_without_reinsertion(self):
        rng = random.Random(13)
        tree, _ = make_tree(GuttmanRTree, page_size=256)
        data = [(random_rect(rng), i) for i in range(200)]
        for rect, rowid in data:
            tree.insert(rect, rowid)
        for rect, rowid in data[:100]:
            assert tree.delete(rect, rowid)
        tree.check()
        assert tree.size == 100
