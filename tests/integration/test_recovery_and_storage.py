"""Integration: rollback, crash recovery, and storage options (§5.3)."""

import pytest

from repro.datablade import register_grtree_blade
from repro.server import DatabaseServer
from repro.temporal.chronon import Clock, format_chronon


def day(chronon):
    return format_chronon(chronon)


def make_server(now=100):
    server = DatabaseServer(clock=Clock(now=now))
    server.create_sbspace("spc")
    register_grtree_blade(server)
    server.execute("CREATE TABLE t (name LVARCHAR, te GRT_TimeExtent_t)")
    server.execute("CREATE INDEX gi ON t(te) USING grtree_am IN spc")
    server.prefer_virtual_index = True
    return server


QUERY = "SELECT name FROM t WHERE Overlaps(te, '{q}')"


class TestRollback:
    def test_rolled_back_insert_leaves_index_unchanged(self):
        server = make_server()
        server.execute(
            f"INSERT INTO t VALUES ('keep', '{day(100)}, UC, {day(95)}, NOW')"
        )
        session = server.create_session()
        server.execute("BEGIN WORK", session)
        server.execute(
            f"INSERT INTO t VALUES ('gone', '{day(100)}, UC, {day(95)}, NOW')",
            session,
        )
        server.execute("ROLLBACK WORK", session)
        rows = server.execute(
            QUERY.format(q=f"{day(100)}, UC, {day(100)}, NOW")
        )
        # The index pages were rolled back from before-images; only the
        # committed entry remains reachable.
        names = {r["name"] for r in rows}
        assert "keep" in names
        server.execute("CHECK INDEX gi")


class TestCrashRecovery:
    def test_index_blob_survives_crash(self):
        server = make_server()
        for i in range(50):
            server.execute(
                f"INSERT INTO t VALUES ('r{i}', '{day(100)}, UC, {day(95)}, NOW')"
            )
        space = server.get_sbspace("spc")
        objects_before = space.object_count
        pages_before = {
            handle: blob.page_count for handle, blob in space._objects.items()
        }
        # Crash: volatile sbspace state is lost, the WAL survives.
        space._reset_for_recovery()
        assert space.object_count == 0
        server.wal.recover(space)
        assert space.object_count == objects_before
        assert {
            handle: blob.page_count for handle, blob in space._objects.items()
        } == pages_before

    def test_uncommitted_transaction_discarded_by_recovery(self):
        server = make_server()
        server.execute(
            f"INSERT INTO t VALUES ('a', '{day(100)}, UC, {day(95)}, NOW')"
        )
        space = server.get_sbspace("spc")
        committed_pages = {
            handle: dict(blob._pages) for handle, blob in space._objects.items()
        }
        session = server.create_session()
        server.execute("BEGIN WORK", session)
        server.execute(
            f"INSERT INTO t VALUES ('b', '{day(100)}, UC, {day(95)}, NOW')",
            session,
        )
        # Crash before commit.
        server.wal.recover(space)
        recovered_pages = {
            handle: dict(blob._pages) for handle, blob in space._objects.items()
        }
        assert recovered_pages == committed_pages


class TestStorageOptions:
    """Section 5.3: one LO per index vs LO per node vs OS file."""

    def test_single_lo_locks_whole_index(self):
        server = make_server()
        server.execute(
            f"INSERT INTO t VALUES ('a', '{day(100)}, UC, {day(95)}, NOW')"
        )
        space = server.get_sbspace("spc")
        # The whole index is one large object.
        meta = server.catalog.get_table("grtree_indexdata")
        assert meta.row_count == 1
        assert space.object_count == 1

    def test_lo_handles_are_heavy(self):
        # The paper's argument against one-LO-per-node: handles stored in
        # parent entries are large relative to a page-id pointer (8 bytes).
        server = make_server()
        space = server.get_sbspace("spc")
        blob = next(iter(space._objects.values()))
        assert blob.handle.size_bytes > 4 * 8

    def test_os_file_store_offers_no_services(self, tmp_path):
        """The OS-file option works as a page store but provides neither
        locking nor logging -- the developer would build both."""
        from repro.grtree.node import GRNodeStore
        from repro.grtree.tree import GRTree
        from repro.storage.buffer import BufferPool
        from repro.storage.osfile import OSFilePageStore
        from repro.temporal.extent import TimeExtent
        from repro.temporal.variables import NOW, UC

        clock = Clock(now=100)
        path = str(tmp_path / "index.grt")
        with OSFilePageStore(path, page_size=2048) as store:
            pool = BufferPool(store)
            tree = GRTree.create(GRNodeStore(pool), clock)
            meta_page = tree.meta_page
            for i in range(100):
                tree.insert(TimeExtent(100, UC, 95, NOW), rowid=i)
            pool.flush()
        # Reopen from the file: the index is durable without any WAL.
        with OSFilePageStore(path, page_size=2048) as store:
            pool = BufferPool(store)
            tree = GRTree.open(GRNodeStore(pool), clock, meta_page=meta_page)
            assert tree.size == 100
            hits = tree.search_all(TimeExtent(100, UC, 100, NOW))
            assert len(hits) == 100
