"""Tests for the workload generator, baselines, and the core facade."""

import pytest

from repro.core import BitemporalDatabase
from repro.grtree.node import GRNodeStore
from repro.grtree.tree import GRTree
from repro.storage.buffer import BufferPool
from repro.storage.pages import InMemoryPageStore
from repro.temporal.chronon import Clock
from repro.temporal.extent import TimeExtent
from repro.temporal.variables import NOW, UC
from repro.workloads import (
    BitemporalWorkload,
    MaxTimestampRTree,
    SequentialScanIndex,
    WorkloadConfig,
)


class ListSink:
    def __init__(self):
        self.rows = {}

    def insert(self, extent, rowid):
        self.rows[rowid] = extent

    def delete(self, extent, rowid):
        assert self.rows.pop(rowid) == extent


def make_grtree(clock):
    store = GRNodeStore(BufferPool(InMemoryPageStore(page_size=1024)))
    return GRTree.create(store, clock)


class TestWorkloadGenerator:
    def test_reproducible(self):
        clock1, clock2 = Clock(now=100), Clock(now=100)
        w1 = BitemporalWorkload(clock1, WorkloadConfig(seed=7))
        w2 = BitemporalWorkload(clock2, WorkloadConfig(seed=7))
        s1, s2 = ListSink(), ListSink()
        w1.run(s1, 200)
        w2.run(s2, 200)
        assert s1.rows == s2.rows
        assert clock1.now == clock2.now

    def test_now_relative_fraction_respected(self):
        clock = Clock(now=100)
        workload = BitemporalWorkload(
            clock, WorkloadConfig(seed=1, now_relative_fraction=1.0,
                                  delete_fraction=0, update_fraction=0)
        )
        sink = ListSink()
        workload.run(sink, 100)
        assert all(e.vt_end is NOW for e in sink.rows.values())

    def test_all_six_cases_arise(self):
        clock = Clock(now=100)
        workload = BitemporalWorkload(clock, WorkloadConfig(seed=3))
        sink = ListSink()
        workload.run(sink, 800)
        cases = {e.case.value for e in workload.all_extents().values()}
        assert cases == {1, 2, 3, 4, 5, 6}

    def test_oracle_matches_grtree(self):
        clock = Clock(now=100)
        tree = make_grtree(clock)
        workload = BitemporalWorkload(clock, WorkloadConfig(seed=5))
        workload.run(tree, 400)
        tree.check()
        for query in (
            workload.current_timeslice_query(),
            workload.window_query(20, 20),
        ):
            got = sorted(r for r, _ in tree.search_all(query))
            assert got == workload.oracle_overlapping(query)

    def test_insertion_constraints_hold(self):
        clock = Clock(now=50)
        workload = BitemporalWorkload(clock, WorkloadConfig(seed=11))
        sink = ListSink()
        for _ in range(100):
            before = clock.now
            extent = workload.make_extent()
            extent.validate_insertion(before)


class TestBaselines:
    def test_max_timestamp_rtree_is_exact_after_filtering(self):
        clock = Clock(now=100)
        baseline = MaxTimestampRTree(clock)
        workload = BitemporalWorkload(clock, WorkloadConfig(seed=13))
        workload.run(baseline, 300)
        query = workload.window_query(15, 15)
        assert baseline.search(query) == workload.oracle_overlapping(query)

    def test_max_timestamp_rtree_has_false_positives_on_now_relative_data(self):
        clock = Clock(now=100)
        baseline = MaxTimestampRTree(clock)
        workload = BitemporalWorkload(
            clock,
            WorkloadConfig(seed=17, now_relative_fraction=1.0,
                           delete_fraction=0.3),
        )
        workload.run(baseline, 400)
        # A window in the upper-left area: above the stairs (small vt,
        # recent tt is below the diagonal; choose vt above tt).
        now = clock.now
        query = TimeExtent(max(0, now - 60), max(0, now - 50), now + 50, now + 60)
        baseline.search(query)
        assert baseline.last_false_positives > 0

    def test_sequential_scan_costs_all_pages(self):
        clock = Clock(now=100)
        seq = SequentialScanIndex(clock)
        workload = BitemporalWorkload(clock, WorkloadConfig(seed=19))
        workload.run(seq, 200)
        query = workload.current_timeslice_query()
        assert seq.search(query) == workload.oracle_overlapping(query)
        assert seq.io_cost_of_last_search() >= len(seq._extents) // 32

    def test_grtree_beats_max_timestamp_on_now_relative_queries(self):
        """The headline claim, in miniature: on heavily now-relative
        data, the GR-tree answers with less I/O than the max-timestamp
        R*-tree (whose growing rectangles overlap everything)."""
        clock = Clock(now=100)
        tree = make_grtree(clock)
        baseline = MaxTimestampRTree(clock, page_size=1024)

        workload = BitemporalWorkload(
            clock,
            WorkloadConfig(seed=23, now_relative_fraction=0.8,
                           delete_fraction=0.15, update_fraction=0.15),
        )
        # Drive both indexes with the same history.
        class Tee:
            def insert(self, extent, rowid):
                tree.insert(extent, rowid)
                baseline.insert(extent, rowid)

            def delete(self, extent, rowid):
                assert tree.delete(extent, rowid)
                assert baseline.delete(extent, rowid)

        workload.run(Tee(), 1200)
        tree_io = 0
        baseline_io = 0
        for _ in range(15):
            query = workload.window_query(8, 8)
            expected = workload.oracle_overlapping(query)
            got = sorted(r for r, _ in tree.search_all(query))
            assert got == expected
            assert baseline.search(query) == expected
            tree_io += tree.last_node_accesses + len(expected)
            baseline_io += baseline.io_cost_of_last_search()
        assert tree_io < baseline_io


class TestCoreFacade:
    def test_quickstart_flow(self):
        db = BitemporalDatabase(["employee", "department"])
        db.clock.set(100)
        db.insert({"employee": "Jane", "department": "Sales"}, vt_begin=100)
        db.clock.advance(10)
        db.insert({"employee": "Tom", "department": "Ads"}, vt_begin=105)
        assert {r["employee"] for r in db.current()} == {"Jane", "Tom"}
        db.clock.advance(1)
        db.delete_where("employee", "Tom")
        assert {r["employee"] for r in db.current()} == {"Jane"}
        # History is preserved: Tom is still visible to a past timeslice.
        past = db.timeslice(valid_time=106, transaction_time=db.now - 1)
        assert "Tom" in {r["employee"] for r in past}
        assert "consistent" in db.check_index()

    def test_modify(self):
        db = BitemporalDatabase(["who", "what"])
        db.clock.set(100)
        db.insert({"who": "a", "what": "x"}, vt_begin=100)
        db.clock.advance(5)
        assert db.modify("who", "a", {"who": "a", "what": "y"}, vt_begin=100) == 1
        rows = db.current()
        assert [r["what"] for r in rows] == ["y"]
        assert db.statistics()["size"] >= 2

    def test_reserved_column_rejected(self):
        with pytest.raises(ValueError):
            BitemporalDatabase(["time_extent"])

    def test_quoting_in_values(self):
        db = BitemporalDatabase(["name"])
        db.clock.set(100)
        db.insert({"name": "O'Brien"}, vt_begin=100)
        assert db.current()[0]["name"] == "O'Brien"
