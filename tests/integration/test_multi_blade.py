"""Integration: all four DataBlades coexisting in one server."""

import pytest

from repro.bblade import register_btree_blade
from repro.datablade import register_grtree_blade
from repro.gist import register_gist_blade
from repro.rblade import register_rtree_blade
from repro.server import DatabaseServer
from repro.server.optimizer import IndexScanPlan
from repro.temporal.chronon import Clock, format_chronon


def day(c):
    return format_chronon(c)


@pytest.fixture()
def server():
    s = DatabaseServer(clock=Clock(now=100))
    s.create_sbspace("spc")
    register_grtree_blade(s)
    register_rtree_blade(s)
    register_btree_blade(s)
    register_gist_blade(s)
    s.prefer_virtual_index = True
    return s


class TestFourBlades:
    def test_catalog_holds_all_access_methods(self, server):
        assert set(server.catalog.access_methods.names()) == {
            "btree_am", "gist_am", "grtree_am", "rtree_am",
        }

    def test_two_indexes_on_one_table(self, server):
        """A bitemporal column and an integer column on the same table,
        each with its own access method; every INSERT maintains both."""
        server.execute(
            "CREATE TABLE emp (name LVARCHAR, salary INTEGER, "
            "te GRT_TimeExtent_t)"
        )
        server.execute("CREATE INDEX e_te ON emp(te) USING grtree_am IN spc")
        server.execute("CREATE INDEX e_sal ON emp(salary) USING btree_am IN spc")
        for i in range(60):
            server.execute(
                f"INSERT INTO emp VALUES ('p{i}', {1000 + i * 10}, "
                f"'{day(100)}, UC, {day(95)}, NOW')"
            )
        rows = server.execute("SELECT name FROM emp WHERE salary >= 1550")
        assert isinstance(server.last_plan, IndexScanPlan)
        assert server.last_plan.index.name == "e_sal"
        assert len(rows) == 5
        rows = server.execute(
            f"SELECT name FROM emp WHERE "
            f"Overlaps(te, '{day(100)}, UC, {day(100)}, NOW')"
        )
        assert server.last_plan.index.name == "e_te"
        assert len(rows) == 60
        assert "consistent" in server.execute("CHECK INDEX e_te")
        assert "consistent" in server.execute("CHECK INDEX e_sal")

    def test_mixed_predicate_picks_one_index_keeps_residual(self, server):
        server.execute(
            "CREATE TABLE emp (name LVARCHAR, salary INTEGER, "
            "te GRT_TimeExtent_t)"
        )
        server.execute("CREATE INDEX e_te ON emp(te) USING grtree_am IN spc")
        server.execute("CREATE INDEX e_sal ON emp(salary) USING btree_am IN spc")
        for i in range(60):
            server.execute(
                f"INSERT INTO emp VALUES ('p{i}', {1000 + i * 10}, "
                f"'{day(100)}, UC, {day(95)}, NOW')"
            )
        rows = server.execute(
            f"SELECT name FROM emp WHERE salary >= 1550 AND "
            f"Overlaps(te, '{day(100)}, UC, {day(100)}, NOW')"
        )
        assert isinstance(server.last_plan, IndexScanPlan)
        assert server.last_plan.residual is not None
        assert len(rows) == 5

    def test_delete_maintains_every_index(self, server):
        server.execute(
            "CREATE TABLE emp (name LVARCHAR, salary INTEGER, "
            "te GRT_TimeExtent_t)"
        )
        server.execute("CREATE INDEX e_te ON emp(te) USING grtree_am IN spc")
        server.execute("CREATE INDEX e_sal ON emp(salary) USING btree_am IN spc")
        for i in range(40):
            server.execute(
                f"INSERT INTO emp VALUES ('p{i}', {i}, "
                f"'{day(100)}, UC, {day(95)}, NOW')"
            )
        deleted = server.execute("DELETE FROM emp WHERE salary < 20")
        assert deleted == 20
        assert "consistent" in server.execute("CHECK INDEX e_te")
        assert "consistent" in server.execute("CHECK INDEX e_sal")
        assert len(server.execute("SELECT name FROM emp")) == 20

    def test_udr_namespaces_do_not_collide(self, server):
        """Equal(GRT_TimeExtent_t, ...) and Equal(Box, Box) overload the
        same name; resolution picks by signature."""
        overloads = server.catalog.routines.overloads("Equal")
        signatures = {tuple(r.arg_types) for r in overloads}
        assert ("GRT_TIMEEXTENT_T", "GRT_TIMEEXTENT_T") in signatures
        assert ("BOX", "BOX") in signatures

    def test_shared_sbspace_hosts_all_indexes(self, server):
        server.execute("CREATE TABLE a (te GRT_TimeExtent_t)")
        server.execute("CREATE TABLE b (geom Box)")
        server.execute("CREATE TABLE c (v INTEGER)")
        server.execute("CREATE INDEX ia ON a(te) USING grtree_am IN spc")
        server.execute("CREATE INDEX ib ON b(geom) USING rtree_am IN spc")
        server.execute("CREATE INDEX ic ON c(v) USING btree_am IN spc")
        space = server.get_sbspace("spc")
        assert space.object_count == 3  # one large object per index
