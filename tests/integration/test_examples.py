"""Smoke tests: every shipped example runs to completion."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys, monkeypatch):
    # Examples use module-level randomness deterministically; run each
    # in a fresh __main__ namespace.
    runpy.run_path(str(path), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{path.name} produced no output"
    assert "Traceback" not in output


def test_all_examples_discovered():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 8
