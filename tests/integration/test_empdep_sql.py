"""Integration: the paper's EmpDep history through the full SQL stack."""

import pytest

from repro.core import BitemporalDatabase
from repro.temporal.chronon import Granularity, parse_chronon
from repro.temporal.extent import TimeExtent
from repro.temporal.variables import NOW, UC


def month(text):
    return parse_chronon(text, Granularity.MONTH)


@pytest.fixture
def empdep():
    """Replay the Table 1 history against the full stack."""
    db = BitemporalDatabase(
        ["employee", "department"], granularity=Granularity.MONTH
    )
    db.clock.set(month("3/97"))
    db.insert({"employee": "Tom", "department": "Management"},
              vt_begin=month("6/97"), vt_end=month("8/97"))
    db.insert({"employee": "Julie", "department": "Sales"},
              vt_begin=month("3/97"))
    db.clock.set(month("4/97"))
    db.insert({"employee": "John", "department": "Advertising"},
              vt_begin=month("3/97"), vt_end=month("5/97"))
    db.clock.set(month("5/97"))
    db.insert({"employee": "Jane", "department": "Sales"},
              vt_begin=month("5/97"))
    db.insert({"employee": "Michelle", "department": "Management"},
              vt_begin=month("3/97"))
    db.clock.set(month("8/97"))
    db.delete_where("employee", "Tom")
    db.modify("employee", "Julie",
              {"employee": "Julie", "department": "Sales"},
              vt_begin=month("3/97"), vt_end=month("7/97"))
    db.clock.set(month("9/97"))
    return db


class TestTable1:
    def test_six_tuples_exist(self, empdep):
        rows = empdep.sql(f"SELECT * FROM {empdep.TABLE}")
        assert len(rows) == 6

    def test_extents_match_table1(self, empdep):
        rows = empdep.sql(f"SELECT * FROM {empdep.TABLE}")
        extents = {
            (r["employee"], r["time_extent"].to_text(Granularity.MONTH))
            for r in rows
        }
        assert extents == {
            ("John", "4/1997, UC, 3/1997, 5/1997"),
            ("Tom", "3/1997, 7/1997, 6/1997, 8/1997"),
            ("Jane", "5/1997, UC, 5/1997, NOW"),
            ("Julie", "3/1997, 7/1997, 3/1997, NOW"),
            ("Julie", "8/1997, UC, 3/1997, 7/1997"),
            ("Michelle", "5/1997, UC, 3/1997, NOW"),
        }

    def test_index_is_consistent(self, empdep):
        assert "consistent" in empdep.check_index()


class TestJulieAnomaly:
    """Section 5.1 / Table 3 / Figure 8, answered through the index."""

    def test_julie_not_in_past_timeslice(self, empdep):
        # "Who worked in Sales during 7/97 according to our knowledge of
        # 5/97?" -- Julie's stair does NOT cover (tt=5/97, vt=7/97).
        rows = empdep.timeslice(month("7/97"), month("5/97"))
        assert "Julie" not in {r["employee"] for r in rows}

    def test_julie_in_consistent_timeslice(self, empdep):
        # But Julie was valid at 5/97 according to 6/97 knowledge.
        rows = empdep.timeslice(month("5/97"), month("6/97"))
        assert "Julie" in {r["employee"] for r in rows}

    def test_current_state(self, empdep):
        # At 9/97: Jane and Michelle are valid now; Julie's new tuple is
        # current but its valid time ended 7/97; Tom was deleted.
        names = {r["employee"] for r in empdep.current()}
        assert names == {"Jane", "Michelle"}

    def test_overlap_query_matches_linear_reference(self, empdep):
        from repro.temporal.relation import build_empdep

        reference = build_empdep()
        query = TimeExtent.from_text("5/97, UC, 5/97, NOW", Granularity.MONTH)
        expected = sorted(
            row.values["Employee"] for row in reference.overlapping(query)
        )
        got = sorted(r["employee"] for r in empdep.overlapping(query))
        assert got == expected


class TestGrowth:
    def test_stairs_keep_growing_through_sql(self, empdep):
        # A window entirely in the future of 9/97.
        future = TimeExtent(month("6/98"), month("7/98"),
                            month("6/98"), month("7/98"))
        assert empdep.overlapping(future) == []
        empdep.clock.set(month("8/98"))
        names = {r["employee"] for r in empdep.overlapping(future)}
        # Jane's and Michelle's stairs have reached the window by now.
        assert names == {"Jane", "Michelle"}
        assert "consistent" in empdep.check_index()
