"""Unit tests for hierarchical spans and the Observability hub."""

import pytest

from repro.obs import Observability
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanRecorder

from .test_metrics import FakeTimer


@pytest.fixture
def recorder():
    return SpanRecorder(MetricsRegistry(timer=FakeTimer()))


class TestSpanTrees:
    def test_nesting_builds_a_tree(self, recorder):
        with recorder.span("sql.select") as root:
            with recorder.span("plan.choose"):
                pass
            with recorder.span("am.am_getnext"):
                with recorder.span("buffer.read"):
                    pass
        assert [c.name for c in root.children] == [
            "plan.choose", "am.am_getnext",
        ]
        assert root.find("buffer.read") is not None
        assert root.find("nope") is None
        assert recorder.roots == [root]
        assert recorder.current is None

    def test_durations_use_injected_timer(self, recorder):
        with recorder.span("outer"):
            pass
        root = recorder.last_root()
        # FakeTimer ticks 1.0 per call: start, snapshot-free end => 1.0.
        assert root.duration == pytest.approx(1.0)
        assert root.finished

    def test_exception_still_finishes_span(self, recorder):
        with pytest.raises(RuntimeError):
            with recorder.span("boom"):
                raise RuntimeError("x")
        root = recorder.last_root("boom")
        assert root is not None and root.finished
        assert recorder.current is None

    def test_metric_deltas_attribute_work_to_spans(self, recorder):
        registry = recorder.registry
        with recorder.span("root"):
            registry.inc("pages.read", 2)
            with recorder.span("child"):
                registry.inc("pages.read", 3)
        root = recorder.last_root("root")
        assert root.metric_deltas == {"pages.read": 5}
        assert root.children[0].metric_deltas == {"pages.read": 3}

    def test_max_roots_trims_oldest(self):
        recorder = SpanRecorder(MetricsRegistry(timer=FakeTimer()), max_roots=2)
        for i in range(4):
            with recorder.span(f"s{i}"):
                pass
        assert [s.name for s in recorder.roots] == ["s2", "s3"]

    def test_add_completed_child_under_current(self, recorder):
        with recorder.span("root") as root:
            recorder.add_completed_child("sql.parse", 1.0, 3.5, tokens=4)
        parse = root.children[0]
        assert parse.name == "sql.parse"
        assert parse.duration == pytest.approx(2.5)
        assert parse.attrs == {"tokens": 4}

    def test_format_and_to_dicts(self, recorder):
        with recorder.span("root", table="emp"):
            recorder.registry.inc("x")
        text = recorder.format_trees()
        assert "root" in text and "table='emp'" in text and "x +1" in text
        (d,) = recorder.to_dicts()
        assert d["name"] == "root"
        assert d["metric_deltas"] == {"x": 1}
        recorder.clear()
        assert recorder.format_trees() == "(no spans recorded)"


class TestObservabilityGating:
    def test_disabled_hub_records_nothing(self):
        obs = Observability(timer=FakeTimer(), enabled=False)
        obs.inc("c")
        obs.set_gauge("g", 1)
        obs.observe("h", 0.1)
        with obs.span("root") as span:
            assert span is None
        assert obs.metrics.snapshot() == {}
        assert obs.spans.roots == []

    def test_disabled_span_is_shared_noop(self):
        obs = Observability(enabled=False)
        assert obs.span("a") is obs.span("b")

    def test_enable_disable_roundtrip(self):
        obs = Observability(timer=FakeTimer())
        obs.disable()
        obs.inc("c")
        obs.enable()
        obs.inc("c")
        assert obs.metrics.counter("c") == 1

    def test_reset_keeps_collectors(self):
        obs = Observability(timer=FakeTimer())
        obs.metrics.register_collector("p", lambda: {"x": 1})
        obs.inc("c")
        with obs.span("root"):
            pass
        obs.reset()
        assert obs.metrics.counter("c") == 0
        assert obs.spans.roots == []
        assert obs.metrics.snapshot() == {"p.x": 1}
