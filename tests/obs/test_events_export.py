"""Unit tests for the structured event log (ring bound, JSONL sink,
sink-failure isolation) and the Prometheus text export (round-trip via
the bundled parser, counter/gauge typing, cumulative buckets)."""

import json

import pytest

from repro.obs import Observability
from repro.obs.events import EventLog
from repro.obs.export import (
    collect_histogram_buckets,
    parse_prometheus_text,
    prometheus_text,
)
from repro.obs.metrics import MetricsRegistry


class FakeTimer:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        self.now += 1.0
        return self.now


class TestEventLog:
    def test_emit_and_tail(self):
        log = EventLog(timer=FakeTimer())
        log.emit("slow_query", sql="SELECT 1", duration_ms=12.5)
        log.emit("error", sql="BROKEN", error="SqlError: nope")
        assert len(log) == 2
        last = log.tail(1)[0]
        assert last.type == "error"
        assert last.seq == 2
        assert last.fields["sql"] == "BROKEN"
        record = last.to_dict()
        assert record["event"] == "error"
        assert record["time"] == 2.0

    def test_ring_is_bounded_and_counts_drops(self):
        log = EventLog(capacity=3, timer=FakeTimer())
        for i in range(5):
            log.emit("tick", i=i)
        assert len(log) == 3
        assert log.dropped == 2
        assert [e.fields["i"] for e in log.tail()] == [2, 3, 4]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)

    def test_jsonl_file_sink(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path=str(path), timer=FakeTimer())
        log.emit("slow_query", sql="SELECT 1")
        log.emit("error", sql="SELECT 2")
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        records = [json.loads(line) for line in lines]
        assert records[0]["event"] == "slow_query"
        assert records[1]["seq"] == 2
        assert log.sink_error is None

    def test_sink_failure_disables_file_but_keeps_ring(self, tmp_path):
        log = EventLog(path=str(tmp_path / "no" / "such" / "dir.jsonl"),
                       timer=FakeTimer())
        log.emit("tick")  # must not raise
        log.emit("tock")
        assert log.sink_error is not None
        assert len(log) == 2

    def test_to_jsonl_and_report(self):
        log = EventLog(timer=FakeTimer())
        assert log.report() == "(no events recorded)"
        log.emit("slow_query", sql="SELECT 1", conn=3)
        jsonl = log.to_jsonl()
        assert json.loads(jsonl)["conn"] == 3
        report = log.report()
        assert "#1 slow_query" in report
        assert "conn=3" in report

    def test_clear(self):
        log = EventLog(capacity=1, timer=FakeTimer())
        log.emit("a")
        log.emit("b")
        log.clear()
        assert len(log) == 0
        assert log.dropped == 0

    def test_threshold_defaults_off(self):
        assert EventLog().slow_query_threshold_ms is None


class TestPrometheusExport:
    def test_counters_and_gauges_round_trip(self):
        registry = MetricsRegistry()
        registry.inc("am.calls", 5)
        registry.inc("wal.records", 2)
        registry.set_gauge("pool.size", 64)
        registry.set_gauge("node_cache.hit_ratio", 0.75)
        text = prometheus_text(registry)
        samples, types = parse_prometheus_text(text)
        assert samples["repro_am_calls_total"] == 5
        assert types["repro_am_calls_total"] == "counter"
        assert samples["repro_pool_size"] == 64
        assert types["repro_pool_size"] == "gauge"
        assert samples["repro_node_cache_hit_ratio"] == 0.75
        assert types["repro_node_cache_hit_ratio"] == "gauge"
        assert text.endswith("\n")

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "sql.seconds", boundaries=(0.001, 0.01, 0.1)
        )
        for value in (0.0005, 0.0005, 0.05, 5.0):
            hist.observe(value)
        text = prometheus_text(registry)
        samples, types = parse_prometheus_text(text)
        assert types["repro_sql_seconds"] == "histogram"
        series = dict(collect_histogram_buckets(samples, "repro_sql_seconds"))
        assert series["0.001"] == 2
        assert series["0.01"] == 2
        assert series["0.1"] == 3
        assert series["+Inf"] == 4
        assert samples["repro_sql_seconds_count"] == 4
        assert samples["repro_sql_seconds_sum"] == pytest.approx(5.051)

    def test_dotted_names_sanitized(self):
        registry = MetricsRegistry()
        registry.inc("a.b-c d", 1)
        samples, _ = parse_prometheus_text(prometheus_text(registry))
        assert "repro_a_b_c_d_total" in samples

    def test_observability_prometheus_method(self):
        obs = Observability()
        obs.metrics.inc("sql.statements", 1)
        text = obs.prometheus()
        samples, _ = parse_prometheus_text(text)
        assert samples["repro_sql_statements_total"] == 1

    def test_parser_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("lonely_token_without_value_or_space")
