"""Unit tests for statement fingerprinting and the workload model
(literal normalization, stable hashing, delta extraction, orderings,
bounded eviction, text/JSON rendering)."""

import threading

import pytest

from repro.obs.workload import (
    ORDERINGS,
    WorkloadModel,
    fingerprint,
    normalize,
)


class TestNormalize:
    def test_strings_and_numbers_become_placeholders(self):
        sql = "SELECT n FROM e WHERE Overlaps(te, '01/01/98, NOW') AND n = 42"
        assert (
            normalize(sql)
            == "SELECT N FROM E WHERE OVERLAPS(TE, ?) AND N = ?"
        )

    def test_whitespace_collapses_and_case_folds(self):
        assert normalize("select  *\n from   t ") == "SELECT * FROM T"

    def test_doubled_quote_escapes_stay_inside_the_literal(self):
        assert normalize("SELECT 'it''s, NOW' FROM t") == "SELECT ? FROM T"

    def test_identifiers_with_digits_survive(self):
        # The number pattern must not eat the "1" out of "t1" or "x2y".
        assert normalize("SELECT x2y FROM t1") == "SELECT X2Y FROM T1"

    def test_negative_and_decimal_numbers(self):
        assert normalize("SELECT -3.25, 7 FROM t") == "SELECT ?, ? FROM T"


class TestFingerprint:
    def test_literal_insensitive(self):
        a = fingerprint("SELECT n FROM e WHERE n = 1")
        b = fingerprint("select n from e where n = 999")
        assert a == b

    def test_distinct_shapes_differ(self):
        assert fingerprint("SELECT a FROM t") != fingerprint("SELECT b FROM t")

    def test_stable_twelve_hex_digits(self):
        fp = fingerprint("SELECT 1")
        assert fp == fingerprint("SELECT  2")
        assert len(fp) == 12
        int(fp, 16)  # all hex


class TestObserve:
    def test_counts_latency_and_rows(self):
        model = WorkloadModel()
        model.observe("SELECT n FROM t WHERE n = 1", 0.010, rows=3)
        model.observe("SELECT n FROM t WHERE n = 2", 0.030, rows=5)
        stats = model.get(fingerprint("SELECT n FROM t WHERE n = 0"))
        assert stats.calls == 2
        assert stats.rows_returned == 8
        assert stats.total_time == pytest.approx(0.040)
        assert stats.mean_time == pytest.approx(0.020)
        assert stats.latency.count == 2

    def test_deltas_extracted_by_suffix(self):
        model = WorkloadModel()
        stats = model.observe(
            "SELECT * FROM t",
            0.001,
            deltas={
                "pool.logical_reads": 4,
                "sbspace.logical_reads": 2,
                "pool.logical_writes": 1,
                "node_cache.hits": 6,
                "node_cache.misses": 2,
                "locks.conflicts": 3,
                "locks.wait_seconds": 0.25,
                "wal.records": 9,  # unrelated: must not be counted
            },
        )
        assert stats.pages_read == 6
        assert stats.pages_written == 1
        assert stats.cache_hits == 6
        assert stats.cache_misses == 2
        assert stats.cache_hit_ratio == pytest.approx(0.75)
        assert stats.lock_waits == 3
        assert stats.lock_wait_seconds == pytest.approx(0.25)

    def test_cache_ratio_defaults_to_one_without_lookups(self):
        model = WorkloadModel()
        stats = model.observe("SELECT 1", 0.001)
        assert stats.cache_hit_ratio == 1.0

    def test_errors_counted(self):
        model = WorkloadModel()
        model.observe("DELETE FROM t", 0.001, error=True)
        model.observe("DELETE FROM t", 0.001)
        stats = model.get(fingerprint("DELETE FROM t"))
        assert stats.errors == 1
        assert stats.calls == 2


class TestEvictionAndOrdering:
    def test_least_recently_executed_shape_evicted(self):
        model = WorkloadModel(max_fingerprints=2)
        model.observe("SELECT a FROM t", 0.001)
        model.observe("SELECT b FROM t", 0.001)
        model.observe("SELECT a FROM t", 0.001)  # refresh a
        model.observe("SELECT c FROM t", 0.001)  # evicts b
        assert len(model) == 2
        assert model.evicted == 1
        assert model.get(fingerprint("SELECT b FROM t")) is None
        assert model.get(fingerprint("SELECT a FROM t")) is not None

    def test_top_orderings(self):
        model = WorkloadModel()
        for _ in range(3):
            model.observe("SELECT fast FROM t", 0.001)
        model.observe("SELECT slow FROM t", 0.100)
        by_calls = model.top(1, by="calls")[0]
        assert by_calls.statement == "SELECT FAST FROM T"
        by_total = model.top(1, by="total_time")[0]
        assert by_total.statement == "SELECT SLOW FROM T"
        by_mean = model.top(1, by="mean_time")[0]
        assert by_mean.statement == "SELECT SLOW FROM T"

    def test_unknown_ordering_rejected(self):
        model = WorkloadModel()
        with pytest.raises(ValueError, match="unknown workload ordering"):
            model.top(5, by="rows")
        assert "rows" not in ORDERINGS

    def test_to_dict_shape(self):
        model = WorkloadModel()
        model.observe("SELECT 1", 0.002, rows=1)
        payload = model.to_dict(top=10, by="calls")
        assert payload["distinct_statements"] == 1
        assert payload["evicted"] == 0
        assert payload["ordered_by"] == "calls"
        (entry,) = payload["fingerprints"]
        assert entry["statement"] == "SELECT ?"
        assert entry["example"] == "SELECT 1"
        assert entry["calls"] == 1
        assert set(entry) >= {"p50", "p95", "p99", "cache_hit_ratio"}

    def test_report_lists_statements(self):
        model = WorkloadModel()
        model.observe("SELECT n FROM t WHERE n = 7", 0.004, rows=2)
        text = model.report()
        assert "workload model -- 1 fingerprint(s)" in text
        assert "SELECT N FROM T WHERE N = ?" in text

    def test_empty_report(self):
        assert WorkloadModel().report() == "(no statements recorded)"

    def test_reset(self):
        model = WorkloadModel(max_fingerprints=1)
        model.observe("SELECT a FROM t", 0.001)
        model.observe("SELECT b FROM t", 0.001)
        assert model.evicted == 1
        model.reset()
        assert len(model) == 0
        assert model.evicted == 0


class TestThreadSafety:
    def test_concurrent_observes_are_not_lost(self):
        model = WorkloadModel()
        rounds = 200

        def worker(i):
            for _ in range(rounds):
                model.observe(f"SELECT col{i} FROM t WHERE n = 1", 0.001)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(model) == 8
        assert all(s.calls == rounds for s in model.top())
