"""Unit tests for the metrics registry (counters, gauges, histograms,
pull collectors, snapshot deltas, deterministic timer injection)."""

import pytest

from repro.obs.metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry


class FakeTimer:
    """A deterministic monotonic clock: ticks by a fixed step per call."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


class TestCountersAndGauges:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.inc("am.calls")
        registry.inc("am.calls")
        registry.inc("am.calls", 3)
        assert registry.counter("am.calls") == 5
        assert registry.counter("never.touched") == 0

    def test_gauges_overwrite(self):
        registry = MetricsRegistry()
        registry.set_gauge("pool.resident", 10)
        registry.set_gauge("pool.resident", 7)
        assert registry.gauge("pool.resident") == 7
        assert registry.gauge("missing") == 0

    def test_snapshot_merges_counters_and_gauges(self):
        registry = MetricsRegistry()
        registry.inc("c", 2)
        registry.set_gauge("g", 4)
        assert registry.snapshot() == {"c": 2, "g": 4}


class TestHistogram:
    def test_boundaries_must_ascend(self):
        with pytest.raises(ValueError):
            Histogram("h", boundaries=[1.0, 0.5])
        with pytest.raises(ValueError):
            Histogram("h", boundaries=[])

    def test_bucket_assignment_and_overflow(self):
        h = Histogram("h", boundaries=[0.001, 0.01, 0.1])
        h.observe(0.0005)   # first bucket
        h.observe(0.005)    # second
        h.observe(0.05)     # third
        h.observe(99.0)     # overflow
        assert h.bucket_counts == [1, 1, 1, 1]
        assert h.count == 4
        assert h.total == pytest.approx(0.0005 + 0.005 + 0.05 + 99.0)
        assert h.mean == pytest.approx(h.total / 4)

    def test_registry_observe_creates_and_reuses(self):
        registry = MetricsRegistry()
        registry.observe("lat", 0.002)
        registry.observe("lat", 0.002)
        h = registry.histogram("lat")
        assert h.count == 2
        assert h.boundaries == tuple(DEFAULT_BUCKETS)

    def test_to_dict_is_stable(self):
        h = Histogram("h", boundaries=[1.0])
        h.observe(0.5)
        assert h.to_dict() == {
            "boundaries": [1.0],
            "bucket_counts": [1, 0],
            "count": 1,
            "sum": 0.5,
            "p50": 0.5,
            "p95": pytest.approx(0.95),
            "p99": pytest.approx(0.99),
        }


class TestQuantiles:
    def test_empty_histogram_is_zero(self):
        h = Histogram("h", boundaries=[1.0, 2.0])
        assert h.quantile(0.5) == 0.0
        assert h.quantile(0.0) == 0.0
        assert h.quantile(1.0) == 0.0

    def test_q_out_of_range_rejected(self):
        h = Histogram("h", boundaries=[1.0])
        with pytest.raises(ValueError):
            h.quantile(-0.01)
        with pytest.raises(ValueError):
            h.quantile(1.01)

    def test_single_bucket_interpolates_from_zero(self):
        h = Histogram("h", boundaries=[1.0, 2.0])
        for _ in range(10):
            h.observe(0.5)
        # All mass in the first bucket [0, 1]: linear interpolation.
        assert h.quantile(0.5) == pytest.approx(0.5)
        assert h.quantile(1.0) == pytest.approx(1.0)

    def test_boundary_between_buckets(self):
        """The q that lands exactly on a bucket edge returns that edge."""
        h = Histogram("h", boundaries=[1.0, 2.0, 3.0])
        for _ in range(5):
            h.observe(0.5)   # bucket (0, 1]
        for _ in range(5):
            h.observe(1.5)   # bucket (1, 2]
        assert h.quantile(0.5) == pytest.approx(1.0)   # edge of bucket 1
        assert h.quantile(1.0) == pytest.approx(2.0)   # edge of bucket 2
        assert h.quantile(0.75) == pytest.approx(1.5)  # middle of bucket 2

    def test_overflow_bucket_clamps_to_last_edge(self):
        h = Histogram("h", boundaries=[1.0, 2.0])
        h.observe(0.5)
        h.observe(99.0)  # overflow: cannot be interpolated
        assert h.quantile(0.99) == 2.0
        assert h.quantile(1.0) == 2.0

    def test_skips_empty_buckets(self):
        h = Histogram("h", boundaries=[1.0, 2.0, 3.0, 4.0])
        for _ in range(4):
            h.observe(3.5)  # only bucket (3, 4] has mass
        assert h.quantile(0.01) > 3.0
        assert h.quantile(1.0) == pytest.approx(4.0)

    def test_summary_shape(self):
        h = Histogram("h", boundaries=[1.0])
        h.observe(0.25)
        s = h.summary()
        assert set(s) == {"count", "sum", "mean", "p50", "p95", "p99"}
        assert s["count"] == 1 and s["sum"] == 0.25 and s["mean"] == 0.25


class TestCollectors:
    def test_collector_values_are_prefixed(self):
        registry = MetricsRegistry()
        registry.register_collector("buffer.gi", lambda: {"reads": 3})
        assert registry.snapshot()["buffer.gi.reads"] == 3

    def test_reregistering_replaces(self):
        registry = MetricsRegistry()
        registry.register_collector("p", lambda: {"x": 1})
        registry.register_collector("p", lambda: {"x": 2})
        assert registry.snapshot() == {"p.x": 2}
        assert registry.collector_prefixes() == ["p"]

    def test_unregister(self):
        registry = MetricsRegistry()
        registry.register_collector("p", lambda: {"x": 1})
        registry.unregister_collector("p")
        registry.unregister_collector("never-there")  # no error
        assert registry.snapshot() == {}

    def test_collectors_survive_reset(self):
        registry = MetricsRegistry()
        registry.inc("pushed")
        registry.observe("lat", 0.1)
        registry.register_collector("p", lambda: {"x": 1})
        registry.reset()
        assert registry.counter("pushed") == 0
        assert registry.snapshot() == {"p.x": 1}
        assert registry.to_dict()["histograms"] == {}


class TestDelta:
    def test_nonzero_differences_only(self):
        before = {"a": 1, "b": 5}
        after = {"a": 4, "b": 5, "c": 2}
        assert MetricsRegistry.delta(before, after) == {"a": 3, "c": 2}

    def test_missing_keys_read_zero(self):
        assert MetricsRegistry.delta({}, {"new": 7}) == {"new": 7}


class TestTimerInjection:
    def test_default_timer_is_monotonic(self):
        registry = MetricsRegistry()
        assert registry.timer() <= registry.timer()

    def test_injected_timer_is_used(self):
        timer = FakeTimer(step=0.5)
        registry = MetricsRegistry(timer=timer)
        assert registry.timer() == 0.5
        assert registry.timer() == 1.0
