"""Tests for chronons, granularities, and the clock."""

import pytest

from repro.temporal.chronon import (
    Clock,
    Granularity,
    format_chronon,
    parse_chronon,
)


class TestDayGranularity:
    def test_paper_query_constant_roundtrips(self):
        value = parse_chronon("12/10/95", Granularity.DAY)
        assert format_chronon(value, Granularity.DAY) == "12/10/1995"

    def test_epoch_is_day_zero(self):
        assert parse_chronon("01/01/1900", Granularity.DAY) == 0

    def test_days_are_consecutive(self):
        jan1 = parse_chronon("01/01/1995", Granularity.DAY)
        jan2 = parse_chronon("01/02/1995", Granularity.DAY)
        assert jan2 == jan1 + 1

    def test_four_digit_years_accepted(self):
        assert parse_chronon("12/10/1995", Granularity.DAY) == parse_chronon(
            "12/10/95", Granularity.DAY
        )

    def test_two_digit_year_pivot(self):
        y69 = parse_chronon("01/01/69", Granularity.DAY)
        y70 = parse_chronon("01/01/70", Granularity.DAY)
        assert format_chronon(y69, Granularity.DAY).endswith("2069")
        assert format_chronon(y70, Granularity.DAY).endswith("1970")

    def test_rejects_month_format(self):
        with pytest.raises(ValueError):
            parse_chronon("4/97", Granularity.DAY)

    def test_rejects_bad_date(self):
        with pytest.raises(ValueError):
            parse_chronon("02/30/97", Granularity.DAY)


class TestMonthGranularity:
    def test_empdep_timestamps(self):
        assert parse_chronon("4/97", Granularity.MONTH) - parse_chronon(
            "3/97", Granularity.MONTH
        ) == 1

    def test_year_boundary(self):
        dec = parse_chronon("12/96", Granularity.MONTH)
        jan = parse_chronon("1/97", Granularity.MONTH)
        assert jan == dec + 1

    def test_roundtrip(self):
        value = parse_chronon("9/97", Granularity.MONTH)
        assert format_chronon(value, Granularity.MONTH) == "9/1997"

    def test_rejects_day_format(self):
        with pytest.raises(ValueError):
            parse_chronon("12/10/95", Granularity.MONTH)

    def test_rejects_month_out_of_range(self):
        with pytest.raises(ValueError):
            parse_chronon("13/97", Granularity.MONTH)


class TestClock:
    def test_advance(self):
        clock = Clock(now=10)
        assert clock.advance(5) == 15
        assert clock.now == 15

    def test_advance_default_is_one(self):
        clock = Clock(now=0)
        clock.advance()
        assert clock.now == 1

    def test_time_never_moves_backwards(self):
        clock = Clock(now=10)
        with pytest.raises(ValueError):
            clock.advance(-1)
        with pytest.raises(ValueError):
            clock.set(9)

    def test_set_to_current_time_is_noop(self):
        clock = Clock(now=10)
        assert clock.set(10) == 10

    def test_set_text(self):
        clock = Clock(granularity=Granularity.MONTH)
        clock.set_text("9/97")
        assert clock.format() == "9/1997"

    def test_observers_fire_on_advance(self):
        clock = Clock(now=0)
        seen = []
        clock.subscribe(seen.append)
        clock.advance(2)
        clock.set(5)
        assert seen == [2, 5]
