"""Property-based tests (hypothesis) for the temporal substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.temporal.chronon import Granularity, format_chronon, parse_chronon
from repro.temporal.extent import TimeExtent
from repro.temporal.regions import Region, bounding_region
from repro.temporal.variables import NOW, UC

chronons = st.integers(min_value=0, max_value=200)


@st.composite
def regions(draw):
    tt_lo = draw(chronons)
    tt_hi = draw(st.integers(min_value=tt_lo, max_value=tt_lo + 60))
    vt_lo = draw(chronons)
    vt_hi = draw(st.integers(min_value=vt_lo, max_value=vt_lo + 60))
    stair = draw(st.booleans())
    region = Region.make(tt_lo, tt_hi, vt_lo, vt_hi, stair)
    if region is None:
        # Retry with a shape guaranteed non-empty.
        region = Region.make(tt_lo, tt_hi, min(vt_lo, tt_hi), vt_hi, stair)
    assert region is not None
    return region


@st.composite
def extents(draw):
    tt_begin = draw(chronons)
    now_relative_tt = draw(st.booleans())
    now_relative_vt = draw(st.booleans())
    tt_end = UC if now_relative_tt else draw(
        st.integers(min_value=tt_begin, max_value=tt_begin + 50)
    )
    if now_relative_vt:
        vt_begin = draw(st.integers(min_value=max(0, tt_begin - 50), max_value=tt_begin))
        vt_end = NOW
    else:
        vt_begin = draw(chronons)
        vt_end = draw(st.integers(min_value=vt_begin, max_value=vt_begin + 50))
    return TimeExtent(tt_begin, tt_end, vt_begin, vt_end)


class TestRegionAlgebra:
    @given(regions(), regions())
    def test_overlap_is_symmetric(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)

    @given(regions())
    def test_overlap_is_reflexive(self, a):
        assert a.overlaps(a)

    @given(regions(), regions())
    def test_containment_implies_overlap(self, a, b):
        if a.contains(b):
            assert a.overlaps(b)

    @given(regions(), regions())
    def test_intersection_contained_in_both(self, a, b):
        inter = a.intersection(b)
        if inter is not None:
            assert a.contains(inter)
            assert b.contains(inter)
            assert a.overlaps(b)
        else:
            assert not a.overlaps(b)

    @given(regions(), regions())
    def test_bounding_contains_both(self, a, b):
        bound = bounding_region([a, b])
        assert bound.contains(a)
        assert bound.contains(b)

    @given(regions(), regions())
    def test_bounding_area_at_least_max_member(self, a, b):
        bound = bounding_region([a, b])
        assert bound.area() >= max(a.area(), b.area())

    @given(regions())
    def test_area_positive(self, a):
        assert a.area() >= 1

    @given(regions())
    def test_bounding_rectangle_contains_region(self, a):
        assert a.bounding_rectangle().contains(a)

    @given(regions(), regions())
    def test_mutual_containment_is_equality(self, a, b):
        if a.contains(b) and b.contains(a):
            assert a.equal(b)

    @given(regions(), regions())
    def test_intersection_area_bounded(self, a, b):
        inter = a.intersection(b)
        if inter is not None:
            assert inter.area() <= min(a.area(), b.area())


class TestExtentProperties:
    @given(extents(), st.integers(min_value=300, max_value=400))
    def test_region_nonempty_after_insertion(self, ext, now):
        region = ext.region(now)
        assert region.area() >= 1

    @given(extents(), st.integers(min_value=300, max_value=350))
    def test_growth_is_monotone(self, ext, now):
        earlier = ext.region(now)
        later = ext.region(now + 25)
        assert later.contains(earlier)
        assert later.area() >= earlier.area()

    @given(extents())
    def test_static_extents_never_grow(self, ext):
        if not ext.case.growing:
            assert ext.region(300) == ext.region(400)

    @given(extents())
    def test_case_roundtrips_through_text(self, ext):
        text = ext.to_text()
        again = TimeExtent.from_text(text)
        assert again == ext
        assert again.case is ext.case

    @given(extents(), st.integers(min_value=201, max_value=300))
    def test_logical_deletion_freezes_region(self, ext, delete_time):
        if ext.tt_end is UC and delete_time > ext.tt_begin:
            deleted = ext.logically_deleted(delete_time)
            assert deleted.region(delete_time + 10) == deleted.region(
                delete_time + 100
            )
            # The frozen region is what the live one was one chronon ago.
            assert deleted.region(delete_time + 10) == ext.region(delete_time - 1)


class TestChrononProperties:
    @given(st.integers(min_value=0, max_value=80000))
    def test_day_roundtrip(self, value):
        text = format_chronon(value, Granularity.DAY)
        assert parse_chronon(text, Granularity.DAY) == value

    @given(st.integers(min_value=0, max_value=3000))
    def test_month_roundtrip(self, value):
        text = format_chronon(value, Granularity.MONTH)
        assert parse_chronon(text, Granularity.MONTH) == value
