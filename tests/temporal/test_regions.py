"""Tests for bitemporal region geometry (rectangles and stair shapes)."""

import pytest

from repro.temporal.regions import Region, bounding_region, union_area


def rect(tt_lo, tt_hi, vt_lo, vt_hi):
    region = Region.make(tt_lo, tt_hi, vt_lo, vt_hi, stair=False)
    assert region is not None
    return region


def stair(tt_lo, tt_hi, vt_lo, vt_hi=None):
    region = Region.make(
        tt_lo, tt_hi, vt_lo, tt_hi if vt_hi is None else vt_hi, stair=True
    )
    assert region is not None
    return region


class TestCanonicalisation:
    def test_empty_intervals_return_none(self):
        assert Region.make(5, 4, 0, 10) is None
        assert Region.make(0, 10, 5, 4) is None

    def test_stair_fully_above_diagonal_is_empty(self):
        # vt_lo beyond tt_hi: every column lies above the diagonal.
        assert Region.make(0, 5, 6, 10, stair=True) is None

    def test_stair_vt_hi_clipped_to_tt_hi(self):
        region = Region.make(0, 5, 0, 100, stair=True)
        assert region == Region(0, 5, 0, 5, True)

    def test_stair_that_never_touches_diagonal_becomes_rect(self):
        # Diagonal at t >= 10 is above vt_hi = 4: plain rectangle.
        region = Region.make(10, 20, 0, 4, stair=True)
        assert region is not None and not region.stair


class TestAreaAndPoints:
    def test_rect_area(self):
        assert rect(0, 4, 0, 2).area() == 15

    def test_unit_region_area(self):
        assert rect(3, 3, 7, 7).area() == 1

    def test_full_stair_area_is_triangular(self):
        # Columns t=0..5 hold t+1 cells each: 1+2+...+6 = 21.
        assert stair(0, 5, 0).area() == 21

    def test_stair_with_high_first_step(self):
        # vt_lo=0, tt 3..5: columns hold 4, 5, 6 cells.
        assert stair(3, 5, 0).area() == 15

    def test_stair_with_clipped_top(self):
        region = Region.make(0, 10, 0, 4, stair=True)
        assert region is not None
        assert region.area() == 1 + 2 + 3 + 4 + 5 * 7

    def test_stair_with_raised_floor(self):
        assert stair(0, 5, 3).area() == 1 + 2 + 3

    def test_area_equals_point_count(self):
        for region in [
            rect(2, 6, 1, 4),
            stair(0, 6, 0),
            stair(4, 9, 2),
            Region.make(0, 9, 1, 5, stair=True),
        ]:
            count = sum(
                region.contains_point(t, v)
                for t in range(-1, 12)
                for v in range(-1, 12)
            )
            assert count == region.area(), str(region)

    def test_contains_point_respects_diagonal(self):
        region = stair(0, 10, 0)
        assert region.contains_point(5, 5)
        assert not region.contains_point(5, 6)


class TestOverlap:
    def test_disjoint_rects(self):
        assert not rect(0, 4, 0, 4).overlaps(rect(5, 9, 0, 4))

    def test_touching_rects_overlap(self):
        # Closed intervals: sharing an edge counts as overlap.
        assert rect(0, 4, 0, 4).overlaps(rect(4, 9, 4, 9))

    def test_stair_blocks_rect_above_diagonal(self):
        # Rectangle sits above the stair's diagonal within the tt range.
        assert not stair(0, 5, 0).overlaps(rect(0, 0, 3, 4))

    def test_stair_meets_rect_at_right_edge(self):
        assert stair(0, 5, 0).overlaps(rect(0, 5, 3, 4))

    def test_stair_stair(self):
        assert stair(0, 10, 0).overlaps(stair(5, 15, 2))
        assert not stair(0, 3, 0).overlaps(stair(6, 9, 5))

    def test_overlap_is_exact(self):
        """Closed-form overlap agrees with brute-force point enumeration."""
        shapes = [
            rect(0, 6, 0, 6),
            rect(2, 4, 5, 8),
            stair(0, 8, 0),
            stair(3, 7, 1),
            Region.make(0, 9, 0, 4, stair=True),
            rect(7, 9, 0, 1),
        ]
        for a in shapes:
            for b in shapes:
                brute = any(
                    a.contains_point(t, v) and b.contains_point(t, v)
                    for t in range(0, 11)
                    for v in range(0, 11)
                )
                assert a.overlaps(b) == brute, f"{a} vs {b}"


class TestContainment:
    def test_rect_in_rect(self):
        assert rect(0, 9, 0, 9).contains(rect(2, 4, 3, 5))
        assert not rect(2, 4, 3, 5).contains(rect(0, 9, 0, 9))

    def test_stair_contains_smaller_stair(self):
        assert stair(0, 10, 0).contains(stair(2, 8, 2))

    def test_stair_does_not_contain_rect_above_diagonal(self):
        assert not stair(0, 10, 0).contains(rect(2, 4, 3, 5))

    def test_stair_contains_rect_below_diagonal(self):
        assert stair(0, 10, 0).contains(rect(5, 8, 0, 4))

    def test_containment_is_exact(self):
        shapes = [
            rect(0, 6, 0, 6),
            rect(2, 4, 5, 8),
            stair(0, 8, 0),
            stair(3, 7, 1),
            Region.make(0, 9, 0, 4, stair=True),
        ]
        for a in shapes:
            for b in shapes:
                brute = all(
                    a.contains_point(t, v)
                    for t in range(0, 11)
                    for v in range(0, 11)
                    if b.contains_point(t, v)
                )
                assert a.contains(b) == brute, f"{a} contains {b}"

    def test_contained_in_mirrors_contains(self):
        inner, outer = rect(1, 2, 1, 2), rect(0, 5, 0, 5)
        assert inner.contained_in(outer)
        assert not outer.contained_in(inner)

    def test_every_region_contains_itself(self):
        for region in [rect(0, 5, 0, 5), stair(0, 5, 0)]:
            assert region.contains(region)
            assert region.equal(region)


class TestIntersection:
    def test_rect_rect(self):
        assert rect(0, 5, 0, 5).intersection(rect(3, 9, 3, 9)) == rect(3, 5, 3, 5)

    def test_disjoint_is_none(self):
        assert rect(0, 2, 0, 2).intersection(rect(5, 9, 5, 9)) is None

    def test_rect_stair(self):
        result = stair(0, 10, 0).intersection(rect(2, 6, 1, 8))
        assert result == Region.make(2, 6, 1, 8, stair=True)

    def test_intersection_is_exact(self):
        shapes = [
            rect(0, 6, 0, 6),
            stair(0, 8, 0),
            Region.make(0, 9, 0, 4, stair=True),
            rect(2, 4, 5, 8),
        ]
        for a in shapes:
            for b in shapes:
                inter = a.intersection(b)
                for t in range(0, 11):
                    for v in range(0, 11):
                        expected = a.contains_point(t, v) and b.contains_point(t, v)
                        actual = inter is not None and inter.contains_point(t, v)
                        assert actual == expected, f"{a} ^ {b} at ({t},{v})"


class TestBounding:
    def test_rect_bounding(self):
        bound = bounding_region([rect(0, 2, 0, 2), rect(5, 9, 4, 8)])
        assert bound == rect(0, 9, 0, 8)

    def test_stair_bounding_when_all_under_diagonal(self):
        # Figure 4(b): all members on/below vt = tt, so a stair bounds.
        bound = bounding_region([stair(0, 5, 0), rect(4, 9, 0, 3)])
        assert bound.stair
        assert bound == stair(0, 9, 0)

    def test_rect_bounding_when_one_member_crosses_diagonal(self):
        # Figure 4(a): a rectangle above the diagonal forces a rectangle.
        bound = bounding_region([stair(0, 5, 0), rect(1, 3, 2, 6)])
        assert not bound.stair

    def test_bound_contains_members(self):
        members = [stair(0, 5, 0), rect(4, 9, 0, 3), rect(1, 3, 2, 6)]
        bound = bounding_region(members)
        for m in members:
            assert bound.contains(m)

    def test_empty_collection_rejected(self):
        with pytest.raises(ValueError):
            bounding_region([])


class TestUnionArea:
    def test_disjoint(self):
        assert union_area([rect(0, 1, 0, 1), rect(5, 6, 5, 6)]) == 8

    def test_overlapping_counts_once(self):
        assert union_area([rect(0, 2, 0, 2), rect(1, 3, 1, 3)]) == 9 + 9 - 4

    def test_stair_union(self):
        assert union_area([stair(0, 5, 0)]) == 21

    def test_dead_space_example(self):
        members = [rect(0, 1, 0, 1), rect(8, 9, 8, 9)]
        bound = bounding_region(members)
        dead = bound.area() - union_area(members)
        assert dead == 100 - 8
