"""Tests for the 4TS time extent: cases, constraints, text I/O."""

import pytest

from repro.temporal.chronon import Granularity
from repro.temporal.extent import Case, ExtentError, TimeExtent
from repro.temporal.variables import NOW, UC


class TestCaseClassification:
    """The six combinations of the paper's Figure 2."""

    def test_case1_growing_rectangle(self):
        assert TimeExtent(10, UC, 5, 20).case is Case.GROWING_RECTANGLE

    def test_case2_static_rectangle(self):
        assert TimeExtent(10, 15, 5, 20).case is Case.STATIC_RECTANGLE

    def test_case3_growing_stair(self):
        assert TimeExtent(10, UC, 10, NOW).case is Case.GROWING_STAIR

    def test_case4_static_stair(self):
        assert TimeExtent(10, 15, 10, NOW).case is Case.STATIC_STAIR

    def test_case5_growing_stair_high_step(self):
        assert TimeExtent(10, UC, 5, NOW).case is Case.GROWING_STAIR_HIGH_STEP

    def test_case6_static_stair_high_step(self):
        assert TimeExtent(10, 15, 5, NOW).case is Case.STATIC_STAIR_HIGH_STEP

    def test_growing_property(self):
        assert Case.GROWING_RECTANGLE.growing
        assert Case.GROWING_STAIR.growing
        assert Case.GROWING_STAIR_HIGH_STEP.growing
        assert not Case.STATIC_RECTANGLE.growing
        assert not Case.STATIC_STAIR.growing
        assert not Case.STATIC_STAIR_HIGH_STEP.growing

    def test_stair_shaped_property(self):
        assert not Case.GROWING_RECTANGLE.stair_shaped
        assert Case.STATIC_STAIR_HIGH_STEP.stair_shaped


class TestWellFormedness:
    def test_tt_interval_ordering(self):
        with pytest.raises(ExtentError):
            TimeExtent(10, 5, 0, 20)

    def test_vt_interval_ordering(self):
        with pytest.raises(ExtentError):
            TimeExtent(10, 20, 15, 12)

    def test_variables_only_in_their_slot(self):
        with pytest.raises(ExtentError):
            TimeExtent(10, NOW, 0, 20)
        with pytest.raises(ExtentError):
            TimeExtent(10, 20, 0, UC)
        with pytest.raises(ExtentError):
            TimeExtent(UC, 20, 0, 20)

    def test_now_relative_vt_needs_vtbegin_at_or_before_ttbegin(self):
        # A NOW valid-time end that starts after the insertion time would
        # make the region initially empty (the paper's second valid-time
        # insertion constraint).
        with pytest.raises(ExtentError):
            TimeExtent(10, UC, 12, NOW)

    def test_future_fixed_valid_time_is_allowed(self):
        # Tom's tuple: recorded before it becomes true (Case 2 example).
        TimeExtent(10, UC, 20, 25)


class TestInsertionConstraints:
    def test_fresh_insert_must_be_current(self):
        with pytest.raises(ExtentError):
            TimeExtent(10, 15, 5, 12).validate_insertion(10)

    def test_ttbegin_must_equal_current_time(self):
        with pytest.raises(ExtentError):
            TimeExtent(9, UC, 5, 12).validate_insertion(10)

    def test_valid_insert(self):
        TimeExtent(10, UC, 5, NOW).validate_insertion(10)
        TimeExtent(10, UC, 20, 25).validate_insertion(10)


class TestLogicalDeletion:
    def test_deletion_freezes_transaction_time(self):
        ext = TimeExtent(10, UC, 5, NOW)
        deleted = ext.logically_deleted(15)
        assert deleted.tt_end == 14
        assert deleted.vt_end is NOW
        assert deleted.case is Case.STATIC_STAIR_HIGH_STEP

    def test_cannot_delete_closed_tuple(self):
        with pytest.raises(ExtentError):
            TimeExtent(10, 14, 5, 12).logically_deleted(15)

    def test_cannot_delete_at_insertion_chronon(self):
        with pytest.raises(ExtentError):
            TimeExtent(10, UC, 5, NOW).logically_deleted(10)


class TestResolution:
    def test_uc_resolves_to_current_time(self):
        assert TimeExtent(10, UC, 5, 20).resolve(30) == (30, 20)

    def test_now_resolves_to_resolved_ttend(self):
        # The paper's algorithm sets VTend to TTend, not to the clock.
        assert TimeExtent(10, 15, 10, NOW).resolve(30) == (15, 15)
        assert TimeExtent(10, UC, 10, NOW).resolve(30) == (30, 30)

    def test_ground_extent_ignores_clock(self):
        assert TimeExtent(10, 15, 5, 20).resolve(99) == (15, 20)


class TestRegions:
    def test_growing_rectangle_grows_in_tt_only(self):
        ext = TimeExtent(10, UC, 5, 20)
        r1, r2 = ext.region(15), ext.region(25)
        assert (r1.tt_hi, r2.tt_hi) == (15, 25)
        assert r1.vt_hi == r2.vt_hi == 20
        assert not r1.stair

    def test_growing_stair_grows_in_both(self):
        ext = TimeExtent(10, UC, 10, NOW)
        r = ext.region(25)
        assert r.stair
        assert r.tt_hi == r.vt_hi == 25

    def test_static_region_does_not_grow(self):
        ext = TimeExtent(10, 15, 10, NOW)
        assert ext.region(20) == ext.region(99)

    def test_area_grows_over_time(self):
        ext = TimeExtent(10, UC, 10, NOW)
        assert ext.region(20).area() < ext.region(30).area()


class TestTextIO:
    def test_paper_query_literal(self):
        ext = TimeExtent.from_text("12/10/95, UC, 12/10/95, NOW")
        assert ext.tt_end is UC
        assert ext.vt_end is NOW
        assert ext.tt_begin == ext.vt_begin

    def test_roundtrip_day(self):
        ext = TimeExtent.from_text("12/10/95, UC, 12/10/95, NOW")
        again = TimeExtent.from_text(ext.to_text())
        assert again == ext

    def test_roundtrip_month(self):
        ext = TimeExtent.from_text("3/97, 7/97, 3/97, NOW", Granularity.MONTH)
        assert TimeExtent.from_text(
            ext.to_text(Granularity.MONTH), Granularity.MONTH
        ) == ext

    def test_case_insensitive_variables(self):
        ext = TimeExtent.from_text("12/10/95, uc, 12/10/95, now")
        assert ext.tt_end is UC and ext.vt_end is NOW

    def test_rejects_wrong_arity(self):
        with pytest.raises(ExtentError):
            TimeExtent.from_text("12/10/95, UC, 12/10/95")

    def test_rejects_variables_in_wrong_slot(self):
        with pytest.raises(Exception):
            TimeExtent.from_text("NOW, UC, 12/10/95, NOW")


class TestEquality:
    def test_frozen_and_hashable(self):
        a = TimeExtent(10, UC, 5, NOW)
        b = TimeExtent(10, UC, 5, NOW)
        assert a == b and hash(a) == hash(b)
        with pytest.raises(Exception):
            a.tt_begin = 11  # type: ignore[misc]
