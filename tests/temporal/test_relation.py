"""Tests for bitemporal relation semantics and the EmpDep example."""

import pytest

from repro.temporal.chronon import Clock, Granularity, parse_chronon
from repro.temporal.extent import ExtentError
from repro.temporal.relation import BitemporalRelation, build_empdep
from repro.temporal.variables import NOW, UC


def month(text):
    return parse_chronon(text, Granularity.MONTH)


@pytest.fixture
def rel():
    clock = Clock(now=100)
    return BitemporalRelation(["name"], clock=clock)


class TestUpdates:
    def test_insert_sets_transaction_time(self, rel):
        row = rel.insert({"name": "a"}, vt_begin=90)
        assert row.extent.tt_begin == 100
        assert row.extent.tt_end is UC
        assert row.extent.vt_end is NOW

    def test_insert_rejects_unknown_column(self, rel):
        with pytest.raises(KeyError):
            rel.insert({"oops": 1}, vt_begin=90)

    def test_insert_rejects_future_now_relative_vt(self, rel):
        with pytest.raises(ExtentError):
            rel.insert({"name": "a"}, vt_begin=150)

    def test_future_fixed_valid_time_ok(self, rel):
        row = rel.insert({"name": "a"}, vt_begin=150, vt_end=160)
        assert row.extent.vt_end == 160

    def test_delete_is_logical(self, rel):
        rel.insert({"name": "a"}, vt_begin=90)
        rel.clock.advance(5)
        assert rel.delete(lambda r: r.values["name"] == "a") == 1
        assert len(rel) == 1  # never physically removed
        assert rel._tuples[0].extent.tt_end == 104

    def test_delete_skips_non_current(self, rel):
        rel.insert({"name": "a"}, vt_begin=90)
        rel.clock.advance(5)
        rel.delete(lambda r: True)
        rel.clock.advance(5)
        assert rel.delete(lambda r: True) == 0

    def test_modify_is_delete_plus_insert(self, rel):
        rel.insert({"name": "a"}, vt_begin=90)
        rel.clock.advance(10)
        rel.modify(lambda r: r.values["name"] == "a", {"name": "a2"}, vt_begin=95)
        assert len(rel) == 2
        old, new = rel._tuples
        assert old.extent.tt_end == 109
        assert new.extent.tt_begin == 110
        assert new.values["name"] == "a2"

    def test_current_state(self, rel):
        rel.insert({"name": "a"}, vt_begin=90)
        rel.insert({"name": "b"}, vt_begin=90)
        rel.clock.advance(1)
        rel.delete(lambda r: r.values["name"] == "a")
        current = rel.current_state()
        assert [r.values["name"] for r in current] == ["b"]


class TestEmpDep:
    """Reproduction of the paper's Table 1."""

    def test_table1_contents(self):
        rel = build_empdep()
        rows = {
            (
                r["Employee"],
                r["TTbegin"],
                r["TTend"],
                r["VTbegin"],
                r["VTend"],
            )
            for r in rel.to_table()
        }
        expected = {
            ("John", "4/1997", "UC", "3/1997", "5/1997"),
            ("Tom", "3/1997", "7/1997", "6/1997", "8/1997"),
            ("Jane", "5/1997", "UC", "5/1997", "NOW"),
            ("Julie", "3/1997", "7/1997", "3/1997", "NOW"),
            ("Julie", "8/1997", "UC", "3/1997", "7/1997"),
            ("Michelle", "5/1997", "UC", "3/1997", "NOW"),
        }
        assert rows == expected

    def test_current_time_is_997(self):
        rel = build_empdep()
        assert rel.clock.format() == "9/1997"

    def test_cases_match_figure1(self):
        # Tuple (1) John: case 1; (2) Tom: case 2; (3) Jane: case 3;
        # (4) old Julie: case 4; (6) Michelle: case 5.
        rel = build_empdep()
        by_key = {
            (r.values["Employee"], str(r.extent.tt_begin)): r.extent.case.value
            for r in rel
        }
        john = next(r for r in rel if r.values["Employee"] == "John")
        tom = next(r for r in rel if r.values["Employee"] == "Tom")
        jane = next(r for r in rel if r.values["Employee"] == "Jane")
        michelle = next(r for r in rel if r.values["Employee"] == "Michelle")
        julies = sorted(
            (r for r in rel if r.values["Employee"] == "Julie"),
            key=lambda r: r.extent.tt_begin,
        )
        assert john.extent.case.value == 1
        assert tom.extent.case.value == 2
        assert jane.extent.case.value == 3
        assert julies[0].extent.case.value == 4
        assert julies[1].extent.case.value == 1
        assert michelle.extent.case.value == 5
        assert by_key  # sanity


class TestJulieAnomaly:
    """Section 5.1 / Table 3 / Figure 8: the separate-interval anomaly."""

    def test_naive_timeslice_wrongly_includes_julie(self):
        rel = build_empdep()
        vt, tt = month("7/97"), month("5/97")
        naive = {r.values["Employee"] for r in rel.timeslice_naive(vt, tt)}
        correct = {r.values["Employee"] for r in rel.timeslice(vt, tt)}
        assert "Julie" in naive
        assert "Julie" not in correct

    def test_correct_timeslice_for_julies_region(self):
        # Julie's stair does contain (tt=6/97, vt=5/97).
        rel = build_empdep()
        result = {r.values["Employee"] for r in rel.timeslice(month("5/97"), month("6/97"))}
        assert "Julie" in result


class TestQueries:
    def test_overlapping_matches_region_algebra(self):
        from repro.temporal.extent import TimeExtent

        rel = build_empdep()
        query = TimeExtent.from_text("5/97, UC, 5/97, NOW", Granularity.MONTH)
        hits = rel.overlapping(query)
        now = rel.now
        q_region = query.region(now)
        for row in rel:
            assert (row in hits) == row.region(now).overlaps(q_region)

    def test_format_table_has_all_rows(self):
        text = build_empdep().format_table()
        assert text.count("\n") == 7  # header + rule + 6 tuples
        for name in ("John", "Tom", "Jane", "Julie", "Michelle"):
            assert name in text
