"""Tests for the B+-tree substrate and its DataBlade (Step 4 material)."""

import random

import pytest

from repro.bblade import register_btree_blade
from repro.btree.node import BTreeNodeStore
from repro.btree.tree import BPlusTree
from repro.server import DatabaseServer
from repro.server.optimizer import IndexScanPlan
from repro.server.udr import Routine
from repro.storage.buffer import BufferPool
from repro.storage.pages import InMemoryPageStore


def natural(a: bytes, b: bytes) -> int:
    x, y = int(a), int(b)
    return (x > y) - (x < y)


def key(value: int) -> bytes:
    return str(value).encode()


def make_tree(page_size=256):
    pool = BufferPool(InMemoryPageStore(page_size=page_size), capacity=64)
    return BPlusTree(BTreeNodeStore(pool), natural)


class TestBPlusTree:
    def test_insert_and_point_lookup(self):
        tree = make_tree()
        for i in range(500):
            tree.insert(key(i), rowid=i)
        tree.check()
        assert tree.height > 1
        assert tree.search_equal(key(250)) == [(250, 0)]
        assert tree.search_equal(key(999)) == []

    def test_range_scan_in_order(self):
        tree = make_tree()
        values = random.Random(1).sample(range(1000), 400)
        for i, v in enumerate(values):
            tree.insert(key(v), rowid=i)
        results = tree.search_range(key(100), key(200))
        scanned = [int(k) for k, _, _ in results]
        assert scanned == sorted(v for v in values if 100 <= v <= 200)

    def test_open_bounds(self):
        tree = make_tree()
        for i in range(100):
            tree.insert(key(i), rowid=i)
        assert len(tree.search_range(None, key(9))) == 10
        assert len(tree.search_range(key(90), None)) == 10
        assert len(tree.search_range(None, None)) == 100

    def test_exclusive_bounds(self):
        tree = make_tree()
        for i in range(20):
            tree.insert(key(i), rowid=i)
        got = tree.search_range(key(5), key(10), low_inclusive=False,
                                high_inclusive=False)
        assert [int(k) for k, _, _ in got] == [6, 7, 8, 9]

    def test_duplicates_across_splits(self):
        tree = make_tree(page_size=128)
        for i in range(200):
            tree.insert(key(7), rowid=i)
        tree.check()
        assert sorted(r for r, _ in tree.search_equal(key(7))) == list(range(200))

    def test_delete_specific_duplicate(self):
        tree = make_tree(page_size=128)
        for i in range(50):
            tree.insert(key(7), rowid=i)
        assert tree.delete(key(7), rowid=25)
        assert not tree.delete(key(7), rowid=25)
        remaining = {r for r, _ in tree.search_equal(key(7))}
        assert remaining == set(range(50)) - {25}

    def test_delete_everything(self):
        tree = make_tree()
        for i in range(300):
            tree.insert(key(i), rowid=i)
        for i in range(300):
            assert tree.delete(key(i), rowid=i)
        assert tree.size == 0
        assert tree.search_range(None, None) == []

    def test_interleaved_matches_oracle(self):
        rng = random.Random(9)
        tree = make_tree(page_size=256)
        live = {}
        next_id = 0
        for _ in range(2000):
            if live and rng.random() < 0.4:
                rowid = rng.choice(list(live))
                assert tree.delete(key(live.pop(rowid)), rowid)
            else:
                value = rng.randint(0, 500)
                tree.insert(key(value), next_id)
                live[next_id] = value
                next_id += 1
        tree.check()
        lo, hi = 100, 300
        expected = sorted(
            rowid for rowid, v in live.items() if lo <= v <= hi
        )
        got = sorted(r for _, r, _ in tree.search_range(key(lo), key(hi)))
        assert got == expected

    def test_custom_comparator_changes_order(self):
        """The paper's example order 0, -1, 1, -2, 2."""

        def zigzag(a: bytes, b: bytes) -> int:
            def rank(raw):
                v = int(raw)
                return (abs(v), 0 if v < 0 else 1)

            ra, rb = rank(a), rank(b)
            return (ra > rb) - (ra < rb)

        pool = BufferPool(InMemoryPageStore(page_size=256), capacity=64)
        tree = BPlusTree(BTreeNodeStore(pool), zigzag)
        for i, v in enumerate([-2, -1, 0, 1, 2]):
            tree.insert(str(v).encode(), rowid=i)
        tree.check()
        order = [int(k) for k, _, _ in tree.search_range(None, None)]
        assert order == [0, -1, 1, -2, 2]

    def test_oversized_key_rejected(self):
        tree = make_tree(page_size=256)
        with pytest.raises(ValueError):
            tree.insert(b"x" * 100, rowid=1)


@pytest.fixture()
def server():
    s = DatabaseServer()
    s.create_sbspace("spc")
    register_btree_blade(s)
    s.execute("CREATE TABLE emp (name LVARCHAR, age INTEGER)")
    s.execute("CREATE INDEX bi ON emp(age) USING btree_am IN spc")
    s.prefer_virtual_index = True
    rng = random.Random(5)
    s._ages = {}
    for i in range(200):
        age = rng.randint(0, 90)
        s.execute(f"INSERT INTO emp VALUES ('p{i}', {age})")
        s._ages[f"p{i}"] = age
    return s


class TestBTreeBlade:
    def test_operators_use_the_index(self, server):
        for op, pred in (
            ("= 40", lambda a: a == 40),
            ("> 80", lambda a: a > 80),
            (">= 80", lambda a: a >= 80),
            ("< 5", lambda a: a < 5),
            ("<= 5", lambda a: a <= 5),
        ):
            rows = server.execute(f"SELECT name FROM emp WHERE age {op}")
            assert isinstance(server.last_plan, IndexScanPlan), op
            expected = sorted(n for n, a in server._ages.items() if pred(a))
            assert sorted(r["name"] for r in rows) == expected, op

    def test_constant_on_the_left_commutes(self, server):
        rows = server.execute("SELECT name FROM emp WHERE 80 < age")
        assert isinstance(server.last_plan, IndexScanPlan)
        expected = sorted(n for n, a in server._ages.items() if a > 80)
        assert sorted(r["name"] for r in rows) == expected

    def test_range_conjunction(self, server):
        rows = server.execute(
            "SELECT name FROM emp WHERE age >= 20 AND age < 30"
        )
        expected = sorted(
            n for n, a in server._ages.items() if 20 <= a < 30
        )
        assert sorted(r["name"] for r in rows) == expected

    def test_update_and_delete_maintain_index(self, server):
        server.execute("UPDATE emp SET age = 99 WHERE age = 40")
        server.execute("DELETE FROM emp WHERE age < 10")
        assert "consistent" in server.execute("CHECK INDEX bi")
        rows = server.execute("SELECT name FROM emp WHERE age = 99")
        expected = sorted(n for n, a in server._ages.items() if a == 40)
        assert sorted(r["name"] for r in rows) == expected

    def test_persistence_across_statements(self, server):
        first = server.execute("SELECT name FROM emp WHERE age > 50")
        second = server.execute("SELECT name FROM emp WHERE age > 50")
        assert sorted(r["name"] for r in first) == sorted(
            r["name"] for r in second
        )

    def test_new_opclass_with_substitute_compare(self, server):
        """Step 4's punchline: 'a substitute function for compare() has
        to be written, and a new operator class with the new function
        name ... registered': index order becomes 0, -1, 1, -2, 2."""

        def abs_compare(a: int, b: int) -> int:
            ra, rb = (abs(a), 0 if a < 0 else 1), (abs(b), 0 if b < 0 else 1)
            return (ra > rb) - (ra < rb)

        server.library.register(
            "usr/functions/btree.bld", "bt_abscompare_udr", abs_compare
        )
        server.execute(
            "CREATE FUNCTION AbsCompare(INTEGER, INTEGER) RETURNING int "
            "EXTERNAL NAME 'usr/functions/btree.bld(bt_abscompare_udr)' "
            "LANGUAGE c"
        )
        server.execute(
            "CREATE OPCLASS btree_abs_ops FOR btree_am "
            "STRATEGIES(BT_Equal, BT_GreaterThan, BT_GreaterThanOrEqual, "
            "BT_LessThan, BT_LessThanOrEqual) "
            "SUPPORT(AbsCompare)"
        )
        server.execute("CREATE TABLE nums (v INTEGER)")
        server.execute(
            "CREATE INDEX ni ON nums(v btree_abs_ops) USING btree_am IN spc"
        )
        for v in (-2, -1, 0, 1, 2):
            server.execute(f"INSERT INTO nums VALUES ({v})")
        # A full scan through the index returns the substituted order.
        info = server.catalog.get_index("ni")
        blade = server.catalog.routines.resolve_any("bt_getnext").fn.__self__
        td = server.executor._descriptor(info, server.system_session)
        with server.system_session.autocommit():
            blade.bt_open(td)
            order = [
                int(k)
                for k, _, _ in td.user_data["tree"].search_range(None, None)
            ]
            blade.bt_close(td)
        assert order == [0, -1, 1, -2, 2]
