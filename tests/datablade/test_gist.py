"""Tests for the generalized search tree and its DataBlade."""

import random

import pytest

from repro.gist import (
    GiST,
    IntervalExtension,
    RectExtension,
    register_gist_blade,
)
from repro.gist.extensions import Interval, IntervalQuery, RectQuery
from repro.gist.tree import GistNodeStore
from repro.rblade.blade import box_output
from repro.rtree.geometry import Rect
from repro.server import DatabaseServer
from repro.server.optimizer import IndexScanPlan
from repro.storage.buffer import BufferPool
from repro.storage.pages import InMemoryPageStore


def make_tree(extension, page_size=512):
    pool = BufferPool(InMemoryPageStore(page_size=page_size), capacity=64)
    return GiST(GistNodeStore(pool, extension))


def random_rect(rng, extent=1000.0, side=15.0):
    x, y = rng.uniform(0, extent), rng.uniform(0, extent)
    return Rect((x, y), (x + rng.uniform(0, side), y + rng.uniform(0, side)))


class TestRectGist:
    """The R-tree recovered as a GiST instance [HNP95]."""

    def test_search_matches_oracle(self):
        rng = random.Random(17)
        tree = make_tree(RectExtension())
        data = []
        for rowid in range(500):
            rect = random_rect(rng)
            tree.insert(rect, rowid)
            data.append(rect)
        tree.check()
        assert tree.height > 1
        for _ in range(15):
            query = RectQuery("overlap", random_rect(rng, side=120))
            expected = sorted(
                i for i, r in enumerate(data) if r.intersects(query.rect)
            )
            assert sorted(r for r, _ in tree.search(query)) == expected

    def test_all_strategies(self):
        tree = make_tree(RectExtension())
        big = Rect((0, 0), (10, 10))
        small = Rect((2, 2), (3, 3))
        far = Rect((50, 50), (60, 60))
        for i, rect in enumerate([big, small, far]):
            tree.insert(rect, i)
        assert sorted(
            r for r, _ in tree.search(RectQuery("overlap", Rect((1, 1), (4, 4))))
        ) == [0, 1]
        assert sorted(
            r for r, _ in tree.search(RectQuery("contains", small))
        ) == [0, 1]
        assert sorted(
            r for r, _ in tree.search(RectQuery("within", Rect((0, 0), (20, 20))))
        ) == [0, 1]
        assert sorted(
            r for r, _ in tree.search(RectQuery("equal", far))
        ) == [2]

    def test_delete_and_condense(self):
        rng = random.Random(19)
        tree = make_tree(RectExtension())
        data = [(random_rect(rng), i) for i in range(300)]
        for rect, rowid in data:
            tree.insert(rect, rowid)
        rng.shuffle(data)
        for rect, rowid in data[:250]:
            assert tree.delete(rect, rowid)
        tree.check()
        assert tree.size == 50

    def test_search_prunes(self):
        rng = random.Random(23)
        tree = make_tree(RectExtension())
        for rowid in range(600):
            tree.insert(random_rect(rng), rowid)
        tree.search(RectQuery("overlap", Rect((0, 0), (50, 50))))
        assert tree.last_node_accesses < tree.node_count() / 2


class TestIntervalGist:
    """The B+-tree recovered as a GiST instance [HNP95]."""

    def test_range_queries_match_oracle(self):
        rng = random.Random(29)
        tree = make_tree(IntervalExtension())
        values = {}
        for rowid in range(500):
            v = rng.randint(0, 1000)
            values[rowid] = v
            tree.insert(Interval(v, v), rowid)
        tree.check()
        query = IntervalQuery("between", 200.0, 400.0)
        expected = sorted(r for r, v in values.items() if 200 <= v <= 400)
        assert sorted(r for r, _ in tree.search(query)) == expected

    def test_open_and_exclusive_bounds(self):
        tree = make_tree(IntervalExtension())
        for v in range(20):
            tree.insert(Interval(v, v), v)
        ext = IntervalExtension()
        gt = ext.query_for("GS_GreaterThan", 15)
        assert sorted(r for r, _ in tree.search(gt)) == [16, 17, 18, 19]
        le = ext.query_for("GS_LessThanOrEqual", 3)
        assert sorted(r for r, _ in tree.search(le)) == [0, 1, 2, 3]
        eq = ext.query_for("GS_NumEqual", 7)
        assert sorted(r for r, _ in tree.search(eq)) == [7]

    def test_delete(self):
        tree = make_tree(IntervalExtension())
        for v in range(200):
            tree.insert(Interval(v, v), v)
        for v in range(0, 200, 2):
            assert tree.delete(Interval(v, v), v)
        tree.check()
        q = IntervalQuery("between", 0.0, 10.0)
        assert sorted(r for r, _ in tree.search(q)) == [1, 3, 5, 7, 9]


@pytest.fixture()
def server():
    s = DatabaseServer()
    s.create_sbspace("spc")
    register_gist_blade(s)
    s.prefer_virtual_index = True
    return s


class TestGistBlade:
    """One access method, two data types, selected by operator class --
    the paper's closing proposal made executable."""

    def test_rect_opclass(self, server):
        server.execute("CREATE TABLE shapes (label LVARCHAR, geom Box)")
        server.execute(
            "CREATE INDEX gr ON shapes(geom gist_rect_ops) USING gist_am IN spc"
        )
        rng = random.Random(31)
        rects = []
        for i in range(150):
            x, y = rng.uniform(0, 100), rng.uniform(0, 100)
            rect = Rect((x, y), (x + 5, y + 5))
            rects.append(rect)
            server.execute(
                f"INSERT INTO shapes VALUES ('s{i}', '{box_output(rect)}')"
            )
        query = Rect((20, 20), (50, 50))
        rows = server.execute(
            f"SELECT label FROM shapes WHERE GS_Overlap(geom, '{box_output(query)}')"
        )
        assert isinstance(server.last_plan, IndexScanPlan)
        expected = sorted(
            f"s{i}" for i, r in enumerate(rects) if r.intersects(query)
        )
        assert sorted(r["label"] for r in rows) == expected
        assert "consistent" in server.execute("CHECK INDEX gr")

    def test_interval_opclass_serves_comparisons(self, server):
        server.execute("CREATE TABLE nums (name LVARCHAR, v INTEGER)")
        server.execute(
            "CREATE INDEX gn ON nums(v gist_interval_ops) USING gist_am IN spc"
        )
        rng = random.Random(37)
        values = {}
        for i in range(150):
            v = rng.randint(0, 500)
            values[f"n{i}"] = v
            server.execute(f"INSERT INTO nums VALUES ('n{i}', {v})")
        # Plain SQL comparisons route into the GiST via the opclass.
        rows = server.execute("SELECT name FROM nums WHERE v >= 450")
        assert isinstance(server.last_plan, IndexScanPlan)
        expected = sorted(n for n, v in values.items() if v >= 450)
        assert sorted(r["name"] for r in rows) == expected

    def test_both_instantiations_in_one_am(self, server):
        server.execute("CREATE TABLE shapes (geom Box)")
        server.execute("CREATE TABLE nums (v INTEGER)")
        server.execute(
            "CREATE INDEX a ON shapes(geom gist_rect_ops) USING gist_am IN spc"
        )
        server.execute(
            "CREATE INDEX b ON nums(v gist_interval_ops) USING gist_am IN spc"
        )
        assert {
            oc.name
            for oc in server.catalog.opclasses.for_access_method("gist_am")
        } == {"gist_rect_ops", "gist_interval_ops"}
        server.execute("INSERT INTO shapes VALUES ('(0,0,1,1)')")
        server.execute("INSERT INTO nums VALUES (7)")
        assert "consistent" in server.execute("CHECK INDEX a")
        assert "consistent" in server.execute("CHECK INDEX b")

    def test_unregistered_opclass_rejected(self, server):
        server.execute("CREATE TABLE t (v FLOAT)")
        server.execute(
            "CREATE OPCLASS gist_mystery_ops FOR gist_am "
            "STRATEGIES(GS_NumEqual)"
        )
        from repro.server.errors import AccessMethodError

        with pytest.raises(AccessMethodError):
            server.execute(
                "CREATE INDEX m ON t(v gist_mystery_ops) USING gist_am IN spc"
            )

    def test_custom_extension_plugs_in(self, server):
        """A downstream developer adds a brand-new instantiation by
        registering an opclass plus an extension object -- no purpose
        functions touched."""
        from repro.gist.extensions import IntervalExtension

        class EvenOddExtension(IntervalExtension):
            """Orders numbers by (parity, value)."""

            name = "evenodd"

            def key_for_value(self, value):
                v = float(value)
                rank = (v % 2) * 10_000 + v
                return Interval(rank, rank)

            def query_for(self, strategy, constant):
                base = super().query_for(strategy, constant)
                rank = (float(constant) % 2) * 10_000 + float(constant)
                return IntervalQuery(
                    base.strategy, rank if base.low is not None else None,
                    rank if base.high is not None else None,
                    base.low_inclusive, base.high_inclusive,
                )

        server.execute(
            "CREATE OPCLASS gist_evenodd_ops FOR gist_am "
            "STRATEGIES(GS_NumEqual)"
        )
        blade = server.catalog.routines.resolve_any("gs_getnext").fn.__self__
        blade.register_extension("gist_evenodd_ops", EvenOddExtension())
        server.execute("CREATE TABLE parity (v INTEGER)")
        server.execute(
            "CREATE INDEX p ON parity(v gist_evenodd_ops) USING gist_am IN spc"
        )
        for v in (1, 2, 3, 4):
            server.execute(f"INSERT INTO parity VALUES ({v})")
        rows = server.execute("SELECT v FROM parity WHERE GS_NumEqual(v, 3)")
        assert [r["v"] for r in rows] == [3]
