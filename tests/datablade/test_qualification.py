"""Tests for breaking complex qualifications into simple ones."""

import pytest

from repro.datablade.qualification import build_plan, resolve_simple
from repro.grtree.entries import Predicate
from repro.server.access_method import (
    BooleanOperator,
    CompoundQualification,
    SimpleQualification,
)
from repro.server.errors import AccessMethodError
from repro.temporal.extent import TimeExtent
from repro.temporal.variables import NOW, UC

EXT_A = TimeExtent(10, UC, 10, NOW)
EXT_B = TimeExtent(5, 20, 0, 30)


def simple(function, constant=EXT_A, constant_first=False):
    return SimpleQualification(
        function, "te", constant=constant, constant_first=constant_first
    )


class TestResolveSimple:
    def test_strategy_names_resolve_to_predicates(self):
        assert resolve_simple(simple("Overlaps")).predicate is Predicate.OVERLAPS
        assert resolve_simple(simple("equal")).predicate is Predicate.EQUAL
        assert resolve_simple(simple("Contains")).predicate is Predicate.CONTAINS
        assert (
            resolve_simple(simple("ContainedIn")).predicate
            is Predicate.CONTAINED_IN
        )

    def test_commuted_containment(self):
        # Contains(constant, column): the column is inside the constant.
        resolved = resolve_simple(simple("Contains", constant_first=True))
        assert resolved.predicate is Predicate.CONTAINED_IN
        resolved = resolve_simple(simple("ContainedIn", constant_first=True))
        assert resolved.predicate is Predicate.CONTAINS

    def test_symmetric_predicates_unchanged_by_commuting(self):
        assert (
            resolve_simple(simple("Overlaps", constant_first=True)).predicate
            is Predicate.OVERLAPS
        )

    def test_unknown_strategy_rejected(self):
        with pytest.raises(AccessMethodError):
            resolve_simple(simple("Neighbour"))

    def test_non_extent_constant_rejected(self):
        with pytest.raises(AccessMethodError):
            resolve_simple(simple("Overlaps", constant="a string"))

    def test_missing_constant_rejected(self):
        qual = SimpleQualification("Overlaps", "te", has_constant=False)
        with pytest.raises(AccessMethodError):
            resolve_simple(qual)


class TestDnf:
    def test_single_predicate(self):
        plan = build_plan(simple("Overlaps"))
        assert len(plan.branches) == 1
        assert len(plan.branches[0]) == 1
        assert plan.predicate_count == 1

    def test_and_combines_into_one_branch(self):
        qual = CompoundQualification(
            BooleanOperator.AND,
            [simple("Overlaps"), simple("ContainedIn", EXT_B)],
        )
        plan = build_plan(qual)
        assert len(plan.branches) == 1
        assert len(plan.branches[0]) == 2

    def test_or_creates_branches(self):
        qual = CompoundQualification(
            BooleanOperator.OR,
            [simple("Overlaps"), simple("Equal", EXT_B)],
        )
        plan = build_plan(qual)
        assert len(plan.branches) == 2

    def test_and_over_or_distributes(self):
        # (A or B) and (C or D) -> four branches of two predicates each.
        a_or_b = CompoundQualification(
            BooleanOperator.OR, [simple("Overlaps"), simple("Equal")]
        )
        c_or_d = CompoundQualification(
            BooleanOperator.OR,
            [simple("Contains", EXT_B), simple("ContainedIn", EXT_B)],
        )
        plan = build_plan(
            CompoundQualification(BooleanOperator.AND, [a_or_b, c_or_d])
        )
        assert len(plan.branches) == 4
        assert all(len(branch) == 2 for branch in plan.branches)
        assert plan.predicate_count == 8

    def test_nested_same_operator(self):
        qual = CompoundQualification(
            BooleanOperator.OR,
            [
                simple("Overlaps"),
                CompoundQualification(
                    BooleanOperator.OR, [simple("Equal"), simple("Contains")]
                ),
            ],
        )
        assert len(build_plan(qual).branches) == 3
