"""Tests for the GRT_TimeExtent_t opaque type support functions."""

import pytest

from repro.datablade.time_extent import (
    TYPE_NAME,
    extent_receive,
    extent_send,
    make_time_extent_type,
)
from repro.server.errors import DataTypeError
from repro.temporal.chronon import Granularity
from repro.temporal.extent import TimeExtent
from repro.temporal.variables import NOW, UC


@pytest.fixture
def day_type():
    return make_time_extent_type(Granularity.DAY)


class TestTextIO:
    def test_paper_literal(self, day_type):
        value = day_type.input("12/10/95, UC, 12/10/95, NOW")
        assert isinstance(value, TimeExtent)
        assert value.tt_end is UC and value.vt_end is NOW

    def test_output_roundtrip(self, day_type):
        value = day_type.input("12/10/95, UC, 12/10/95, NOW")
        assert day_type.input(day_type.output(value)) == value

    def test_constraint_violations_rejected(self, day_type):
        with pytest.raises(DataTypeError):
            day_type.input("12/10/95, 12/09/95, 01/01/95, 02/01/95")
        with pytest.raises(DataTypeError):
            day_type.input("garbage")
        with pytest.raises(DataTypeError):
            day_type.input("12/10/95, UC, 12/11/95, NOW")  # VTbegin > TTbegin

    def test_month_granularity(self):
        month_type = make_time_extent_type(Granularity.MONTH)
        value = month_type.input("3/97, UC, 3/97, NOW")
        assert month_type.output(value) == "3/1997, UC, 3/1997, NOW"


class TestBinarySendReceive:
    def test_roundtrip_with_variables(self, day_type):
        value = day_type.input("12/10/95, UC, 12/10/95, NOW")
        assert extent_receive(extent_send(value)) == value

    def test_roundtrip_ground(self, day_type):
        value = day_type.input("12/10/95, 12/20/95, 01/01/95, 02/01/95")
        assert extent_receive(extent_send(value)) == value

    def test_fixed_width(self, day_type):
        value = day_type.input("12/10/95, UC, 12/10/95, NOW")
        assert len(extent_send(value)) == 32

    def test_bad_wire_value(self):
        with pytest.raises(DataTypeError):
            extent_receive(b"short")


class TestImportExport:
    def test_reuses_text_pair(self, day_type):
        # The paper notes import/export and input/output do the same job.
        text = "12/10/95, UC, 12/10/95, NOW"
        assert day_type.import_text(text) == day_type.input(text)
        value = day_type.input(text)
        assert day_type.export_text(value) == day_type.output(value)


class TestValidation:
    def test_python_value_validation(self, day_type):
        extent = TimeExtent(100, UC, 90, NOW)
        assert day_type.validate(extent) is extent
        with pytest.raises(DataTypeError):
            day_type.validate("not an extent")

    def test_registered_name(self, day_type):
        assert day_type.name == TYPE_NAME.upper()
