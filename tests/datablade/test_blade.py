"""End-to-end tests for the GR-tree DataBlade through SQL."""

import pytest

from repro.datablade import register_grtree_blade, unregister_grtree_blade
from repro.datablade.blade import GRTreeDataBlade
from repro.server import DatabaseServer
from repro.server.errors import AccessMethodError
from repro.server.optimizer import IndexScanPlan, SeqScanPlan
from repro.storage.locks import LockConflictError
from repro.temporal.chronon import Clock, format_chronon


def make_server(now=100):
    server = DatabaseServer(clock=Clock(now=now))
    server.create_sbspace("spc")
    blade = register_grtree_blade(server)
    server.execute("CREATE TABLE t (name LVARCHAR, te GRT_TimeExtent_t)")
    server.execute(
        "CREATE INDEX gi ON t(te grt_opclass) USING grtree_am IN spc"
    )
    server.prefer_virtual_index = True
    return server, blade


def insert(server, name, text):
    server.execute(f"INSERT INTO t VALUES ('{name}', '{text}')")


def day(chronon):
    return format_chronon(chronon)


class TestLifecycle:
    def test_registration_creates_catalog_objects(self):
        server, blade = make_server()
        assert "grtree_am" in server.catalog.access_methods
        assert "grt_opclass" in server.catalog.opclasses
        am = server.catalog.access_methods.get("grtree_am")
        assert am.default_opclass == "grt_opclass"
        assert "GRT_TIMEEXTENT_T" in server.types
        assert server.catalog.has_table("grtree_indexdata")

    def test_metadata_record_created_and_dropped(self):
        server, blade = make_server()
        meta = server.catalog.get_table("grtree_indexdata")
        assert meta.row_count == 1
        server.execute("DROP INDEX gi")
        assert meta.row_count == 0

    def test_unregister_removes_everything(self):
        server, blade = make_server()
        server.execute("DROP INDEX gi")
        unregister_grtree_blade(server)
        assert "grtree_am" not in server.catalog.access_methods
        assert "GRT_TIMEEXTENT_T" not in server.types
        assert not server.catalog.has_table("grtree_indexdata")

    def test_unregister_refuses_with_live_index(self):
        server, blade = make_server()
        with pytest.raises(RuntimeError):
            unregister_grtree_blade(server)

    def test_create_index_rejects_wrong_type(self):
        server, blade = make_server()
        server.execute("CREATE TABLE bad (n INTEGER)")
        with pytest.raises(AccessMethodError):
            server.execute("CREATE INDEX b ON bad(n) USING grtree_am IN spc")

    def test_duplicate_equivalent_index_rejected(self):
        server, blade = make_server()
        with pytest.raises(AccessMethodError):
            server.execute(
                "CREATE INDEX gi2 ON t(te grt_opclass) USING grtree_am IN spc"
            )
        # The failed CREATE INDEX must not leave a catalog entry behind.
        assert not server.catalog.has_index("gi2")

    def test_index_built_over_existing_rows(self):
        server = DatabaseServer(clock=Clock(now=100))
        server.create_sbspace("spc")
        register_grtree_blade(server)
        server.execute("CREATE TABLE t (name LVARCHAR, te GRT_TimeExtent_t)")
        for i in range(20):
            insert(server, f"pre{i}", f"{day(100)}, UC, {day(95)}, NOW")
        server.execute("CREATE INDEX gi ON t(te) USING grtree_am IN spc")
        server.prefer_virtual_index = True
        rows = server.execute(
            f"SELECT name FROM t WHERE Overlaps(te, '{day(100)}, UC, {day(100)}, NOW')"
        )
        assert isinstance(server.last_plan, IndexScanPlan)
        assert len(rows) == 20


class TestFigure6CallSequences:
    def test_insert_sequence(self):
        server, blade = make_server()
        server.trace.set_level("am", 1)
        insert(server, "a", f"{day(100)}, UC, {day(95)}, NOW")
        assert server.trace.texts("am") == [
            "grtree_am.am_open",
            "grtree_am.am_insert",
            "grtree_am.am_close",
        ]

    def test_select_sequence(self):
        server, blade = make_server()
        insert(server, "a", f"{day(100)}, UC, {day(95)}, NOW")
        server.trace.set_level("am", 1)
        server.execute(
            f"SELECT name FROM t WHERE Overlaps(te, '{day(100)}, UC, {day(100)}, NOW')"
        )
        calls = [c.split(".", 1)[1] for c in server.trace.texts("am")]
        assert calls[0] == "am_scancost"  # the optimizer asks first
        assert calls[1:] == [
            "am_open",
            "am_beginscan",
            "am_getnext",
            "am_getnext",  # the final call returns no row
            "am_endscan",
            "am_close",
        ]


class TestQueries:
    def test_index_and_seqscan_agree(self):
        server, blade = make_server(now=100)
        clock = server.clock
        import random

        rng = random.Random(4)
        expected = []
        for i in range(150):
            vtb = clock.now - rng.randint(0, 30)
            if rng.random() < 0.5:
                text = f"{day(clock.now)}, UC, {day(vtb)}, NOW"
            else:
                text = f"{day(clock.now)}, UC, {day(vtb)}, {day(vtb + 10)}"
            insert(server, f"r{i}", text)
            if i % 10 == 0:
                clock.advance(1)
        query = f"'{day(clock.now)}, UC, {day(clock.now - 5)}, NOW'"
        server.prefer_virtual_index = True
        with_index = server.execute(f"SELECT name FROM t WHERE Overlaps(te, {query})")
        assert isinstance(server.last_plan, IndexScanPlan)
        server.prefer_virtual_index = False
        server.execute("DROP INDEX gi")
        without_index = server.execute(
            f"SELECT name FROM t WHERE Overlaps(te, {query})"
        )
        assert isinstance(server.last_plan, SeqScanPlan)
        assert sorted(r["name"] for r in with_index) == sorted(
            r["name"] for r in without_index
        )

    def test_all_four_strategies_through_index(self):
        server, blade = make_server(now=100)
        insert(server, "stair", f"{day(100)}, UC, {day(100)}, NOW")
        insert(server, "rect", f"{day(100)}, UC, {day(120)}, {day(130)}")
        server.clock.advance(50)
        q_all = f"'{day(90)}, {day(200)}, {day(90)}, {day(200)}'"
        names = {
            r["name"]
            for r in server.execute(
                f"SELECT name FROM t WHERE ContainedIn(te, {q_all})"
            )
        }
        assert names == {"stair", "rect"}
        q_rect = f"'{day(100)}, {day(150)}, {day(120)}, {day(130)}'"
        names = {
            r["name"]
            for r in server.execute(f"SELECT name FROM t WHERE Equal(te, {q_rect})")
        }
        assert names == {"rect"}
        q_small = f"'{day(110)}, {day(112)}, {day(105)}, {day(107)}'"
        names = {
            r["name"]
            for r in server.execute(
                f"SELECT name FROM t WHERE Contains(te, {q_small})"
            )
        }
        assert names == {"stair"}

    def test_complex_qualification_through_index(self):
        server, blade = make_server(now=100)
        insert(server, "a", f"{day(100)}, UC, {day(100)}, NOW")
        insert(server, "b", f"{day(100)}, UC, {day(150)}, {day(160)}")
        insert(server, "c", f"{day(100)}, UC, {day(60)}, {day(70)}")
        server.clock.advance(20)
        q1 = f"'{day(110)}, {day(130)}, {day(100)}, {day(120)}'"  # hits a
        q2 = f"'{day(100)}, {day(110)}, {day(155)}, {day(156)}'"  # hits b
        rows = server.execute(
            f"SELECT name FROM t WHERE Overlaps(te, {q1}) OR Overlaps(te, {q2})"
        )
        assert isinstance(server.last_plan, IndexScanPlan)
        assert {r["name"] for r in rows} == {"a", "b"}
        rows = server.execute(
            f"SELECT name FROM t WHERE Overlaps(te, {q1}) AND Overlaps(te, {q2})"
        )
        assert rows == []

    def test_residual_filter_applied(self):
        server, blade = make_server(now=100)
        insert(server, "x", f"{day(100)}, UC, {day(95)}, NOW")
        insert(server, "y", f"{day(100)}, UC, {day(95)}, NOW")
        q = f"'{day(100)}, UC, {day(100)}, NOW'"
        rows = server.execute(
            f"SELECT name FROM t WHERE Overlaps(te, {q}) AND name = 'x'"
        )
        assert isinstance(server.last_plan, IndexScanPlan)
        assert [r["name"] for r in rows] == ["x"]

    def test_index_survives_across_statements(self):
        server, blade = make_server(now=100)
        insert(server, "a", f"{day(100)}, UC, {day(95)}, NOW")
        server.clock.advance(10)
        insert(server, "b", f"{day(110)}, UC, {day(105)}, NOW")
        rows = server.execute(
            f"SELECT name FROM t WHERE Overlaps(te, '{day(110)}, UC, {day(110)}, NOW')"
        )
        assert {r["name"] for r in rows} == {"a", "b"}

    def test_delete_through_index(self):
        server, blade = make_server(now=100)
        for i in range(60):
            insert(server, f"old{i}", f"{day(100)}, UC, {day(95)}, {day(98)}")
        for i in range(60):
            insert(server, f"new{i}", f"{day(100)}, UC, {day(100)}, NOW")
        # Valid time below 100: hits the fixed extents, not the stairs.
        q = f"'{day(100)}, {day(105)}, {day(95)}, {day(98)}'"
        deleted = server.execute(f"DELETE FROM t WHERE Overlaps(te, {q})")
        assert deleted == 60
        server.execute("CHECK INDEX gi")
        remaining = server.execute("SELECT name FROM t")
        assert len(remaining) == 60

    def test_update_nonindexed_column_leaves_index_alone(self):
        server, blade = make_server(now=100)
        insert(server, "a", f"{day(100)}, UC, {day(95)}, NOW")
        server.trace.set_level("am", 1)
        server.execute("UPDATE t SET name = 'renamed' WHERE name = 'a'")
        calls = [c.split(".", 1)[1] for c in server.trace.texts("am")]
        assert "am_update" not in calls

    def test_check_and_stats_via_sql(self):
        server, blade = make_server(now=100)
        for i in range(40):
            insert(server, f"r{i}", f"{day(100)}, UC, {day(95)}, NOW")
        assert "consistent" in server.execute("CHECK INDEX gi")
        stats = server.execute("UPDATE STATISTICS FOR INDEX gi")
        assert stats["size"] == 40
        assert "dead_space" in stats


class TestCurrentTimeAndTransactions:
    """Section 5.4: a constant current time per transaction."""

    def test_time_sampled_at_first_open_stays_constant(self):
        server, blade = make_server(now=100)
        insert(server, "a", f"{day(100)}, UC, {day(100)}, NOW")
        session = server.create_session()
        server.execute("BEGIN WORK", session)
        q = f"'{day(140)}, {day(160)}, {day(140)}, {day(150)}'"
        # First use inside the transaction samples now=100: no overlap yet.
        assert server.execute(f"SELECT name FROM t WHERE Overlaps(te, {q})",
                              session) == []
        server.clock.advance(100)  # the stair would now cover the query
        rows = server.execute(
            f"SELECT name FROM t WHERE Overlaps(te, {q})", session
        )
        assert rows == []  # still the sampled time
        server.execute("COMMIT WORK", session)
        rows = server.execute(
            f"SELECT name FROM t WHERE Overlaps(te, {q})", session
        )
        assert [r["name"] for r in rows] == ["a"]  # fresh transaction

    def test_named_memory_freed_at_transaction_end(self):
        server, blade = make_server(now=100)
        insert(server, "a", f"{day(100)}, UC, {day(100)}, NOW")
        session = server.create_session()
        server.execute("BEGIN WORK", session)
        server.execute(
            f"SELECT name FROM t WHERE Overlaps(te, '{day(100)}, UC, {day(100)}, NOW')",
            session,
        )
        key = f"grt_now.session{session.session_id}"
        assert server.memory.named_exists(key)
        server.execute("COMMIT WORK", session)
        assert not server.memory.named_exists(key)


class TestConcurrency:
    """Section 5.3: automatic LO-level locking of the sbspace."""

    def test_writer_blocks_reader(self):
        server, blade = make_server(now=100)
        writer = server.create_session()
        reader = server.create_session()
        server.execute("BEGIN WORK", writer)
        server.execute(
            f"INSERT INTO t VALUES ('w', '{day(100)}, UC, {day(95)}, NOW')",
            writer,
        )
        # The writer holds the exclusive LO lock until transaction end.
        server.execute("BEGIN WORK", reader)
        with pytest.raises(LockConflictError):
            server.execute(
                f"SELECT name FROM t WHERE Overlaps(te, '{day(100)}, UC, {day(100)}, NOW')",
                reader,
            )
        server.execute("ROLLBACK WORK", reader)
        server.execute("COMMIT WORK", writer)
        # After the writer commits the reader proceeds.
        rows = server.execute(
            f"SELECT name FROM t WHERE Overlaps(te, '{day(100)}, UC, {day(100)}, NOW')",
            reader,
        )
        assert [r["name"] for r in rows] == ["w"]

    def test_readers_share_the_index(self):
        server, blade = make_server(now=100)
        insert(server, "a", f"{day(100)}, UC, {day(95)}, NOW")
        r1, r2 = server.create_session(), server.create_session()
        q = f"'{day(100)}, UC, {day(100)}, NOW'"
        assert server.execute(f"SELECT name FROM t WHERE Overlaps(te, {q})", r1)
        assert server.execute(f"SELECT name FROM t WHERE Overlaps(te, {q})", r2)
