"""Property-based tests for the B+-tree (hypothesis)."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.btree.node import BTreeNodeStore
from repro.btree.tree import BPlusTree
from repro.storage.buffer import BufferPool
from repro.storage.pages import InMemoryPageStore


def natural(a: bytes, b: bytes) -> int:
    x, y = int(a), int(b)
    return (x > y) - (x < y)


def key(value: int) -> bytes:
    return str(value).encode()


def make_tree(page_size=256):
    pool = BufferPool(InMemoryPageStore(page_size=page_size), capacity=64)
    return BPlusTree(BTreeNodeStore(pool), natural)


@st.composite
def operation_sequences(draw):
    ops = []
    live_count = 0
    length = draw(st.integers(min_value=1, max_value=120))
    for _ in range(length):
        if live_count and draw(st.booleans()) and draw(st.booleans()):
            ops.append(("delete", draw(st.integers(0, live_count - 1))))
        else:
            ops.append(("insert", draw(st.integers(0, 300))))
            live_count += 1
    return ops


class TestBTreeProperties:
    @given(operation_sequences())
    @settings(max_examples=60, deadline=None,
              suppress_health_check=list(HealthCheck))
    def test_matches_sorted_list_oracle(self, ops):
        tree = make_tree()
        oracle = {}  # rowid -> value
        inserted = []
        for op, arg in ops:
            if op == "insert":
                rowid = len(inserted)
                tree.insert(key(arg), rowid)
                oracle[rowid] = arg
                inserted.append(arg)
            else:
                live = sorted(oracle)
                if not live:
                    continue
                rowid = live[arg % len(live)]
                assert tree.delete(key(oracle.pop(rowid)), rowid)
        tree.check()
        scanned = [(int(k), r) for k, r, _ in tree.iter_all()]
        expected = sorted((v, r) for r, v in oracle.items())
        assert sorted(scanned) == expected
        # Order property: keys come back non-decreasing.
        values = [v for v, _ in scanned]
        assert values == sorted(values)

    @given(st.lists(st.integers(0, 200), min_size=1, max_size=150),
           st.integers(0, 200), st.integers(0, 200))
    @settings(max_examples=60, deadline=None)
    def test_range_queries_exact(self, values, a, b):
        lo, hi = min(a, b), max(a, b)
        tree = make_tree()
        for rowid, value in enumerate(values):
            tree.insert(key(value), rowid)
        got = sorted(r for _, r, _ in tree.search_range(key(lo), key(hi)))
        expected = sorted(r for r, v in enumerate(values) if lo <= v <= hi)
        assert got == expected

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_heavy_duplicates(self, values):
        tree = make_tree(page_size=128)
        for rowid, value in enumerate(values):
            tree.insert(key(value), rowid)
        tree.check()
        target = values[0]
        expected = sorted(r for r, v in enumerate(values) if v == target)
        assert sorted(r for r, _ in tree.search_equal(key(target))) == expected
