"""The SQL surface of the specialization layer.

``CREATE INDEX ... WITH (specialize = ...)`` is the per-opclass switch
the ISSUE asks for: on by default, overridable per index, overridable
per server (``DatabaseServer(specialize_indexes=False)``), and visible
in ``SHOW STATS``.  Answers must not depend on the switch.
"""

import pytest

from repro.datablade import register_grtree_blade
from repro.grtree.specialize import numpy_available
from repro.server import DatabaseServer
from repro.server.errors import AccessMethodError
from repro.temporal.chronon import Clock, format_chronon


def day(chronon):
    return format_chronon(chronon)


def make_server(with_clause="", **server_kwargs):
    server = DatabaseServer(clock=Clock(now=100), **server_kwargs)
    server.create_sbspace("spc")
    blade = register_grtree_blade(server)
    server.execute("CREATE TABLE t (name LVARCHAR, te GRT_TimeExtent_t)")
    server.execute(
        f"CREATE INDEX gi ON t(te) USING grtree_am IN spc {with_clause}"
    )
    server.prefer_virtual_index = True
    return server, blade


def populate(server, count=30):
    for i in range(count):
        server.execute(
            f"INSERT INTO t VALUES ('r{i}', "
            f"'{day(100)}, UC, {day(95 - i % 5)}, NOW')"
        )


def handle_tree(blade):
    return blade._handles["gi"]["tree"]


QUERY = (
    "SELECT name FROM t WHERE "
    f"Overlaps(te, '{day(100)}, UC, {day(95)}, NOW')"
)


class TestSpecializeSwitch:
    def test_default_attaches_bundle(self):
        server, blade = make_server()
        populate(server)
        tree = handle_tree(blade)
        assert tree.spec is not None
        assert tree.spec.vectorized == numpy_available()

    def test_with_off_detaches_bundle(self):
        server, blade = make_server("WITH (specialize = 'off')")
        populate(server)
        assert handle_tree(blade).spec is None
        assert len(server.execute(QUERY)) == 30

    def test_answers_do_not_depend_on_switch(self):
        expected = None
        for clause in ("WITH (specialize = 'on')", "WITH (specialize = 0)"):
            server, _ = make_server(clause)
            populate(server)
            rows = sorted(row["name"] for row in server.execute(QUERY))
            if expected is None:
                expected = rows
            assert rows == expected

    def test_invalid_value_rejected(self):
        server = DatabaseServer(clock=Clock(now=100))
        server.create_sbspace("spc")
        register_grtree_blade(server)
        server.execute("CREATE TABLE t (name LVARCHAR, te GRT_TimeExtent_t)")
        with pytest.raises(AccessMethodError, match="specialize expects"):
            server.execute(
                "CREATE INDEX gi ON t(te) USING grtree_am IN spc "
                "WITH (specialize = 'maybe')"
            )

    def test_server_default_off_and_per_index_override(self):
        server, blade = make_server(
            "WITH (specialize = 'on')", specialize_indexes=False
        )
        populate(server, 5)
        assert handle_tree(blade).spec is not None  # WITH wins
        server2, blade2 = make_server(specialize_indexes=False)
        populate(server2, 5)
        assert handle_tree(blade2).spec is None  # server default applies


class TestSpecializeObservability:
    def test_metrics_and_report(self):
        server, blade = make_server()
        populate(server)
        server.execute(QUERY)
        snapshot = server.obs.metrics.snapshot()
        assert "spec.index.gi.scans_compiled" in snapshot
        assert snapshot["spec.index.gi.vectorized"] == int(numpy_available())
        report = server.obs.report()
        assert "specialization" in report
        assert "index.gi" in report
        if numpy_available():
            assert snapshot["spec.index.gi.scans_compiled"] > 0

    def test_stats_survive_handle_revival(self):
        server, blade = make_server()
        populate(server)
        server.execute(QUERY)
        # A storage-epoch bump (e.g. crash recovery) rebuilds the handle
        # and its bundle; the obs collector must follow the new bundle.
        server.storage_epoch += 1
        server.execute(QUERY)
        snapshot = server.obs.metrics.snapshot()
        assert "spec.index.gi.scans_compiled" in snapshot
