"""The hybrid AM's differential battery (the tentpole's proof).

Three tables hold the same rows: one indexed by ``hblade_am``, one by
the plain B+-tree blade, one unindexed (the seqscan oracle).  Seeded
random workloads mutate all three identically and every query -- point,
range, mixed -- must return the same bag of rows from each, whichever
path (hash directory, B+-tree, heap walk) produced it.  A second
battery hammers one hybrid index from eight threads and re-checks the
oracle, and a third pins the optimizer's routing: equality probes take
the hash path, ranges the tree path, disjunctions mix, and disabling
the hash path or holding the precision guard falls back to the tree.

Also here: direct unit tests for the B+-tree node layer's split/merge
edge cases (min-occupancy underflow, rightmost-leaf appends), backfill
the hybrid blade's tree half relies on.
"""

import random
import threading

import pytest

from repro.bblade import register_btree_blade
from repro.btree.node import BTreeEntry, BTreeNode, BTreeNodeStore
from repro.btree.tree import BPlusTree
from repro.hblade import register_hybrid_blade
from repro.server import DatabaseServer
from repro.server.optimizer import IndexScanPlan, SeqScanPlan
from repro.storage.buffer import BufferPool
from repro.storage.pages import InMemoryPageStore

SEEDS = [7, 19, 101]


def make_server(key_type: str = "INTEGER"):
    """One server, three tables over the same schema: hybrid-indexed,
    B+-tree-indexed, and the unindexed seqscan oracle."""
    server = DatabaseServer()
    server.create_sbspace("spc")
    server.hblade = register_hybrid_blade(server)
    register_btree_blade(server)
    server.execute(f"CREATE TABLE th (k {key_type}, v LVARCHAR)")
    server.execute(f"CREATE TABLE tb (k {key_type}, v LVARCHAR)")
    server.execute(f"CREATE TABLE ts (k {key_type}, v LVARCHAR)")
    server.execute("CREATE INDEX hi ON th(k) USING hblade_am IN spc")
    server.execute("CREATE INDEX bi ON tb(k) USING btree_am IN spc")
    server.prefer_virtual_index = True
    return server


TABLES = ("th", "tb", "ts")


def run_everywhere(server, template: str):
    """Run one mutation statement against all three tables."""
    for table in TABLES:
        server.execute(template.format(t=table))


def compare_everywhere(server, where: str):
    """One query, three paths; the bags of rows must agree.

    Also asserts each table used the access path it should have: the
    indexed tables their virtual index, the oracle a seqscan.
    """
    bags = {}
    for table in TABLES:
        rows = server.execute(f"SELECT k, v FROM {table} WHERE {where}")
        plan = server.last_plan
        if table == "ts":
            assert isinstance(plan, SeqScanPlan)
        else:
            assert isinstance(plan, IndexScanPlan), (
                f"{table}: expected an index scan for {where!r}, "
                f"got {type(plan).__name__}"
            )
        bags[table] = sorted((row["k"], row["v"]) for row in rows)
    assert bags["th"] == bags["ts"], (
        f"hybrid path diverges from the seqscan oracle for {where!r}"
    )
    assert bags["tb"] == bags["ts"], (
        f"B+-tree path diverges from the seqscan oracle for {where!r}"
    )
    return bags["th"]


class TestHybridDifferential:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_workload_agrees_on_every_path(self, seed):
        server = make_server()
        rng = random.Random(seed)
        live = {}  # key -> count of rows carrying it
        serial = 0
        for step in range(120):
            roll = rng.random()
            if roll < 0.55 or not live:
                key = rng.randint(0, 60)
                serial += 1
                run_everywhere(
                    server,
                    f"INSERT INTO {{t}} VALUES ({key}, 's{seed}.{serial}')",
                )
                live[key] = live.get(key, 0) + 1
            elif roll < 0.75:
                key = rng.choice(sorted(live))
                run_everywhere(server, f"DELETE FROM {{t}} WHERE k = {key}")
                del live[key]
            else:
                old = rng.choice(sorted(live))
                new = rng.randint(0, 60)
                run_everywhere(
                    server, f"UPDATE {{t}} SET k = {new} WHERE k = {old}"
                )
                live[new] = live.get(new, 0) + live.pop(old)
            if step % 10 == 9:
                point = rng.randint(0, 60)
                lo = rng.randint(0, 50)
                hi = lo + rng.randint(0, 15)
                compare_everywhere(server, f"k = {point}")
                compare_everywhere(server, f"k >= {lo} AND k <= {hi}")
                compare_everywhere(server, f"k = {point} OR k > {hi}")
        # Full-content agreement plus both structural verifiers.
        compare_everywhere(server, "k >= 0")
        server.execute("CHECK INDEX hi")
        server.execute("CHECK INDEX bi")

    def test_signed_zero_floats_agree(self):
        """-0.0 and 0.0 are comparator-equal; the hash side must agree
        (the canonicalization clause of the codec contract)."""
        server = make_server(key_type="FLOAT")
        run_everywhere(server, "INSERT INTO {t} VALUES (-0.0, 'neg')")
        run_everywhere(server, "INSERT INTO {t} VALUES (0.0, 'pos')")
        run_everywhere(server, "INSERT INTO {t} VALUES (1.5, 'other')")
        for probe in ("0.0", "-0.0"):
            rows = compare_everywhere(server, f"k = {probe}")
            assert sorted(v for _, v in rows) == ["neg", "pos"]
        compare_everywhere(server, "k >= -1.0 AND k <= 1.0")

    @pytest.mark.parametrize("seed", SEEDS)
    def test_hammering_from_eight_threads(self, seed, lock_audit):
        """Eight sessions hammer one hybrid index on disjoint key
        stripes; every thread's point probes must match its own oracle
        mid-flight, and the final state must match the union.  The
        ``lock_audit`` fixture additionally fails the test if the run
        observes any lock-order cycle."""
        server = make_server()
        errors = []
        oracles = [dict() for _ in range(8)]

        def hammer(stripe: int) -> None:
            try:
                session = server.create_session()
                rng = random.Random(seed * 100 + stripe)
                oracle = oracles[stripe]
                base = stripe * 1000
                for step in range(60):
                    roll = rng.random()
                    if roll < 0.6 or not oracle:
                        key = base + rng.randint(0, 40)
                        if key in oracle:
                            continue
                        server.execute(
                            f"INSERT INTO th VALUES ({key}, 't{stripe}.{step}')",
                            session,
                        )
                        oracle[key] = f"t{stripe}.{step}"
                    elif roll < 0.8:
                        key = rng.choice(sorted(oracle))
                        server.execute(
                            f"DELETE FROM th WHERE k = {key}", session
                        )
                        del oracle[key]
                    else:
                        key = base + rng.randint(0, 40)
                        rows = server.execute(
                            f"SELECT v FROM th WHERE k = {key}", session
                        )
                        got = sorted(row["v"] for row in rows)
                        want = [oracle[key]] if key in oracle else []
                        assert got == want, (
                            f"stripe {stripe} probe k={key}: "
                            f"got {got}, oracle says {want}"
                        )
            except Exception as exc:  # surfaced by the main thread
                errors.append((stripe, exc))

        threads = [
            threading.Thread(target=hammer, args=(stripe,))
            for stripe in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, f"thread failures: {errors}"
        expected = sorted(
            (key, value)
            for oracle in oracles
            for key, value in oracle.items()
        )
        rows = server.execute("SELECT k, v FROM th WHERE k >= 0")
        assert sorted((row["k"], row["v"]) for row in rows) == expected
        server.execute("CHECK INDEX hi")


class TestPlanRouting:
    """The optimizer + scan-routing contract, asserted on span
    attributes and plan objects -- never on timing."""

    def scan_span(self, server):
        root = server.obs.spans.last_root("sql.select")
        assert root is not None
        span = root.find("hblade.scan")
        assert span is not None, "the hybrid AM never began a scan"
        return span

    def test_equality_takes_the_hash_path(self):
        server = make_server()
        server.execute("INSERT INTO th VALUES (5, 'five')")
        rows = server.execute("SELECT v FROM th WHERE k = 5")
        assert [row["v"] for row in rows] == ["five"]
        assert isinstance(server.last_plan, IndexScanPlan)
        assert server.last_plan.index.name == "hi"
        span = self.scan_span(server)
        assert span.attrs["path"] == "hash"
        assert "path='hash'" in server.execute("SHOW SPANS")

    def test_range_takes_the_tree_path(self):
        server = make_server()
        for i in range(10):
            server.execute(f"INSERT INTO th VALUES ({i}, 'r{i}')")
        rows = server.execute("SELECT v FROM th WHERE k >= 3 AND k <= 6")
        assert len(rows) == 4
        assert self.scan_span(server).attrs["path"] == "tree"
        assert "path='tree'" in server.execute("SHOW SPANS")

    def test_disjunction_mixes_both_paths(self):
        server = make_server()
        for i in range(10):
            server.execute(f"INSERT INTO th VALUES ({i}, 'r{i}')")
        rows = server.execute("SELECT v FROM th WHERE k = 1 OR k > 7")
        assert sorted(row["v"] for row in rows) == ["r1", "r8", "r9"]
        span = self.scan_span(server)
        assert span.attrs["path"] == "mixed"
        assert span.attrs["hash_branches"] == 1
        assert span.attrs["tree_branches"] == 1

    def test_point_probe_is_costed_below_the_tree(self):
        """The cost-model hook: with the hash path available an
        equality probe is cheaper than the tree descent, so the hybrid
        index must win the plan choice without the optimizer directive."""
        server = make_server()
        for i in range(50):
            server.execute(f"INSERT INTO th VALUES ({i}, 'c{i}')")
        server.prefer_virtual_index = False
        server.execute("SELECT v FROM th WHERE k = 25")
        plan = server.last_plan
        assert isinstance(plan, IndexScanPlan) and plan.index.name == "hi"

    def test_hash_path_off_routes_equality_to_the_tree(self):
        server = make_server()
        server.execute(
            "CREATE INDEX hoff ON ts(k) USING hblade_am IN spc "
            "WITH (hash_path = 'off')"
        )
        server.execute("INSERT INTO ts VALUES (9, 'nine')")
        rows = server.execute("SELECT v FROM ts WHERE k = 9")
        assert [row["v"] for row in rows] == ["nine"]
        assert self.scan_span(server).attrs["path"] == "tree"

    def test_guard_conflict_falls_back_to_the_tree(self):
        """A point probe racing an in-flight structure modification on
        the same key must not trust the hash directory: the precision
        guard forces the tree path, which still finds the row."""
        server = make_server()
        server.execute("INSERT INTO th VALUES (3, 'three')")
        guard = server.hblade._guard("hi")
        key = server.catalog.types.get("INTEGER").send(3)
        before = guard.fallbacks
        with guard.publishing(key):
            rows = server.execute("SELECT v FROM th WHERE k = 3")
        assert [row["v"] for row in rows] == ["three"]
        assert guard.fallbacks == before + 1
        assert self.scan_span(server).attrs["path"] == "tree"


# ----------------------------------------------------------------------
# B+-tree node split/merge edge cases (direct unit backfill)
# ----------------------------------------------------------------------


def natural(a: bytes, b: bytes) -> int:
    x, y = int(a), int(b)
    return (x > y) - (x < y)


def key(value: int) -> bytes:
    return str(value).encode()


def make_tree(page_size=128, capacity=64):
    pool = BufferPool(InMemoryPageStore(page_size=page_size), capacity=capacity)
    return BPlusTree(BTreeNodeStore(pool), natural)


class TestNodeSplitMergeEdgeCases:
    def test_rightmost_leaf_ascending_appends(self):
        """Ascending inserts split the rightmost leaf repeatedly; every
        separator promotion must keep the leaf chain ordered and whole."""
        tree = make_tree()
        for i in range(400):
            tree.insert(key(i), rowid=i)
        tree.check()
        assert tree.height >= 3
        # The next_leaf chain covers everything, in order, exactly once.
        node = tree._leftmost_leaf()
        seen = []
        while True:
            seen.extend(int(e.key) for e in node.entries)
            if node.next_leaf == -1:
                break
            node = tree.store.read(node.next_leaf)
        assert seen == list(range(400))

    def test_underflow_below_min_occupancy_is_lazy(self):
        """Deleting most of a populated tree empties leaves below any
        min-occupancy threshold; lazy deletion tolerates them (check()
        stays green) instead of merging eagerly."""
        tree = make_tree()
        for i in range(300):
            tree.insert(key(i), rowid=i)
        grown_height = tree.height
        for i in range(299):
            assert tree.delete(key(i), rowid=i)
        tree.check()
        assert tree.size == 1
        assert [int(k) for k, _, _ in tree.iter_all()] == [299]
        # Structure survives: the survivor is still reachable by probe.
        assert tree.search_equal(key(299)) == [(299, 0)]
        assert tree.height <= grown_height

    def test_emptied_tree_keeps_structure_but_stays_correct(self):
        """Lazy deletion never merges, so draining a grown tree leaves
        its internal skeleton (separators survive); correctness and
        re-insertability must survive the hollowed-out shape."""
        tree = make_tree()
        for i in range(200):
            tree.insert(key(i), rowid=i)
        grown_height = tree.height
        assert grown_height > 1
        for i in range(200):
            assert tree.delete(key(i), rowid=i)
        tree.check()
        assert tree.size == 0
        assert tree.height == grown_height  # separators keep the spine
        assert tree.search_range(None, None) == []
        # And the hollow tree still takes inserts.
        tree.insert(key(7), rowid=0)
        assert tree.search_equal(key(7)) == [(0, 0)]

    def test_shrink_root_collapses_an_empty_internal_chain(self):
        """The root-collapse path itself: an internal root with no
        separators (only a leftmost child) must give its page back and
        drop the height, repeatedly, until a populated node appears."""
        tree = make_tree(page_size=256)
        for i in range(5):
            tree.insert(key(i), rowid=i)
        leaf_id = tree.root_id
        # Stack two empty internal levels above the real leaf.
        for _ in range(2):
            root = tree.store.allocate(leaf=False)
            root.leftmost = tree.root_id
            tree.store.write(root)
            tree.root_id = root.page_id
            tree.height += 1
        assert tree.height == 3
        tree._shrink_root()
        assert tree.height == 1
        assert tree.root_id == leaf_id
        tree.check()
        assert [int(k) for k, _, _ in tree.iter_all()] == list(range(5))

    def test_duplicate_run_straddles_a_split(self):
        """A duplicate run longer than one page must stay reachable by
        search_equal and deletable entry-by-entry across the split."""
        tree = make_tree(page_size=128)
        for i in range(120):
            tree.insert(key(42), rowid=i)
        tree.check()
        assert tree.height > 1
        assert sorted(r for r, _ in tree.search_equal(key(42))) == list(
            range(120)
        )
        # Delete from the *middle* of the run (exercises the sibling
        # chain walk in delete's left-biased descent).
        for i in range(40, 80):
            assert tree.delete(key(42), rowid=i)
        remaining = sorted(r for r, _ in tree.search_equal(key(42)))
        assert remaining == list(range(40)) + list(range(80, 120))

    def test_oversized_key_is_rejected_before_any_write(self):
        tree = make_tree(page_size=128)
        big = b"x" * (128 // 4 + 1)
        with pytest.raises(ValueError):
            tree.insert(big, rowid=0)
        assert tree.size == 0

    def test_node_overflow_raises_on_write(self):
        pool = BufferPool(InMemoryPageStore(page_size=128), capacity=8)
        store = BTreeNodeStore(pool)
        node = store.allocate(leaf=True)
        for i in range(200):
            node.entries.append(BTreeEntry(key(i), rowid=i))
        assert not store.fits(node)
        with pytest.raises(ValueError, match="node overflow"):
            store.write(node)

    def test_node_serialization_round_trip(self):
        pool = BufferPool(InMemoryPageStore(page_size=256), capacity=8)
        store = BTreeNodeStore(pool)
        leaf = store.allocate(leaf=True)
        leaf.entries = [BTreeEntry(key(i), rowid=i, fragid=i % 3) for i in range(5)]
        leaf.next_leaf = 77
        store.write(leaf)
        back = store.read(leaf.page_id)
        assert back.leaf and back.next_leaf == 77
        assert [(e.key, e.rowid, e.fragid) for e in back.entries] == [
            (key(i), i, i % 3) for i in range(5)
        ]
        inner = store.allocate(leaf=False)
        inner.leftmost = leaf.page_id
        inner.entries = [BTreeEntry(key(9), child=42)]
        store.write(inner)
        back = store.read(inner.page_id)
        assert not back.leaf
        assert back.leftmost == leaf.page_id
        assert back.entries[0].child == 42
