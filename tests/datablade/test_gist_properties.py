"""Property-based tests for the GiST (hypothesis)."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.gist import GiST, IntervalExtension, RectExtension
from repro.gist.extensions import Interval, IntervalQuery, RectQuery
from repro.gist.tree import GistNodeStore
from repro.rtree.geometry import Rect
from repro.storage.buffer import BufferPool
from repro.storage.pages import InMemoryPageStore


def make_tree(extension, page_size=512):
    pool = BufferPool(InMemoryPageStore(page_size=page_size), capacity=64)
    return GiST(GistNodeStore(pool, extension))


@st.composite
def rects(draw):
    x = draw(st.floats(min_value=0, max_value=500, allow_nan=False))
    y = draw(st.floats(min_value=0, max_value=500, allow_nan=False))
    w = draw(st.floats(min_value=0, max_value=40, allow_nan=False))
    h = draw(st.floats(min_value=0, max_value=40, allow_nan=False))
    return Rect((x, y), (x + w, y + h))


class TestRectGistProperties:
    @given(st.lists(rects(), min_size=1, max_size=120), rects())
    @settings(max_examples=50, deadline=None,
              suppress_health_check=list(HealthCheck))
    def test_overlap_search_exact(self, data, query_rect):
        tree = make_tree(RectExtension())
        for rowid, rect in enumerate(data):
            tree.insert(rect, rowid)
        tree.check()
        got = sorted(r for r, _ in tree.search(RectQuery("overlap", query_rect)))
        expected = sorted(
            i for i, r in enumerate(data) if r.intersects(query_rect)
        )
        assert got == expected

    @given(st.lists(rects(), min_size=4, max_size=80),
           st.lists(st.integers(0, 1000), min_size=1, max_size=40))
    @settings(max_examples=30, deadline=None,
              suppress_health_check=list(HealthCheck))
    def test_deletions_preserve_invariants(self, data, victims):
        tree = make_tree(RectExtension())
        live = {}
        for rowid, rect in enumerate(data):
            tree.insert(rect, rowid)
            live[rowid] = rect
        for v in victims:
            if not live:
                break
            rowid = sorted(live)[v % len(live)]
            assert tree.delete(live.pop(rowid), rowid)
        tree.check()
        everything = RectQuery("overlap", Rect((-1, -1), (600, 600)))
        assert sorted(r for r, _ in tree.search(everything)) == sorted(live)


class TestIntervalGistProperties:
    @given(
        st.lists(st.integers(0, 500), min_size=1, max_size=150),
        st.integers(0, 500),
        st.integers(0, 500),
    )
    @settings(max_examples=50, deadline=None)
    def test_range_search_exact(self, values, a, b):
        lo, hi = min(a, b), max(a, b)
        tree = make_tree(IntervalExtension())
        for rowid, v in enumerate(values):
            tree.insert(Interval(v, v), rowid)
        tree.check()
        got = sorted(
            r for r, _ in tree.search(IntervalQuery("between", lo, hi))
        )
        expected = sorted(r for r, v in enumerate(values) if lo <= v <= hi)
        assert got == expected
