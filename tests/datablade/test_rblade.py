"""Tests for the R-tree DataBlade (the built-in analogue)."""

import random

import pytest

from repro.rblade import register_rtree_blade
from repro.rblade.blade import box_input, box_output
from repro.rtree.geometry import Rect
from repro.server import DatabaseServer
from repro.server.errors import DataTypeError
from repro.server.optimizer import IndexScanPlan


@pytest.fixture
def server():
    s = DatabaseServer()
    s.create_sbspace("spc")
    register_rtree_blade(s)
    s.execute("CREATE TABLE shapes (label LVARCHAR, geom Box)")
    s.execute("CREATE INDEX rti ON shapes(geom) USING rtree_am IN spc")
    s.prefer_virtual_index = True
    return s


def populate(server, count=120, seed=9):
    rng = random.Random(seed)
    rects = []
    for i in range(count):
        x, y = rng.uniform(0, 100), rng.uniform(0, 100)
        w, h = rng.uniform(0, 5), rng.uniform(0, 5)
        rect = Rect((x, y), (x + w, y + h))
        rects.append(rect)
        server.execute(
            f"INSERT INTO shapes VALUES ('s{i}', '{box_output(rect)}')"
        )
    return rects


class TestBoxType:
    def test_input_output_roundtrip(self):
        rect = box_input("(1, 2, 3.5, 4)")
        assert rect == Rect((1, 2), (3.5, 4))
        assert box_input(box_output(rect)) == rect

    def test_rejects_bad_literals(self):
        with pytest.raises(DataTypeError):
            box_input("(1, 2, 3)")
        with pytest.raises(DataTypeError):
            box_input("(5, 0, 1, 1)")  # corners out of order
        with pytest.raises(DataTypeError):
            box_input("(a, b, c, d)")


class TestRtreeAm:
    def test_overlap_query_matches_oracle(self, server):
        rects = populate(server)
        query = Rect((10, 10), (40, 40))
        rows = server.execute(
            f"SELECT label FROM shapes WHERE Overlap(geom, '{box_output(query)}')"
        )
        assert isinstance(server.last_plan, IndexScanPlan)
        expected = {
            f"s{i}" for i, rect in enumerate(rects) if rect.intersects(query)
        }
        assert {r["label"] for r in rows} == expected

    def test_within_and_contains(self, server):
        populate(server)
        region = "(0, 0, 50, 50)"
        within = server.execute(
            f"SELECT label FROM shapes WHERE Within(geom, '{region}')"
        )
        # Everything within the region also overlaps it.
        overlap = server.execute(
            f"SELECT label FROM shapes WHERE Overlap(geom, '{region}')"
        )
        assert {r["label"] for r in within} <= {r["label"] for r in overlap}

    def test_index_persists_across_statements(self, server):
        populate(server, count=40)
        rows1 = server.execute(
            "SELECT label FROM shapes WHERE Overlap(geom, '(0,0,100,100)')"
        )
        rows2 = server.execute(
            "SELECT label FROM shapes WHERE Overlap(geom, '(0,0,100,100)')"
        )
        assert len(rows1) == len(rows2) == 40

    def test_delete_and_check(self, server):
        populate(server, count=80)
        deleted = server.execute(
            "DELETE FROM shapes WHERE Within(geom, '(0, 0, 60, 60)')"
        )
        assert deleted > 0
        assert "consistent" in server.execute("CHECK INDEX rti")
        remaining = server.execute("SELECT label FROM shapes")
        assert len(remaining) == 80 - deleted

    def test_two_blades_coexist(self, server):
        """The GR-tree and R-tree blades can live in one server."""
        from repro.datablade import register_grtree_blade

        register_grtree_blade(server)
        assert "grtree_am" in server.catalog.access_methods
        assert "rtree_am" in server.catalog.access_methods
        server.execute("CREATE TABLE bitemporal (te GRT_TimeExtent_t)")
        server.execute(
            "CREATE INDEX bi ON bitemporal(te) USING grtree_am IN spc"
        )
        populate(server, count=10)
        assert "consistent" in server.execute("CHECK INDEX rti")
        assert "consistent" in server.execute("CHECK INDEX bi")

    def test_dynamic_dispatch_mode(self, server):
        """Section 5.2's alternative: strategy functions resolved through
        the UDR registry per entry, at measurable resolution cost."""
        populate(server, count=60)
        blade = None
        # Find the blade through the shared library registry.
        routine = server.catalog.routines.resolve_any("rt_getnext")
        blade = routine.fn.__self__
        baseline = server.catalog.routines.resolutions
        server.execute(
            "SELECT label FROM shapes WHERE Overlap(geom, '(0,0,100,100)')"
        )
        static_resolutions = server.catalog.routines.resolutions - baseline
        blade.dynamic_dispatch = True
        baseline = server.catalog.routines.resolutions
        rows = server.execute(
            "SELECT label FROM shapes WHERE Overlap(geom, '(0,0,100,100)')"
        )
        dynamic_resolutions = server.catalog.routines.resolutions - baseline
        assert len(rows) == 60
        assert dynamic_resolutions > static_resolutions + 50
