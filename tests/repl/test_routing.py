"""End-to-end replication over real sockets: link, routing, failover.

A primary NetServer, replica engines streaming from it over
``wal_subscribe``, replica NetServers serving reads, and a
:class:`RoutedClient` on top -- the full deployment in-process.
"""

import time

import pytest

from repro.net import protocol
from repro.net.client import RemoteStatementError, ReproClient
from repro.net.server import NetServer
from repro.repl import ReplicaLink, RoutedClient
from repro.server import DatabaseServer


def wait_until(predicate, timeout=5.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class Cluster:
    """A primary plus N serving replicas, torn down in one call."""

    def __init__(self, replicas=2):
        self.primary_db = DatabaseServer()
        self.primary_db.enable_wal_shipping()
        self.primary = NetServer(self.primary_db).start()
        self.replica_dbs = []
        self.links = []
        self.replica_nets = []
        for i in range(replicas):
            db = DatabaseServer()
            link = ReplicaLink(
                db, self.primary.host, self.primary.port, name=f"r{i}"
            ).start()
            net = NetServer(db).start()
            self.replica_dbs.append(db)
            self.links.append(link)
            self.replica_nets.append(net)

    def client(self, **kwargs) -> RoutedClient:
        return RoutedClient(
            (self.primary.host, self.primary.port),
            [(net.host, net.port) for net in self.replica_nets],
            **kwargs,
        ).connect()

    def caught_up(self):
        target = self.primary_db.wal.last_lsn()
        return all(link.applied_lsn >= target for link in self.links)

    def close(self):
        for net in self.replica_nets:
            net.shutdown()
        for link in self.links:
            link.stop()
        self.primary.shutdown()


@pytest.fixture
def cluster(lock_audit):
    # Depends on lock_audit so every lock in the whole deployment
    # (engine locks, shipper, links, net servers) is order-audited;
    # a cycle observed during any routing test fails it at teardown.
    c = Cluster()
    yield c
    c.close()


def test_replicas_catch_up_and_serve_reads(cluster):
    client = cluster.client()
    client.execute("CREATE TABLE t (id INTEGER, val INTEGER)")
    for i in range(10):
        client.execute(f"INSERT INTO t VALUES ({i}, {i})")
    assert wait_until(cluster.caught_up)
    rows = client.execute("SELECT * FROM t")
    assert len(rows) == 10
    assert client.stats["replica_statements"] >= 1
    assert client.stats["primary_statements"] == 11
    client.close()


def test_read_your_writes_through_min_lsn(cluster):
    """Every read carries the session's write token: no read ever
    misses this client's own committed writes, replica lag or not."""
    client = cluster.client()
    client.execute("CREATE TABLE t (id INTEGER)")
    for i in range(30):
        client.execute(f"INSERT INTO t VALUES ({i})")
        rows = client.execute("SELECT * FROM t")
        assert len(rows) == i + 1, "a routed read missed its own write"
    client.close()


def test_writes_always_go_to_the_primary(cluster):
    client = cluster.client()
    client.execute("CREATE TABLE t (id INTEGER)")
    client.execute("INSERT INTO t VALUES (1)")
    assert cluster.primary_db.execute("SELECT * FROM t") == [{"id": 1}]
    assert client.stats["primary_statements"] == 2
    assert client.stats["replica_statements"] == 0
    client.close()


def test_transactions_pin_to_the_primary(cluster):
    client = cluster.client()
    client.execute("CREATE TABLE t (id INTEGER)")

    def body(c):
        c.execute("INSERT INTO t VALUES (1)")
        # A read inside the transaction must see the uncommitted row,
        # which only the primary's session can.
        assert len(c.execute("SELECT * FROM t")) == 1

    client.run_transaction(body)
    assert wait_until(cluster.caught_up)
    client.close()


def test_replica_death_falls_back_transparently(cluster):
    """Connection loss to a replica is retryable-on-another-endpoint:
    the statement succeeds as long as any endpoint remains healthy."""
    client = cluster.client(cooldown=30.0)
    client.execute("CREATE TABLE t (id INTEGER)")
    client.execute("INSERT INTO t VALUES (1)")
    assert wait_until(cluster.caught_up)
    # Kill both replicas: reads must transparently fall back to the
    # primary, with no error surfacing to the application.
    for net in cluster.replica_nets:
        net.shutdown()
    for _ in range(5):
        assert client.execute("SELECT * FROM t") == [{"id": 1}]
    assert client.stats["fallbacks"] >= 1
    client.close()


def test_min_lsn_rejects_with_replica_stale(cluster):
    client = cluster.client()
    client.execute("CREATE TABLE t (id INTEGER)")
    assert wait_until(cluster.caught_up)
    # Freeze replica 0's apply loop, then demand an impossible LSN.
    cluster.links[0].stop()
    raw = ReproClient(
        cluster.replica_nets[0].host, cluster.replica_nets[0].port
    ).connect()
    with pytest.raises(RemoteStatementError) as excinfo:
        raw.execute(
            "SELECT * FROM t",
            min_lsn=cluster.primary_db.wal.last_lsn() + 100,
        )
    assert excinfo.value.code == protocol.REPLICA_STALE
    assert excinfo.value.retryable
    raw.close()
    client.close()


def test_set_read_staleness_round_trips_the_wire(cluster):
    client = cluster.client()
    client.execute("CREATE TABLE t (id INTEGER)")
    assert wait_until(cluster.caught_up)
    assert "staleness" in str(client.execute("SET READ STALENESS 5000")).lower()
    assert client.execute("SELECT * FROM t") == []
    assert "off" in str(client.execute("SET READ STALENESS OFF")).lower()
    client.close()


def test_show_replicas_over_the_wire(cluster):
    client = cluster.client()
    client.execute("CREATE TABLE t (id INTEGER)")
    assert wait_until(cluster.caught_up)
    rows = client.primary.execute("SHOW REPLICAS")
    names = sorted(row["replica"] for row in rows)
    assert names == ["r0", "r1"]
    assert all(row["state"] == "streaming" for row in rows)
    # The replica's own view names its upstream primary.
    raw = ReproClient(
        cluster.replica_nets[0].host, cluster.replica_nets[0].port
    ).connect()
    [row] = raw.execute("SHOW REPLICAS")
    assert row["replica"] == "r0"
    assert row["primary"].endswith(str(cluster.primary.port))
    raw.close()
    client.close()


def test_replica_rejects_writes_over_the_wire(cluster):
    raw = ReproClient(
        cluster.replica_nets[0].host, cluster.replica_nets[0].port
    ).connect()
    with pytest.raises(RemoteStatementError) as excinfo:
        raw.execute("CREATE TABLE boom (id INTEGER)")
    assert excinfo.value.error_type == "ReadOnlyError"
    raw.close()


def test_subscribe_against_a_non_primary_is_refused():
    db = DatabaseServer()  # shipping never enabled
    net = NetServer(db).start()
    try:
        import socket

        sock = socket.create_connection((net.host, net.port), timeout=2)
        protocol.write_frame(sock, protocol.hello())
        assert protocol.read_frame(sock)["kind"] == "welcome"
        protocol.write_frame(sock, protocol.wal_subscribe(0, replica="x"))
        reply = protocol.read_frame(sock)
        assert reply["kind"] == "error"
        assert "not a replication primary" in reply["message"]
        sock.close()
    finally:
        net.shutdown()


def test_replica_reconnects_after_a_severed_link(cluster):
    client = cluster.client()
    client.execute("CREATE TABLE t (id INTEGER)")
    assert wait_until(cluster.caught_up)
    # Sever replica 0's subscription socket server-side.
    shipper = cluster.primary_db.repl_shipper
    shipper.unsubscribe("r0")
    client.execute("INSERT INTO t VALUES (1)")
    # The link notices (dead socket / gap) and resubscribes.
    assert wait_until(cluster.caught_up, timeout=8.0)
    assert cluster.replica_dbs[0].execute("SELECT * FROM t") == [{"id": 1}]
    client.close()


def test_replication_section_in_show_stats(cluster):
    client = cluster.client()
    client.execute("CREATE TABLE t (id INTEGER)")
    assert wait_until(cluster.caught_up)
    report = cluster.primary_db.execute("SHOW STATS")
    assert "== replication ==" in report
    assert "sub.r0" in report
    replica_report = cluster.replica_dbs[0].execute("SHOW STATS")
    assert "== replication ==" in replica_report
    assert "applied_lsn" in replica_report
    client.close()
