"""Applier semantics, socket-free: idempotency, commit gating, DDL.

These tests drive :class:`ReplicationApplier` directly with wire-form
record batches -- the same dicts a ``wal_frame`` carries -- so every
stream pathology (duplicate, reorder, replay) is exercised
deterministically, without timing.
"""

import pytest

from repro.repl.applier import ReplicationApplier
from repro.server import DatabaseServer
from repro.server.errors import ReadOnlyError


def make_primary():
    db = DatabaseServer()
    db.enable_wal_shipping()
    return db


def wire_records(db, from_lsn=0):
    return [record.to_dict() for record in db.wal.records_from(from_lsn)]


def feed(applier, db):
    """Ship the primary's whole log to the applier in one frame."""
    applier.ingest(wire_records(db), last_lsn=db.wal.last_lsn())


def select_ids(db, table="t"):
    rows = db.execute(f"SELECT * FROM {table}")
    return sorted(row["id"] for row in rows)


def test_ddl_and_rows_replicate():
    primary = make_primary()
    primary.execute("CREATE TABLE t (id INTEGER, val INTEGER)")
    for i in range(5):
        primary.execute(f"INSERT INTO t VALUES ({i}, {i * 10})")
    replica = DatabaseServer()
    applier = ReplicationApplier(replica)
    feed(applier, primary)
    assert select_ids(replica) == [0, 1, 2, 3, 4]
    assert applier.applied_lsn == primary.wal.last_lsn()
    assert applier.lag_records() == 0


def test_replica_is_read_only():
    primary = make_primary()
    primary.execute("CREATE TABLE t (id INTEGER)")
    replica = DatabaseServer()
    applier = ReplicationApplier(replica)
    feed(applier, primary)
    with pytest.raises(ReadOnlyError):
        replica.execute("INSERT INTO t VALUES (1)")
    with pytest.raises(ReadOnlyError):
        replica.execute("CREATE TABLE u (id INTEGER)")
    # Reads are fine.
    assert replica.execute("SELECT * FROM t") == []


def test_updates_and_deletes_replicate():
    primary = make_primary()
    primary.execute("CREATE TABLE t (id INTEGER, val INTEGER)")
    for i in range(6):
        primary.execute(f"INSERT INTO t VALUES ({i}, 0)")
    primary.execute("UPDATE t SET val = 99 WHERE id = 2")
    primary.execute("DELETE FROM t WHERE id = 4")
    replica = DatabaseServer()
    feed(ReplicationApplier(replica), primary)
    rows = {row["id"]: row["val"] for row in replica.execute("SELECT * FROM t")}
    assert rows == {0: 0, 1: 0, 2: 99, 3: 0, 5: 0}


def test_aborted_transactions_never_surface():
    primary = make_primary()
    primary.execute("CREATE TABLE t (id INTEGER)")
    session = primary.create_session()
    primary.execute("INSERT INTO t VALUES (1)")
    primary.execute("BEGIN WORK", session)
    primary.execute("INSERT INTO t VALUES (100)", session)
    primary.execute("INSERT INTO t VALUES (101)", session)
    primary.execute("ROLLBACK WORK", session)
    primary.execute("INSERT INTO t VALUES (2)")
    replica = DatabaseServer()
    applier = ReplicationApplier(replica)
    feed(applier, primary)
    assert select_ids(replica) == [1, 2]
    assert applier.counters["aborts_discarded"] == 1


def test_uncommitted_tail_is_not_applied():
    """Records of a still-open transaction buffer without applying --
    commit gating means readers never see a torn transaction."""
    primary = make_primary()
    primary.execute("CREATE TABLE t (id INTEGER)")
    session = primary.create_session()
    primary.execute("BEGIN WORK", session)
    primary.execute("INSERT INTO t VALUES (7)", session)
    replica = DatabaseServer()
    applier = ReplicationApplier(replica)
    feed(applier, primary)
    assert select_ids(replica) == []
    assert applier.stats()["open_txns"] == 1
    primary.execute("COMMIT WORK", session)
    feed(applier, primary)  # duplicates + the commit tail
    assert select_ids(replica) == [7]


def test_duplicate_frames_are_idempotent():
    primary = make_primary()
    primary.execute("CREATE TABLE t (id INTEGER)")
    for i in range(4):
        primary.execute(f"INSERT INTO t VALUES ({i})")
    replica = DatabaseServer()
    applier = ReplicationApplier(replica)
    records = wire_records(primary)
    last = primary.wal.last_lsn()
    for _ in range(3):  # the whole history, three times over
        applier.ingest(records, last_lsn=last)
    assert select_ids(replica) == [0, 1, 2, 3]
    assert applier.counters["duplicates"] == 2 * len(records)
    assert applier.counters["txns_applied"] == 4


def test_reordered_records_buffer_until_the_gap_fills():
    primary = make_primary()
    primary.execute("CREATE TABLE t (id INTEGER)")
    for i in range(4):
        primary.execute(f"INSERT INTO t VALUES ({i})")
    records = wire_records(primary)
    last = primary.wal.last_lsn()
    # Deterministic shuffle: reversed chunks of three.
    shuffled = []
    for start in range(0, len(records), 3):
        shuffled.extend(reversed(records[start : start + 3]))
    replica = DatabaseServer()
    applier = ReplicationApplier(replica)
    gap = applier.ingest(shuffled, last_lsn=last)
    assert not gap, "every record arrived, so no gap may remain"
    assert select_ids(replica) == [0, 1, 2, 3]
    assert applier.counters["reordered"] > 0
    assert applier.applied_lsn == last


def test_a_true_gap_is_reported_and_survives_resubscribe():
    primary = make_primary()
    primary.execute("CREATE TABLE t (id INTEGER)")
    for i in range(3):
        primary.execute(f"INSERT INTO t VALUES ({i})")
    records = wire_records(primary)
    last = primary.wal.last_lsn()
    dropped = records[5]  # lose one record mid-stream
    remaining = records[:5] + records[6:]
    replica = DatabaseServer()
    applier = ReplicationApplier(replica)
    gap = applier.ingest(remaining, last_lsn=last)
    assert gap, "the hole must be visible to the link layer"
    assert applier.received_lsn == 4
    # The link resubscribes from received_lsn + 1; the primary replays
    # the suffix, which includes the dropped record.
    applier.pending.clear()
    applier.ingest(
        [r for r in records if r["lsn"] > applier.received_lsn], last_lsn=last
    )
    assert select_ids(replica) == [0, 1, 2]
    assert applier.applied_lsn == last


def test_relay_log_replay_reaches_the_same_state():
    primary = make_primary()
    primary.execute("CREATE TABLE t (id INTEGER, val INTEGER)")
    for i in range(5):
        primary.execute(f"INSERT INTO t VALUES ({i}, {i})")
    primary.execute("UPDATE t SET val = 42 WHERE id = 3")
    replica = DatabaseServer()
    applier = ReplicationApplier(replica)
    feed(applier, primary)
    # "Crash": rebuild a fresh engine from the relay log alone.
    recovered = DatabaseServer()
    fresh = ReplicationApplier(recovered)
    fresh.replay_relay_log(applier.relay)
    assert replica.execute("SELECT * FROM t") == recovered.execute(
        "SELECT * FROM t"
    )
    assert fresh.applied_lsn == applier.applied_lsn


def test_read_your_writes_wait_for_lsn():
    primary = make_primary()
    primary.execute("CREATE TABLE t (id INTEGER)")
    replica = DatabaseServer()
    applier = ReplicationApplier(replica)
    feed(applier, primary)
    token = primary.wal.last_lsn()
    assert applier.wait_for_lsn(token, timeout=0.01)
    primary.execute("INSERT INTO t VALUES (1)")
    stale_token = primary.wal.last_lsn()
    assert not applier.wait_for_lsn(stale_token, timeout=0.01)
    feed(applier, primary)
    assert applier.wait_for_lsn(stale_token, timeout=0.01)


def test_replicated_grtree_index_answers_queries():
    """DDL replay builds the replica's own GR-tree; row redo maintains
    it; CHECK INDEX agrees."""
    from repro.datablade import register_grtree_blade
    from repro.temporal.chronon import Clock, format_chronon

    primary = DatabaseServer(clock=Clock(now=100))
    primary.enable_wal_shipping()
    primary.create_sbspace("spc")
    register_grtree_blade(primary)
    primary.execute("CREATE TABLE t (name LVARCHAR, te GRT_TimeExtent_t)")
    primary.execute(
        "CREATE INDEX gi ON t(te) USING grtree_am IN spc "
        "WITH (buffer_capacity = 8, node_cache = 8)"
    )
    primary.prefer_virtual_index = True
    for i in range(8):
        extent = f"{format_chronon(90 + i)}, UC, {format_chronon(90 + i)}, NOW"
        primary.execute(f"INSERT INTO t VALUES ('row{i}', '{extent}')")
    primary.execute("DELETE FROM t WHERE name = 'row3'")

    replica = DatabaseServer(clock=Clock(now=100))
    replica.create_sbspace("spc")
    register_grtree_blade(replica)
    replica.prefer_virtual_index = True
    applier = ReplicationApplier(replica)
    feed(applier, primary)

    query = (
        "SELECT name FROM t WHERE Overlaps(te, "
        f"'{format_chronon(92)}, UC, {format_chronon(92)}, NOW')"
    )
    primary_names = sorted(r["name"] for r in primary.execute(query))
    replica_names = sorted(r["name"] for r in replica.execute(query))
    assert primary_names == replica_names and primary_names
    assert replica.execute("CHECK INDEX gi") == "index gi is consistent"


def test_staleness_bound_rejects_a_lagging_replica():
    from repro.server.errors import ReplicaStaleError

    primary = make_primary()
    primary.execute("CREATE TABLE t (id INTEGER)")
    replica = DatabaseServer()
    applier = ReplicationApplier(replica)
    feed(applier, primary)

    class FakeLink:
        def lag_records(self):
            return applier.lag_records()

        def lag_seconds(self):
            return applier.lag_seconds()

    replica.repl_link = FakeLink()
    session = replica.create_session()
    replica.execute("SET READ STALENESS LSN 0", session)
    assert replica.execute("SELECT * FROM t", session) == []
    primary.execute("INSERT INTO t VALUES (1)")
    applier.primary_last_lsn = primary.wal.last_lsn()  # heartbeat arrived
    with pytest.raises(ReplicaStaleError):
        replica.execute("SELECT * FROM t", session)
    replica.execute("SET READ STALENESS OFF", session)
    assert replica.execute("SELECT * FROM t", session) == []
