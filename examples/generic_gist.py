#!/usr/bin/env python
"""The paper's closing proposal: a generic access method as a DataBlade.

Run:  python examples/generic_gist.py

"Following the ideas of Hellerstein et al. [HNP95] and Aoki [AOK98], a
generic extendible tree-based access method ... could be integrated into
the kernel of the DBMS ... It is also possible to implement such a
generic access method as a DataBlade and use specially designed operator
classes to extend it."

One access method (``gist_am``), one set of purpose functions -- and the
*operator class* named at CREATE INDEX time decides whether the index
behaves like an R-tree (rectangles) or like a B+-tree (ordered numbers).
A third instantiation is added live, without touching a single purpose
function.
"""

import random

from repro.gist import register_gist_blade
from repro.gist.extensions import Interval, IntervalExtension, IntervalQuery
from repro.rblade.blade import box_output
from repro.rtree.geometry import Rect
from repro.server import DatabaseServer


def main() -> None:
    server = DatabaseServer()
    server.create_sbspace("spc")
    blade = register_gist_blade(server)
    server.prefer_virtual_index = True
    rng = random.Random(1998)

    print("One access method:", server.catalog.access_methods.names())
    print("Its operator classes:",
          [oc.name for oc in server.catalog.opclasses.for_access_method("gist_am")])

    # Instantiation 1: rectangles (the R-tree as a GiST).
    server.execute("CREATE TABLE shapes (label LVARCHAR, geom Box)")
    server.execute(
        "CREATE INDEX gr ON shapes(geom gist_rect_ops) USING gist_am IN spc"
    )
    for i in range(300):
        x, y = rng.uniform(0, 100), rng.uniform(0, 100)
        rect = Rect((x, y), (x + 3, y + 3))
        server.execute(f"INSERT INTO shapes VALUES ('s{i}', '{box_output(rect)}')")
    rows = server.execute(
        "SELECT label FROM shapes WHERE GS_Overlap(geom, '(20, 20, 40, 40)')"
    )
    print(f"\n[rect]     window query -> {len(rows)} rectangles "
          f"({type(server.last_plan).__name__})")

    # Instantiation 2: ordered numbers (the B+-tree as a GiST).
    server.execute("CREATE TABLE readings (sensor LVARCHAR, value INTEGER)")
    server.execute(
        "CREATE INDEX gv ON readings(value gist_interval_ops) "
        "USING gist_am IN spc"
    )
    for i in range(300):
        server.execute(
            f"INSERT INTO readings VALUES ('sensor{i % 7}', {rng.randint(0, 999)})"
        )
    rows = server.execute("SELECT sensor FROM readings WHERE value >= 950")
    print(f"[interval] value >= 950 -> {len(rows)} readings "
          f"({type(server.last_plan).__name__})")

    # Instantiation 3, added live: order numbers by (parity, value).
    class ParityExtension(IntervalExtension):
        name = "parity"

        def key_for_value(self, value):
            v = float(value)
            return Interval((v % 2) * 10_000 + v, (v % 2) * 10_000 + v)

        def query_for(self, strategy, constant):
            base = super().query_for(strategy, constant)
            rank = (float(constant) % 2) * 10_000 + float(constant)
            return IntervalQuery(
                base.strategy,
                rank if base.low is not None else None,
                rank if base.high is not None else None,
                base.low_inclusive,
                base.high_inclusive,
            )

    server.execute(
        "CREATE OPCLASS gist_parity_ops FOR gist_am STRATEGIES(GS_NumEqual)"
    )
    blade.register_extension("gist_parity_ops", ParityExtension())
    server.execute("CREATE TABLE parity (v INTEGER)")
    server.execute(
        "CREATE INDEX gp ON parity(v gist_parity_ops) USING gist_am IN spc"
    )
    for v in range(20):
        server.execute(f"INSERT INTO parity VALUES ({v})")
    rows = server.execute("SELECT v FROM parity WHERE GS_NumEqual(v, 13)")
    print(f"[parity]   point query -> {rows}")

    print("\nAll three indices share gs_create/gs_insert/gs_getnext/...;")
    print("only the operator class (and its extension object) differs.")
    for index in ("gr", "gv", "gp"):
        print(" ", server.execute(f"CHECK INDEX {index}"))


if __name__ == "__main__":
    main()
