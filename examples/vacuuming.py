#!/usr/bin/env python
"""Vacuuming old bitemporal data (Section 5.5).

Run:  python examples/vacuuming.py

Loads years of bitemporal history, then removes everything logically
deleted more than "five years" ago three ways: entry-at-a-time deletion
through cursors, the drop-and-bulk-load rebuild, and a bulk deletion --
comparing the page I/O of each, as the paper's discussion anticipates.
"""

from repro.grtree.bulk import bulk_delete, bulk_load
from repro.grtree.node import GRNodeStore
from repro.grtree.tree import GRTree
from repro.storage.buffer import BufferPool
from repro.storage.pages import InMemoryPageStore
from repro.temporal.chronon import Clock
from repro.temporal.variables import UC
from repro.workloads import BitemporalWorkload, WorkloadConfig


def build(seed: int = 7):
    clock = Clock(now=0)
    pool = BufferPool(InMemoryPageStore(page_size=1024), capacity=128)
    tree = GRTree.create(GRNodeStore(pool), clock)
    workload = BitemporalWorkload(
        clock,
        WorkloadConfig(seed=seed, delete_fraction=0.25, update_fraction=0.1,
                       clock_advance_probability=0.6),
    )
    workload.run(tree, 3000)
    return clock, pool, tree, workload


def is_old(cutoff):
    def condition(entry):
        # Logically deleted (TTend fixed) before the cutoff.
        return entry.tt_end is not UC and entry.tt_end < cutoff
    return condition


def main() -> None:
    clock, pool, tree, workload = build()
    cutoff = clock.now - clock.now // 2  # "five years ago"
    condition = is_old(cutoff)
    victims = sum(
        condition(e)
        for node in tree.iter_nodes() if node.leaf
        for e in node.entries
    )
    print(f"History: {tree.size} entries, height {tree.height}; "
          f"{victims} entries were closed before chronon {cutoff}.")

    # Strategy 1: entry-at-a-time deletion (cursor + delete loop).
    c1, p1, t1, w1 = build()
    before = p1.stats.snapshot()
    removed = 0
    for node in list(t1.iter_nodes()):
        if not node.leaf:
            continue
        for entry in list(node.entries):
            if condition(entry):
                if t1.delete(entry.extent(), entry.rowid):
                    removed += 1
    io1 = p1.stats - before
    print(f"\n1. entry-at-a-time: removed {removed}, "
          f"logical page reads {io1.logical_reads}, writes {io1.logical_writes}")
    t1.check()

    # Strategy 2: drop the index, bulk load the survivors (Section 5.5's
    # "straightforward solution").
    c2, p2, t2, w2 = build()
    survivors = [
        (e.extent(), e.rowid)
        for node in t2.iter_nodes() if node.leaf
        for e in node.entries
        if not condition(e)
    ]
    before = p2.stats.snapshot()
    fresh_pool = BufferPool(InMemoryPageStore(page_size=1024), capacity=128)
    rebuilt = bulk_load(GRNodeStore(fresh_pool), c2, survivors)
    io2 = fresh_pool.stats.snapshot()
    print(f"2. drop + bulk load: kept {rebuilt.size}, "
          f"logical page reads {io2.logical_reads}, writes {io2.logical_writes}")
    rebuilt.check()

    # Strategy 3: the provided bulk-deletion algorithm.
    c3, p3, t3, w3 = build()
    before = p3.stats.snapshot()
    t3, removed3 = bulk_delete(t3, condition)
    io3 = p3.stats - before
    print(f"3. bulk delete:      removed {removed3}, "
          f"logical page reads {io3.logical_reads}, writes {io3.logical_writes}")
    t3.check()

    print("\nEntry-at-a-time deletion re-traverses from the root after "
          "every condensation;\nbulk strategies touch each page a constant "
          "number of times.")


if __name__ == "__main__":
    main()
