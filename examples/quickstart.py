#!/usr/bin/env python
"""Quickstart: a bitemporal table with a GR-tree index in ten lines.

Run:  python examples/quickstart.py

Demonstrates the core facade: insert now-relative facts, watch regions
grow as simulated time passes, take timeslices of past states, and see
that history survives logical deletion.
"""

from repro.core import BitemporalDatabase
from repro.temporal.chronon import Granularity, parse_chronon


def main() -> None:
    db = BitemporalDatabase(["employee", "department"],
                            granularity=Granularity.DAY)

    def day(text: str) -> int:
        return parse_chronon(text, Granularity.DAY)

    # It is January 2, 1998; Jane joins Sales, valid from today onwards.
    db.clock.set(day("01/02/98"))
    db.insert({"employee": "Jane", "department": "Sales"},
              vt_begin=day("01/02/98"))

    # A month later Tom joins Management -- we only record it a week
    # after the fact (a high first step in his stair shape).
    db.clock.set(day("02/09/98"))
    db.insert({"employee": "Tom", "department": "Management"},
              vt_begin=day("02/02/98"))

    print("Current state on", db.clock.format())
    for row in db.current():
        print(f"  {row['employee']:6s} {row['department']}")

    # Another month later Tom leaves: a *logical* deletion.
    db.clock.set(day("03/15/98"))
    db.delete_where("employee", "Tom")

    print("\nCurrent state on", db.clock.format())
    for row in db.current():
        print(f"  {row['employee']:6s} {row['department']}")

    # History is never lost: ask what we believed on March 1st.
    print("\nTimeslice: valid 02/20/98, as known on 03/01/98")
    for row in db.timeslice(day("02/20/98"), day("03/01/98")):
        print(f"  {row['employee']:6s} {row['department']}")

    print("\nIndex statistics:", db.statistics())
    print(db.check_index())


if __name__ == "__main__":
    main()
