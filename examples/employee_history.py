#!/usr/bin/env python
"""The paper's running example: the EmpDep relation (Tables 1 and 3).

Run:  python examples/employee_history.py

Replays the exact history behind Table 1 through the SQL layer (month
granularity, current time 9/97), prints the relation in the paper's
layout, and then demonstrates the Section 5.1 anomaly: the query
"Who worked in Sales during 7/97 according to the knowledge we had
during 5/97?" answered once *incorrectly* (valid- and transaction-time
intervals treated separately) and once correctly through the GR-tree.
"""

from repro.core import BitemporalDatabase
from repro.temporal.chronon import Granularity, parse_chronon
from repro.temporal.relation import build_empdep


def month(text: str) -> int:
    return parse_chronon(text, Granularity.MONTH)


def replay_history(db: BitemporalDatabase) -> None:
    db.clock.set(month("3/97"))
    db.insert({"employee": "Tom", "department": "Management"},
              vt_begin=month("6/97"), vt_end=month("8/97"))
    db.insert({"employee": "Julie", "department": "Sales"},
              vt_begin=month("3/97"))
    db.clock.set(month("4/97"))
    db.insert({"employee": "John", "department": "Advertising"},
              vt_begin=month("3/97"), vt_end=month("5/97"))
    db.clock.set(month("5/97"))
    db.insert({"employee": "Jane", "department": "Sales"},
              vt_begin=month("5/97"))
    db.insert({"employee": "Michelle", "department": "Management"},
              vt_begin=month("3/97"))
    db.clock.set(month("8/97"))
    db.delete_where("employee", "Tom")
    db.modify("employee", "Julie",
              {"employee": "Julie", "department": "Sales"},
              vt_begin=month("3/97"), vt_end=month("7/97"))
    db.clock.set(month("9/97"))


def main() -> None:
    db = BitemporalDatabase(["employee", "department"],
                            granularity=Granularity.MONTH)
    replay_history(db)

    print("Table 1: The EmpDep Relation (current time = 9/97)\n")
    rows = db.sql(f"SELECT * FROM {db.TABLE}")
    header = f"{'Employee':9s} {'Department':12s} {'Time extent (TTb, TTe, VTb, VTe)'}"
    print(header)
    print("-" * len(header))
    for row in rows:
        extent = row["time_extent"].to_text(Granularity.MONTH)
        print(f"{row['employee']:9s} {row['department']:12s} {extent}")

    # The Julie anomaly (Table 3 / Figure 8).
    print("\nQuery: who worked in Sales during 7/97, per 5/97 knowledge?")
    reference = build_empdep()
    naive = sorted(
        r.values["Employee"]
        for r in reference.timeslice_naive(month("7/97"), month("5/97"))
        if r.values["Department"] == "Sales"
    )
    print(f"  separate-interval (incorrect) answer: {naive}")
    correct = sorted(
        r["employee"]
        for r in db.timeslice(month("7/97"), month("5/97"))
        if r["department"] == "Sales"
    )
    print(f"  bitemporal GR-tree (correct) answer:  {correct}")
    print("  -> Julie's stair shape never covers (tt=5/97, vt=7/97):")
    print("     treating the two intervals separately invents a fact.")

    print("\nCurrent staff (9/97):",
          sorted(r["employee"] for r in db.current()))
    print(db.check_index())


if __name__ == "__main__":
    main()
