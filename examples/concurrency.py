#!/usr/bin/env python
"""Concurrency and recovery over sbspace-stored indices (Section 5.3).

Run:  python examples/concurrency.py

Shows what the paper's analysis predicts: locking at large-object
granularity serializes writers against everyone, shared locks outlive
the close under repeatable read, and the write-ahead log brings the
index back after a crash -- all without a single line of locking or
logging code in the DataBlade.
"""

from repro.datablade import register_grtree_blade
from repro.server import DatabaseServer
from repro.storage.locks import LockConflictError
from repro.temporal.chronon import Clock, format_chronon


def day(chronon: int) -> str:
    return format_chronon(chronon)


def main() -> None:
    server = DatabaseServer(clock=Clock(now=100))
    server.create_sbspace("spc")
    register_grtree_blade(server)
    server.execute("CREATE TABLE t (name LVARCHAR, te GRT_TimeExtent_t)")
    server.execute("CREATE INDEX gi ON t(te) USING grtree_am IN spc")
    server.prefer_virtual_index = True
    server.execute(
        f"INSERT INTO t VALUES ('seed', '{day(100)}, UC, {day(95)}, NOW')"
    )

    query = f"SELECT name FROM t WHERE Overlaps(te, '{day(100)}, UC, {day(100)}, NOW')"

    print("1. A writer transaction inserts: the whole index (one large")
    print("   object) is locked exclusively until the transaction ends.")
    writer = server.create_session()
    reader = server.create_session()
    server.execute("BEGIN WORK", writer)
    server.execute(
        f"INSERT INTO t VALUES ('w1', '{day(100)}, UC, {day(96)}, NOW')",
        writer,
    )
    server.execute("BEGIN WORK", reader)
    try:
        server.execute(query, reader)
    except LockConflictError as exc:
        print(f"   reader blocked as predicted: {exc}")
    server.execute("ROLLBACK WORK", reader)
    server.execute("COMMIT WORK", writer)
    print("   writer committed; reader now sees:",
          [r["name"] for r in server.execute(query, reader)])

    print("\n2. Repeatable read: even a *shared* lock survives grt_close")
    print("   and is only released at transaction end.")
    rr = server.create_session()
    server.execute("SET ISOLATION TO REPEATABLE READ", rr)
    server.execute("BEGIN WORK", rr)
    server.execute(query, rr)
    held = server.locks.locked_resources
    print(f"   locks still held after the statement closed the index: {held}")
    w2 = server.create_session()
    server.execute("BEGIN WORK", w2)
    try:
        server.execute(
            f"INSERT INTO t VALUES ('w2', '{day(100)}, UC, {day(97)}, NOW')",
            w2,
        )
    except LockConflictError as exc:
        print(f"   a writer conflicts with the lingering read lock: {exc}")
    server.execute("ROLLBACK WORK", w2)
    server.execute("COMMIT WORK", rr)
    print("   after commit:", server.locks.locked_resources, "locks held")

    print("\n3. Crash recovery from the write-ahead log.")
    space = server.get_sbspace("spc")
    print(f"   before crash: {space.object_count} large object(s), "
          f"{sum(b.page_count for b in space._objects.values())} pages")
    space._reset_for_recovery()
    print("   crash! volatile sbspace state lost "
          f"({space.object_count} objects remain)")
    replayed = server.wal.recover(space)
    print(f"   recovery replayed {replayed} committed log records")
    rows = server.execute(query)
    print("   index answers again:", sorted(r["name"] for r in rows))
    print("  ", server.execute("CHECK INDEX gi"))


if __name__ == "__main__":
    main()
