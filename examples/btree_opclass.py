#!/usr/bin/env python
"""Step 4's running example: changing an index's order with compare().

Run:  python examples/btree_opclass.py

"The B+-tree operator class contains a support function compare() ...
The natural order for integers is -2, -1, 0, 1, 2, but the programmer
may want to change this order to 0, -1, 1, -2, 2.  Then a substitute
function for compare() has to be written, and a new operator class with
the new function name instead of the old one has to be registered."

Two indexes over the same integers -- one with the default opclass, one
with the substitute comparator -- show the same access method serving
two orders, because btree_am resolves Compare dynamically through the
operator class (the non-hard-coded design of Section 5.2).
"""

from repro.bblade import register_btree_blade
from repro.server import DatabaseServer


def main() -> None:
    server = DatabaseServer()
    server.create_sbspace("spc")
    register_btree_blade(server)
    server.prefer_virtual_index = True

    # The substitute compare(): 0, -1, 1, -2, 2 ...
    def abs_compare(a: int, b: int) -> int:
        ra = (abs(a), 0 if a < 0 else 1)
        rb = (abs(b), 0 if b < 0 else 1)
        return (ra > rb) - (ra < rb)

    server.library.register(
        "usr/functions/btree.bld", "bt_abscompare_udr", abs_compare
    )
    server.execute(
        "CREATE FUNCTION AbsCompare(INTEGER, INTEGER) RETURNING int "
        "EXTERNAL NAME 'usr/functions/btree.bld(bt_abscompare_udr)' LANGUAGE c"
    )
    server.execute(
        "CREATE OPCLASS btree_abs_ops FOR btree_am "
        "STRATEGIES(BT_Equal, BT_GreaterThan, BT_GreaterThanOrEqual, "
        "BT_LessThan, BT_LessThanOrEqual) "
        "SUPPORT(AbsCompare)"
    )
    print("Operator classes for btree_am:",
          [oc.name for oc in
           server.catalog.opclasses.for_access_method("btree_am")])

    server.execute("CREATE TABLE nums (v INTEGER)")
    server.execute("CREATE INDEX natural ON nums(v) USING btree_am IN spc")
    server.execute(
        "CREATE INDEX zigzag ON nums(v btree_abs_ops) USING btree_am IN spc"
    )
    for v in (-2, -1, 0, 1, 2):
        server.execute(f"INSERT INTO nums VALUES ({v})")

    blade = server.catalog.routines.resolve_any("bt_getnext").fn.__self__

    def index_order(name):
        info = server.catalog.get_index(name)
        td = server.executor._descriptor(info, server.system_session)
        with server.system_session.autocommit():
            blade.bt_open(td)
            order = [
                int(key) for key, _, _ in
                td.user_data["tree"].search_range(None, None)
            ]
            blade.bt_close(td)
        return order

    print("natural opclass order:", index_order("natural"))
    print("substitute compare() :", index_order("zigzag"))
    print("\nSame access method, same purpose functions -- the operator")
    print("class alone changed the order the index maintains.")
    for index in ("natural", "zigzag"):
        print(" ", server.execute(f"CHECK INDEX {index}"))


if __name__ == "__main__":
    main()
