#!/usr/bin/env python
"""The six steps of building an access-method DataBlade (Section 4).

Run:  python examples/datablade_walkthrough.py

Performs each numbered step of the paper explicitly -- new data type,
purpose functions, access-method registration, operator class, storage
space, index creation -- then runs an INSERT and a SELECT with purpose-
function tracing enabled, printing the exact call sequences of Figure 6.
"""

from repro.datablade.blade import GRTreeDataBlade
from repro.datablade.bladesmith import (
    generate_register_script,
    generate_unregister_script,
)
from repro.datablade.register import register_grtree_blade
from repro.server import DatabaseServer
from repro.temporal.chronon import Clock


def main() -> None:
    server = DatabaseServer(clock=Clock(now=100))

    print("Step 5 first, as the paper notes it is an admin command:")
    print("  onspaces -c -S spc   ->  server.create_sbspace('spc')")
    server.create_sbspace("spc")

    print("\nSteps 1-4: the BladeSmith-generated registration script")
    print("(data type, CREATE FUNCTIONs, CREATE SECONDARY ACCESS_METHOD,")
    print("CREATE OPCLASS), run by the BladeManager stand-in:\n")
    script = generate_register_script(GRTreeDataBlade.LIBRARY_PATH)
    for line in script.splitlines()[:14]:
        print("  " + line)
    print("  ... (%d statements total)\n" % script.count(";"))
    register_grtree_blade(server)

    print("Step 6: create a virtual index with CREATE INDEX:")
    server.execute("CREATE TABLE employees (name LVARCHAR, te GRT_TimeExtent_t)")
    create_index = (
        "CREATE INDEX grt_index ON employees(te grt_opclass) "
        "USING grtree_am IN spc"
    )
    print("  " + create_index)
    server.execute(create_index)
    server.prefer_virtual_index = True

    print("\nSYSAMS now lists:", server.catalog.access_methods.names())
    print("SYSINDICES now lists:", server.catalog.index_names())

    # Figure 6(a): the INSERT call sequence.
    server.trace.set_level("am", 1)
    server.execute(
        "INSERT INTO employees VALUES "
        "('Jane', '04/10/1900, UC, 04/05/1900, NOW')"
    )
    print("\nFigure 6(a) -- purpose functions called for INSERT:")
    for call in server.trace.texts("am"):
        print("  " + call)

    server.trace.clear()
    rows = server.execute(
        "SELECT name FROM employees "
        "WHERE Overlaps(te, '04/11/1900, UC, 04/11/1900, NOW')"
    )
    print("\nFigure 6(b) -- purpose functions called for SELECT:")
    for call in server.trace.texts("am"):
        print("  " + call)
    print("\nSELECT returned:", [r["name"] for r in rows])

    print("\nThe matching unregistration script begins:")
    for line in generate_unregister_script().splitlines()[:4]:
        print("  " + line)


if __name__ == "__main__":
    main()
