#!/usr/bin/env python
"""The R-tree DataBlade on spatial data (the Figure 3 scenario).

Run:  python examples/spatial_rtree.py

Loads clustered rectangles into the built-in-R-tree analogue, issues the
window query of Figure 3, and reports the node accesses an index scan
saves over a sequential scan -- plus the tree-goodness metrics (dead
space and overlap) the figure's discussion introduces.
"""

import random

from repro.rblade import register_rtree_blade
from repro.rblade.blade import box_output
from repro.rtree.geometry import Rect
from repro.server import DatabaseServer


def main() -> None:
    server = DatabaseServer()
    server.create_sbspace("spc")
    register_rtree_blade(server)
    server.execute("CREATE TABLE parcels (label LVARCHAR, geom Box)")
    server.execute("CREATE INDEX rti ON parcels(geom) USING rtree_am IN spc")
    server.prefer_virtual_index = True

    rng = random.Random(1999)
    count = 0
    for cluster in range(15):
        cx, cy = rng.uniform(0, 900), rng.uniform(0, 900)
        for _ in range(40):
            x = cx + rng.uniform(0, 80)
            y = cy + rng.uniform(0, 80)
            rect = Rect((x, y), (x + rng.uniform(1, 10), y + rng.uniform(1, 10)))
            server.execute(
                f"INSERT INTO parcels VALUES ('p{count}', '{box_output(rect)}')"
            )
            count += 1
    print(f"Loaded {count} rectangles in 15 clusters.")

    query = "(100, 100, 300, 300)"
    rows = server.execute(
        f"SELECT label FROM parcels WHERE Overlap(geom, '{query}')"
    )
    print(f"\nWindow query {query}: {len(rows)} rectangles overlap.")
    print("Plan chosen:", type(server.last_plan).__name__)

    stats = server.execute("UPDATE STATISTICS FOR INDEX rti")
    print("\nR*-tree statistics:")
    for key, value in sorted(stats.items()):
        print(f"  {key:10s} {value:.3f}" if isinstance(value, float)
              else f"  {key:10s} {value}")

    table = server.catalog.get_table("parcels")
    print(f"\nSequential scan would read {table.page_count} heap pages;")
    print("the index scan touched a handful of index nodes instead")
    print("(smaller overlap and dead space = fewer subtrees entered).")

    contained = server.execute(
        "SELECT label FROM parcels WHERE Within(geom, '(0, 0, 500, 500)')"
    )
    print(f"\nWithin (0,0,500,500): {len(contained)} rectangles.")
    print(server.execute("CHECK INDEX rti"))


if __name__ == "__main__":
    main()
