"""Developer-implemented node-level locking (Section 5.3's road not taken).

With the index in an sbspace, locking is fixed at large-object
granularity and "concurrency control and recovery protocols of
Kornacker et al. cannot be implemented".  With an OS file, "the
developer has the freedom to implement any desirable concurrency
control" -- at the price of building it.  This module builds the simple
end of that spectrum: per-node shared/exclusive locks with *lock
coupling* (crabbing) for scans, and subtree-exclusive locking for
insertions [BS77], over any page store.

It is deliberately not the full R-link protocol [KB95, KMH97] -- the
paper only argues that finer-than-LO locking becomes *possible* outside
sbspaces; the benchmark quantifies how much concurrency even this simple
protocol recovers compared to one lock on the whole index.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.grtree.entries import GREntry, Predicate
from repro.grtree.tree import GRTree
from repro.storage.locks import LockManager, LockMode
from repro.temporal.chronon import Chronon
from repro.temporal.extent import TimeExtent


class NodeLockingProtocol:
    """S/X locks at index-node granularity over a shared lock manager.

    Lock names are ``("node", index_name, page_id)``, so conflicts are
    per-subtree instead of per-index.  Locks are held for the duration
    of the operation (scan or insert), released by :meth:`finish` --
    the caller decides when an operation's locks can go.
    """

    def __init__(self, locks: LockManager, index_name: str, obs=None) -> None:
        self.locks = locks
        self.index_name = index_name
        #: Optional observability hub; ``None`` costs one attribute test.
        self.obs = obs
        self._held: dict[int, Set[Tuple[str, str, int]]] = {}

    def _resource(self, page_id: int) -> Tuple[str, str, int]:
        return ("node", self.index_name, page_id)

    def acquire(self, txn_id: int, page_id: int, mode: LockMode) -> None:
        resource = self._resource(page_id)
        self.locks.acquire(txn_id, resource, mode)
        self._held.setdefault(txn_id, set()).add(resource)
        if self.obs is not None:
            self.obs.inc("grtree.node_locks.acquired")

    def release(self, txn_id: int, page_id: int) -> None:
        resource = self._resource(page_id)
        self.locks.release(txn_id, resource)
        self._held.get(txn_id, set()).discard(resource)
        if self.obs is not None:
            self.obs.inc("grtree.node_locks.released")

    def finish(self, txn_id: int) -> int:
        """Release every node lock the operation still holds."""
        held = self._held.pop(txn_id, set())
        for resource in held:
            self.locks.release(txn_id, resource)
        if self.obs is not None and held:
            self.obs.inc("grtree.node_locks.released", len(held))
        return len(held)

    def held_count(self, txn_id: int) -> int:
        return len(self._held.get(txn_id, ()))


class LockCouplingScan:
    """A scan that holds node locks with lock coupling.

    At any moment the scan shared-locks exactly its current root-to-node
    path (parents are released as soon as the child is locked -- the
    [BS77] discipline) so concurrent writers conflict only when they
    touch the same subtree.
    """

    def __init__(
        self,
        tree: GRTree,
        protocol: NodeLockingProtocol,
        txn_id: int,
        query: TimeExtent,
        predicate: Predicate = Predicate.OVERLAPS,
        now: Optional[Chronon] = None,
    ) -> None:
        self.tree = tree
        self.protocol = protocol
        self.txn_id = txn_id
        self.now = tree.now if now is None else now
        self.query = query.region(self.now)
        self.predicate = predicate
        self._stack: List[Tuple[int, int]] = []
        self._open_root()

    def _open_root(self) -> None:
        self.protocol.acquire(self.txn_id, self.tree.root_id, LockMode.SHARED)
        self._stack = [(self.tree.root_id, 0)]

    def next(self) -> Optional[GREntry]:
        while self._stack:
            page_id, index = self._stack.pop()
            node = self.tree.store.read(page_id)
            if node.leaf:
                while index < len(node.entries):
                    entry = node.entries[index]
                    index += 1
                    if self.predicate.leaf_test(
                        entry.region(self.now), self.query
                    ):
                        self._stack.append((page_id, index))
                        return entry
                self.protocol.release(self.txn_id, page_id)
                continue
            descended = False
            while index < len(node.entries):
                entry = node.entries[index]
                index += 1
                if self.predicate.internal_test(
                    entry.region(self.now), self.query
                ):
                    # Couple: lock the child before continuing below it.
                    self.protocol.acquire(
                        self.txn_id, entry.child, LockMode.SHARED
                    )
                    self._stack.append((page_id, index))
                    self._stack.append((entry.child, 0))
                    descended = True
                    break
            if not descended:
                self.protocol.release(self.txn_id, page_id)
        return None

    def close(self) -> None:
        self.protocol.finish(self.txn_id)

    def fetch_all(self) -> List[GREntry]:
        results = []
        try:
            while True:
                entry = self.next()
                if entry is None:
                    return results
                results.append(entry)
        finally:
            self.close()


def locked_insert(
    tree: GRTree,
    protocol: NodeLockingProtocol,
    txn_id: int,
    extent: TimeExtent,
    rowid: int,
) -> None:
    """Insert under node-level locking, [BS77]'s optimistic variant:
    shared locks down the descent path, exclusive only on the leaf being
    modified.  When the leaf is full (a split will propagate), the path
    locks are upgraded to exclusive before the structural change -- the
    upgrade can conflict, which is precisely the protocol's documented
    cost.  Locks are released when the operation completes."""
    entry = GREntry.from_extent(extent, rowid)
    region = entry.region(tree.now + tree.time_horizon)
    page_id = tree.root_id
    protocol.acquire(txn_id, page_id, LockMode.SHARED)
    node = tree.store.read(page_id)
    path = [page_id]
    try:
        while not node.leaf:
            index = tree._choose_subtree(node, region)
            page_id = node.entries[index].child
            protocol.acquire(txn_id, page_id, LockMode.SHARED)
            path.append(page_id)
            node = tree.store.read(page_id)
        protocol.acquire(txn_id, page_id, LockMode.EXCLUSIVE)
        if len(node.entries) + 1 > tree.max_entries:
            # The split will touch ancestors: upgrade the whole path.
            for ancestor in path:
                protocol.acquire(txn_id, ancestor, LockMode.EXCLUSIVE)
        tree.insert(extent, rowid)
    finally:
        protocol.finish(txn_id)
