"""The GR-tree: an R*-tree-based index for now-relative bitemporal data.

Section 3 of the paper: node entries carry four timestamps in which the
variables ``UC`` and ``NOW`` may appear at *all* tree levels, so minimum
bounding regions (rectangles or stair shapes) grow exactly when the data
regions inside them grow.  Non-leaf entries add the ``Rectangle`` flag
(distinguishing a growing stair from a rectangle growing in both
dimensions) and the ``Hidden`` flag (tracking growing stairs temporarily
hidden under taller fixed rectangles, Figure 4(c)).
"""

from repro.grtree.check import TreeInvariantError, check_tree, verify_tree
from repro.grtree.cursor import Cursor
from repro.grtree.entries import GREntry, Predicate, bound_entries
from repro.grtree.node import GRNode, GRNodeStore
from repro.grtree.specialize import SpecializedOps, numpy_available
from repro.grtree.tree import GRTree
from repro.grtree.bulk import bulk_load

__all__ = [
    "Cursor",
    "GREntry",
    "Predicate",
    "bound_entries",
    "GRNode",
    "GRNodeStore",
    "GRTree",
    "SpecializedOps",
    "TreeInvariantError",
    "bulk_load",
    "check_tree",
    "numpy_available",
    "verify_tree",
]
