"""GR-tree node layout and page serialization.

The layout "does not differ significantly from the layout of an R*-tree
node" (Section 3): a header plus an array of entries.  Each entry packs
the four timestamps (with ``UC``/``NOW`` encoded as a reserved sentinel),
one flag byte carrying ``Rectangle`` and ``Hidden``, and the pointer
(child page id, or rowid + fragid).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List

from repro.grtree.entries import GREntry
from repro.storage.buffer import BufferPool
from repro.temporal.variables import NOW, UC, is_ground

_NODE_HEADER = struct.Struct("<BHB")
#: tt_begin, tt_end, vt_begin, vt_end, flags, pointer-a, pointer-b.
_ENTRY = struct.Struct("<qqqqBqi")

#: Sentinel encoding of the variables UC and NOW on disk.
_VARIABLE_SENTINEL = 2**62

_FLAG_RECTANGLE = 0x01
_FLAG_HIDDEN = 0x02


@dataclass
class GRNode:
    """A GR-tree node; ``page_id`` is the node's identity."""

    page_id: int
    leaf: bool
    level: int = 0
    entries: List[GREntry] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.entries)


class GRNodeStore:
    """Persists GR-tree nodes through a buffer pool, one node per page."""

    def __init__(self, buffer: BufferPool) -> None:
        self.buffer = buffer
        self.capacity = (buffer.store.page_size - _NODE_HEADER.size) // _ENTRY.size
        if self.capacity < 4:
            raise ValueError(
                f"page size {buffer.store.page_size} too small for a GR-tree node"
            )

    def allocate(self, leaf: bool, level: int = 0) -> GRNode:
        return GRNode(self.buffer.allocate(), leaf, level)

    def read(self, page_id: int) -> GRNode:
        data = self.buffer.read(page_id)
        leaf, count, level = _NODE_HEADER.unpack_from(data, 0)
        offset = _NODE_HEADER.size
        entries: List[GREntry] = []
        for _ in range(count):
            ttb, tte, vtb, vte, flags, ptr_a, ptr_b = _ENTRY.unpack_from(data, offset)
            offset += _ENTRY.size
            entry = GREntry(
                tt_begin=ttb,
                tt_end=UC if tte == _VARIABLE_SENTINEL else tte,
                vt_begin=vtb,
                vt_end=NOW if vte == _VARIABLE_SENTINEL else vte,
                rectangle=bool(flags & _FLAG_RECTANGLE),
                hidden=bool(flags & _FLAG_HIDDEN),
            )
            if leaf:
                entry.rowid, entry.fragid = ptr_a, ptr_b
            else:
                entry.child = ptr_a
            entries.append(entry)
        return GRNode(page_id, bool(leaf), level, entries)

    def write(self, node: GRNode) -> None:
        if len(node.entries) > self.capacity:
            raise ValueError(
                f"node overflow: {len(node.entries)} entries > capacity "
                f"{self.capacity}"
            )
        parts = [_NODE_HEADER.pack(node.leaf, len(node.entries), node.level)]
        for entry in node.entries:
            flags = (_FLAG_RECTANGLE if entry.rectangle else 0) | (
                _FLAG_HIDDEN if entry.hidden else 0
            )
            tte = entry.tt_end if is_ground(entry.tt_end) else _VARIABLE_SENTINEL
            vte = entry.vt_end if is_ground(entry.vt_end) else _VARIABLE_SENTINEL
            if node.leaf:
                ptr_a, ptr_b = entry.rowid, entry.fragid
            else:
                ptr_a, ptr_b = entry.child, 0
            parts.append(
                _ENTRY.pack(
                    entry.tt_begin, tte, entry.vt_begin, vte, flags, ptr_a, ptr_b
                )
            )
        self.buffer.write(node.page_id, b"".join(parts))

    def free(self, page_id: int) -> None:
        self.buffer.free(page_id)
