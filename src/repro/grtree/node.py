"""GR-tree node layout, page serialization, and the deserialized-node cache.

The layout "does not differ significantly from the layout of an R*-tree
node" (Section 3): a header plus an array of entries.  Each entry packs
the four timestamps (with ``UC``/``NOW`` encoded as a reserved sentinel),
one flag byte carrying ``Rectangle`` and ``Hidden``, and the pointer
(child page id, or rowid + fragid).

Two read-path optimisations live here:

* serialization uses a single reusable page-sized ``bytearray`` with
  ``pack_into`` on writes and batched ``iter_unpack`` on reads, instead
  of a per-entry pack + list-join;
* :class:`GRNodeStore` keeps an LRU cache of *deserialized* nodes keyed
  by page id, so warm reads skip struct unpacking entirely.  The cache
  is write-through on :meth:`GRNodeStore.write`, drops entries on
  :meth:`GRNodeStore.free` (condense frees pages through this path) and
  on page-id recycling in :meth:`GRNodeStore.allocate`, and empties
  itself when the underlying :class:`BufferPool` is invalidated (crash
  simulation).  Logical/physical I/O is still accounted at the buffer:
  a node-cache hit performs the same buffer read it always did -- only
  the deserialization is skipped -- so ``IOStats`` and every I/O-count
  benchmark are unaffected.
"""

from __future__ import annotations

import struct
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List

from repro.grtree.entries import GREntry
from repro.storage.buffer import BufferPool
from repro.temporal.variables import NOW, UC, is_ground

_NODE_HEADER = struct.Struct("<BHB")
#: tt_begin, tt_end, vt_begin, vt_end, flags, pointer-a, pointer-b.
_ENTRY = struct.Struct("<qqqqBqi")

#: Sentinel encoding of the variables UC and NOW on disk.
_VARIABLE_SENTINEL = 2**62

_FLAG_RECTANGLE = 0x01
_FLAG_HIDDEN = 0x02

#: Default size of the deserialized-node cache (nodes, not bytes).
DEFAULT_NODE_CACHE_SIZE = 128


@dataclass
class GRNode:
    """A GR-tree node; ``page_id`` is the node's identity."""

    page_id: int
    leaf: bool
    level: int = 0
    entries: List[GREntry] = field(default_factory=list)
    #: Lazily built column mirror of ``entries`` for the vectorized path
    #: (see :mod:`repro.grtree.specialize`).  Dropped on every store
    #: write -- all tree mutations pass through a write before the
    #: operation returns, so a non-``None`` value is always current.
    cols: object = field(default=None, repr=False, compare=False)

    def __len__(self) -> int:
        return len(self.entries)


class NodeCacheStats:
    """Counters for the deserialized-node cache (pulled by ``repro.obs``)."""

    __slots__ = ("hits", "misses", "evictions", "invalidations")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }


class GRNodeStore:
    """Persists GR-tree nodes through a buffer pool, one node per page.

    ``node_cache_size`` bounds the LRU cache of deserialized nodes;
    ``0`` disables the cache (every read re-unpacks the page, the
    pre-optimisation behaviour the benchmarks compare against).
    """

    def __init__(
        self,
        buffer: BufferPool,
        node_cache_size: int = DEFAULT_NODE_CACHE_SIZE,
    ) -> None:
        if node_cache_size < 0:
            raise ValueError("node cache size cannot be negative")
        self.buffer = buffer
        self.capacity = (buffer.store.page_size - _NODE_HEADER.size) // _ENTRY.size
        if self.capacity < 4:
            raise ValueError(
                f"page size {buffer.store.page_size} too small for a GR-tree node"
            )
        self.node_cache_size = node_cache_size
        self.cache_stats = NodeCacheStats()
        self._cache: "OrderedDict[int, GRNode]" = OrderedDict()
        #: Serializes page I/O, the LRU bookkeeping, and the scratch
        #: buffer: the serving layer's worker threads share one store per
        #: open index, and an unguarded ``move_to_end`` racing a ``pop``
        #: corrupts the OrderedDict.  Re-entrant because ``allocate`` may
        #: recycle a page while a caller already holds the lock.
        self._lock = threading.RLock()
        buffer.add_invalidation_listener(self._drop_cache)
        self._page_size = buffer.store.page_size
        # Reusable serialization scratch; only the prefix written by the
        # previous node needs re-zeroing before reuse.
        self._scratch = bytearray(self._page_size)
        self._scratch_used = 0

    # ------------------------------------------------------------------
    # Node cache plumbing
    # ------------------------------------------------------------------

    @property
    def cached_nodes(self) -> int:
        with self._lock:
            return len(self._cache)

    def _drop_cache(self) -> None:
        """Forget every cached node (buffer invalidation / crash sim)."""
        with self._lock:
            self.cache_stats.invalidations += len(self._cache)
            self._cache.clear()

    def _cache_put(self, page_id: int, node: GRNode) -> None:
        cache = self._cache
        cache[page_id] = node
        cache.move_to_end(page_id)
        if len(cache) > self.node_cache_size:
            cache.popitem(last=False)
            self.cache_stats.evictions += 1

    # ------------------------------------------------------------------
    # Page lifecycle
    # ------------------------------------------------------------------

    def allocate(self, leaf: bool, level: int = 0) -> GRNode:
        with self._lock:
            page_id = self.buffer.allocate()
            # Freed ids recycle LIFO: a cached node for the page's previous
            # incarnation must not shadow the fresh (empty) node.
            if self._cache.pop(page_id, None) is not None:
                self.cache_stats.invalidations += 1
            return GRNode(page_id, leaf, level)

    def read(self, page_id: int) -> GRNode:
        with self._lock:
            return self._read_locked(page_id)

    def _read_locked(self, page_id: int) -> GRNode:
        if self.node_cache_size:
            node = self._cache.get(page_id)
            if node is not None:
                self._cache.move_to_end(page_id)
                self.cache_stats.hits += 1
                # Logical (and, on a pool miss, physical) I/O is still
                # accounted at the buffer -- the node cache removes the
                # deserialization, not the page access.
                self.buffer.read(page_id)
                return node
            self.cache_stats.misses += 1
        data = self.buffer.read(page_id)
        leaf, count, level = _NODE_HEADER.unpack_from(data, 0)
        end = _NODE_HEADER.size + count * _ENTRY.size
        body = memoryview(data)[_NODE_HEADER.size : end]
        entries: List[GREntry] = []
        append = entries.append
        if leaf:
            for ttb, tte, vtb, vte, flags, ptr_a, ptr_b in _ENTRY.iter_unpack(body):
                append(
                    GREntry(
                        ttb,
                        UC if tte == _VARIABLE_SENTINEL else tte,
                        vtb,
                        NOW if vte == _VARIABLE_SENTINEL else vte,
                        bool(flags & _FLAG_RECTANGLE),
                        bool(flags & _FLAG_HIDDEN),
                        None,
                        ptr_a,
                        ptr_b,
                    )
                )
        else:
            for ttb, tte, vtb, vte, flags, ptr_a, _ptr_b in _ENTRY.iter_unpack(body):
                append(
                    GREntry(
                        ttb,
                        UC if tte == _VARIABLE_SENTINEL else tte,
                        vtb,
                        NOW if vte == _VARIABLE_SENTINEL else vte,
                        bool(flags & _FLAG_RECTANGLE),
                        bool(flags & _FLAG_HIDDEN),
                        ptr_a,
                    )
                )
        node = GRNode(page_id, bool(leaf), level, entries)
        if self.node_cache_size:
            self._cache_put(page_id, node)
        return node

    def write(self, node: GRNode) -> None:
        with self._lock:
            self._write_locked(node)

    def _write_locked(self, node: GRNode) -> None:
        node.cols = None  # entry timestamps changed: column mirror is stale
        entries = node.entries
        if len(entries) > self.capacity:
            raise ValueError(
                f"node overflow: {len(entries)} entries > capacity "
                f"{self.capacity}"
            )
        buf = self._scratch
        _NODE_HEADER.pack_into(buf, 0, node.leaf, len(entries), node.level)
        offset = _NODE_HEADER.size
        pack_into = _ENTRY.pack_into
        size = _ENTRY.size
        leaf = node.leaf
        for entry in entries:
            flags = (_FLAG_RECTANGLE if entry.rectangle else 0) | (
                _FLAG_HIDDEN if entry.hidden else 0
            )
            tte = entry.tt_end if is_ground(entry.tt_end) else _VARIABLE_SENTINEL
            vte = entry.vt_end if is_ground(entry.vt_end) else _VARIABLE_SENTINEL
            if leaf:
                ptr_a, ptr_b = entry.rowid, entry.fragid
            else:
                ptr_a, ptr_b = entry.child, 0
            pack_into(
                buf, offset,
                entry.tt_begin, tte, entry.vt_begin, vte, flags, ptr_a, ptr_b,
            )
            offset += size
        if offset < self._scratch_used:
            # Zero the residue of a previously larger node so pages stay
            # byte-deterministic (snapshot/diff tests rely on it).
            buf[offset : self._scratch_used] = bytes(self._scratch_used - offset)
        self._scratch_used = offset
        self.buffer.write(node.page_id, bytes(buf))
        if self.node_cache_size:
            self._cache_put(node.page_id, node)

    def free(self, page_id: int) -> None:
        with self._lock:
            if self._cache.pop(page_id, None) is not None:
                self.cache_stats.invalidations += 1
            self.buffer.free(page_id)
