"""Per-opclass specialization and vectorized node-level evaluation.

The paper's DataBlade recipe routes every comparison through dynamically
dispatched purpose functions -- ``grt_getnext`` resolves which strategy
function the qualification names, then evaluates it entry by entry
through :meth:`Predicate.leaf_test`/:meth:`Predicate.internal_test`,
decoding one :class:`~repro.temporal.regions.Region` per entry per test.
That is faithful to Appendix A and unavoidable in C in 1999; in Python
it is the dominant cost of the search and insert hot paths.

This module removes the per-entry work in two layers, in the spirit of
just-in-time index compilation (specialize the index code to the key
type and query *once*, at bind time):

* **Specialized closures.**  :meth:`SpecializedOps.compile_scan` builds,
  per scan, a pair of kernels with the predicate enum branch, the query
  region's coordinates, and the current time already resolved -- hot
  loops do zero dynamic dispatch and zero ``Region`` construction.

* **Vectorized node evaluation.**  A node's entry timestamps are
  mirrored into a contiguous :class:`NodeColumns` array (built lazily on
  first use after deserialization, cached on the :class:`GRNode`, and
  invalidated by :meth:`GRNodeStore.write` -- every tree mutation passes
  through a store write before the operation returns).  The ``UC``/
  ``NOW`` resolution and Hidden-flag adjustment of Section 3, all four
  strategy predicates, the R* insertion penalties, and
  :func:`bound_entries` are then evaluated for a whole node in a few
  numpy calls instead of a Python loop.

Everything here is *bit-exact* against the generic path: integer chronon
arithmetic only, identical tie-breaking (stable argmin = first index
with the smallest key), and identical error behaviour (any entry that
would make the generic path raise routes the whole node back through the
generic path, which raises the same exception).  Trees built with and
without specialization are byte-identical on disk; the equivalence suite
asserts it.

When numpy is unavailable (or ``REPRO_NO_NUMPY`` is set), every entry
point declines by returning ``None`` and the caller runs the paper's
literal call sequence, so the Figure 6 traces are unchanged.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.grtree.entries import GREntry, Predicate
from repro.temporal.chronon import Chronon
from repro.temporal.regions import Region
from repro.temporal.variables import NOW, UC

#: Environment switch forcing the pure-Python fallback even when numpy
#: is importable (CI uses it to prove the fallback path stays green).
NO_NUMPY_ENV = "REPRO_NO_NUMPY"

#: On-array encoding of the variables UC and NOW (matches the on-disk
#: sentinel in :mod:`repro.grtree.node`, but the two never mix).
SENTINEL = 2**62

#: Nodes smaller than this are evaluated by the generic per-entry loop:
#: below it, numpy call overhead exceeds the saved interpretation.
MIN_BATCH = 8


def _load_numpy():
    if os.environ.get(NO_NUMPY_ENV):
        return None
    try:
        import numpy
    except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
        return None
    return numpy


_np = _load_numpy()


def numpy_available() -> bool:
    """Is the vectorized path available in this process?"""
    return _np is not None


# ----------------------------------------------------------------------
# Column mirror of a node's entries
# ----------------------------------------------------------------------


class NodeColumns:
    """A node's entry timestamps as contiguous int64/bool arrays.

    ``tt_end``/``vt_end`` encode ``UC``/``NOW`` as :data:`SENTINEL`.
    Instances are immutable snapshots: any store write drops the cached
    instance from its node, so identity doubles as a version tag (the
    per-scan mask cache keys on it).
    """

    __slots__ = ("n", "tt_begin", "tt_end", "vt_begin", "vt_end",
                 "rectangle", "hidden")

    def __init__(self, entries: Sequence[GREntry], np) -> None:
        n = len(entries)
        tt_begin = [0] * n
        tt_end = [0] * n
        vt_begin = [0] * n
        vt_end = [0] * n
        rectangle = [False] * n
        hidden = [False] * n
        for i, e in enumerate(entries):
            tt_begin[i] = e.tt_begin
            tt_end[i] = SENTINEL if e.tt_end is UC else e.tt_end
            vt_begin[i] = e.vt_begin
            vt_end[i] = SENTINEL if e.vt_end is NOW else e.vt_end
            rectangle[i] = e.rectangle
            hidden[i] = e.hidden
        self.n = n
        self.tt_begin = np.asarray(tt_begin, dtype=np.int64)
        self.tt_end = np.asarray(tt_end, dtype=np.int64)
        self.vt_begin = np.asarray(vt_begin, dtype=np.int64)
        self.vt_end = np.asarray(vt_end, dtype=np.int64)
        self.rectangle = np.asarray(rectangle, dtype=bool)
        self.hidden = np.asarray(hidden, dtype=bool)


def _resolve(np, cols: NodeColumns, now: int):
    """Vectorized Section 3 resolution: regions of all entries at *now*.

    Returns ``(tt_lo, tt_hi, vt_lo, vt_hi, stair, empty)`` arrays.  The
    ``stair`` flag is *uncanonical* (a stair whose diagonal never binds
    keeps the flag) -- every consumer below is flag-canonicalization
    neutral except ``equal``, which re-canonicalizes.  ``empty`` marks
    entries whose region would make :meth:`GREntry.region` raise.
    """
    tt_lo = cols.tt_begin
    tt_hi = np.where(cols.tt_end == SENTINEL, now, cols.tt_end)
    tt_hi = np.maximum(tt_hi, tt_lo)
    vte = cols.vt_end
    # The Hidden-flag adjustment: a ground VTend strictly in the past of
    # a hidden bound is re-read as NOW.
    vte = np.where(cols.hidden & (vte != SENTINEL) & (vte < now), SENTINEL, vte)
    now_rel = vte == SENTINEL
    stair = now_rel & ~cols.rectangle
    vt_hi = np.where(now_rel, tt_hi, vte)
    vt_lo = cols.vt_begin
    empty = vt_lo > vt_hi
    return tt_lo, tt_hi, vt_lo, vt_hi, stair, empty


def _areas(np, tt_lo, tt_hi, vt_lo, vt_hi, stair, empty=None):
    """Vectorized :meth:`Region.area` (integer lattice-cell counts)."""
    width = tt_hi - tt_lo + 1
    height = vt_hi - vt_lo + 1
    total = width * height
    # Stair correction: cells above the vt = tt diagonal.
    t0 = np.maximum(tt_lo, vt_lo)
    t1 = np.minimum(tt_hi, vt_hi - 1)
    n = t1 - t0 + 1
    band = n * vt_hi - (t0 + t1) * n // 2
    total = np.where(stair & (t0 <= t1), total - band, total)
    t_empty_hi = np.minimum(tt_hi, vt_lo - 1)
    empty_cols = (t_empty_hi - tt_lo + 1) * height
    total = np.where(stair & (tt_lo <= t_empty_hi), total - empty_cols, total)
    if empty is not None:
        total = np.where(empty, 0, total)
    return total


def _intersection_areas(np, a, b):
    """Areas of pairwise intersections of two resolved-region tuples.

    *a* and *b* are ``(tt_lo, tt_hi, vt_lo, vt_hi, stair)`` arrays (any
    mutually broadcastable shapes).  Mirrors ``Region.intersection``
    followed by ``.area()``, with empty intersections contributing 0.
    """
    a_ttl, a_tth, a_vtl, a_vth, a_st = a
    b_ttl, b_tth, b_vtl, b_vth, b_st = b
    tt_lo = np.maximum(a_ttl, b_ttl)
    tt_hi = np.minimum(a_tth, b_tth)
    vt_lo = np.maximum(a_vtl, b_vtl)
    vt_hi = np.minimum(a_vth, b_vth)
    stair = a_st | b_st
    empty = (tt_lo > tt_hi) | (vt_lo > vt_hi)
    # Region.make canonicalization for stairs: clip the top to tt_hi.
    vt_hi = np.where(stair, np.minimum(vt_hi, tt_hi), vt_hi)
    empty |= vt_lo > vt_hi
    return _areas(np, tt_lo, tt_hi, vt_lo, vt_hi, stair, empty)


def _union_bounds(np, resolved, region: Region):
    """Vectorized ``r_i.union_bounds(region)``: minimum bounding regions
    of each entry's region with one fixed *region*."""
    tt_lo, tt_hi, vt_lo, vt_hi, stair, _ = resolved
    fits_i = stair | (vt_hi <= tt_lo)
    fits_r = region.stair or region.vt_hi <= region.tt_lo
    u_ttl = np.minimum(tt_lo, region.tt_lo)
    u_tth = np.maximum(tt_hi, region.tt_hi)
    u_vtl = np.minimum(vt_lo, region.vt_lo)
    both_fit = fits_i & fits_r
    u_vth = np.where(both_fit, u_tth, np.maximum(vt_hi, region.vt_hi))
    return u_ttl, u_tth, u_vtl, u_vth, both_fit


# ----------------------------------------------------------------------
# Predicate kernels (the specialized strategy functions)
# ----------------------------------------------------------------------


def _overlaps_mask(np, resolved, q: Region):
    tt_lo, tt_hi, vt_lo, vt_hi, stair, _ = resolved
    ttl = np.maximum(tt_lo, q.tt_lo)
    tth = np.minimum(tt_hi, q.tt_hi)
    # Both top edges are nondecreasing in t: test at the right end.
    ent_top = np.where(stair, np.minimum(vt_hi, tth), vt_hi)
    q_top = np.minimum(q.vt_hi, tth) if q.stair else q.vt_hi
    v_lo = np.maximum(vt_lo, q.vt_lo)
    return (ttl <= tth) & (v_lo <= np.minimum(ent_top, q_top))


def _contains_mask(np, resolved, q: Region):
    """Entries whose region fully contains *q* (piecewise-linear top
    edges: endpoints plus each side's breakpoint suffice)."""
    tt_lo, tt_hi, vt_lo, vt_hi, stair, _ = resolved
    ok = (tt_lo <= q.tt_lo) & (q.tt_hi <= tt_hi) & (vt_lo <= q.vt_lo)
    for t in (q.tt_lo, q.tt_hi):
        ent_at = np.where(stair, np.minimum(vt_hi, t), vt_hi)
        ok &= q.vt_end_at(t) <= ent_at
    if q.stair and q.tt_lo <= q.vt_hi <= q.tt_hi:
        t = q.vt_hi
        ent_at = np.where(stair, np.minimum(vt_hi, t), vt_hi)
        ok &= q.vt_end_at(t) <= ent_at
    # The entry-side breakpoint (per-entry, where it lies in q's range).
    applies = stair & (q.tt_lo <= vt_hi) & (vt_hi <= q.tt_hi)
    q_at = np.minimum(q.vt_hi, vt_hi) if q.stair else q.vt_hi
    ok &= ~applies | (q_at <= vt_hi)
    return ok


def _within_mask(np, resolved, q: Region):
    """Entries whose region lies fully inside *q* (CONTAINED_IN)."""
    tt_lo, tt_hi, vt_lo, vt_hi, stair, _ = resolved
    ok = (q.tt_lo <= tt_lo) & (tt_hi <= q.tt_hi) & (q.vt_lo <= vt_lo)

    def ent_at(t):
        return np.where(stair, np.minimum(vt_hi, t), vt_hi)

    def q_at(t):
        return np.minimum(q.vt_hi, t) if q.stair else q.vt_hi

    ok &= ent_at(tt_lo) <= q_at(tt_lo)
    ok &= ent_at(tt_hi) <= q_at(tt_hi)
    if q.stair:
        applies = (tt_lo <= q.vt_hi) & (q.vt_hi <= tt_hi)
        t = q.vt_hi
        ok &= ~applies | (ent_at(t) <= q_at(t))
    applies = stair & (tt_lo <= vt_hi) & (vt_hi <= tt_hi)
    ok &= ~applies | (vt_hi <= q_at(vt_hi))
    return ok


def _equal_mask(np, resolved, q: Region):
    tt_lo, tt_hi, vt_lo, vt_hi, stair, _ = resolved
    # Canonical instances compare by fields; re-canonicalize the flag.
    stair_c = stair & (vt_hi > tt_lo)
    return (
        (tt_lo == q.tt_lo)
        & (tt_hi == q.tt_hi)
        & (vt_lo == q.vt_lo)
        & (vt_hi == q.vt_hi)
        & (stair_c == q.stair)
    )


_LEAF_KERNELS = {
    Predicate.OVERLAPS: _overlaps_mask,
    Predicate.EQUAL: _equal_mask,
    Predicate.CONTAINS: _contains_mask,
    Predicate.CONTAINED_IN: _within_mask,
}

#: Internal pruning rule per predicate (see Predicate.internal_test).
_INTERNAL_KERNELS = {
    Predicate.OVERLAPS: _overlaps_mask,
    Predicate.EQUAL: _contains_mask,
    Predicate.CONTAINS: _contains_mask,
    Predicate.CONTAINED_IN: _overlaps_mask,
}


# ----------------------------------------------------------------------
# Statistics (pulled by repro.obs)
# ----------------------------------------------------------------------


class SpecStats:
    """Counters for one specialization bundle."""

    __slots__ = (
        "scans_compiled",
        "nodes_batched",
        "nodes_fallback",
        "mask_cache_hits",
        "choices_vectorized",
        "bounds_vectorized",
    )

    def __init__(self) -> None:
        self.scans_compiled = 0
        self.nodes_batched = 0
        self.nodes_fallback = 0
        self.mask_cache_hits = 0
        self.choices_vectorized = 0
        self.bounds_vectorized = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "scans_compiled": self.scans_compiled,
            "nodes_batched": self.nodes_batched,
            "nodes_fallback": self.nodes_fallback,
            "mask_cache_hits": self.mask_cache_hits,
            "choices_vectorized": self.choices_vectorized,
            "bounds_vectorized": self.bounds_vectorized,
        }


# ----------------------------------------------------------------------
# The bundle
# ----------------------------------------------------------------------


class ScanMatcher:
    """Per-scan compiled kernels plus a mask cache keyed on column
    identity (columns are replaced on every store write, so identity is
    a safe version tag for the life of the scan)."""

    __slots__ = ("spec", "leaf_kernel", "internal_kernel", "now", "query",
                 "_leaf_cache", "_internal_cache")

    def __init__(self, spec: "SpecializedOps", predicate: Predicate,
                 query: Region, now: Chronon) -> None:
        self.spec = spec
        self.leaf_kernel = _LEAF_KERNELS[predicate]
        self.internal_kernel = _INTERNAL_KERNELS[predicate]
        self.query = query
        self.now = now
        #: page_id -> (columns instance, computed result).
        self._leaf_cache: Dict[int, Tuple[NodeColumns, List[int]]] = {}
        self._internal_cache: Dict[int, Tuple[NodeColumns, Any]] = {}

    def leaf_matches(self, node) -> Optional[List[int]]:
        """Indices of qualifying leaf entries, or ``None`` to decline
        (generic loop takes over, preserving exact error behaviour)."""
        spec = self.spec
        np = spec.np
        if np is None or len(node.entries) < MIN_BATCH:
            return None
        cols = spec.columns(node)
        cached = self._leaf_cache.get(node.page_id)
        if cached is not None and cached[0] is cols:
            spec.stats.mask_cache_hits += 1
            return cached[1]
        resolved = _resolve(np, cols, self.now)
        if bool(resolved[5].any()):
            spec.stats.nodes_fallback += 1
            return None  # an entry decodes empty: let the generic path raise
        mask = self.leaf_kernel(np, resolved, self.query)
        hits = np.flatnonzero(mask).tolist()
        self._leaf_cache[node.page_id] = (cols, hits)
        spec.stats.nodes_batched += 1
        return hits

    def internal_mask(self, node):
        """Boolean qualification mask over an internal node's entries,
        or ``None`` to decline."""
        spec = self.spec
        np = spec.np
        if np is None or len(node.entries) < MIN_BATCH:
            return None
        cols = spec.columns(node)
        cached = self._internal_cache.get(node.page_id)
        if cached is not None and cached[0] is cols:
            spec.stats.mask_cache_hits += 1
            return cached[1]
        resolved = _resolve(np, cols, self.now)
        if bool(resolved[5].any()):
            spec.stats.nodes_fallback += 1
            return None
        mask = self.internal_kernel(np, resolved, self.query)
        self._internal_cache[node.page_id] = (cols, mask)
        spec.stats.nodes_batched += 1
        return mask


class SpecializedOps:
    """The specialization bundle attached to a :class:`GRTree`.

    Built once per blade handle (``CREATE INDEX`` / ``grt_open``) and
    cached with it -- the blade's ``storage_epoch`` check invalidates
    the handle, the tree, and this bundle together.  Every entry point
    either returns an exact result or ``None`` (caller falls back to the
    generic code path).
    """

    def __init__(self, use_numpy: Optional[bool] = None) -> None:
        if use_numpy is None:
            self.np = _np
        elif use_numpy:
            self.np = _np  # requested but unavailable -> scalar fallback
        else:
            self.np = None
        self.stats = SpecStats()

    @property
    def vectorized(self) -> bool:
        return self.np is not None

    # -- column plumbing ----------------------------------------------

    def columns(self, node) -> NodeColumns:
        """The node's cached column mirror, rebuilt when stale."""
        cols = node.cols
        if cols is not None and cols.n == len(node.entries):
            return cols
        cols = NodeColumns(node.entries, self.np)
        node.cols = cols
        return cols

    # -- scan compilation ---------------------------------------------

    def compile_scan(self, predicate: Predicate, query: Region,
                     now: Chronon) -> ScanMatcher:
        """Close the predicate, query, and current time into kernels."""
        self.stats.scans_compiled += 1
        return ScanMatcher(self, predicate, query, now)

    # -- insertion penalties ------------------------------------------

    def least_area_enlargement(self, node, region: Region,
                               t: Chronon) -> Optional[int]:
        """Index of the entry with the R* least-area-enlargement key,
        or ``None`` to decline."""
        np = self.np
        if np is None or len(node.entries) < MIN_BATCH:
            return None
        resolved = _resolve(np, self.columns(node), t)
        if bool(resolved[5].any()):
            self.stats.nodes_fallback += 1
            return None
        tt_lo, tt_hi, vt_lo, vt_hi, stair, _ = resolved
        areas = _areas(np, tt_lo, tt_hi, vt_lo, vt_hi, stair)
        u_ttl, u_tth, u_vtl, u_vth, u_stair = _union_bounds(np, resolved, region)
        union_areas = _areas(np, u_ttl, u_tth, u_vtl, u_vth, u_stair)
        self.stats.choices_vectorized += 1
        # Stable lexsort: first index among minimal (delta, area) keys,
        # matching the generic loop's strict-< scan.
        return int(np.lexsort((areas, union_areas - areas))[0])

    def least_overlap_enlargement(self, node, region: Region,
                                  t: Chronon) -> Optional[int]:
        """Index of the entry with the R* least-overlap-enlargement key
        (overlap delta, area delta, area), or ``None`` to decline."""
        np = self.np
        if np is None or len(node.entries) < MIN_BATCH:
            return None
        resolved = _resolve(np, self.columns(node), t)
        if bool(resolved[5].any()):
            self.stats.nodes_fallback += 1
            return None
        tt_lo, tt_hi, vt_lo, vt_hi, stair, _ = resolved
        areas = _areas(np, tt_lo, tt_hi, vt_lo, vt_hi, stair)
        u_ttl, u_tth, u_vtl, u_vth, u_stair = _union_bounds(np, resolved, region)
        union_areas = _areas(np, u_ttl, u_tth, u_vtl, u_vth, u_stair)

        cols = (tt_lo[:, None], tt_hi[:, None], vt_lo[:, None],
                vt_hi[:, None], stair[:, None])
        rows = (tt_lo[None, :], tt_hi[None, :], vt_lo[None, :],
                vt_hi[None, :], stair[None, :])
        before = _intersection_areas(np, cols, rows)
        enlarged = (u_ttl[:, None], u_tth[:, None], u_vtl[:, None],
                    u_vth[:, None], u_stair[:, None])
        after = _intersection_areas(np, enlarged, rows)
        delta = after - before
        np.fill_diagonal(delta, 0)
        overlap_delta = delta.sum(axis=1)
        self.stats.choices_vectorized += 1
        return int(np.lexsort((areas, union_areas - areas, overlap_delta))[0])

    # -- bounding ------------------------------------------------------

    def bound(self, entries: Sequence[GREntry], now: Chronon,
              node=None) -> Optional[GREntry]:
        """Vectorized :func:`bound_entries`, or ``None`` to decline.

        Bit-exact: same timestamps, same ``Rectangle``/``Hidden`` flags,
        and the same ``ValueError`` (via fallback) on a ground ``TTend``
        beyond the current time.
        """
        np = self.np
        if np is None or len(entries) < MIN_BATCH:
            return None
        if node is not None and node.entries is entries:
            cols = self.columns(node)
        else:
            cols = NodeColumns(entries, np)
        ground_tte = cols.tt_end != SENTINEL
        if bool((ground_tte & (cols.tt_end > now)).any()):
            return None  # generic bound_entries raises the documented error
        tt_begin = int(cols.tt_begin.min())
        vt_begin = int(cols.vt_begin.min())
        any_growing = bool((~ground_tte).any())
        tt_end = UC if any_growing else int(cols.tt_end.max())
        now_rel = cols.vt_end == SENTINEL
        fits_forever = ~cols.hidden & np.where(
            now_rel, ~cols.rectangle, cols.vt_end <= cols.tt_begin
        )
        self.stats.bounds_vectorized += 1
        if bool(fits_forever.all()):
            return GREntry(tt_begin, tt_end, vt_begin, NOW, rectangle=False)
        unbounded = bool(((~ground_tte) & (now_rel | cols.hidden)).any())
        has_top = ~(now_rel & ~ground_tte)
        top_val = np.where(now_rel, cols.tt_end, cols.vt_end)
        max_fixed = int(top_val[has_top].max()) if bool(has_top.any()) else None
        if unbounded:
            if max_fixed is not None and max_fixed > now:
                return GREntry(tt_begin, tt_end, vt_begin, max_fixed,
                               rectangle=True, hidden=True)
            return GREntry(tt_begin, tt_end, vt_begin, NOW, rectangle=True)
        assert max_fixed is not None
        latent = bool(cols.hidden.any())
        return GREntry(tt_begin, tt_end, vt_begin, max_fixed,
                       rectangle=True, hidden=latent)


__all__ = [
    "MIN_BATCH",
    "NO_NUMPY_ENV",
    "NodeColumns",
    "ScanMatcher",
    "SENTINEL",
    "SpecStats",
    "SpecializedOps",
    "numpy_available",
]
