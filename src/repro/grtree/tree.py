"""The GR-tree proper: R*-based algorithms over growing regions.

The algorithms follow the R*-tree skeleton (ChooseSubtree, forced
reinsertion, topological split, condensation on deletion), with three
GR-specific modifications from Section 3 of the paper:

* all geometry is evaluated through the ``UC``/``NOW`` resolution and
  Hidden-flag adjustment algorithms, so regions and bounds *grow*;
* parent entries store four timestamps plus the ``Rectangle``/``Hidden``
  flags computed by :func:`repro.grtree.entries.bound_entries`, never
  materialized coordinates;
* insertion penalties are evaluated at ``now + time_horizon``, the
  paper's "time parameter capturing the development over time of
  entries": a growing region is charged for the space it is *going to*
  occupy, not just the space it occupies today.

Deletions implement the Section 5.5 compromise: an open scan cursor is
restarted only when the tree was actually condensed.
"""

from __future__ import annotations

import math
import struct
from typing import Dict, Iterable, List, Optional, Tuple

from repro.grtree.cursor import Cursor
from repro.grtree.entries import (
    GREntry,
    Predicate,
    bound_entries,
    same_timestamps,
)
from repro.grtree.node import GRNode, GRNodeStore
from repro.temporal.chronon import Chronon, Clock
from repro.temporal.extent import TimeExtent
from repro.temporal.regions import Region, bounding_region
from repro.temporal.variables import UC

#: Meta-page layout: magic, root page id, height, size, time horizon.
_META = struct.Struct("<4sqqqq")
_META_MAGIC = b"GRT1"


class GRTree:
    """A GR-tree over a :class:`~repro.grtree.node.GRNodeStore`.

    Use :meth:`create` for a new index (reserves a meta page so the tree
    can be reopened from the same storage with :meth:`open`, which is what
    the DataBlade's ``grt_create``/``grt_open`` purpose functions do).
    """

    def __init__(
        self,
        store: GRNodeStore,
        clock: Clock,
        time_horizon: int = 20,
        min_fill: float = 0.4,
        reinsert_fraction: float = 0.3,
        meta_page: Optional[int] = None,
        root_id: Optional[int] = None,
        height: int = 1,
        size: int = 0,
        obs=None,
        spec=None,
    ) -> None:
        self.store = store
        self.clock = clock
        #: Optional observability hub; ``None`` keeps the hot paths at a
        #: single attribute test (the benchmarked configuration).
        self.obs = obs
        #: Optional :class:`~repro.grtree.specialize.SpecializedOps`
        #: bundle; ``None`` runs the paper's literal per-entry call
        #: sequence everywhere.  The bundle only ever *replaces* work
        #: with bit-exact vectorized equivalents (or declines with
        #: ``None``), so toggling it mid-life is safe.
        self.spec = spec
        self.time_horizon = time_horizon
        self.max_entries = store.capacity
        self.min_entries = max(2, math.ceil(store.capacity * min_fill))
        self.reinsert_count = max(1, int(store.capacity * reinsert_fraction))
        self.meta_page = meta_page
        if root_id is None:
            root = store.allocate(leaf=True, level=0)
            store.write(root)
            root_id = root.page_id
        self.root_id = root_id
        self.height = height
        self.size = size
        self.last_node_accesses = 0
        #: Incremented whenever the tree condenses; cursors watch this.
        self.condense_version = 0
        #: Whether the most recent deletion condensed the tree.
        self.condensed = False
        self._reinserted_levels: set[int] = set()

    # ------------------------------------------------------------------
    # Creation / reopening (persistent meta page)
    # ------------------------------------------------------------------

    @classmethod
    def create(cls, store: GRNodeStore, clock: Clock, **kwargs) -> "GRTree":
        meta_page = store.buffer.allocate()
        tree = cls(store, clock, meta_page=meta_page, **kwargs)
        tree._write_meta()
        return tree

    @classmethod
    def open(cls, store: GRNodeStore, clock: Clock, meta_page: int = 0) -> "GRTree":
        data = store.buffer.read(meta_page)
        try:
            magic, root_id, height, size, horizon = _META.unpack_from(data, 0)
        except struct.error as exc:
            raise ValueError("storage does not contain a GR-tree") from exc
        if magic != _META_MAGIC:
            raise ValueError("storage does not contain a GR-tree")
        return cls(
            store,
            clock,
            time_horizon=horizon,
            meta_page=meta_page,
            root_id=root_id,
            height=height,
            size=size,
        )

    def _write_meta(self) -> None:
        if self.meta_page is None:
            return
        self.store.buffer.write(
            self.meta_page,
            _META.pack(
                _META_MAGIC, self.root_id, self.height, self.size, self.time_horizon
            ),
        )

    @property
    def now(self) -> Chronon:
        return self.clock.now

    @property
    def _eval_time(self) -> Chronon:
        """The time at which insertion penalties are evaluated."""
        return self.now + self.time_horizon

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------

    def insert(self, extent: TimeExtent, rowid: int, fragid: int = 0) -> None:
        """Index a data tuple's time extent."""
        if self.obs is not None:
            self.obs.inc("grtree.inserts")
        self._reinserted_levels = set()
        self._insert_entry(GREntry.from_extent(extent, rowid, fragid), level=0)
        self.size += 1
        self._write_meta()

    def _insert_entry(self, entry: GREntry, level: int) -> None:
        path = self._choose_path(entry, level)
        path[-1].entries.append(entry)
        self._propagate_up(path)

    def _choose_path(self, entry: GREntry, target_level: int) -> List[GRNode]:
        path = [self.store.read(self.root_id)]
        region = entry.region(self._eval_time)
        while path[-1].level > target_level:
            node = path[-1]
            index = self._choose_subtree(node, region)
            path.append(self.store.read(node.entries[index].child))
        return path

    def _choose_subtree(self, node: GRNode, region: Region) -> int:
        if node.level == 1:
            return self._least_overlap_enlargement(node, region)
        return self._least_area_enlargement(node, region)

    def _least_area_enlargement(self, node: GRNode, region: Region) -> int:
        t = self._eval_time
        if self.spec is not None:
            best = self.spec.least_area_enlargement(node, region, t)
            if best is not None:
                return best
        best, best_key = 0, None
        for i, entry in enumerate(node.entries):
            r = entry.region(t)
            key = (r.union_bounds(region).area() - r.area(), r.area())
            if best_key is None or key < best_key:
                best, best_key = i, key
        return best

    def _least_overlap_enlargement(self, node: GRNode, region: Region) -> int:
        t = self._eval_time
        if self.spec is not None:
            best = self.spec.least_overlap_enlargement(node, region, t)
            if best is not None:
                return best
        regions = [e.region(t) for e in node.entries]
        n = len(regions)
        areas = [r.area() for r in regions]
        # Pairwise overlaps before enlargement, computed once over the
        # upper triangle instead of per candidate (the matrix is
        # symmetric; the old loop recomputed every intersection for
        # every candidate i).
        before_sum = [0] * n
        for i in range(n):
            r_i = regions[i]
            for j in range(i + 1, n):
                inter = r_i.intersection(regions[j])
                if inter is not None:
                    a = inter.area()
                    before_sum[i] += a
                    before_sum[j] += a
        best, best_key = 0, None
        for i, r in enumerate(regions):
            enlarged = r.union_bounds(region)
            after_sum = 0
            for j, other in enumerate(regions):
                if j == i:
                    continue
                after = enlarged.intersection(other)
                if after is not None:
                    after_sum += after.area()
            key = (
                after_sum - before_sum[i],
                enlarged.area() - areas[i],
                areas[i],
            )
            if best_key is None or key < best_key:
                best, best_key = i, key
        return best

    # ------------------------------------------------------------------
    # Overflow treatment
    # ------------------------------------------------------------------

    def _propagate_up(self, path: List[GRNode]) -> None:
        for depth in range(len(path) - 1, -1, -1):
            node = path[depth]
            if len(node.entries) > self.max_entries:
                if depth > 0 and node.level not in self._reinserted_levels:
                    self._reinserted_levels.add(node.level)
                    self._force_reinsert(path, depth)
                    return
                self._split(path, depth)
                if depth > 0:
                    continue
                return
            self.store.write(node)
            if depth > 0:
                self._refresh_child_bound(path[depth - 1], node)

    def _bound(self, node: GRNode) -> GREntry:
        """Bounding entry for *node*'s entries at the current time."""
        if self.spec is not None:
            bound = self.spec.bound(node.entries, self.now, node=node)
            if bound is not None:
                return bound
        return bound_entries(node.entries, self.now)

    def _refresh_child_bound(self, parent: GRNode, child: GRNode) -> None:
        bound = self._bound(child)
        for i, entry in enumerate(parent.entries):
            if entry.child == child.page_id:
                bound.child = child.page_id
                parent.entries[i] = bound
                return
        raise RuntimeError(
            f"child {child.page_id} not found in parent {parent.page_id}"
        )

    def _force_reinsert(self, path: List[GRNode], depth: int) -> None:
        node = path[depth]
        t = self._eval_time
        bound = bounding_region([e.region(t) for e in node.entries])
        center_t = (bound.tt_lo + bound.tt_hi) / 2
        center_v = (bound.vt_lo + bound.vt_hi) / 2

        def distance(entry: GREntry) -> float:
            r = entry.region(t)
            return ((r.tt_lo + r.tt_hi) / 2 - center_t) ** 2 + (
                (r.vt_lo + r.vt_hi) / 2 - center_v
            ) ** 2

        node.entries.sort(key=distance, reverse=True)
        evicted = node.entries[: self.reinsert_count]
        node.entries = node.entries[self.reinsert_count :]
        self.store.write(node)
        for d in range(depth - 1, -1, -1):
            self._refresh_child_bound(path[d], path[d + 1])
            self.store.write(path[d])
        for entry in reversed(evicted):
            self._insert_entry(entry, node.level)

    def _split(self, path: List[GRNode], depth: int) -> None:
        node = path[depth]
        group_a, group_b = self._choose_split(node.entries)
        node.entries = group_a
        sibling = self.store.allocate(leaf=node.leaf, level=node.level)
        sibling.entries = group_b
        self.store.write(node)
        self.store.write(sibling)
        if depth == 0:
            new_root = self.store.allocate(leaf=False, level=node.level + 1)
            bound_a = self._bound(node)
            bound_a.child = node.page_id
            bound_b = self._bound(sibling)
            bound_b.child = sibling.page_id
            new_root.entries = [bound_a, bound_b]
            self.store.write(new_root)
            self.root_id = new_root.page_id
            self.height += 1
            self._write_meta()
            return
        parent = path[depth - 1]
        self._refresh_child_bound(parent, node)
        bound_b = self._bound(sibling)
        bound_b.child = sibling.page_id
        parent.entries.append(bound_b)

    def _choose_split(
        self, entries: List[GREntry]
    ) -> Tuple[List[GREntry], List[GREntry]]:
        """R* topological split on the regions at the evaluation time."""
        m = self.min_entries
        t = self._eval_time
        decorated = [(e, e.region(t)) for e in entries]

        axis_keys = {
            "tt": lambda pair: (pair[1].tt_lo, pair[1].tt_hi),
            "tt_hi": lambda pair: (pair[1].tt_hi, pair[1].tt_lo),
            "vt": lambda pair: (pair[1].vt_lo, pair[1].vt_hi),
            "vt_hi": lambda pair: (pair[1].vt_hi, pair[1].vt_lo),
        }
        axes = {"tt": ("tt", "tt_hi"), "vt": ("vt", "vt_hi")}

        best_axis, best_margin = "tt", None
        for axis, sort_names in axes.items():
            margin = 0
            for name in sort_names:
                ordered = sorted(decorated, key=axis_keys[name])
                for k in range(m, len(ordered) - m + 1):
                    left = bounding_region([r for _, r in ordered[:k]])
                    right = bounding_region([r for _, r in ordered[k:]])
                    margin += left.margin() + right.margin()
            if best_margin is None or margin < best_margin:
                best_axis, best_margin = axis, margin

        best_split, best_key = None, None
        for name in axes[best_axis]:
            ordered = sorted(decorated, key=axis_keys[name])
            for k in range(m, len(ordered) - m + 1):
                left = bounding_region([r for _, r in ordered[:k]])
                right = bounding_region([r for _, r in ordered[k:]])
                inter = left.intersection(right)
                key = (
                    inter.area() if inter else 0,
                    left.area() + right.area(),
                )
                if best_key is None or key < best_key:
                    best_key = key
                    best_split = (
                        [e for e, _ in ordered[:k]],
                        [e for e, _ in ordered[k:]],
                    )
        assert best_split is not None
        return best_split

    # ------------------------------------------------------------------
    # Deletion and condensation (Section 5.5)
    # ------------------------------------------------------------------

    def delete(self, extent: TimeExtent, rowid: int, fragid: int = 0) -> bool:
        """Remove a leaf entry; condense underfull nodes."""
        if self.obs is not None:
            self.obs.inc("grtree.deletes")
        self.condensed = False
        target = GREntry.from_extent(extent, rowid, fragid)
        found = self._find_leaf_path(
            self.store.read(self.root_id), target, []
        )
        if found is None:
            return False
        path, index = found
        del path[-1].entries[index]
        self.size -= 1
        self._condense(path)
        self._shrink_root()
        self._write_meta()
        return True

    def _find_leaf_path(
        self, node: GRNode, target: GREntry, path: List[GRNode]
    ) -> Optional[Tuple[List[GRNode], int]]:
        path = path + [node]
        if node.leaf:
            for i, entry in enumerate(node.entries):
                if (
                    entry.rowid == target.rowid
                    and entry.fragid == target.fragid
                    and same_timestamps(entry, target)
                ):
                    return path, i
            return None
        target_region = target.region(self.now)
        for entry in node.entries:
            if entry.region(self.now).contains(target_region):
                result = self._find_leaf_path(
                    self.store.read(entry.child), target, path
                )
                if result is not None:
                    return result
        return None

    def _condense(self, path: List[GRNode]) -> None:
        orphans: List[Tuple[GREntry, int]] = []
        for depth in range(len(path) - 1, 0, -1):
            node = path[depth]
            parent = path[depth - 1]
            if len(node.entries) < self.min_entries:
                parent.entries = [
                    e for e in parent.entries if e.child != node.page_id
                ]
                orphans.extend((entry, node.level) for entry in node.entries)
                self.store.free(node.page_id)
                self.condensed = True
            else:
                self.store.write(node)
                self._refresh_child_bound(parent, node)
        self.store.write(path[0])
        if self.condensed:
            self.condense_version += 1
            if self.obs is not None:
                self.obs.inc("grtree.condenses")
        for entry, level in sorted(orphans, key=lambda pair: pair[1]):
            self._reinserted_levels = set()
            self._insert_entry(entry, level)

    def _shrink_root(self) -> None:
        root = self.store.read(self.root_id)
        changed = False
        while not root.leaf and len(root.entries) == 1:
            child_id = root.entries[0].child
            self.store.free(root.page_id)
            self.root_id = child_id
            self.height -= 1
            root = self.store.read(child_id)
            changed = True
        if changed:
            self.condense_version += 1
            self.condensed = True

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def search(
        self,
        query: TimeExtent,
        predicate: Predicate = Predicate.OVERLAPS,
        now: Optional[Chronon] = None,
    ) -> Cursor:
        """Open a cursor over entries satisfying *predicate* vs *query*.

        *now* defaults to the clock; the server layer passes the time it
        sampled when the index was opened (Section 5.4).
        """
        if self.obs is not None:
            self.obs.inc("grtree.searches")
        at = self.now if now is None else now
        return Cursor(self, query.region(at), predicate, at)

    def search_all(
        self,
        query: TimeExtent,
        predicate: Predicate = Predicate.OVERLAPS,
        now: Optional[Chronon] = None,
    ) -> List[Tuple[int, int]]:
        """Drain a search into (rowid, fragid) pairs, recording I/O."""
        cursor = self.search(query, predicate, now)
        results = [(e.rowid, e.fragid) for e in cursor.fetch_all()]
        self.last_node_accesses = cursor.node_accesses
        return results

    # ------------------------------------------------------------------
    # Introspection, integrity, statistics
    # ------------------------------------------------------------------

    def iter_nodes(self) -> Iterable[GRNode]:
        stack = [self.root_id]
        while stack:
            node = self.store.read(stack.pop())
            yield node
            if not node.leaf:
                stack.extend(e.child for e in node.entries)

    def node_count(self) -> int:
        return sum(1 for _ in self.iter_nodes())

    def check(self, horizon: int = 50) -> None:
        """Verify GR-tree invariants (the ``am_check`` contract).

        Containment is checked both now and at ``now + horizon`` so that
        growing children outpacing their bounds (the Hidden-flag hazard)
        is caught, not just today's geometry.
        """
        leaf_entries = 0
        times = (self.now, self.now + horizon)
        for node in self.iter_nodes():
            if node.page_id != self.root_id and len(node.entries) < self.min_entries:
                raise AssertionError(
                    f"node {node.page_id} underfull: {len(node.entries)}"
                )
            if len(node.entries) > self.max_entries:
                raise AssertionError(f"node {node.page_id} overfull")
            if node.leaf:
                if node.level != 0:
                    raise AssertionError("leaf node with nonzero level")
                leaf_entries += len(node.entries)
                continue
            for entry in node.entries:
                child = self.store.read(entry.child)
                if child.level != node.level - 1:
                    raise AssertionError("level mismatch between parent and child")
                for t in times:
                    bound = entry.region(t)
                    for child_entry in child.entries:
                        if not bound.contains(child_entry.region(t)):
                            raise AssertionError(
                                f"bound {entry} does not contain child "
                                f"{child_entry} at time {t}"
                            )
        if leaf_entries != self.size:
            raise AssertionError(
                f"size mismatch: counted {leaf_entries}, recorded {self.size}"
            )

    def scan_cost(self, query: TimeExtent, now: Optional[Chronon] = None) -> float:
        """Estimated page reads for a scan (the ``am_scancost`` input).

        Height plus the expected number of leaves touched, estimated from
        the query area's share of the root bound's area.
        """
        at = self.now if now is None else now
        root = self.store.read(self.root_id)
        if not root.entries:
            return 1.0
        leaves = max(1, self.size // max(1, self.max_entries // 2))
        root_bound = bounding_region([e.region(at) for e in root.entries])
        query_region = query.region(at)
        inter = root_bound.intersection(query_region)
        selectivity = 0.0 if inter is None else inter.area() / root_bound.area()
        return self.height + selectivity * leaves

    def stats(self) -> Dict[str, float]:
        nodes = list(self.iter_nodes())
        return {
            "height": self.height,
            "size": self.size,
            "nodes": len(nodes),
            "leaves": sum(1 for n in nodes if n.leaf),
            "avg_fill": (
                sum(len(n.entries) for n in nodes) / (len(nodes) * self.max_entries)
                if nodes
                else 0.0
            ),
        }

    def quality(self, now: Optional[Chronon] = None) -> Dict[str, float]:
        """Tree 'goodness' metrics: dead space and sibling overlap at a
        time (the Figure 3 criteria the GR-tree is designed to minimize).
        """
        from repro.temporal.regions import union_area

        at = self.now if now is None else now
        dead = 0
        overlap = 0
        for node in self.iter_nodes():
            if node.leaf or not node.entries:
                continue
            regions = [e.region(at) for e in node.entries]
            bound = bounding_region(regions)
            dead += bound.area() - union_area(regions)
            for i, a in enumerate(regions):
                for b in regions[i + 1 :]:
                    inter = a.intersection(b)
                    if inter is not None:
                        overlap += inter.area()
        return {"dead_space": float(dead), "sibling_overlap": float(overlap)}

    def dump(self, now: Optional[Chronon] = None) -> str:
        """Human-readable tree structure (the Figure 5 rendering)."""
        at = self.now if now is None else now
        lines: List[str] = []

        def visit(page_id: int, indent: int) -> None:
            node = self.store.read(page_id)
            kind = "leaf" if node.leaf else "node"
            lines.append(
                "  " * indent + f"{kind} {page_id} (level {node.level}):"
            )
            for entry in node.entries:
                lines.append(
                    "  " * (indent + 1)
                    + f"{entry} -> {entry.region(at)}"
                )
                if entry.child is not None:
                    visit(entry.child, indent + 2)

        visit(self.root_id, 0)
        return "\n".join(lines)
