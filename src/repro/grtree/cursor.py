"""The GR-tree scan cursor.

Appendix A of the paper: ``Tree.search()`` creates a ``Cursor`` storing
the query predicate and tree-traversal information; qualifying entries
are retrieved one at a time with ``next()`` (the ``grt_getnext()`` purpose
function returns one qualifying row per call).

Section 5.5's deletion compromise lives here too: the cursor keeps the
traversal state across calls and is *restarted* -- not discarded -- when
the tree is condensed underneath it.  After a restart, entries already
returned are skipped, so a retrieve-and-delete loop neither misses nor
repeats entries.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.grtree.entries import GREntry, Predicate
from repro.temporal.chronon import Chronon
from repro.temporal.regions import Region


class Cursor:
    """A resumable depth-first scan of a GR-tree."""

    def __init__(
        self,
        tree,  # GRTree; untyped to avoid the circular import
        query: Region,
        predicate: Predicate,
        now: Chronon,
    ) -> None:
        self.tree = tree
        self.query = query
        self.predicate = predicate
        self.now = now
        # Specialize the scan: close predicate, query, and current time
        # into batch kernels once, here, instead of dispatching through
        # Predicate per entry per next().  ``None`` (no bundle, or numpy
        # unavailable) keeps the paper's literal call sequence below.
        spec = getattr(tree, "spec", None)
        if spec is not None and spec.vectorized:
            self._matcher = spec.compile_scan(predicate, query, now)
        else:
            self._matcher = None
        self._seen_version = tree.condense_version
        self._returned: Set[Tuple[int, int]] = set()
        self._visited: Set[int] = set()
        self._exhausted = False
        # Stack of (page_id, next entry index to look at).
        self._stack: List[Tuple[int, int]] = [(tree.root_id, 0)]

    @property
    def node_accesses(self) -> int:
        """Distinct nodes visited by this cursor so far."""
        return len(self._visited)

    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Restart the scan from the root (the ``grt_rescan`` semantics).

        Forgets which entries were already returned -- a rescan is a new
        scan of the same qualification.
        """
        self._stack = [(self.tree.root_id, 0)]
        self._returned.clear()
        self._exhausted = False
        self._seen_version = self.tree.condense_version

    def restart_keeping_history(self) -> None:
        """Restart traversal but keep skipping already-returned entries.

        Used after the tree condensed underneath the cursor (Section 5.5):
        saved traversal state is useless, but re-returning entries would
        make the caller's delete loop spin.
        """
        self._stack = [(self.tree.root_id, 0)]
        self._exhausted = False
        self._seen_version = self.tree.condense_version

    def _ensure_fresh(self) -> None:
        if self._seen_version != self.tree.condense_version:
            self.restart_keeping_history()

    # ------------------------------------------------------------------

    def next(self) -> Optional[GREntry]:
        """Return the next qualifying leaf entry, or ``None`` at the end."""
        self._ensure_fresh()
        if self._exhausted:
            return None
        while self._stack:
            page_id, index = self._stack.pop()
            node = self.tree.store.read(page_id)
            self._visited.add(page_id)
            matcher = self._matcher
            if node.leaf:
                # Leaves are always rescanned from the top: a deletion
                # between next() calls may have shifted the entry slots,
                # and the returned-set makes the rescan skip-correct.
                matches = None if matcher is None else matcher.leaf_matches(node)
                if matches is not None:
                    # Batched qualification; the per-scan mask cache makes
                    # the repeated top-of-leaf rescans nearly free.
                    entries = node.entries
                    for i in matches:
                        entry = entries[i]
                        key = (entry.rowid, entry.fragid)
                        if key in self._returned:
                            continue
                        self._returned.add(key)
                        self._stack.append((page_id, 0))
                        return entry
                    continue
                for entry in node.entries:
                    if not self.predicate.leaf_test(
                        entry.region(self.now), self.query
                    ):
                        continue
                    key = (entry.rowid, entry.fragid)
                    if key in self._returned:
                        continue
                    self._returned.add(key)
                    self._stack.append((page_id, 0))
                    return entry
                continue
            mask = None if matcher is None else matcher.internal_mask(node)
            descended = False
            while index < len(node.entries):
                entry = node.entries[index]
                index += 1
                if mask is not None:
                    qualifies = bool(mask[index - 1])
                else:
                    qualifies = self.predicate.internal_test(
                        entry.region(self.now), self.query
                    )
                if qualifies:
                    # Remember where to resume in this node, then descend.
                    self._stack.append((page_id, index))
                    self._stack.append((entry.child, 0))
                    descended = True
                    break
            if descended:
                continue
        self._exhausted = True
        return None

    def fetch_all(self) -> List[GREntry]:
        """Drain the cursor (convenience for tests and benchmarks)."""
        results = []
        while True:
            entry = self.next()
            if entry is None:
                return results
            results.append(entry)
