"""Structural invariant verification for recovered GR-trees.

:meth:`GRTree.check` is the quick ``am_check`` contract; this module is
the adversarial version the crash-consistency harness runs against a
tree rebuilt by WAL replay.  It never raises on the first problem --
it walks the whole structure and reports *every* violation, because a
recovery bug rarely breaks exactly one invariant.

Checked invariants:

* **reachability** -- every page the store considers live is reachable
  from the root (no orphans leaked by a crashed split/condense), every
  child pointer resolves, no page is referenced twice, no cycles;
* **shape** -- leaves exactly at level 0, child level = parent level-1,
  uniform height matching ``tree.height``;
* **entry counts** -- non-root nodes within ``[min_entries,
  max_entries]``, the root within ``[2, max_entries]`` when internal;
* **MBR containment** -- every parent bound contains every child region
  at the current time *and* at ``now + horizon`` (growing children must
  not outgrow their bounds);
* **stair-shape validity** -- every entry decodes to a non-empty region,
  ground timestamp pairs are ordered, the Hidden flag only appears on
  fixed-top rectangles, leaf entries carry no internal-only flags and
  a rowid instead of a child pointer;
* **entry count vs size** -- leaf entries sum to ``tree.size``.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.temporal.variables import is_ground


class TreeInvariantError(AssertionError):
    """The tree violates structural invariants; one message per line."""

    def __init__(self, violations: List[str]) -> None:
        self.violations = violations
        super().__init__(
            f"{len(violations)} GR-tree invariant violation(s):\n  "
            + "\n  ".join(violations)
        )


def _live_page_ids(store) -> Optional[Set[int]]:
    """The ids the page store considers allocated, if it can tell us.

    Unwraps checksum wrappers; stores that cannot enumerate (a raw OS
    file) return ``None`` and orphan detection degrades to a count
    comparison against ``page_count``.
    """
    while hasattr(store, "inner"):
        store = store.inner
    pages = getattr(store, "_pages", None)
    if isinstance(pages, dict):
        return set(pages)
    return None


def check_tree(tree, horizon: int = 50) -> List[str]:
    """Walk *tree* and return every invariant violation found."""
    violations: List[str] = []
    now = tree.now
    times = (now, now + horizon)
    visited: Set[int] = set()
    leaf_entries = 0

    def visit(page_id: int, expected_level: Optional[int]) -> None:
        nonlocal leaf_entries
        if page_id in visited:
            violations.append(f"page {page_id} referenced more than once")
            return
        visited.add(page_id)
        try:
            node = tree.store.read(page_id)
        except Exception as exc:
            violations.append(f"page {page_id} unreadable: {exc}")
            return
        if expected_level is not None and node.level != expected_level:
            violations.append(
                f"page {page_id} at level {node.level}, expected {expected_level}"
            )
        if node.leaf != (node.level == 0):
            violations.append(
                f"page {page_id}: leaf flag {node.leaf} at level {node.level}"
            )
        if page_id != tree.root_id and len(node.entries) < tree.min_entries:
            violations.append(
                f"page {page_id} underfull: {len(node.entries)} < {tree.min_entries}"
            )
        if page_id == tree.root_id and not node.leaf and len(node.entries) < 2:
            violations.append(
                f"internal root {page_id} has {len(node.entries)} entries"
            )
        if len(node.entries) > tree.max_entries:
            violations.append(
                f"page {page_id} overfull: {len(node.entries)} > {tree.max_entries}"
            )
        for i, entry in enumerate(node.entries):
            where = f"page {page_id} entry {i}"
            _check_entry_shape(entry, node.leaf, where, now, violations)
            if node.leaf:
                continue
            if entry.child is None:
                continue  # shape check already flagged it
            try:
                child = tree.store.read(entry.child)
            except Exception as exc:
                violations.append(f"{where}: child {entry.child} unreadable: {exc}")
                continue
            for t in times:
                try:
                    bound = entry.region(t)
                except ValueError:
                    break  # shape check already flagged the bound
                for j, child_entry in enumerate(child.entries):
                    try:
                        child_region = child_entry.region(t)
                    except ValueError:
                        continue  # flagged when the child node is visited
                    if not bound.contains(child_region):
                        violations.append(
                            f"{where}: bound does not contain child "
                            f"{entry.child} entry {j} at time {t}"
                        )
        if node.leaf:
            leaf_entries += len(node.entries)
        else:
            for entry in node.entries:
                if entry.child is not None:
                    visit(entry.child, node.level - 1)

    visit(tree.root_id, tree.height - 1)

    if leaf_entries != tree.size:
        violations.append(
            f"size mismatch: counted {leaf_entries} leaf entries, "
            f"meta records {tree.size}"
        )

    reachable = set(visited)
    if tree.meta_page is not None:
        reachable.add(tree.meta_page)
    live = _live_page_ids(tree.store.buffer.store)
    if live is not None:
        orphans = live - reachable
        if orphans:
            violations.append(f"orphan pages not reachable from root: {sorted(orphans)}")
        dangling = reachable - live
        if dangling:
            violations.append(f"reachable pages not allocated: {sorted(dangling)}")
    else:
        count = tree.store.buffer.store.page_count
        if count != len(reachable):
            violations.append(
                f"page accounting mismatch: store holds {count} pages, "
                f"{len(reachable)} reachable from root"
            )
    return violations


def _check_entry_shape(
    entry, leaf: bool, where: str, now, violations: List[str]
) -> None:
    """Per-entry stair-shape and pointer validity."""
    if leaf:
        if entry.rowid is None:
            violations.append(f"{where}: leaf entry without a rowid")
        if entry.child is not None:
            violations.append(f"{where}: leaf entry with a child pointer")
        if entry.rectangle or entry.hidden:
            violations.append(f"{where}: leaf entry carries internal flags")
    else:
        if entry.child is None:
            violations.append(f"{where}: internal entry without a child pointer")
    if entry.hidden and not entry.rectangle:
        violations.append(f"{where}: Hidden flag without Rectangle flag")
    if entry.hidden and not is_ground(entry.vt_end):
        violations.append(f"{where}: Hidden flag on an unbounded VTend")
    if is_ground(entry.tt_end) and entry.tt_end < entry.tt_begin:
        violations.append(f"{where}: TTend {entry.tt_end} < TTbegin {entry.tt_begin}")
    if is_ground(entry.vt_end) and entry.vt_end < entry.vt_begin:
        violations.append(f"{where}: VTend {entry.vt_end} < VTbegin {entry.vt_begin}")
    try:
        entry.region(now)
    except ValueError as exc:
        violations.append(f"{where}: undecodable region: {exc}")


def verify_tree(tree, horizon: int = 50) -> None:
    """Raise :class:`TreeInvariantError` listing every violation."""
    violations = check_tree(tree, horizon)
    if violations:
        raise TreeInvariantError(violations)
