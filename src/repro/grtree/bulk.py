"""Bulk loading and bulk deletion (vacuuming) for the GR-tree.

Section 5.5: when a large fraction of the data must be removed (e.g.
"delete all data that is more than five years old"), the entry-at-a-time
deletion procedure is inefficient.  "A straightforward solution is to
drop the index and then create it from scratch using a bulk loading
algorithm.  Alternatively, a bulk deletion algorithm may be provided."
Both are provided here.

Bulk loading is sort-tile-recursive (STR) on the regions resolved at load
time, with parent timestamps recomputed symbolically by
:func:`~repro.grtree.entries.bound_entries`, so the loaded tree grows
correctly afterwards.
"""

from __future__ import annotations

import math
from typing import Callable, List, Sequence, Tuple

from repro.grtree.entries import GREntry, bound_entries
from repro.grtree.node import GRNodeStore
from repro.grtree.tree import GRTree
from repro.temporal.chronon import Clock
from repro.temporal.extent import TimeExtent


def _balanced_chunks(seq, size: int, min_size: int, max_size: int):
    """Split *seq* into chunks of about *size*, keeping every chunk
    between *min_size* and *max_size* (tree fill invariants).

    A short trailing chunk borrows from its predecessor; when the two
    together cannot both reach *min_size*, they are merged (the merged
    chunk always fits: ``size + min_size - 1 <= max_size`` does not hold
    in general, but ``2 * min_size - 1 <= max_size`` does).
    """
    chunks = [list(seq[i : i + size]) for i in range(0, len(seq), size)]
    if len(chunks) >= 2 and len(chunks[-1]) < min_size:
        combined = chunks[-2] + chunks[-1]
        if len(combined) >= 2 * min_size:
            half = len(combined) // 2
            chunks[-2:] = [combined[:half], combined[half:]]
        else:
            if len(combined) > max_size:  # pragma: no cover - defensive
                raise ValueError("cannot balance chunks within node capacity")
            chunks[-2:] = [combined]
    return chunks


def bulk_load(
    store: GRNodeStore,
    clock: Clock,
    items: Sequence[Tuple[TimeExtent, int]],
    fill: float = 0.7,
    **tree_kwargs,
) -> GRTree:
    """Build a GR-tree from ``(extent, rowid)`` pairs with STR packing.

    *fill* controls the target node occupancy; the default 70 % leaves
    headroom for subsequent insertions.
    """
    tree = GRTree.create(store, clock, **tree_kwargs)
    if not items:
        return tree
    now = clock.now
    per_node = max(tree.min_entries, int(tree.max_entries * fill))

    entries = [GREntry.from_extent(extent, rowid) for extent, rowid in items]
    # STR: slice by transaction-time begin, then sort each slice by
    # valid-time begin.
    entries.sort(key=lambda e: (e.tt_begin, e.vt_begin))
    n_leaves = math.ceil(len(entries) / per_node)
    n_slices = max(1, math.ceil(math.sqrt(n_leaves)))
    slice_size = math.ceil(len(entries) / n_slices)

    leaves: List[List[GREntry]] = []
    for s in range(0, len(entries), slice_size):
        chunk = sorted(
            entries[s : s + slice_size], key=lambda e: (e.vt_begin, e.tt_begin)
        )
        leaves.extend(
            _balanced_chunks(chunk, per_node, tree.min_entries, tree.max_entries)
        )

    # Write the leaf level, then build internal levels bottom-up.
    level_nodes = []
    for group in leaves:
        node = store.allocate(leaf=True, level=0)
        node.entries = group
        store.write(node)
        level_nodes.append(node)
    level = 0
    while len(level_nodes) > 1:
        level += 1
        parents = []
        for children in _balanced_chunks(
            level_nodes, per_node, tree.min_entries, tree.max_entries
        ):
            parent = store.allocate(leaf=False, level=level)
            for child in children:
                bound = bound_entries(child.entries, now)
                bound.child = child.page_id
                parent.entries.append(bound)
            store.write(parent)
            parents.append(parent)
        level_nodes = parents

    # Replace the empty root the tree was created with.
    store.free(tree.root_id)
    tree.root_id = level_nodes[0].page_id
    tree.height = level + 1
    tree.size = len(entries)
    tree._write_meta()
    return tree


def bulk_delete(
    tree: GRTree, condition: Callable[[GREntry], bool]
) -> Tuple[GRTree, int]:
    """Vacuum: drop every leaf entry satisfying *condition* and rebuild.

    Implements the drop-and-bulk-load strategy of Section 5.5.  Returns
    the rebuilt tree (over the same store) and the number of entries
    removed.  The rebuilt tree reuses the original meta page so handles
    held by the access method stay valid.
    """
    survivors: List[Tuple[TimeExtent, int]] = []
    removed = 0
    pages = []
    for node in tree.iter_nodes():
        pages.append(node.page_id)
        if node.leaf:
            for entry in node.entries:
                if condition(entry):
                    removed += 1
                else:
                    survivors.append((entry.extent(), entry.rowid))
    for page_id in pages:
        tree.store.free(page_id)

    rebuilt = bulk_load(
        tree.store,
        tree.clock,
        survivors,
        time_horizon=tree.time_horizon,
    )
    # Move the rebuilt tree onto the original meta page.
    if rebuilt.meta_page is not None and tree.meta_page is not None:
        tree.store.buffer.free(rebuilt.meta_page)
    rebuilt.meta_page = tree.meta_page
    rebuilt._write_meta()
    return rebuilt, removed
