"""GR-tree entries: four timestamps plus the Rectangle and Hidden flags.

A leaf entry encodes a data tuple's bitemporal region with the four
timestamps of Figure 2 plus a ``(rowid, fragid)`` pointer.  A non-leaf
entry encodes the minimum bounding region of a child node with four
timestamps, the ``Rectangle`` flag (the timestamps ``(tt1, UC, vt1, NOW)``
are ambiguous in internal nodes: growing stair *or* rectangle growing in
both dimensions), the ``Hidden`` flag (a growing stair is temporarily
hidden under a taller fixed rectangle and will one day outgrow it,
Figure 4(c)), and the child's page id.

The two resolution algorithms quoted verbatim in Section 3 --

    IF flag Hidden is set AND VTend is fixed AND VTend < current time
    THEN set VTend to NOW

    IF TTend is equal to UC  THEN set TTend to the current time
    IF VTend is equal to NOW THEN set VTend to TTend

-- live in :meth:`GREntry.region`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.temporal.chronon import Chronon
from repro.temporal.extent import TimeExtent
from repro.temporal.regions import Region
from repro.temporal.variables import NOW, UC, Timestamp, is_ground


@dataclass
class GREntry:
    """One slot of a GR-tree node."""

    tt_begin: Chronon
    tt_end: Timestamp                 # ground value or UC
    vt_begin: Chronon
    vt_end: Timestamp                 # ground value or NOW
    rectangle: bool = False           # the "Rectangle" flag (non-leaf)
    hidden: bool = False              # the "Hidden" flag (non-leaf)
    child: Optional[int] = None       # child page id (non-leaf)
    rowid: Optional[int] = None       # data tuple pointer (leaf)
    fragid: int = 0

    @classmethod
    def from_extent(
        cls, extent: TimeExtent, rowid: int, fragid: int = 0
    ) -> "GREntry":
        """Build a leaf entry from a data tuple's time extent."""
        return cls(
            extent.tt_begin,
            extent.tt_end,
            extent.vt_begin,
            extent.vt_end,
            rowid=rowid,
            fragid=fragid,
        )

    def extent(self) -> TimeExtent:
        """Recover the 4TS extent (leaf entries only)."""
        return TimeExtent(self.tt_begin, self.tt_end, self.vt_begin, self.vt_end)

    # ------------------------------------------------------------------

    @property
    def growing(self) -> bool:
        """Does the encoded region keep extending as time passes?"""
        return self.tt_end is UC

    def effective_vt_end(self, now: Chronon) -> Timestamp:
        """Apply the Hidden-flag adjustment of Section 3."""
        if self.hidden and is_ground(self.vt_end) and self.vt_end < now:
            return NOW
        return self.vt_end

    def region(self, now: Chronon) -> Region:
        """Decode the entry's region at current time *now*."""
        vt_end = self.effective_vt_end(now)
        tt_end = now if self.tt_end is UC else self.tt_end
        tt_end = max(tt_end, self.tt_begin)
        if vt_end is NOW:
            vt_res: Chronon = tt_end
            stair = not self.rectangle
        else:
            vt_res = vt_end
            stair = False
        region = Region.make(self.tt_begin, tt_end, self.vt_begin, vt_res, stair)
        if region is None:
            raise ValueError(f"entry {self} decodes to an empty region at {now}")
        return region

    def fits_under_diagonal_forever(self) -> bool:
        """May this entry's region ever extend above the ``vt = tt`` line?

        Stair shapes never do; fixed-top regions never do when their top
        starts at or below the diagonal; hidden entries and rectangles
        growing in both dimensions eventually do.
        """
        if self.hidden:
            return False
        if self.vt_end is NOW:
            return not self.rectangle
        return self.vt_end <= self.tt_begin

    def __str__(self) -> str:
        def fmt(v):
            return v if is_ground(v) else v.name

        flags = ""
        if self.rectangle:
            flags += "R"
        if self.hidden:
            flags += "H"
        pointer = f"child={self.child}" if self.child is not None else (
            f"rowid={self.rowid}"
        )
        return (
            f"GREntry(tt=[{fmt(self.tt_begin)},{fmt(self.tt_end)}], "
            f"vt=[{fmt(self.vt_begin)},{fmt(self.vt_end)}]"
            f"{', ' + flags if flags else ''}, {pointer})"
        )


def same_timestamps(a: GREntry, b: GREntry) -> bool:
    """Timestamp-level equality, treating variables by identity."""

    def ts_eq(x: Timestamp, y: Timestamp) -> bool:
        if is_ground(x) != is_ground(y):
            return False
        return x == y if is_ground(x) else x is y

    return (
        a.tt_begin == b.tt_begin
        and ts_eq(a.tt_end, b.tt_end)
        and a.vt_begin == b.vt_begin
        and ts_eq(a.vt_end, b.vt_end)
    )


def bound_entries(entries: Sequence[GREntry], now: Chronon) -> GREntry:
    """Compute the parent entry's timestamps and flags for *entries*.

    The bound must contain every child region at the current *and every
    future* time; variables in the bound make it grow along with its
    children.  Three shapes arise (Section 3 / Figure 4):

    * a **stair** when no child ever crosses the ``vt = tt`` diagonal;
    * a **rectangle growing in both dimensions** when a growing stair is
      (or will be) the tallest child;
    * a **fixed-top rectangle with the Hidden flag** when a growing stair
      is currently hidden under a taller fixed rectangle (Figure 4(c)).
    """
    if not entries:
        raise ValueError("cannot bound an empty entry list")
    for e in entries:
        # Transaction-time axiom: a ground TTend never lies in the
        # future.  (A growing bound resolves UC to 'now', so it could
        # not contain such a child at the current time.)
        if is_ground(e.tt_end) and e.tt_end > now:
            raise ValueError(
                f"entry {e} has a ground TTend beyond the current time {now}"
            )
    tt_begin = min(e.tt_begin for e in entries)
    vt_begin = min(e.vt_begin for e in entries)
    any_growing = any(e.tt_end is UC for e in entries)
    tt_end: Timestamp = (
        UC if any_growing else max(e.tt_end for e in entries)  # type: ignore[type-var]
    )

    if all(e.fits_under_diagonal_forever() for e in entries):
        return GREntry(tt_begin, tt_end, vt_begin, NOW, rectangle=False)

    # Rectangle bound.  Children with an unbounded future top force either
    # a rectangle growing in both dimensions or the Hidden compromise.
    unbounded = [
        e
        for e in entries
        if e.tt_end is UC and (e.vt_end is NOW or e.hidden)
    ]
    tops: List[Chronon] = []
    for e in entries:
        if e.vt_end is NOW:
            if e.tt_end is not UC:
                tops.append(e.tt_end)  # a stopped stair/rect tops out here
        else:
            tops.append(e.vt_end)
    max_fixed = max(tops) if tops else None

    if unbounded:
        if max_fixed is not None and max_fixed > now:
            # Figure 4(c): the growing stair hides under the taller fixed
            # rectangle -- for now.
            return GREntry(
                tt_begin, tt_end, vt_begin, max_fixed, rectangle=True, hidden=True
            )
        return GREntry(tt_begin, tt_end, vt_begin, NOW, rectangle=True)

    assert max_fixed is not None
    latent = any(e.hidden for e in entries)
    return GREntry(
        tt_begin, tt_end, vt_begin, max_fixed, rectangle=True, hidden=latent
    )


class Predicate(enum.Enum):
    """The strategy-function semantics evaluated inside the tree.

    Each predicate knows how to test a leaf region against the query and
    whether an internal bounding region can possibly lead to qualifying
    leaves (the pruning rule).
    """

    OVERLAPS = "overlaps"
    EQUAL = "equal"
    CONTAINS = "contains"          # leaf region contains the query region
    CONTAINED_IN = "contained_in"  # leaf region lies within the query region

    def leaf_test(self, leaf_region: Region, query: Region) -> bool:
        if self is Predicate.OVERLAPS:
            return leaf_region.overlaps(query)
        if self is Predicate.EQUAL:
            return leaf_region.equal(query)
        if self is Predicate.CONTAINS:
            return leaf_region.contains(query)
        return query.contains(leaf_region)

    def internal_test(self, bound_region: Region, query: Region) -> bool:
        """May a node bounded by *bound_region* contain qualifying leaves?"""
        if self is Predicate.OVERLAPS:
            return bound_region.overlaps(query)
        if self is Predicate.EQUAL or self is Predicate.CONTAINS:
            # A leaf can only equal/contain the query when the query is
            # fully inside the node's bound.
            return bound_region.contains(query)
        return bound_region.overlaps(query)
