"""repro -- a reproduction of "Developing a DataBlade for a New Index".

The package rebuilds, in pure Python, the complete system of the ICDE 1999
experience paper by Bliujute, Saltenis, Slivinskas, and Jensen: the GR-tree
index for now-relative bitemporal data, implemented as a *DataBlade* --
a user-defined secondary access method plugged into an extensible DBMS.

Layers (bottom-up):

* :mod:`repro.temporal` -- bitemporal data model (4TS, UC/NOW, regions).
* :mod:`repro.storage` -- pages, buffer pool, sbspace smart blobs, locks,
  write-ahead logging.
* :mod:`repro.rtree` -- the R-tree / R*-tree family (baselines).
* :mod:`repro.grtree` -- the GR-tree itself.
* :mod:`repro.server` -- the extensible DBMS ("mini-Informix"): catalogs,
  opaque types, UDRs, secondary access methods, operator classes, SQL.
* :mod:`repro.btree` -- a B+-tree substrate with a pluggable comparator.
* :mod:`repro.gist` -- a Generalized Search Tree (the paper's conclusion).
* :mod:`repro.datablade` -- the GR-tree DataBlade module.
* :mod:`repro.rblade` -- a small R-tree DataBlade (the built-in analogue).
* :mod:`repro.bblade` -- the B+-tree DataBlade (the Step 4 example).
* :mod:`repro.core` -- the convenience facade for downstream users.

An interactive SQL shell is available as ``python -m repro.cli``.
"""

__version__ = "1.0.0"
