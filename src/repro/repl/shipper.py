"""The primary's WAL shipper: one sender thread per subscriber.

The shipper listens for WAL appends and pushes ``wal_frame`` messages to
every subscriber over whatever byte sink the serving layer hands it (a
socket send, or a list in tests).  Each subscriber owns a cursor
(``next_lsn``) into the primary's log; the log itself is the retention
buffer, so a subscriber that reconnects simply resubscribes from where
it left off and the shipper replays the suffix.

Heartbeats -- empty frames carrying ``last_lsn``, the primary's wall
clock, and its chronon clock -- flow on an interval even when the log is
idle, so replicas can age their seconds-lag and keep engine time in
step.

The ``repl.send`` failpoint fires once per outgoing frame and gives the
fault matrix its stream-level adversary:

``drop``     the frame is never sent but the cursor advances -- the
             replica sees an LSN gap and must resubscribe;
``dup``      the frame is sent twice -- apply must be idempotent;
``reorder``  the frame is held back and sent after the next one;
``torn``     half the frame's bytes are sent and the link severed;
``raise``    the link is severed cleanly;
``crash``    the sender thread dies as if the primary lost the replica.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional

from repro.faults import SimulatedCrash
from repro.net import protocol


class _Severed(Exception):
    """Internal: a fault decided this subscriber's link is dead."""


class _Subscriber:
    def __init__(
        self,
        name: str,
        next_lsn: int,
        send_bytes: Callable[[bytes], None],
        close: Callable[[], None],
    ) -> None:
        self.name = name
        self.next_lsn = next_lsn
        self.send_bytes = send_bytes
        self.close = close
        self.applied_lsn = -1
        self.acked_at: Optional[float] = None
        self.subscribed_at = time.time()
        self.frames_sent = 0
        self.records_sent = 0
        self.connected = True
        self.wake = threading.Event()
        self.stop = False
        #: A ``reorder`` fault parks the current frame here; it is
        #: flushed after the next frame goes out (or at disconnect).
        self.held_frame: Optional[bytes] = None
        self.thread: Optional[threading.Thread] = None


class WalShipper:
    """Streams a primary's WAL to its subscribed replicas."""

    def __init__(
        self,
        db,
        batch_size: int = 256,
        heartbeat_interval: float = 0.05,
    ) -> None:
        self.db = db
        self.batch_size = batch_size
        self.heartbeat_interval = heartbeat_interval
        self._lock = threading.Lock()
        self._subscribers: Dict[str, _Subscriber] = {}
        db.wal.add_listener(self._on_append)

    # ------------------------------------------------------------------
    # Subscription lifecycle
    # ------------------------------------------------------------------

    def subscribe(
        self,
        name: str,
        from_lsn: int,
        send_bytes: Callable[[bytes], None],
        close: Callable[[], None] = lambda: None,
    ) -> _Subscriber:
        """Register a replica and start streaming to it from *from_lsn*.

        A resubscribe under an existing name replaces the old sender
        (the reconnect path after a severed link).
        """
        sub = _Subscriber(name, max(0, from_lsn), send_bytes, close)
        with self._lock:
            old = self._subscribers.pop(name, None)
            self._subscribers[name] = sub
        if old is not None:
            self._retire(old)
        sub.thread = threading.Thread(
            target=self._pump, args=(sub,), name=f"wal-ship-{name}", daemon=True
        )
        sub.thread.start()
        return sub

    def unsubscribe(self, name: str) -> None:
        with self._lock:
            sub = self._subscribers.pop(name, None)
        if sub is not None:
            self._retire(sub)

    def stop(self) -> None:
        with self._lock:
            subs = list(self._subscribers.values())
            self._subscribers.clear()
        for sub in subs:
            self._retire(sub)
        self.db.wal.remove_listener(self._on_append)

    @staticmethod
    def _retire(sub: _Subscriber) -> None:
        sub.stop = True
        sub.wake.set()
        if sub.thread is not None and sub.thread is not threading.current_thread():
            sub.thread.join(timeout=1.0)

    def _on_append(self, record) -> None:
        with self._lock:
            subs = list(self._subscribers.values())
        for sub in subs:
            sub.wake.set()

    def on_ack(self, name: str, applied_lsn: int) -> None:
        with self._lock:
            sub = self._subscribers.get(name)
        if sub is not None:
            sub.applied_lsn = max(sub.applied_lsn, applied_lsn)
            sub.acked_at = time.time()

    # ------------------------------------------------------------------
    # The sender loop
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Bootstrap state the log does not carry, sent on frame one."""
        db = self.db
        return {
            "granularity": db.clock.granularity.name,
            "clock": db.clock.now,
            "sbspaces": sorted(db.sbspaces),
            "last_lsn": db.wal.last_lsn(),
        }

    def _pump(self, sub: _Subscriber) -> None:
        first = True
        last_sent = 0.0
        try:
            while not sub.stop:
                sent_any = self._ship_backlog(sub, first)
                if sent_any:
                    first = False
                    last_sent = time.monotonic()
                elif first or time.monotonic() - last_sent >= self.heartbeat_interval:
                    self._send_frame(sub, [], snapshot=self.snapshot() if first else None)
                    first = False
                    last_sent = time.monotonic()
                sub.wake.wait(self.heartbeat_interval)
                sub.wake.clear()
        except (_Severed, OSError):
            pass
        # repro: allow(bare-except-swallows-crash): the sender thread IS the
        # simulated crash victim -- dying here models the primary's shipper
        # process ending, and the crash must not escape into the thread
        # runner.  A dead sender sends nothing: discard any reorder-held
        # frame so the finally-flush cannot deliver it posthumously (the
        # replica recovers via LSN-gap resubscribe, same as a drop).
        except SimulatedCrash:
            sub.held_frame = None
        finally:
            sub.connected = False
            try:
                self._flush_held(sub)
            except Exception:
                pass
            sub.close()
            with self._lock:
                if self._subscribers.get(sub.name) is sub:
                    del self._subscribers[sub.name]

    def _ship_backlog(self, sub: _Subscriber, first: bool) -> bool:
        """Send everything from the subscriber's cursor to the log tip."""
        wal = self.db.wal
        sent = False
        while not sub.stop:
            records = wal.records_from(sub.next_lsn)
            if not records:
                return sent
            batch = records[: self.batch_size]
            payload = [record.to_dict() for record in batch]
            snapshot = self.snapshot() if first and not sent else None
            self._send_frame(sub, payload, snapshot=snapshot)
            sub.next_lsn = batch[-1].lsn + 1
            sub.records_sent += len(batch)
            sent = True
        return sent

    # ------------------------------------------------------------------
    # Frame-level fault interpretation
    # ------------------------------------------------------------------

    def _send_frame(self, sub, records: List[dict], snapshot=None) -> None:
        frame = protocol.wal_frame(
            records,
            last_lsn=self.db.wal.last_lsn(),
            now=time.time(),
            snapshot=snapshot,
        )
        frame["clock"] = self.db.clock.now
        data = protocol.encode_frame(frame)
        faults = self.db.faults
        action = faults.fire_action("repl.send") if faults is not None else None
        if action is None:
            self._deliver(sub, data)
        elif action == "drop":
            # The bytes vanish but the cursor advanced: the replica
            # sees an LSN gap and recovers by resubscribing.
            pass
        elif action == "dup":
            self._deliver(sub, data)
            self._deliver(sub, data)
        elif action == "reorder":
            if sub.held_frame is not None:
                self._deliver(sub, sub.held_frame)
            sub.held_frame = data
        elif action == "torn":
            sub.send_bytes(data[: max(1, len(data) // 2)])
            raise _Severed(sub.name)
        elif action == "crash":
            raise SimulatedCrash("repl.send")
        else:  # "raise", "corrupt": sever the link without sending.
            raise _Severed(sub.name)
        sub.frames_sent += 1

    def _deliver(self, sub: _Subscriber, data: bytes) -> None:
        sub.send_bytes(data)
        if sub.held_frame is not None:
            held, sub.held_frame = sub.held_frame, None
            sub.send_bytes(held)

    def _flush_held(self, sub: _Subscriber) -> None:
        if sub.held_frame is not None:
            held, sub.held_frame = sub.held_frame, None
            sub.send_bytes(held)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def status_rows(self) -> List[dict]:
        """One row per subscriber, for ``SHOW REPLICAS`` on the primary."""
        last = self.db.wal.last_lsn()
        now = time.time()
        with self._lock:
            subs = list(self._subscribers.values())
        rows = []
        for sub in subs:
            rows.append(
                {
                    "replica": sub.name,
                    "state": "streaming" if sub.connected else "gone",
                    "shipped_lsn": sub.next_lsn - 1,
                    "applied_lsn": sub.applied_lsn,
                    "lag_records": max(0, last - sub.applied_lsn),
                    "ack_age_ms": round(
                        (now - sub.acked_at) * 1000.0, 1
                    )
                    if sub.acked_at is not None
                    else None,
                }
            )
        return rows

    def stats(self) -> Dict[str, float]:
        """Flat counters pulled by the observability collector."""
        last = self.db.wal.last_lsn()
        with self._lock:
            subs = list(self._subscribers.values())
        out: Dict[str, float] = {"subscribers": len(subs)}
        for sub in subs:
            prefix = f"sub.{sub.name}"
            out[f"{prefix}.frames_sent"] = sub.frames_sent
            out[f"{prefix}.records_sent"] = sub.records_sent
            out[f"{prefix}.applied_lsn"] = sub.applied_lsn
            out[f"{prefix}.lag_records"] = max(0, last - sub.applied_lsn)
        return out
