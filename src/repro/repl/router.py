"""Replica-aware statement routing for the client side.

A :class:`RoutedClient` looks like one :class:`~repro.net.client.ReproClient`
but fans statements across a topology:

* writes, DDL, and everything inside an explicit transaction go to the
  **primary** -- replicas are read-only and transactions pin server-side
  session state;
* plain reads (``SELECT`` / ``SHOW``) round-robin across the healthy
  **replicas**, carrying ``min_lsn`` = the LSN of this client's latest
  write so the session reads its own writes;
* ``SET READ STALENESS`` is remembered and broadcast to every endpoint
  (and replayed on reconnect), so the per-session bound follows the
  statement wherever it is routed.

Failure handling is the retry contract's routing half: a replica that
answers ``REPLICA_STALE``, fails at the socket level, or exhausts its
driver retries is *marked unhealthy for a cooldown* and the statement
transparently falls back to the next replica, then the primary.  An
error surfaces only when no endpoint at all can run the statement --
connection loss to a replica is retryable-on-another-endpoint, not an
application failure.
"""

from __future__ import annotations

import time
from typing import Any, Callable, List, Optional

from repro.net import protocol
from repro.net.client import (
    ReproClient,
    ReproClientError,
    RemoteStatementError,
    ServerBusyError,
    TransientNetworkError,
)

#: Statement heads safe to run on a read-only replica.
_READ_HEADS = ("SELECT", "SHOW")


def _is_read(sql: str) -> bool:
    return sql.lstrip().upper().startswith(_READ_HEADS)


class _Endpoint:
    def __init__(self, client: ReproClient, role: str) -> None:
        self.client = client
        self.role = role
        self.unhealthy_until = 0.0
        self.staleness_sql: Optional[str] = None
        #: ``client.stats["connects"]`` when the bound was last applied;
        #: a reconnect makes a fresh server session that lost it.
        self.staleness_conn = -1

    @property
    def healthy(self) -> bool:
        return time.monotonic() >= self.unhealthy_until

    def quarantine(self, cooldown: float) -> None:
        self.unhealthy_until = time.monotonic() + cooldown


class RoutedClient:
    """One logical session over a primary plus N read replicas."""

    def __init__(
        self,
        primary: tuple,
        replicas: List[tuple] = (),
        *,
        cooldown: float = 1.0,
        client_name: str = "repro-routed",
        client_factory: Callable[..., ReproClient] = ReproClient,
        **client_kwargs: Any,
    ) -> None:
        self.cooldown = cooldown
        self._primary = _Endpoint(
            client_factory(
                *primary, client_name=f"{client_name}-primary", **client_kwargs
            ),
            role="primary",
        )
        self._replicas = [
            _Endpoint(
                client_factory(
                    *address, client_name=f"{client_name}-r{i}", **client_kwargs
                ),
                role="replica",
            )
            for i, address in enumerate(replicas)
        ]
        self._rr = 0
        #: The LSN of this session's newest write (read-your-writes).
        self.last_write_lsn: Optional[int] = None
        self._staleness_sql: Optional[str] = None
        self.stats = {
            "primary_statements": 0,
            "replica_statements": 0,
            "fallbacks": 0,
            "stale_rejections": 0,
        }

    # ------------------------------------------------------------------

    @property
    def primary(self) -> ReproClient:
        return self._primary.client

    @property
    def in_transaction(self) -> bool:
        return self._primary.client.in_transaction

    def connect(self) -> "RoutedClient":
        self._primary.client.connect()
        return self

    def close(self) -> None:
        for endpoint in [self._primary, *self._replicas]:
            try:
                endpoint.client.close()
            except ReproClientError:
                pass

    def __enter__(self) -> "RoutedClient":
        return self.connect()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------

    def execute(self, sql: str, **kwargs: Any) -> Any:
        if sql.lstrip().upper().startswith("SET READ STALENESS"):
            return self._broadcast_staleness(sql)
        if not _is_read(sql) or self.in_transaction or not self._replicas:
            return self._run_on_primary(sql, **kwargs)
        return self._run_read(sql, **kwargs)

    def run_transaction(self, body, **kwargs: Any) -> Any:
        return self._primary.client.run_transaction(body, **kwargs)

    # ------------------------------------------------------------------

    def _run_on_primary(self, sql: str, **kwargs: Any) -> Any:
        value = self._primary.client.execute(sql, **kwargs)
        self.stats["primary_statements"] += 1
        lsn = self._primary.client.last_lsn
        if lsn is not None and not _is_read(sql):
            self.last_write_lsn = lsn
        return value

    def _run_read(self, sql: str, **kwargs: Any) -> Any:
        """Try each healthy replica once, then fall back to primary."""
        order = self._replica_order()
        last_error: Optional[Exception] = None
        for endpoint in order:
            try:
                self._ensure_staleness(endpoint)
                value = endpoint.client.execute(
                    sql, min_lsn=self.last_write_lsn, **kwargs
                )
                self.stats["replica_statements"] += 1
                return value
            except RemoteStatementError as error:
                if error.code == protocol.REPLICA_STALE:
                    # This replica lags beyond the bound; another
                    # endpoint (ultimately the primary) will not.
                    self.stats["stale_rejections"] += 1
                    endpoint.quarantine(self.cooldown / 4)
                    last_error = error
                    continue
                raise  # A real statement error: no endpoint fixes SQL.
            except (TransientNetworkError, ServerBusyError) as error:
                # Connection loss to a replica is retryable on another
                # endpoint while at least one remains healthy.
                endpoint.quarantine(self.cooldown)
                last_error = error
                continue
        self.stats["fallbacks"] += 1
        del last_error
        return self._run_on_primary(sql, **kwargs)

    def _replica_order(self) -> List[_Endpoint]:
        healthy = [e for e in self._replicas if e.healthy]
        if not healthy:
            return []
        self._rr = (self._rr + 1) % len(healthy)
        return healthy[self._rr :] + healthy[: self._rr]

    # ------------------------------------------------------------------

    def _broadcast_staleness(self, sql: str) -> Any:
        """Remember the bound and push it to every reachable endpoint."""
        self._staleness_sql = None if sql.strip().upper().endswith("OFF") else sql
        value = None
        for endpoint in [self._primary, *self._replicas]:
            endpoint.staleness_sql = None
            try:
                value = endpoint.client.execute(sql)
                endpoint.staleness_sql = self._staleness_sql
                endpoint.staleness_conn = endpoint.client.stats["connects"]
            except ReproClientError:
                endpoint.quarantine(self.cooldown)
        return value

    def _ensure_staleness(self, endpoint: _Endpoint) -> None:
        """Replay the session bound after a reconnect lost it."""
        current = (
            endpoint.staleness_sql == self._staleness_sql
            and endpoint.staleness_conn == endpoint.client.stats["connects"]
            and endpoint.client._sock is not None
        )
        if current:
            return
        if self._staleness_sql is not None:
            endpoint.client.execute(self._staleness_sql)
        endpoint.staleness_sql = self._staleness_sql
        endpoint.staleness_conn = endpoint.client.stats["connects"]
