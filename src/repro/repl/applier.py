"""The replica's continuous-redo apply loop.

The applier is a socket-free state machine: frames of wire-form
``LogRecord`` dicts go in (from :class:`repro.repl.link.ReplicaLink`, or
directly from a test harness), committed state comes out.  Three
invariants define it:

**Idempotent by LSN.**  A strict cursor (``received_lsn``) advances one
record at a time.  Records at or below the cursor are duplicates and
are dropped; records beyond ``cursor + 1`` wait in a reorder buffer
until the gap fills.  Replaying any prefix, suffix, or shuffling of the
stream therefore converges to the same state.

**Commit-gated.**  Row records are buffered per primary transaction and
applied atomically -- under the engine lock, inside one local
transaction -- only when the COMMIT record arrives.  An ABORT drops the
buffer.  Reads on the replica can never see a torn transaction.

**Recoverable from the relay log.**  Every record accepted past the
cursor is retained in ``relay`` (the replica's durable relay log).  A
replica that crashes mid-apply restarts by replaying the relay log from
LSN 0 onto a fresh engine: since application is commit-gated and the
log is a committed-prefix record of the primary, recovery always lands
on a committed prefix of the primary's history.

DDL records (transaction id 0) are logged by the primary only after the
statement succeeded, so they are committed by construction and re-execute
immediately through the replica's own executor -- which is how the
replica builds its *own* physical GR-trees (physical sbspace records in
the stream are skipped; they describe the primary's pages, not ours).
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

from repro.storage.wal import DDL_TXN, RecordKind, LogRecord

#: Logical row kinds the applier buffers per transaction.
_ROW_KINDS = (RecordKind.ROW_INSERT, RecordKind.ROW_DELETE, RecordKind.ROW_UPDATE)


class ReplicationApplier:
    """Applies a primary's WAL stream onto a local DatabaseServer."""

    def __init__(self, db, name: str = "replica") -> None:
        self.db = db
        self.name = name
        db.read_only = True
        #: Wire-form records accepted in LSN order (the relay log).
        self.relay: List[dict] = []
        #: LSN cursor: the last record accepted into the relay log.
        self.received_lsn = -1
        #: The last record fully applied (equals the cursor except
        #: mid-apply; a crash between the two is what recovery fixes).
        self.applied_lsn = -1
        #: Primary progress, from frame headers (heartbeats included).
        self.primary_last_lsn = -1
        self.primary_now: Optional[float] = None
        #: Wall-clock time we were last fully caught up.
        self._caught_up_at = time.time()
        #: Out-of-order records parked until their gap fills.
        self.pending: Dict[int, dict] = {}
        #: Open primary transactions: txn_id -> buffered row records.
        self._txns: Dict[int, List[LogRecord]] = {}
        self._session = db.create_session()
        self._lock = threading.Lock()
        self._applied_cv = threading.Condition(self._lock)
        self.counters = {
            "frames": 0,
            "records": 0,
            "duplicates": 0,
            "reordered": 0,
            "txns_applied": 0,
            "rows_applied": 0,
            "ddl_applied": 0,
            "aborts_discarded": 0,
        }

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    def ingest(
        self,
        records: List[dict],
        last_lsn: int,
        now: Optional[float] = None,
    ) -> bool:
        """Absorb one frame; returns True when a gap is outstanding.

        *records* are wire-form dicts; *last_lsn* is the primary's
        newest LSN at send time (heartbeats carry it with no records).
        """
        self.counters["frames"] += 1
        if last_lsn > self.primary_last_lsn:
            self.primary_last_lsn = last_lsn
        if now is not None:
            self.primary_now = now
        for payload in records:
            lsn = int(payload["lsn"])
            if lsn <= self.received_lsn:
                self.counters["duplicates"] += 1
                continue
            if lsn > self.received_lsn + 1:
                if lsn not in self.pending:
                    self.counters["reordered"] += 1
                    self.pending[lsn] = payload
                continue
            self._accept(payload)
            self._drain_pending()
        self._drain_pending()
        with self._lock:
            if self.applied_lsn >= self.primary_last_lsn:
                self._caught_up_at = time.time()
            self._applied_cv.notify_all()
        return bool(self.pending)

    def _drain_pending(self) -> None:
        while self.received_lsn + 1 in self.pending:
            self._accept(self.pending.pop(self.received_lsn + 1))

    def _accept(self, payload: dict) -> None:
        """Advance the cursor over one in-order record and process it."""
        record = LogRecord.from_dict(payload)
        self.relay.append(payload)
        self.received_lsn = record.lsn
        self.counters["records"] += 1
        self._process(record)
        self.applied_lsn = record.lsn

    # ------------------------------------------------------------------
    # Processing (commit-gated redo)
    # ------------------------------------------------------------------

    def _process(self, record: LogRecord) -> None:
        kind = record.kind
        if kind is RecordKind.BEGIN:
            self._txns[record.txn_id] = []
        elif kind in _ROW_KINDS:
            buffer = self._txns.get(record.txn_id)
            if buffer is not None:
                buffer.append(record)
        elif kind is RecordKind.COMMIT:
            rows = self._txns.pop(record.txn_id, [])
            self._apply_transaction(rows)
        elif kind is RecordKind.ABORT:
            if self._txns.pop(record.txn_id, None):
                self.counters["aborts_discarded"] += 1
        elif kind is RecordKind.DDL and record.txn_id == DDL_TXN:
            self._apply_ddl(record)
        # Physical sbspace records describe the primary's pages; the
        # replica maintains its own through re-executed DDL + row redo.

    def _apply_ddl(self, record: LogRecord) -> None:
        server = self.db
        if server.faults is not None:
            server.faults.hit("repl.apply")
        server.repl_applying = True
        try:
            server.execute(record.sql, self._session)
        finally:
            server.repl_applying = False
        self.counters["ddl_applied"] += 1

    def _apply_transaction(self, rows: List[LogRecord]) -> None:
        """Apply one committed transaction's row records atomically."""
        if not rows:
            return
        server = self.db
        with server._engine_lock:
            server.repl_applying = True
            session = self._session
            session.begin(explicit=True)
            try:
                for record in rows:
                    # Per-row failpoint: a "crash" here freezes a
                    # partially-applied, uncommitted local transaction --
                    # the worst case relay-log recovery must absorb.
                    if server.faults is not None:
                        server.faults.hit("repl.apply")
                    self._apply_row(record, session)
                session.commit()
            except BaseException as exc:
                # Catches BaseException on purpose, and always re-raises
                # (the bare `raise` below) -- the lint contract
                # bare-except-swallows-crash holds.  A SimulatedCrash
                # freezes state without rollback (recovery replays the
                # relay log); any other failure rolls the local
                # transaction back so a retry can re-apply it.
                from repro.faults import SimulatedCrash

                if not isinstance(exc, SimulatedCrash):
                    if session.in_transaction:
                        session.rollback()
                raise
            finally:
                server.repl_applying = False
        self.counters["txns_applied"] += 1
        self.counters["rows_applied"] += len(rows)

    def _apply_row(self, record: LogRecord, session) -> None:
        server = self.db
        executor = server.executor
        table = server.catalog.get_table(record.table)
        indices = list(server.catalog.indices_on(table.name))
        if record.kind is RecordKind.ROW_INSERT:
            values = self._import_row(table, record.row)
            row = table.put_row(record.rowid, values)
            self._index_op(executor, indices, "am_insert", session, row, record.rowid)
        elif record.kind is RecordKind.ROW_DELETE:
            row = table.delete_row(record.rowid)
            self._index_op(executor, indices, "am_delete", session, row, record.rowid)
        else:  # ROW_UPDATE
            old = dict(table.fetch(record.rowid))
            new = table.put_row(record.rowid, self._import_row(table, record.row))
            for info in indices:
                old_key = executor._indexed_row(info, old)
                new_key = executor._indexed_row(info, new)
                if old_key == new_key:
                    continue
                am = server.catalog.access_methods.get(info.am_name)
                td = executor._descriptor(info, session)
                executor.call_purpose(am, "am_open", td)
                try:
                    executor.call_purpose(
                        am, "am_update", td, old_key, record.rowid,
                        new_key, record.rowid,
                    )
                finally:
                    executor.call_purpose(am, "am_close", td)

    @staticmethod
    def _import_row(table, wire_row: dict) -> dict:
        return {
            column.name: column.data_type.import_text(wire_row[column.name])
            for column in table.columns
        }

    def _index_op(self, executor, indices, slot, session, row, rowid) -> None:
        server = self.db
        for info in indices:
            am = server.catalog.access_methods.get(info.am_name)
            td = executor._descriptor(info, session)
            executor.call_purpose(am, "am_open", td)
            try:
                executor.call_purpose(
                    am, slot, td, executor._indexed_row(info, row), rowid
                )
            finally:
                executor.call_purpose(am, "am_close", td)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def replay_relay_log(self, relay: List[dict]) -> None:
        """Crash recovery: re-apply a relay log from LSN 0.

        The applier must be fresh (a just-built engine); commit-gating
        makes the result exactly the committed prefix the log records.
        """
        if relay:
            self.ingest(list(relay), last_lsn=int(relay[-1]["lsn"]))

    # ------------------------------------------------------------------
    # Lag accounting
    # ------------------------------------------------------------------

    def lag_records(self) -> int:
        return max(0, self.primary_last_lsn - self.applied_lsn)

    def lag_seconds(self) -> float:
        """Wall-clock seconds since the replica was last fully caught
        up; 0 while no records are outstanding.  Heartbeats refresh the
        primary's position, so a silent link ages this value too."""
        if self.applied_lsn >= self.primary_last_lsn:
            return 0.0
        return max(0.0, time.time() - self._caught_up_at)

    def wait_for_lsn(self, min_lsn: int, timeout: float = 0.25) -> bool:
        """Block until ``applied_lsn >= min_lsn`` (read-your-writes)."""
        deadline = time.monotonic() + timeout
        with self._lock:
            while self.applied_lsn < min_lsn:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._applied_cv.wait(remaining)
        return True

    def stats(self) -> dict:
        out = dict(self.counters)
        out.update(
            {
                "applied_lsn": self.applied_lsn,
                "received_lsn": self.received_lsn,
                "primary_last_lsn": self.primary_last_lsn,
                "lag_records": self.lag_records(),
                "lag_ms": self.lag_seconds() * 1000.0,
                "pending": len(self.pending),
                "open_txns": len(self._txns),
            }
        )
        return out
