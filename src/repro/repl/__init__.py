"""repro.repl: WAL-shipping read replicas with staleness-bounded routing.

The primary streams its logical WAL records to subscribed replicas over
the ``repro.net`` wire protocol (``wal_subscribe`` / ``wal_frame`` /
``wal_ack`` frames); each replica runs a continuous-redo, commit-gated
apply loop and reports its applied LSN back.  Client-side,
:class:`RoutedClient` sends writes to the primary and fans reads across
replicas subject to a per-session staleness bound
(``SET READ STALENESS <ms> | LSN <n> | OFF``), falling back to the
primary when replicas lag or disappear.

See ``docs/replication.md`` for the topology, the staleness contract,
and the failure-mode matrix.
"""

from repro.repl.applier import ReplicationApplier
from repro.repl.link import ReplicaLink
from repro.repl.router import RoutedClient
from repro.repl.shipper import WalShipper

__all__ = [
    "ReplicationApplier",
    "ReplicaLink",
    "RoutedClient",
    "WalShipper",
]
