"""The replica's link to its primary: connect, subscribe, apply, ack.

A :class:`ReplicaLink` owns one background thread that keeps a replica's
:class:`~repro.repl.applier.ReplicationApplier` fed:

1. connect to the primary, ``hello``/``welcome`` handshake;
2. ``wal_subscribe`` from ``received_lsn + 1`` (LSN 0 on a fresh
   replica -- the full logical history is the bootstrap);
3. read ``wal_frame`` messages, hand them to the applier, answer with
   ``wal_ack``;
4. on any break -- severed socket, undecodable (torn) frame, or an LSN
   gap that does not fill within ``gap_timeout`` (a dropped frame) --
   tear the socket down and go back to step 1, resubscribing from the
   cursor.  Idempotent apply makes the overlap harmless.

The first frame after a subscribe carries the primary's *snapshot*:
granularity (asserted equal -- chronons do not translate), the chronon
clock (the replica's engine time jumps forward to match; every later
frame carries the clock too so query-time semantics track the primary),
and the primary's sbspace names (created locally if missing, so replayed
``CREATE INDEX ... IN <sbspace>`` statements land).

A ``SimulatedCrash`` escaping the applier freezes the link: the thread
stops, ``crashed`` records the failpoint, and the harness rebuilds the
replica via relay-log replay -- exactly a process death.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Optional

from repro.faults import SimulatedCrash
from repro.net import protocol
from repro.repl.applier import ReplicationApplier


class ReplicaLink:
    def __init__(
        self,
        db,
        host: str,
        port: int,
        name: str = "replica",
        gap_timeout: float = 0.5,
        retry_interval: float = 0.05,
    ) -> None:
        self.db = db
        self.host = host
        self.port = port
        self.name = name
        self.gap_timeout = gap_timeout
        self.retry_interval = retry_interval
        self.applier = ReplicationApplier(db, name=name)
        db.repl_link = self
        db.obs.metrics.register_collector("repl", db.repl_stats)
        self.connected = False
        self.crashed: Optional[str] = None
        self.reconnects = 0
        self._stop = threading.Event()
        self._sock: Optional[socket.socket] = None
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------

    def start(self) -> "ReplicaLink":
        self._thread = threading.Thread(
            target=self._run, name=f"repl-link-{self.name}", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        self._close_socket()
        if self._thread is not None:
            self._thread.join(timeout=2.0)

    def _close_socket(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    # ------------------------------------------------------------------

    def _run(self) -> None:
        first_attempt = True
        while not self._stop.is_set():
            if not first_attempt:
                self.reconnects += 1
                time.sleep(self.retry_interval)
            first_attempt = False
            try:
                self._stream_once()
            # repro: allow(bare-except-swallows-crash): this link thread is
            # the simulated crash victim (replica process death).  The crash
            # is recorded in `self.crashed` for the harness, the loop exits,
            # and the link stays frozen until the test restarts the replica;
            # propagating would only kill a daemon thread invisibly.
            except SimulatedCrash as crash:
                self.crashed = crash.point
                break
            except (OSError, protocol.ProtocolError):
                # Severed/torn link: reconnect and resubscribe from the
                # cursor; duplicates on the overlap are dropped by LSN.
                continue
            finally:
                self.connected = False
                self._close_socket()

    def _stream_once(self) -> None:
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.gap_timeout
        )
        self._sock = sock
        protocol.write_frame(sock, protocol.hello(client=f"repl:{self.name}"))
        reply = protocol.read_frame(sock)
        if reply is None or reply.get("kind") != "welcome":
            raise protocol.ProtocolError(f"expected welcome, got {reply!r}")
        protocol.write_frame(
            sock,
            protocol.wal_subscribe(
                from_lsn=self.applier.received_lsn + 1, replica=self.name
            ),
        )
        self.connected = True
        gap_since: Optional[float] = None
        while not self._stop.is_set():
            try:
                frame = protocol.read_frame(sock)
            except socket.timeout:
                # No heartbeat inside the gap window: treat the link as
                # dead rather than serving unboundedly stale reads.
                raise OSError("replication link timed out")
            if frame is None:
                raise OSError("primary closed the replication link")
            kind = frame.get("kind")
            if kind == "error":
                raise protocol.ProtocolError(
                    f"primary refused subscription: {frame.get('message')}"
                )
            if kind != "wal_frame":
                continue
            snapshot = frame.get("snapshot")
            if snapshot is not None:
                self._bootstrap(snapshot)
            if frame.get("clock") is not None:
                self._sync_clock(frame["clock"])
            gap = self.applier.ingest(
                frame.get("records", []),
                last_lsn=frame.get("last_lsn", -1),
                now=frame.get("now"),
            )
            if gap:
                if gap_since is None:
                    gap_since = time.monotonic()
                elif time.monotonic() - gap_since >= self.gap_timeout:
                    # A dropped frame: the hole will never fill on this
                    # stream.  Resubscribe from the cursor instead.
                    self.applier.pending.clear()
                    raise OSError("LSN gap in replication stream")
            else:
                gap_since = None
            protocol.write_frame(
                sock,
                protocol.wal_ack(
                    applied_lsn=self.applier.applied_lsn, replica=self.name
                ),
            )

    # ------------------------------------------------------------------

    def _bootstrap(self, snapshot: dict) -> None:
        db = self.db
        granularity = snapshot.get("granularity")
        if granularity is not None and granularity != db.clock.granularity.name:
            raise protocol.ProtocolError(
                f"granularity mismatch: primary {granularity}, "
                f"replica {db.clock.granularity.name}"
            )
        for name in snapshot.get("sbspaces", []):
            if name.lower() not in db.sbspaces:
                db.create_sbspace(name)
        if snapshot.get("clock") is not None:
            self._sync_clock(snapshot["clock"])

    def _sync_clock(self, chronon) -> None:
        if chronon > self.db.clock.now:
            self.db.clock.set(chronon)

    # ------------------------------------------------------------------
    # Surface for routing / SHOW REPLICAS on the replica itself
    # ------------------------------------------------------------------

    @property
    def applied_lsn(self) -> int:
        return self.applier.applied_lsn

    def lag_records(self) -> int:
        return self.applier.lag_records()

    def lag_seconds(self) -> float:
        return self.applier.lag_seconds()

    def wait_for_lsn(self, min_lsn: int, timeout: float = 0.25) -> bool:
        return self.applier.wait_for_lsn(min_lsn, timeout)

    def status_row(self) -> dict:
        if self.crashed is not None:
            state = "crashed"
        elif self.connected:
            state = "streaming"
        else:
            state = "connecting"
        return {
            "replica": self.name,
            "state": state,
            "primary": f"{self.host}:{self.port}",
            "applied_lsn": self.applier.applied_lsn,
            "lag_records": self.applier.lag_records(),
            "lag_ms": round(self.applier.lag_seconds() * 1000.0, 1),
            "reconnects": self.reconnects,
        }

    def stats(self) -> dict:
        out = self.applier.stats()
        out["reconnects"] = self.reconnects
        out["connected"] = 1 if self.connected else 0
        return out
