"""The Griffin-style hybrid access method (``hblade_am``).

One virtual index, two structures over the same keys: a
:class:`~repro.hblade.directory.HashDirectory` for point lookups and the
existing :class:`~repro.btree.tree.BPlusTree` for range scans, each in
its own smart blob of the index's sbspace.  ``hb_beginscan`` converts
the qualification to DNF and routes every branch: an equality branch
(bounds collapse to one key) probes the hash side, anything else walks
the tree side -- the plan-visible split Griffin argues for (PAPERS.md).

Consistency between the paths is the precision-locking-style
:class:`~repro.hblade.guard.PrecisionGuard`: every mutation publishes
its key around the two-structure update window (hash write first, tree
write second -- each behind its own ``SET FAULT`` failpoint), and a
hash-path probe that overlaps a publication falls back to the tree path
instead of trusting the possibly-torn hash view.

Step 4 extensibility works as in the B+-tree blade, doubled: the
operator class supplies *two* support functions, ``HB_Compare`` for the
tree order and ``HB_Hash`` for bucket placement, both resolved
dynamically at call time.  Contract between them: values that compare
equal must hash equal, and the key codec must be injective up to
comparator equality -- the blade canonicalizes the one stock violation
(IEEE ``-0.0`` vs ``0.0``) before encoding.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List, Optional, Tuple

from repro.btree.node import BTreeNodeStore
from repro.btree.tree import BPlusTree
from repro.datablade.blob import BladeBlob
from repro.hblade.check import verify_hybrid
from repro.hblade.directory import HashDirectory, fnv1a
from repro.hblade.guard import PrecisionGuard
from repro.server.access_method import (
    BooleanOperator,
    CompoundQualification,
    IndexDescriptor,
    Qualification,
    RowReference,
    ScanDescriptor,
    SimpleQualification,
)
from repro.server.errors import AccessMethodError
from repro.storage.buffer import BufferPool
from repro.storage.sbspace import LargeObjectHandle, OpenMode

_TREE_META = struct.Struct("<4sqqq")
_TREE_MAGIC = b"HTB1"

#: Strategy name -> (low, high, low_inclusive, high_inclusive) template.
_RANGES = {
    "equal": ("K", "K", True, True),
    "greaterthan": ("K", None, False, True),
    "greaterthanorequal": ("K", None, True, True),
    "lessthan": (None, "K", True, False),
    "lessthanorequal": (None, "K", True, True),
}

_COMMUTED = {
    "equal": "equal",
    "greaterthan": "lessthan",
    "greaterthanorequal": "lessthanorequal",
    "lessthan": "greaterthan",
    "lessthanorequal": "greaterthanorequal",
}

#: am_scancost terms: a hash probe is one bucket chain, a tree branch a
#: root-to-leaf descent plus leaf walking.
_POINT_COST = 1.5
_RANGE_COST_PAD = 2.0


def _canonical(value: Any) -> Any:
    """Collapse comparator-equal values with distinct encodings.

    The hash path matches on encoded bytes, so the codec must be
    injective up to ``HB_Compare`` equality; IEEE floats violate that
    once (``-0.0 == 0.0`` but the ``send()`` bytes differ).
    """
    if isinstance(value, float) and value == 0.0:
        return 0.0
    return value


class HybridDataBlade:
    LIBRARY_PATH = "usr/functions/hblade.bld"
    AM_NAME = "hblade_am"
    OPCLASS_NAME = "hblade_ops"
    METADATA_TABLE = "hblade_indexdata"

    def __init__(
        self,
        server,
        buffer_capacity: int = 64,
        handle_cache: bool = True,
    ) -> None:
        self.server = server
        self.buffer_capacity = buffer_capacity
        #: Keep tree/directory/pool/BLOB objects of closed indices for
        #: the next ``hb_open`` (same storage-epoch contract as the
        #: GR-tree blade); the BLOBs still open and close per statement.
        self.handle_cache = handle_cache
        self._handles: Dict[str, Dict[str, Any]] = {}
        #: One guard per index name; guards are process-local state (a
        #: crash drops them with the rest of volatile memory).
        self._guards: Dict[str, PrecisionGuard] = {}

    # ------------------------------------------------------------------
    # Codec and dynamic support resolution (Step 4)
    # ------------------------------------------------------------------

    def _key_type(self, td: IndexDescriptor):
        return self.server.catalog.types.get(td.column_types[0])

    def _support_name(self, td: IndexDescriptor, needle: str) -> str:
        opclass = self.server.catalog.opclasses.get(td.opclass_names[0])
        for name in opclass.supports:
            if needle in name.lower():
                return name
        raise AccessMethodError(
            f"operator class {opclass.name} declares no {needle} support"
        )

    def _comparator(self, td: IndexDescriptor):
        compare_name = self._support_name(td, "compare")
        key_type = self._key_type(td)
        type_name = key_type.name
        routines = self.server.catalog.routines

        def compare(a: bytes, b: bytes) -> int:
            routine = routines.resolve(compare_name, (type_name, type_name))
            routines.invocations += 1
            return routine(key_type.receive(a), key_type.receive(b))

        return compare

    def _hasher(self, td: IndexDescriptor):
        """The bucket-placement function over *encoded* keys, routed
        through the opclass's ``HB_Hash`` support UDR."""
        hash_name = self._support_name(td, "hash")
        key_type = self._key_type(td)
        type_name = key_type.name
        routines = self.server.catalog.routines

        def hash_key(key: bytes) -> int:
            routine = routines.resolve(hash_name, (type_name,))
            routines.invocations += 1
            return routine(key_type.receive(key))

        return hash_key

    def _encode(self, td: IndexDescriptor, value: Any) -> bytes:
        return self._key_type(td).send(_canonical(value))

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _params(self, td: IndexDescriptor) -> Dict[str, Any]:
        return td.parameters or {}

    def _capacity(self, td: IndexDescriptor) -> int:
        return int(self._params(td).get("buffer_capacity", self.buffer_capacity))

    def _hash_path_enabled(self, td: IndexDescriptor) -> bool:
        value = self._params(td).get("hash_path", True)
        if isinstance(value, str):
            return value.strip().lower() in ("true", "on", "yes", "1")
        return bool(value)

    def _guard(self, index_name: str) -> PrecisionGuard:
        return self._guards.setdefault(index_name.lower(), PrecisionGuard())

    def _metadata_table(self):
        return self.server.catalog.get_table(self.METADATA_TABLE)

    def _metadata_row(self, index_name: str) -> Tuple[int, Dict[str, Any]]:
        for rowid, row in self._metadata_table().scan():
            if row["indexname"] == index_name:
                return rowid, row
        raise AccessMethodError(
            f"no {self.METADATA_TABLE} record for index {index_name}"
        )

    def _obs(self):
        return getattr(self.server, "obs", None)

    def _inc(self, name: str, amount: float = 1) -> None:
        obs = self._obs()
        if obs is not None:
            obs.inc(name, amount)

    def _faults(self):
        return getattr(self.server, "faults", None)

    def _new_pool(self, blob: BladeBlob, td: IndexDescriptor) -> BufferPool:
        return BufferPool(
            blob.page_store(),
            capacity=self._capacity(td),
            faults=self._faults(),
        )

    def _attach_obs(self, td: IndexDescriptor) -> None:
        obs = self._obs()
        if obs is not None:
            obs.attach_buffer_pool(
                f"index.{td.index_name}.tree", td.user_data["tree_pool"]
            )
            obs.attach_buffer_pool(
                f"index.{td.index_name}.hash", td.user_data["hash_pool"]
            )

    # ------------------------------------------------------------------
    # Purpose functions
    # ------------------------------------------------------------------

    def hb_create(self, td: IndexDescriptor) -> int:
        if len(td.columns) != 1:
            raise AccessMethodError(f"{self.AM_NAME} indexes exactly one column")
        # A cached handle under the same name (dropped + recreated
        # index) must never shadow the fresh BLOBs.
        self._handles.pop(td.index_name.lower(), None)
        self._guards.pop(td.index_name.lower(), None)
        space = self.server.get_sbspace(td.space_name)
        tree_blob = BladeBlob.create(space)
        hash_blob = BladeBlob.create(space)
        self._metadata_table().insert_row(
            {
                "indexname": td.index_name,
                "treehandle": tree_blob.handle.value,
                "hashhandle": hash_blob.handle.value,
            }
        )
        tree_blob.open(td.session, OpenMode.WRITE)
        hash_blob.open(td.session, OpenMode.WRITE)
        tree_pool = self._new_pool(tree_blob, td)
        hash_pool = self._new_pool(hash_blob, td)
        tree_meta = tree_pool.allocate()
        tree = BPlusTree(BTreeNodeStore(tree_pool), self._comparator(td))
        directory = HashDirectory.create(
            hash_pool,
            self._hasher(td),
            initial_buckets=int(self._params(td).get("buckets", 8)),
            split_threshold=int(self._params(td).get("split_threshold", 16)),
        )
        td.user_data.update(
            {
                "tree": tree,
                "directory": directory,
                "tree_blob": tree_blob,
                "hash_blob": hash_blob,
                "tree_pool": tree_pool,
                "hash_pool": hash_pool,
                "tree_meta": tree_meta,
                "epoch": self.server.storage_epoch,
            }
        )
        self._attach_obs(td)
        return 0

    def _revive_handle(self, td: IndexDescriptor) -> bool:
        """Reattach cached structures from a previous close, if storage
        has not been rewritten underneath them (same contract as the
        GR-tree blade: live blob objects + unchanged storage epoch)."""
        key = td.index_name.lower()
        entry = self._handles.get(key)
        if entry is None:
            return False
        try:
            same_store = (
                entry["tree_blob"].page_store() is entry["tree_pool"].store
                and entry["hash_blob"].page_store() is entry["hash_pool"].store
            )
        except Exception:
            same_store = False  # BLOB dropped or sbspace re-initialised
        if not same_store or entry["epoch"] != self.server.storage_epoch:
            del self._handles[key]
            return False
        entry["tree_blob"].open(td.session, OpenMode.READ)
        try:
            entry["hash_blob"].open(td.session, OpenMode.READ)
        except BaseException:
            # Cleanup-then-reraise: BaseException so a SimulatedCrash
            # still releases the half-opened tree blob, then propagates.
            entry["tree_blob"].close()
            raise
        td.user_data.update(entry)
        self._attach_obs(td)
        return True

    def hb_open(self, td: IndexDescriptor) -> int:
        if "tree" in td.user_data:
            if td.user_data.get("epoch") == self.server.storage_epoch:
                return 0
            # Stale attachment from an interrupted close: storage was
            # rewritten underneath it (rollback/recovery bumps the
            # epoch); reusing it would resurrect rolled-back entries.
            td.user_data.clear()
        if self.handle_cache and self._revive_handle(td):
            return 0
        _, row = self._metadata_row(td.index_name)
        space = self.server.get_sbspace(td.space_name)
        tree_blob = BladeBlob(space, LargeObjectHandle(row["treehandle"]))
        hash_blob = BladeBlob(space, LargeObjectHandle(row["hashhandle"]))
        tree_blob.open(td.session, OpenMode.READ)
        try:
            hash_blob.open(td.session, OpenMode.READ)
        except BaseException:
            # Cleanup-then-reraise: BaseException so a SimulatedCrash
            # still releases the half-opened tree blob, then propagates.
            tree_blob.close()
            raise
        tree_pool = self._new_pool(tree_blob, td)
        hash_pool = self._new_pool(hash_blob, td)
        magic, root_id, height, size = _TREE_META.unpack_from(
            tree_pool.read(0), 0
        )
        if magic != _TREE_MAGIC:
            raise AccessMethodError(
                f"index {td.index_name} tree storage is corrupt"
            )
        tree = BPlusTree(
            BTreeNodeStore(tree_pool),
            self._comparator(td),
            root_id=root_id,
            height=height,
            size=size,
        )
        directory = HashDirectory.open(
            hash_pool,
            self._hasher(td),
            split_threshold=int(self._params(td).get("split_threshold", 16)),
        )
        td.user_data.update(
            {
                "tree": tree,
                "directory": directory,
                "tree_blob": tree_blob,
                "hash_blob": hash_blob,
                "tree_pool": tree_pool,
                "hash_pool": hash_pool,
                "tree_meta": 0,
                "epoch": self.server.storage_epoch,
            }
        )
        self._attach_obs(td)
        return 0

    def hb_close(self, td: IndexDescriptor) -> int:
        tree: BPlusTree = td.user_data["tree"]
        directory: HashDirectory = td.user_data["directory"]
        tree_blob: BladeBlob = td.user_data["tree_blob"]
        hash_blob: BladeBlob = td.user_data["hash_blob"]
        tree_pool: BufferPool = td.user_data["tree_pool"]
        hash_pool: BufferPool = td.user_data["hash_pool"]
        if tree_blob._open_mode is OpenMode.WRITE:
            tree_pool.write(
                td.user_data["tree_meta"],
                _TREE_META.pack(
                    _TREE_MAGIC, tree.root_id, tree.height, tree.size
                ),
            )
        if hash_blob._open_mode is OpenMode.WRITE:
            directory.save()
        tree_pool.flush()
        hash_pool.flush()
        tree_blob.close()
        hash_blob.close()
        if self.handle_cache:
            self._handles[td.index_name.lower()] = {
                "tree": tree,
                "directory": directory,
                "tree_blob": tree_blob,
                "hash_blob": hash_blob,
                "tree_pool": tree_pool,
                "hash_pool": hash_pool,
                "tree_meta": td.user_data["tree_meta"],
                "epoch": self.server.storage_epoch,
            }
        td.user_data.clear()
        return 0

    def hb_drop(self, td: IndexDescriptor) -> int:
        if "tree" not in td.user_data:
            self.hb_open(td)
        td.user_data["tree_blob"].drop()
        td.user_data["hash_blob"].drop()
        td.user_data.clear()
        self._handles.pop(td.index_name.lower(), None)
        self._guards.pop(td.index_name.lower(), None)
        rowid, _ = self._metadata_row(td.index_name)
        self._metadata_table().delete_row(rowid)
        return 0

    # -- scanning ------------------------------------------------------

    def hb_beginscan(self, sd: ScanDescriptor) -> int:
        if sd.qualification is None:
            raise AccessMethodError("hb_beginscan needs a qualification")
        td = sd.index
        branches = self._to_dnf(sd.qualification)
        scan = _HScan(self, td, branches)
        sd.user_data["scan"] = scan
        obs = self._obs()
        if obs is not None and obs.enabled:
            with obs.span(
                "hblade.scan",
                index=td.index_name,
                path=scan.path,
                hash_branches=scan.hash_branches,
                tree_branches=scan.tree_branches,
            ):
                pass
        return 0

    def hb_rescan(self, sd: ScanDescriptor) -> int:
        sd.user_data["scan"].reset()
        return 0

    def hb_getnext(self, sd: ScanDescriptor) -> Optional[RowReference]:
        return sd.user_data["scan"].next()

    def hb_endscan(self, sd: ScanDescriptor) -> int:
        sd.user_data.pop("scan", None)
        return 0

    # -- updates -------------------------------------------------------

    def hb_insert(self, td: IndexDescriptor, newrow, newrowid: int) -> int:
        td.user_data["tree_blob"].ensure_writable()
        td.user_data["hash_blob"].ensure_writable()
        key = self._encode(td, newrow[0])
        directory: HashDirectory = td.user_data["directory"]
        faults = self._faults()
        rehashes_before = directory.rehashes
        with self._guard(td.index_name).publishing(key):
            # Hash side first, tree side second: the window between the
            # two is exactly what the guard and the crash matrix probe.
            if faults is not None:
                faults.hit("hblade.hash_write")
            directory.insert(key, newrowid)
            if faults is not None:
                faults.hit("hblade.tree_write")
            td.user_data["tree"].insert(key, newrowid)
        self._inc("hblade.inserts")
        if directory.rehashes != rehashes_before:
            self._inc("hblade.rehashes")
        return 0

    def hb_delete(self, td: IndexDescriptor, oldrow, oldrowid: int) -> int:
        td.user_data["tree_blob"].ensure_writable()
        td.user_data["hash_blob"].ensure_writable()
        key = self._encode(td, oldrow[0])
        directory: HashDirectory = td.user_data["directory"]
        faults = self._faults()
        with self._guard(td.index_name).publishing(key):
            if faults is not None:
                faults.hit("hblade.hash_write")
            hash_found = directory.delete(key, oldrowid)
            if faults is not None:
                faults.hit("hblade.tree_write")
            tree_found = td.user_data["tree"].delete(key, oldrowid)
        if not (hash_found and tree_found):
            raise AccessMethodError(
                f"index {td.index_name} has no entry for rowid {oldrowid} "
                f"(hash={hash_found}, tree={tree_found})"
            )
        self._inc("hblade.deletes")
        return 0

    def hb_update(self, td, oldrow, oldrowid: int, newrow, newrowid: int) -> int:
        self.hb_delete(td, oldrow, oldrowid)
        self.hb_insert(td, newrow, newrowid)
        return 0

    # -- cost, stats, integrity ----------------------------------------

    def hb_scancost(self, sd: ScanDescriptor) -> float:
        """The optimizer hook: equality branches are priced as hash
        probes, range branches as tree descents -- so against a plain
        B+-tree index on the same column, equality predicates route
        here and the plan output shows it."""
        td = sd.index
        tree = td.user_data.get("tree")
        if tree is None:
            entry = self._handles.get(td.index_name.lower())
            tree = entry["tree"] if entry else None
        height = tree.height if tree is not None else 2
        hash_on = self._hash_path_enabled(td)
        cost = 0.0
        for branch in self._to_dnf(sd.qualification):
            if hash_on and self._is_point(branch):
                cost += _POINT_COST
            else:
                cost += height + _RANGE_COST_PAD
        return cost

    def _is_point(self, branch) -> bool:
        """Equality-only detection without an open index: a branch whose
        templates pin both bounds to one constant."""
        lows = [c for name, c in branch if _RANGES[name][0] == "K"]
        highs = [c for name, c in branch if _RANGES[name][1] == "K"]
        return bool(
            lows
            and highs
            and any(name == "equal" for name, _ in branch)
        )

    def hb_stats(self, td: IndexDescriptor) -> Dict[str, float]:
        tree: BPlusTree = td.user_data["tree"]
        directory: HashDirectory = td.user_data["directory"]
        stats: Dict[str, float] = dict(tree.stats())
        for name, value in directory.stats().items():
            stats[f"hash_{name}"] = value
        guard = self._guard(td.index_name)
        stats["guard_fallbacks"] = guard.fallbacks
        return stats

    def hb_check(self, td: IndexDescriptor) -> int:
        try:
            verify_hybrid(td.user_data["tree"], td.user_data["directory"])
        except AssertionError as exc:
            raise AccessMethodError(
                f"index {td.index_name} corrupt: {exc}"
            ) from exc
        return 0

    # -- qualification handling ----------------------------------------

    def _to_dnf(self, qual: Qualification):
        if isinstance(qual, SimpleQualification):
            name = qual.function.lower()
            if name.startswith("hb_"):
                name = name[3:]
            if name not in _RANGES:
                raise AccessMethodError(
                    f"{qual.function} is not a hybrid-AM strategy function"
                )
            if qual.constant_first:
                name = _COMMUTED[name]
            return [[(name, qual.constant)]]
        assert isinstance(qual, CompoundQualification)
        child_dnfs = [self._to_dnf(c) for c in qual.children]
        if qual.operator is BooleanOperator.OR:
            return [branch for dnf in child_dnfs for branch in dnf]
        result = [[]]
        for dnf in child_dnfs:
            result = [prefix + branch for prefix in result for branch in dnf]
        return result

    # ------------------------------------------------------------------

    def exports(self) -> Dict[str, Any]:
        purpose = {
            "hb_create": self.hb_create,
            "hb_drop": self.hb_drop,
            "hb_open": self.hb_open,
            "hb_close": self.hb_close,
            "hb_beginscan": self.hb_beginscan,
            "hb_endscan": self.hb_endscan,
            "hb_rescan": self.hb_rescan,
            "hb_getnext": self.hb_getnext,
            "hb_insert": self.hb_insert,
            "hb_delete": self.hb_delete,
            "hb_update": self.hb_update,
            "hb_scancost": self.hb_scancost,
            "hb_stats": self.hb_stats,
            "hb_check": self.hb_check,
        }
        strategies = {
            "hb_equal_udr": lambda a, b: _natural(a, b) == 0,
            "hb_gt_udr": lambda a, b: _natural(a, b) > 0,
            "hb_ge_udr": lambda a, b: _natural(a, b) >= 0,
            "hb_lt_udr": lambda a, b: _natural(a, b) < 0,
            "hb_le_udr": lambda a, b: _natural(a, b) <= 0,
            "hb_compare_udr": _natural,
            "hb_hash_udr": hb_hash_udr,
        }
        return {**purpose, **strategies}


def _natural(a, b) -> int:
    return (a > b) - (a < b)


def hb_hash_udr(value) -> int:
    """The default ``HB_Hash`` support: deterministic FNV-1a over the
    value's canonical text.  Satisfies the opclass contract with the
    natural comparator: equal values produce equal text."""
    return fnv1a(repr(_canonical(value)).encode("utf-8"))


class _HScan:
    """DNF scan routing each branch to its path, with deduplication."""

    def __init__(self, blade: HybridDataBlade, td: IndexDescriptor, branches):
        self.blade = blade
        self.td = td
        self.tree: BPlusTree = td.user_data["tree"]
        self.directory: HashDirectory = td.user_data["directory"]
        self.guard = blade._guard(td.index_name)
        self.key_type = blade._key_type(td)
        self.hash_enabled = blade._hash_path_enabled(td)
        self.branches = branches
        self.hash_branches = 0
        self.tree_branches = 0
        self.path = "tree"
        self.reset()

    def _bounds(self, branch):
        """Intersect the branch's range predicates into one interval."""
        low = high = None
        low_inc = high_inc = True
        for name, constant in branch:
            key = self.key_type.send(_canonical(constant))
            t_low, t_high, t_low_inc, t_high_inc = _RANGES[name]
            if t_low == "K":
                if low is None or self.tree.compare(key, low) > 0 or (
                    self.tree.compare(key, low) == 0 and not t_low_inc
                ):
                    low, low_inc = key, t_low_inc
            if t_high == "K":
                if high is None or self.tree.compare(key, high) < 0 or (
                    self.tree.compare(key, high) == 0 and not t_high_inc
                ):
                    high, high_inc = key, t_high_inc
        return low, high, low_inc, high_inc

    def _probe_hash(self, key: bytes) -> Tuple[List[Tuple[int, int]], bool]:
        """The guarded point lookup: probe, then validate against the
        precision guard; any overlap falls back to the tree path.

        Returns ``(matches, used_hash)`` so the caller can attribute
        the branch to the path that actually served it."""
        stamp = self.guard.read_stamp()
        if not self.guard.conflicts(key):
            matches = self.directory.lookup(key)
            if self.guard.validate(key, stamp):
                self.blade._inc("hblade.hash_path")
                return matches, True
        self.guard.record_fallback()
        self.blade._inc("hblade.guard_fallbacks")
        self.blade._inc("hblade.tree_path")
        return self.tree.search_equal(key), False

    def reset(self) -> None:
        self._results: List[Tuple[int, int, bytes]] = []
        self._pos = 0
        self.hash_branches = 0
        self.tree_branches = 0
        seen = set()
        for branch in self.branches:
            low, high, low_inc, high_inc = self._bounds(branch)
            is_point = (
                low is not None
                and high is not None
                and low_inc
                and high_inc
                and low == high
            )
            if is_point and self.hash_enabled:
                self.blade._inc("hblade.point_lookups")
                matches, used_hash = self._probe_hash(low)
                if used_hash:
                    self.hash_branches += 1
                else:
                    self.tree_branches += 1
                hits = [(rowid, fragid, low) for rowid, fragid in matches]
            else:
                self.tree_branches += 1
                if is_point:
                    self.blade._inc("hblade.point_lookups")
                else:
                    self.blade._inc("hblade.range_scans")
                self.blade._inc("hblade.tree_path")
                hits = [
                    (rowid, fragid, key)
                    for key, rowid, fragid in self.tree.search_range(
                        low, high, low_inc, high_inc
                    )
                ]
            for rowid, fragid, key in hits:
                if (rowid, fragid) not in seen:
                    seen.add((rowid, fragid))
                    self._results.append((rowid, fragid, key))
        if self.hash_branches and self.tree_branches:
            self.path = "mixed"
        elif self.hash_branches:
            self.path = "hash"
        else:
            self.path = "tree"

    def next(self) -> Optional[RowReference]:
        if self._pos >= len(self._results):
            return None
        rowid, fragid, key = self._results[self._pos]
        self._pos += 1
        return RowReference(
            rowid=rowid, fragid=fragid, row=(self.key_type.receive(key),)
        )
