"""``repro.hblade`` -- the Griffin-style hybrid hash + B+-tree DataBlade.

Registered through the paper's six-step recipe like every other blade:

>>> from repro.hblade import register_hybrid_blade
>>> blade = register_hybrid_blade(server)           # doctest: +SKIP
>>> server.execute(                                 # doctest: +SKIP
...     "CREATE INDEX hi ON t(k) USING hblade_am IN spc"
... )

Point lookups probe the hash directory, range scans walk the B+-tree,
and the :class:`~repro.hblade.guard.PrecisionGuard` keeps the two paths
consistent under concurrent structure modifications.
"""

from repro.hblade.blade import HybridDataBlade, hb_hash_udr
from repro.hblade.check import verify_hybrid
from repro.hblade.directory import HashDirectory, fnv1a
from repro.hblade.guard import PrecisionGuard
from repro.hblade.register import register_hybrid_blade

__all__ = [
    "HashDirectory",
    "HybridDataBlade",
    "PrecisionGuard",
    "fnv1a",
    "hb_hash_udr",
    "register_hybrid_blade",
    "verify_hybrid",
]
