"""Precision-locking-style consistency guard between the two index paths.

The hybrid AM updates two structures per mutation (hash directory first,
B+-tree second).  A point lookup that probes only the hash side while a
writer sits *between* those two writes could observe a key the tree path
would not yet (or no longer) return -- exactly the anomaly Griffin's
precision-locking check exists to rule out.

The guard is the in-memory half of that check: writers *publish* the key
they are about to touch for the duration of the two-structure window,
and hash-path readers *validate* that no publication overlapping their
key existed while they probed.  A reader that fails validation falls
back to the tree path (the authoritative order), so the hash path can
never return a row the tree path would miss, and never misses a row the
tree path would return.

Publications are predicates over key bytes, not row locks -- like
precision locks, conflict detection is a predicate-vs-object test
(here: byte equality on canonical keys) with no shared lock table with
the storage layer.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator


class PrecisionGuard:
    """Published in-flight writer keys + a validation epoch, per index."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: key bytes -> number of writers currently inside the window.
        self._in_flight: Dict[bytes, int] = {}
        #: Bumped on every publish and retire; readers snapshot it before
        #: probing and re-check after, so a window that opened *and*
        #: closed entirely during the probe is still detected.
        self.epoch = 0
        #: Lifetime count of hash-path probes that had to fall back.
        self.fallbacks = 0

    @contextmanager
    def publishing(self, key: bytes) -> Iterator[None]:
        """Writer side: publish *key* around the two-structure update."""
        with self._lock:
            self._in_flight[key] = self._in_flight.get(key, 0) + 1
            self.epoch += 1
        try:
            yield
        finally:
            with self._lock:
                remaining = self._in_flight[key] - 1
                if remaining:
                    self._in_flight[key] = remaining
                else:
                    del self._in_flight[key]
                self.epoch += 1

    def read_stamp(self) -> int:
        return self.epoch

    def conflicts(self, key: bytes) -> bool:
        """Is some writer currently inside the window for *key*?"""
        with self._lock:
            return key in self._in_flight

    def validate(self, key: bytes, stamp: int) -> bool:
        """Reader side: was the probe free of overlapping publications?

        True only if no writer holds *key* now and no publication
        activity happened at all since *stamp* was taken.  The epoch
        check is deliberately coarse (any write activity invalidates):
        falling back to the tree path is cheap and always correct,
        missing a conflict never is.
        """
        with self._lock:
            if key in self._in_flight:
                return False
            return self.epoch == stamp

    def record_fallback(self) -> None:
        with self._lock:
            self.fallbacks += 1
