"""The paged hash directory half of the hybrid access method.

Griffin (PAPERS.md) pairs a hash table with a B+-tree over the same
keys: point lookups probe the hash side in O(1) while range scans walk
the tree side.  This module is the hash side -- a bucket directory laid
out on the same kind of smart-blob page store the B+-tree uses, so both
halves of one index ride the same buffer pool machinery, WAL logging,
and crash recovery.

Layout (all little-endian, one structure per page):

* the **meta page** (page 0 of the blob) holds the magic, the bucket
  count, the entry count, and the page id of the first directory page;
* **directory pages** hold the bucket page-id table, chained through a
  ``next`` pointer when the doubled directory outgrows one page;
* **bucket pages** hold ``(key bytes, rowid, fragid)`` entries and chain
  into overflow pages when full.

Keys are *canonical encoded bytes* (the column type's ``send()`` output,
canonicalized by the blade); equality within a bucket is byte equality.
The placement function is injected (``hash_key``), so the blade can
route it through the operator class's ``HB_Hash`` support function --
the same dynamic-resolution story the B+-tree blade uses for
``Compare``.  The directory doubles when the average bucket occupancy
exceeds ``split_threshold``, rehashing every entry; placement must
therefore be deterministic across process restarts (no salted
``hash()``).
"""

from __future__ import annotations

import struct
from typing import Callable, Iterator, List, Optional, Tuple

from repro.storage.buffer import BufferPool

_META = struct.Struct("<4sqqq")  # magic, bucket_count, size, first dir page
_META_MAGIC = b"HDB1"
_DIR_HEADER = struct.Struct("<hq")  # entries on this page, next dir page
_DIR_SLOT = struct.Struct("<q")  # one bucket page id
_BUCKET_HEADER = struct.Struct("<hq")  # entry count, overflow page
_ENTRY_FIXED = struct.Struct("<Hqi")  # key length, rowid, fragid

#: Placement function over canonical encoded keys.
HashKey = Callable[[bytes], int]


def fnv1a(data: bytes) -> int:
    """64-bit FNV-1a -- the default placement hash.  Deterministic across
    processes (unlike Python's salted ``hash``), cheap over the short
    encoded keys an index column produces."""
    value = 0xCBF29CE484222325
    for byte in data:
        value ^= byte
        value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value


class HashDirectory:
    """A doubling bucket directory over a :class:`BufferPool`."""

    MIN_BUCKETS = 8

    def __init__(
        self,
        pool: BufferPool,
        hash_key: HashKey,
        *,
        bucket_pages: List[int],
        dir_pages: List[int],
        size: int = 0,
        split_threshold: int = 16,
    ) -> None:
        self.pool = pool
        self.page_size = pool.store.page_size
        self.hash_key = hash_key
        self.bucket_pages = bucket_pages
        self._dir_pages = dir_pages
        self.size = size
        self.split_threshold = split_threshold
        self.rehashes = 0
        self.dirty = False

    # ------------------------------------------------------------------
    # Creation and persistence
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        pool: BufferPool,
        hash_key: HashKey,
        *,
        initial_buckets: int = MIN_BUCKETS,
        split_threshold: int = 16,
    ) -> "HashDirectory":
        """Lay out a fresh directory; the caller's next ``save`` makes the
        meta page durable."""
        initial_buckets = max(cls.MIN_BUCKETS, int(initial_buckets))
        meta_page = pool.allocate()
        if meta_page != 0:
            raise ValueError(
                f"the meta page must be page 0 of a fresh blob, got {meta_page}"
            )
        directory = cls(
            pool,
            hash_key,
            bucket_pages=[],
            dir_pages=[],
            split_threshold=split_threshold,
        )
        directory.bucket_pages = [
            directory._new_bucket_page() for _ in range(initial_buckets)
        ]
        directory.dirty = True
        directory.save()
        return directory

    @classmethod
    def open(
        cls,
        pool: BufferPool,
        hash_key: HashKey,
        *,
        meta_page: int = 0,
        split_threshold: int = 16,
    ) -> "HashDirectory":
        magic, bucket_count, size, dir_page = _META.unpack_from(
            pool.read(meta_page), 0
        )
        if magic != _META_MAGIC:
            raise ValueError("hash directory storage is corrupt (bad magic)")
        bucket_pages: List[int] = []
        dir_pages: List[int] = []
        while dir_page != -1:
            dir_pages.append(dir_page)
            data = pool.read(dir_page)
            count, next_page = _DIR_HEADER.unpack_from(data, 0)
            offset = _DIR_HEADER.size
            for _ in range(count):
                (page_id,) = _DIR_SLOT.unpack_from(data, offset)
                bucket_pages.append(page_id)
                offset += _DIR_SLOT.size
            dir_page = next_page
        if len(bucket_pages) != bucket_count:
            raise ValueError(
                f"hash directory corrupt: meta says {bucket_count} buckets, "
                f"directory chain lists {len(bucket_pages)}"
            )
        return cls(
            pool,
            hash_key,
            bucket_pages=bucket_pages,
            dir_pages=dir_pages,
            size=size,
            split_threshold=split_threshold,
        )

    def save(self, meta_page: int = 0) -> None:
        """Write the meta page and the directory chain (if dirty)."""
        if not self.dirty:
            return
        slots_per_page = (self.page_size - _DIR_HEADER.size) // _DIR_SLOT.size
        chunks = [
            self.bucket_pages[start : start + slots_per_page]
            for start in range(0, len(self.bucket_pages), slots_per_page)
        ] or [[]]
        while len(self._dir_pages) < len(chunks):
            self._dir_pages.append(self.pool.allocate())
        while len(self._dir_pages) > len(chunks):
            self.pool.free(self._dir_pages.pop())
        for index, chunk in enumerate(chunks):
            next_page = (
                self._dir_pages[index + 1] if index + 1 < len(chunks) else -1
            )
            data = bytearray(self.page_size)
            _DIR_HEADER.pack_into(data, 0, len(chunk), next_page)
            offset = _DIR_HEADER.size
            for page_id in chunk:
                _DIR_SLOT.pack_into(data, offset, page_id)
                offset += _DIR_SLOT.size
            self.pool.write(self._dir_pages[index], bytes(data))
        self.pool.write(
            meta_page,
            _META.pack(
                _META_MAGIC,
                len(self.bucket_pages),
                self.size,
                self._dir_pages[0] if self._dir_pages else -1,
            ).ljust(self.page_size, b"\x00"),
        )
        self.dirty = False

    # ------------------------------------------------------------------
    # Bucket page codec
    # ------------------------------------------------------------------

    def _new_bucket_page(self) -> int:
        page_id = self.pool.allocate()
        self._write_bucket(page_id, [], -1)
        return page_id

    def _read_bucket(
        self, page_id: int
    ) -> Tuple[List[Tuple[bytes, int, int]], int]:
        data = self.pool.read(page_id)
        count, overflow = _BUCKET_HEADER.unpack_from(data, 0)
        entries: List[Tuple[bytes, int, int]] = []
        offset = _BUCKET_HEADER.size
        for _ in range(count):
            key_len, rowid, fragid = _ENTRY_FIXED.unpack_from(data, offset)
            offset += _ENTRY_FIXED.size
            entries.append((bytes(data[offset : offset + key_len]), rowid, fragid))
            offset += key_len
        return entries, overflow

    def _write_bucket(
        self, page_id: int, entries: List[Tuple[bytes, int, int]], overflow: int
    ) -> None:
        data = bytearray(self.page_size)
        _BUCKET_HEADER.pack_into(data, 0, len(entries), overflow)
        offset = _BUCKET_HEADER.size
        for key, rowid, fragid in entries:
            _ENTRY_FIXED.pack_into(data, offset, len(key), rowid, fragid)
            offset += _ENTRY_FIXED.size
            data[offset : offset + len(key)] = key
            offset += len(key)
        self.pool.write(page_id, bytes(data))

    def _entry_size(self, key: bytes) -> int:
        return _ENTRY_FIXED.size + len(key)

    def _bucket_bytes(self, entries: List[Tuple[bytes, int, int]]) -> int:
        return _BUCKET_HEADER.size + sum(
            self._entry_size(key) for key, _, _ in entries
        )

    def _bucket_for(self, key: bytes) -> int:
        return self.bucket_pages[self.hash_key(key) % len(self.bucket_pages)]

    # ------------------------------------------------------------------
    # Point operations
    # ------------------------------------------------------------------

    def lookup(self, key: bytes) -> List[Tuple[int, int]]:
        """All (rowid, fragid) stored under *key* -- one bucket chain."""
        results: List[Tuple[int, int]] = []
        page_id = self._bucket_for(key)
        while page_id != -1:
            entries, page_id = self._read_bucket(page_id)
            for entry_key, rowid, fragid in entries:
                if entry_key == key:
                    results.append((rowid, fragid))
        return results

    def insert(self, key: bytes, rowid: int, fragid: int = 0) -> None:
        if self._entry_size(key) > self.page_size - _BUCKET_HEADER.size:
            raise ValueError("key too large for the configured page size")
        page_id = self._bucket_for(key)
        while True:
            entries, overflow = self._read_bucket(page_id)
            if (
                self._bucket_bytes(entries) + self._entry_size(key)
                <= self.page_size
            ):
                entries.append((key, rowid, fragid))
                self._write_bucket(page_id, entries, overflow)
                break
            if overflow == -1:
                overflow = self._new_bucket_page()
                self._write_bucket(page_id, entries, overflow)
            page_id = overflow
        self.size += 1
        self.dirty = True
        if self.size > self.split_threshold * len(self.bucket_pages):
            self._rehash(2 * len(self.bucket_pages))

    def delete(self, key: bytes, rowid: int, fragid: int = 0) -> bool:
        page_id = self._bucket_for(key)
        while page_id != -1:
            entries, overflow = self._read_bucket(page_id)
            for index, (entry_key, entry_rowid, entry_fragid) in enumerate(
                entries
            ):
                if (
                    entry_key == key
                    and entry_rowid == rowid
                    and entry_fragid == fragid
                ):
                    del entries[index]
                    self._write_bucket(page_id, entries, overflow)
                    self.size -= 1
                    self.dirty = True
                    return True
            page_id = overflow
        return False

    # ------------------------------------------------------------------
    # Growth
    # ------------------------------------------------------------------

    def _rehash(self, new_bucket_count: int) -> None:
        """Double the directory: every entry moves to its new bucket.

        Runs inside the triggering statement's transaction; a crash
        mid-rehash is healed like any other torn multi-page write --
        the WAL never commits the statement, so recovery discards it.
        """
        entries = list(self.iter_all())
        old_pages: List[int] = []
        for page_id in self.bucket_pages:
            while page_id != -1:
                old_pages.append(page_id)
                _, page_id = self._read_bucket(page_id)
        buckets: List[List[Tuple[bytes, int, int]]] = [
            [] for _ in range(new_bucket_count)
        ]
        for key, rowid, fragid in entries:
            buckets[self.hash_key(key) % new_bucket_count].append(
                (key, rowid, fragid)
            )
        # Recycle the old chain pages before allocating the new layout.
        free_pages = old_pages[::-1]

        def next_page() -> int:
            return free_pages.pop() if free_pages else self.pool.allocate()

        self.bucket_pages = []
        for bucket in buckets:
            head = next_page()
            self.bucket_pages.append(head)
            page_id = head
            pending = list(bucket)
            while True:
                fitting: List[Tuple[bytes, int, int]] = []
                used = _BUCKET_HEADER.size
                while pending and used + self._entry_size(pending[0][0]) <= (
                    self.page_size
                ):
                    entry = pending.pop(0)
                    fitting.append(entry)
                    used += self._entry_size(entry[0])
                overflow = next_page() if pending else -1
                self._write_bucket(page_id, fitting, overflow)
                if overflow == -1:
                    break
                page_id = overflow
        for page_id in free_pages:
            self.pool.free(page_id)
        self.rehashes += 1
        self.dirty = True

    # ------------------------------------------------------------------
    # Iteration and integrity
    # ------------------------------------------------------------------

    def iter_all(self) -> Iterator[Tuple[bytes, int, int]]:
        for head in self.bucket_pages:
            page_id = head
            while page_id != -1:
                entries, page_id = self._read_bucket(page_id)
                yield from entries

    def check(self) -> None:
        """Verify placement, chain sanity, and the recorded size."""
        counted = 0
        seen_pages: set = set()
        for index, head in enumerate(self.bucket_pages):
            page_id = head
            while page_id != -1:
                if page_id in seen_pages:
                    raise AssertionError(
                        f"bucket chain cycle through page {page_id}"
                    )
                seen_pages.add(page_id)
                entries, page_id = self._read_bucket(page_id)
                for key, _, _ in entries:
                    counted += 1
                    placed = self.hash_key(key) % len(self.bucket_pages)
                    if placed != index:
                        raise AssertionError(
                            f"entry hashed to bucket {placed} found in "
                            f"bucket {index}"
                        )
        if counted != self.size:
            raise AssertionError(
                f"size mismatch: counted {counted}, recorded {self.size}"
            )

    def stats(self) -> dict:
        return {
            "buckets": len(self.bucket_pages),
            "size": self.size,
            "rehashes": self.rehashes,
        }
