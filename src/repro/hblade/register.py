"""Registration of the hybrid blade -- the six-step recipe, third time.

Same shape as ``register_btree_blade``: shared-library symbols, purpose
functions, strategy and support UDRs per indexable type, the secondary
access method, its default operator class, and the blade metadata table
-- all through the SQL surface under ``server.provisioning()``.

The one new ingredient is the second support function: ``HB_Hash`` joins
``HB_Compare`` in the opclass SUPPORT list, and the blade resolves both
dynamically (Step 4).  An alternative opclass can redefine either half
-- order and placement -- as long as it keeps the contract that
comparator-equal values hash equal.
"""

from __future__ import annotations

from typing import List

from repro.hblade.blade import HybridDataBlade

#: Types with binary send/receive, natural comparison, and stable repr.
INDEXABLE_TYPES = ("INTEGER", "FLOAT", "DATE", "LVARCHAR")


def register_hybrid_blade(
    server,
    buffer_capacity: int = 64,
    handle_cache: bool = True,
) -> HybridDataBlade:
    """Install the hybrid hash + B+-tree DataBlade."""
    blade = HybridDataBlade(
        server,
        buffer_capacity=buffer_capacity,
        handle_cache=handle_cache,
    )
    server.library.register_module(HybridDataBlade.LIBRARY_PATH, blade.exports())

    statements: List[str] = []
    for symbol in (
        "hb_create", "hb_drop", "hb_open", "hb_close", "hb_beginscan",
        "hb_endscan", "hb_rescan", "hb_getnext", "hb_insert", "hb_delete",
        "hb_update", "hb_scancost", "hb_stats", "hb_check",
    ):
        statements.append(
            f"CREATE FUNCTION {symbol}(pointer) RETURNING int "
            f"EXTERNAL NAME '{blade.LIBRARY_PATH}({symbol})' LANGUAGE c"
        )
    for type_name in INDEXABLE_TYPES:
        for name, symbol in (
            ("HB_Equal", "hb_equal_udr"),
            ("HB_GreaterThan", "hb_gt_udr"),
            ("HB_GreaterThanOrEqual", "hb_ge_udr"),
            ("HB_LessThan", "hb_lt_udr"),
            ("HB_LessThanOrEqual", "hb_le_udr"),
        ):
            statements.append(
                f"CREATE FUNCTION {name}({type_name}, {type_name}) "
                f"RETURNING boolean "
                f"EXTERNAL NAME '{blade.LIBRARY_PATH}({symbol})' LANGUAGE c"
            )
        statements.append(
            f"CREATE FUNCTION HB_Compare({type_name}, {type_name}) "
            f"RETURNING int "
            f"EXTERNAL NAME '{blade.LIBRARY_PATH}(hb_compare_udr)' LANGUAGE c"
        )
        statements.append(
            f"CREATE FUNCTION HB_Hash({type_name}) "
            f"RETURNING int "
            f"EXTERNAL NAME '{blade.LIBRARY_PATH}(hb_hash_udr)' LANGUAGE c"
        )
    slots = ", ".join(
        f"am_{slot} = hb_{slot}"
        for slot in (
            "create", "drop", "open", "close", "beginscan", "endscan",
            "rescan", "getnext", "insert", "delete", "update", "scancost",
            "stats", "check",
        )
    )
    statements.append(
        f'CREATE SECONDARY ACCESS_METHOD {blade.AM_NAME} ({slots}, '
        f'am_sptype = "S")'
    )
    statements.append(
        f"CREATE DEFAULT OPCLASS {blade.OPCLASS_NAME} FOR {blade.AM_NAME} "
        f"STRATEGIES(HB_Equal, HB_GreaterThan, HB_GreaterThanOrEqual, "
        f"HB_LessThan, HB_LessThanOrEqual) "
        f"SUPPORT(HB_Compare, HB_Hash)"
    )
    statements.append(
        f"CREATE TABLE {blade.METADATA_TABLE} "
        f"(indexname LVARCHAR, treehandle LVARCHAR, hashhandle LVARCHAR)"
    )
    with server.provisioning():
        server.run_script(";\n".join(statements))

    routines = server.catalog.routines
    routines.set_commutator("HB_GreaterThan", "HB_LessThan")
    routines.set_commutator("HB_LessThan", "HB_GreaterThan")
    routines.set_commutator("HB_GreaterThanOrEqual", "HB_LessThanOrEqual")
    routines.set_commutator("HB_LessThanOrEqual", "HB_GreaterThanOrEqual")
    routines.set_commutator("HB_Equal", "HB_Equal")
    return blade
