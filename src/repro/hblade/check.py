"""Structural verification of a hybrid index: both halves, then agreement.

The crash matrix and the differential suite call this after recovery or
randomized workloads: each structure must pass its own invariants, and
the two must index the *same multiset* of ``(key, rowid, fragid)``
entries -- the hash side may never know a row the tree side does not,
and vice versa.  A crash between the two write paths that recovery
failed to heal shows up here as a one-entry disagreement.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.btree.tree import BPlusTree
from repro.hblade.directory import HashDirectory


def verify_hybrid(tree: BPlusTree, directory: HashDirectory) -> None:
    """Assert the full hybrid invariant; raises ``AssertionError``."""
    tree.check()
    directory.check()
    tree_entries: List[Tuple[bytes, int, int]] = sorted(tree.iter_all())
    hash_entries: List[Tuple[bytes, int, int]] = sorted(directory.iter_all())
    if tree_entries != hash_entries:
        tree_only = _multiset_difference(tree_entries, hash_entries)
        hash_only = _multiset_difference(hash_entries, tree_entries)
        raise AssertionError(
            "hash/tree disagreement: "
            f"{len(tree_only)} entries only in the tree "
            f"(first: {tree_only[:3]}), "
            f"{len(hash_only)} entries only in the hash directory "
            f"(first: {hash_only[:3]})"
        )


def _multiset_difference(left: List, right: List) -> List:
    remaining = list(right)
    missing = []
    for item in left:
        try:
            remaining.remove(item)
        except ValueError:
            missing.append(item)
    return missing
