"""``repro.net``: the concurrent multi-client serving layer.

The paper's Section 5.3/5.4 machinery (LO-granularity two-phase locking,
isolation-dependent lock release, per-transaction current-time pinning)
only means anything under *concurrent sessions*; this package provides
them:

* :mod:`repro.net.protocol` -- the length-prefixed JSON wire format and
  the typed error codes that define the retry contract;
* :mod:`repro.net.server` -- a threaded TCP server binding each
  connection to its own session, with a bounded worker pool, admission
  control (``SERVER_BUSY`` instead of unbounded queueing), lock-wait
  with deadlock-by-timeout abort, dropped-connection rollback, and
  graceful drain shutdown;
* :mod:`repro.net.client` -- a driver with connect/read timeouts,
  exponential backoff with jitter, and transaction-level lock-conflict
  retry.

See ``docs/serving.md`` for the frame layout and the knobs.
"""

from repro.net.client import (
    ConnectionLostInTransaction,
    Profiled,
    RemoteStatementError,
    ReproClient,
    ReproClientError,
    RetryExhaustedError,
    ServerBusyError,
    TransientNetworkError,
    connect,
)
from repro.net.protocol import (
    LOCK_TIMEOUT,
    PROTOCOL_VERSION,
    SERVER_BUSY,
    SHUTTING_DOWN,
    SQL_ERROR,
    ProtocolError,
)
from repro.net.server import NetServer

__all__ = [
    "ConnectionLostInTransaction",
    "LOCK_TIMEOUT",
    "NetServer",
    "PROTOCOL_VERSION",
    "Profiled",
    "ProtocolError",
    "RemoteStatementError",
    "ReproClient",
    "ReproClientError",
    "RetryExhaustedError",
    "SERVER_BUSY",
    "SHUTTING_DOWN",
    "SQL_ERROR",
    "ServerBusyError",
    "TransientNetworkError",
    "connect",
]
