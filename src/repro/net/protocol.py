"""The length-prefixed wire protocol of the serving layer.

A *frame* is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON.  Every message is a JSON object with a ``kind``
discriminator::

    +----------------+---------------------------+
    | length (4B BE) | UTF-8 JSON body (<= 16MiB)|
    +----------------+---------------------------+

Client -> server kinds:

``hello``    ``{kind, protocol, client}`` -- opens the conversation
``execute``  ``{kind, sql[, trace_id, parent_span_id, profile,
             min_lsn]}`` -- run one SQL statement; the optional trace
             fields propagate the client's distributed-trace context,
             ``profile`` asks for the statement's stitched span tree in
             the reply, and ``min_lsn`` demands the server have applied
             at least that LSN first (read-your-writes on a replica)
``ping``     ``{kind}``                   -- liveness probe
``metrics``  ``{kind}``                   -- Prometheus-text scrape
``quit``     ``{kind}``                   -- orderly goodbye
``wal_subscribe`` ``{kind, from_lsn, replica}`` -- become a replication
             subscriber: the connection switches to a one-way stream of
             ``wal_frame`` messages starting at ``from_lsn``
``wal_ack``  ``{kind, applied_lsn, replica}`` -- replica progress
             report (feeds ``SHOW REPLICAS`` lag accounting)

Server -> client kinds:

``welcome``  ``{kind, protocol, server, connection_id}``
``result``   ``{kind, value, elapsed[, profile, lsn]}`` -- statement
             succeeded; ``profile`` is the server-side span tree when
             the execute frame asked for it, and ``lsn`` is the
             server's last WAL LSN after the statement (a read-your-
             writes token for replica routing)
``wal_frame`` ``{kind, records, last_lsn, now[, snapshot]}`` -- a batch
             of ``LogRecord.to_dict()`` payloads; ``last_lsn`` is the
             primary's newest LSN (an empty ``records`` list is a
             heartbeat), ``now`` the primary's wall clock for seconds-
             lag, and ``snapshot`` rides on the first frame after a
             subscribe (bootstrap state the log does not carry)
``error``    ``{kind, code, message, retryable, error_type,
              aborted_transaction}``
``metrics_result`` ``{kind, text}``       -- the exposition text
``pong`` / ``bye``

Trace fields are additive and optional, so tracing-aware and unaware
peers interoperate without a protocol version bump.

Error *codes* are the retry contract (see ``docs/serving.md``):

* ``SERVER_BUSY``     -- admission control rejected the statement; the
  connection is fine, retry the statement after backing off;
* ``LOCK_TIMEOUT``    -- the statement waited the server's lock-acquire
  timeout and gave up; if it ran inside an explicit transaction the
  server has aborted it (``aborted_transaction`` is true) and the whole
  transaction should be retried;
* ``SHUTTING_DOWN``   -- the server is draining; reconnect elsewhere;
* ``REPLICA_STALE``   -- a replica could not satisfy the session's
  staleness bound (or the execute frame's ``min_lsn``); the statement
  is safe to retry on another endpoint -- typically the primary;
* ``SQL_ERROR``       -- the statement itself is wrong; do not retry;
* ``PROTOCOL_ERROR`` / ``INTERNAL_ERROR`` -- framing or server bugs.

Values cross the wire as JSON: rows stay dicts, and any engine-side
object (``TimeExtent``, chronons, ...) is rendered through ``str`` --
the serving layer is a text surface, like the CLI shell.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, Optional

PROTOCOL_VERSION = 1

#: Frames above this size are refused on both sides (a corrupt length
#: prefix must not make the reader allocate gigabytes).
MAX_FRAME_BYTES = 16 * 1024 * 1024

_HEADER = struct.Struct(">I")

# -- error codes --------------------------------------------------------

SERVER_BUSY = "SERVER_BUSY"
LOCK_TIMEOUT = "LOCK_TIMEOUT"
SHUTTING_DOWN = "SHUTTING_DOWN"
SQL_ERROR = "SQL_ERROR"
PROTOCOL_ERROR = "PROTOCOL_ERROR"
INTERNAL_ERROR = "INTERNAL_ERROR"
REPLICA_STALE = "REPLICA_STALE"

#: Codes a driver may retry at *statement* granularity.  REPLICA_STALE
#: is deliberately absent: retrying the *same* replica is pointless;
#: the routing layer retries on a different endpoint instead.
STATEMENT_RETRYABLE = frozenset({SERVER_BUSY})
#: Codes a driver may retry at *transaction* granularity.
TRANSACTION_RETRYABLE = frozenset({SERVER_BUSY, LOCK_TIMEOUT})


class ProtocolError(Exception):
    """Malformed frame: bad length prefix, truncated body, or bad JSON."""


# -- value conversion ----------------------------------------------------


def jsonable(value: Any) -> Any:
    """Convert an engine result into a JSON-serializable shape.

    Containers are walked; scalars JSON knows pass through; everything
    else (``TimeExtent``, enum members, ...) becomes ``str(value)``.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(key): jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    return str(value)


# -- framing -------------------------------------------------------------


def encode_frame(message: Dict[str, Any]) -> bytes:
    """Serialize *message* to its on-wire bytes (header + body)."""
    body = json.dumps(message, separators=(",", ":"), default=str).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(body)} bytes exceeds the maximum")
    return _HEADER.pack(len(body)) + body


def write_frame(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Serialize *message* and send it as one frame."""
    sock.sendall(encode_frame(message))


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly *count* bytes; ``None`` on EOF before the first byte."""
    chunks = []
    received = 0
    while received < count:
        chunk = sock.recv(count - received)
        if not chunk:
            if received == 0:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({received}/{count} bytes)"
            )
        chunks.append(chunk)
        received += len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on a clean EOF at a frame boundary."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds the maximum")
    body = _recv_exact(sock, length) if length else b""
    if body is None:
        raise ProtocolError("connection closed between header and body")
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame body: {exc}") from exc
    if not isinstance(message, dict) or "kind" not in message:
        raise ProtocolError(f"frame is not a tagged object: {message!r}")
    return message


# -- message builders ----------------------------------------------------


def hello(client: str = "repro-client") -> Dict[str, Any]:
    return {"kind": "hello", "protocol": PROTOCOL_VERSION, "client": client}


def welcome(connection_id: int, server: str = "repro-server") -> Dict[str, Any]:
    return {
        "kind": "welcome",
        "protocol": PROTOCOL_VERSION,
        "server": server,
        "connection_id": connection_id,
    }


def execute(
    sql: str,
    *,
    trace_id: Optional[str] = None,
    parent_span_id: Optional[int] = None,
    profile: bool = False,
    min_lsn: Optional[int] = None,
) -> Dict[str, Any]:
    message: Dict[str, Any] = {"kind": "execute", "sql": sql}
    if trace_id is not None:
        message["trace_id"] = trace_id
        if parent_span_id is not None:
            message["parent_span_id"] = parent_span_id
    if profile:
        message["profile"] = True
    if min_lsn is not None:
        message["min_lsn"] = min_lsn
    return message


def result(
    value: Any,
    elapsed: float,
    profile: Optional[Dict[str, Any]] = None,
    lsn: Optional[int] = None,
) -> Dict[str, Any]:
    message: Dict[str, Any] = {
        "kind": "result",
        "value": jsonable(value),
        "elapsed": elapsed,
    }
    if profile is not None:
        message["profile"] = jsonable(profile)
    if lsn is not None:
        message["lsn"] = lsn
    return message


def wal_subscribe(from_lsn: int, replica: str = "replica") -> Dict[str, Any]:
    return {"kind": "wal_subscribe", "from_lsn": from_lsn, "replica": replica}


def wal_frame(
    records: list,
    last_lsn: int,
    now: float,
    snapshot: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    message: Dict[str, Any] = {
        "kind": "wal_frame",
        "records": records,
        "last_lsn": last_lsn,
        "now": now,
    }
    if snapshot is not None:
        message["snapshot"] = snapshot
    return message


def wal_ack(applied_lsn: int, replica: str = "replica") -> Dict[str, Any]:
    return {"kind": "wal_ack", "applied_lsn": applied_lsn, "replica": replica}


def metrics() -> Dict[str, Any]:
    return {"kind": "metrics"}


def metrics_result(text: str) -> Dict[str, Any]:
    return {"kind": "metrics_result", "text": text}


def error(
    code: str,
    message: str,
    *,
    retryable: bool = False,
    error_type: Optional[str] = None,
    aborted_transaction: bool = False,
) -> Dict[str, Any]:
    return {
        "kind": "error",
        "code": code,
        "message": message,
        "retryable": retryable,
        "error_type": error_type,
        "aborted_transaction": aborted_transaction,
    }


def ping() -> Dict[str, Any]:
    return {"kind": "ping"}


def pong() -> Dict[str, Any]:
    return {"kind": "pong"}


def quit_() -> Dict[str, Any]:
    return {"kind": "quit"}


def bye() -> Dict[str, Any]:
    return {"kind": "bye"}
