"""The retrying client driver for the serving layer.

Retry policy (the driver half of the contract in ``docs/serving.md``):

* **transient socket failures** (refused connect, reset, timeout) and
  ``SERVER_BUSY`` rejections retry the *statement* with exponential
  backoff plus full jitter, up to ``max_retries`` attempts -- unless an
  explicit transaction is open, in which case the server-side session
  (and its locks, and its pinned current time) is gone and only the
  whole transaction can be retried;
* ``LOCK_TIMEOUT`` aborts the server-side transaction, so
  :meth:`ReproClient.run_transaction` retries the *transaction*: it is
  the client-side loop the paper's Section 5.3 discussion implies for
  serializable (repeatable-read) sessions whose lock conflicts cannot
  be prevented at the DataBlade level;
* ``SQL_ERROR`` never retries -- the statement itself is wrong.

The driver tracks transaction state by sniffing ``BEGIN`` / ``COMMIT`` /
``ROLLBACK`` statements, the same trick every SQL driver with implicit
reconnects uses.
"""

from __future__ import annotations

import random
import socket
import time
from typing import Any, Callable, Dict, Optional

from repro.net import protocol


class ReproClientError(Exception):
    """Base class for driver-side failures."""


class TransientNetworkError(ReproClientError):
    """Connect/read failed at the socket level; possibly retryable."""


class ServerBusyError(ReproClientError):
    """Admission control rejected the statement and retries ran out."""


class ConnectionLostInTransaction(ReproClientError):
    """The link died inside an explicit transaction; its server-side
    session, locks, and pinned current time are gone.  Retry the whole
    transaction (``run_transaction`` does)."""


class RemoteStatementError(ReproClientError):
    """The server answered with a typed error frame."""

    def __init__(self, message: Dict[str, Any]) -> None:
        self.code: str = message.get("code", protocol.INTERNAL_ERROR)
        self.remote_message: str = message.get("message", "")
        self.error_type: Optional[str] = message.get("error_type")
        self.retryable: bool = bool(message.get("retryable"))
        self.aborted_transaction: bool = bool(message.get("aborted_transaction"))
        super().__init__(f"{self.code}: {self.remote_message}")


class RetryExhaustedError(ReproClientError):
    """``run_transaction`` gave up after its attempt budget."""


def _is_begin(sql: str) -> bool:
    return sql.lstrip().upper().startswith("BEGIN")


def _is_end(sql: str) -> bool:
    head = sql.lstrip().upper()
    return head.startswith("COMMIT") or head.startswith("ROLLBACK")


class ReproClient:
    """One connection to a :class:`~repro.net.server.NetServer`."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        connect_timeout: float = 5.0,
        read_timeout: float = 30.0,
        max_retries: int = 6,
        backoff_base: float = 0.02,
        backoff_cap: float = 1.0,
        client_name: str = "repro-client",
        rng: Optional[random.Random] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self.read_timeout = read_timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.client_name = client_name
        self._rng = rng if rng is not None else random.Random()
        self._sock: Optional[socket.socket] = None
        self.connection_id: Optional[int] = None
        self.in_transaction = False
        #: Driver-side telemetry, mostly for the tests and benchmarks.
        self.stats: Dict[str, int] = {
            "connects": 0,
            "statements": 0,
            "busy_retries": 0,
            "network_retries": 0,
            "transaction_retries": 0,
        }

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------

    def connect(self) -> "ReproClient":
        """(Re)connect, with backoff across transient connect failures."""
        attempt = 0
        while True:
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.connect_timeout
                )
                break
            except OSError as exc:
                attempt += 1
                if attempt > self.max_retries:
                    raise TransientNetworkError(
                        f"cannot connect to {self.host}:{self.port}: {exc}"
                    ) from exc
                self.stats["network_retries"] += 1
                time.sleep(self._backoff(attempt))
        sock.settimeout(self.read_timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self.in_transaction = False
        self.stats["connects"] += 1
        protocol.write_frame(sock, protocol.hello(self.client_name))
        reply = protocol.read_frame(sock)
        if reply is None or reply.get("kind") != "welcome":
            self._teardown()
            raise TransientNetworkError(f"handshake failed: {reply!r}")
        self.connection_id = reply.get("connection_id")
        return self

    def close(self) -> None:
        sock = self._sock
        if sock is None:
            return
        try:
            protocol.write_frame(sock, protocol.quit_())
            protocol.read_frame(sock)  # best-effort "bye"
        except (OSError, protocol.ProtocolError):
            pass
        self._teardown()

    def _teardown(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        self._sock = None
        self.connection_id = None

    def __enter__(self) -> "ReproClient":
        if self._sock is None:
            self.connect()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _backoff(self, attempt: int) -> float:
        """Exponential backoff with full jitter (attempts are 1-based)."""
        ceiling = min(self.backoff_cap, self.backoff_base * (2 ** (attempt - 1)))
        return self._rng.uniform(self.backoff_base / 4, ceiling)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def execute(self, sql: str) -> Any:
        """Run one statement, retrying what is safe to retry.

        Returns the statement's value (rows come back as a list of
        dicts with engine objects rendered to text).
        """
        attempt = 0
        while True:
            try:
                if self._sock is None:
                    self.connect()
                assert self._sock is not None
                protocol.write_frame(self._sock, protocol.execute(sql))
                reply = protocol.read_frame(self._sock)
                if reply is None:
                    raise protocol.ProtocolError("server closed the connection")
            except (OSError, protocol.ProtocolError) as exc:
                was_in_transaction = self.in_transaction
                self._teardown()
                self.in_transaction = False
                if was_in_transaction:
                    raise ConnectionLostInTransaction(
                        f"connection lost mid-transaction running {sql!r}: {exc}"
                    ) from exc
                attempt += 1
                if attempt > self.max_retries:
                    raise TransientNetworkError(
                        f"giving up on {sql!r} after {self.max_retries} "
                        f"network retries: {exc}"
                    ) from exc
                self.stats["network_retries"] += 1
                time.sleep(self._backoff(attempt))
                continue
            kind = reply.get("kind")
            if kind == "result":
                self.stats["statements"] += 1
                if _is_begin(sql):
                    self.in_transaction = True
                elif _is_end(sql):
                    self.in_transaction = False
                return reply.get("value")
            if kind != "error":
                raise ReproClientError(f"unexpected reply {reply!r}")
            code = reply.get("code")
            if code in (protocol.SERVER_BUSY, protocol.SHUTTING_DOWN) and not (
                self.in_transaction and code == protocol.SHUTTING_DOWN
            ):
                attempt += 1
                if attempt > self.max_retries:
                    raise ServerBusyError(
                        f"{code} after {self.max_retries} retries: "
                        f"{reply.get('message')}"
                    )
                self.stats["busy_retries"] += 1
                time.sleep(self._backoff(attempt))
                continue
            error = RemoteStatementError(reply)
            if error.aborted_transaction:
                self.in_transaction = False
            raise error

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def run_transaction(
        self,
        body: Callable[["ReproClient"], Any],
        *,
        isolation: Optional[str] = None,
        attempts: int = 8,
    ) -> Any:
        """Run ``body`` inside BEGIN/COMMIT, retrying lock casualties.

        ``body`` receives this client and issues statements through it;
        it must be idempotent up to its own reads (it is re-executed
        from scratch on retry).  Retried failures: ``LOCK_TIMEOUT``
        (the server already aborted us as a deadlock-by-timeout victim),
        ``SERVER_BUSY`` exhaustion, and a connection lost mid-flight.
        With ``isolation="REPEATABLE READ"`` this is the serializable
        retry loop the Section 5.3 lock discussion calls for.
        """
        last_error: Optional[Exception] = None
        for attempt in range(1, attempts + 1):
            try:
                if isolation is not None:
                    self.execute(f"SET ISOLATION TO {isolation}")
                self.execute("BEGIN WORK")
                value = body(self)
                self.execute("COMMIT WORK")
                return value
            except RemoteStatementError as error:
                if error.code not in protocol.TRANSACTION_RETRYABLE:
                    self._rollback_quietly()
                    raise
                last_error = error
            except (
                ConnectionLostInTransaction,
                ServerBusyError,
                TransientNetworkError,
            ) as error:
                last_error = error
            self._rollback_quietly()
            self.stats["transaction_retries"] += 1
            time.sleep(self._backoff(attempt))
        raise RetryExhaustedError(
            f"transaction failed after {attempts} attempts: {last_error}"
        ) from last_error

    def _rollback_quietly(self) -> None:
        """Best-effort ROLLBACK; the transaction may already be gone."""
        if not self.in_transaction:
            return
        try:
            self.execute("ROLLBACK WORK")
        except ReproClientError:
            self.in_transaction = False

    # ------------------------------------------------------------------

    def ping(self) -> bool:
        try:
            if self._sock is None:
                self.connect()
            assert self._sock is not None
            protocol.write_frame(self._sock, protocol.ping())
            reply = protocol.read_frame(self._sock)
            return bool(reply) and reply.get("kind") == "pong"
        except (OSError, protocol.ProtocolError):
            self._teardown()
            return False


def connect(host: str, port: int, **kwargs: Any) -> ReproClient:
    """Convenience: build a :class:`ReproClient` and connect it."""
    return ReproClient(host, port, **kwargs).connect()
