"""The retrying client driver for the serving layer.

Retry policy (the driver half of the contract in ``docs/serving.md``):

* **transient socket failures** (refused connect, reset, timeout) and
  ``SERVER_BUSY`` rejections retry the *statement* with exponential
  backoff plus full jitter, up to ``max_retries`` attempts -- unless an
  explicit transaction is open, in which case the server-side session
  (and its locks, and its pinned current time) is gone and only the
  whole transaction can be retried;
* ``LOCK_TIMEOUT`` aborts the server-side transaction, so
  :meth:`ReproClient.run_transaction` retries the *transaction*: it is
  the client-side loop the paper's Section 5.3 discussion implies for
  serializable (repeatable-read) sessions whose lock conflicts cannot
  be prevented at the DataBlade level;
* ``SQL_ERROR`` never retries -- the statement itself is wrong.

The driver tracks transaction state by sniffing ``BEGIN`` / ``COMMIT`` /
``ROLLBACK`` statements, the same trick every SQL driver with implicit
reconnects uses.
"""

from __future__ import annotations

import itertools
import random
import socket
import time
from typing import Any, Callable, Dict, List, Optional

from repro.net import protocol


class ReproClientError(Exception):
    """Base class for driver-side failures."""


class TransientNetworkError(ReproClientError):
    """Connect/read failed at the socket level; possibly retryable."""


class ServerBusyError(ReproClientError):
    """Admission control rejected the statement and retries ran out."""


class ConnectionLostInTransaction(ReproClientError):
    """The link died inside an explicit transaction; its server-side
    session, locks, and pinned current time are gone.  Retry the whole
    transaction (``run_transaction`` does)."""


class RemoteStatementError(ReproClientError):
    """The server answered with a typed error frame."""

    def __init__(self, message: Dict[str, Any]) -> None:
        self.code: str = message.get("code", protocol.INTERNAL_ERROR)
        self.remote_message: str = message.get("message", "")
        self.error_type: Optional[str] = message.get("error_type")
        self.retryable: bool = bool(message.get("retryable"))
        self.aborted_transaction: bool = bool(message.get("aborted_transaction"))
        super().__init__(f"{self.code}: {self.remote_message}")


class RetryExhaustedError(ReproClientError):
    """``run_transaction`` gave up after its attempt budget."""


class Profiled:
    """An ``explain_profile=True`` result: the value plus the stitched
    distributed trace.

    ``trace`` is the client-side root span (a ``Span.to_dict``-shaped
    dict) whose single child is the server's root span for the same
    statement -- client -> server -> executor -> storage in one tree.
    """

    __slots__ = ("value", "trace_id", "trace", "server_elapsed")

    def __init__(
        self,
        value: Any,
        trace_id: Optional[str],
        trace: Dict[str, Any],
        server_elapsed: Optional[float],
    ) -> None:
        self.value = value
        self.trace_id = trace_id
        self.trace = trace
        self.server_elapsed = server_elapsed

    def span_names(self) -> List[str]:
        """Every span name in the stitched tree, preorder."""
        names: List[str] = []

        def walk(node: Dict[str, Any]) -> None:
            names.append(node.get("name", ""))
            for child in node.get("children", ()):
                walk(child)

        walk(self.trace)
        return names

    def leaves(self) -> List[Dict[str, Any]]:
        """The childless spans of the stitched tree."""
        found: List[Dict[str, Any]] = []

        def walk(node: Dict[str, Any]) -> None:
            children = node.get("children") or ()
            if not children:
                found.append(node)
            for child in children:
                walk(child)

        walk(self.trace)
        return found

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Profiled(trace_id={self.trace_id!r}, value={self.value!r})"


def _is_begin(sql: str) -> bool:
    return sql.lstrip().upper().startswith("BEGIN")


def _is_end(sql: str) -> bool:
    head = sql.lstrip().upper()
    return head.startswith("COMMIT") or head.startswith("ROLLBACK")


class ReproClient:
    """One connection to a :class:`~repro.net.server.NetServer`."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        connect_timeout: float = 5.0,
        read_timeout: float = 30.0,
        max_retries: int = 6,
        backoff_base: float = 0.02,
        backoff_cap: float = 1.0,
        client_name: str = "repro-client",
        rng: Optional[random.Random] = None,
        tracing: bool = True,
    ) -> None:
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self.read_timeout = read_timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.client_name = client_name
        #: Mint and propagate a ``trace_id`` per statement.  Off, the
        #: driver sends bare execute frames (the overhead-gate baseline).
        self.tracing = tracing
        self._rng = rng if rng is not None else random.Random()
        self._span_ids = itertools.count(1)
        #: The trace id of the most recent traced statement -- what you
        #: pass to ``SHOW TRACE`` server-side.
        self.last_trace_id: Optional[str] = None
        self._sock: Optional[socket.socket] = None
        self.connection_id: Optional[int] = None
        self.in_transaction = False
        #: The server's WAL position after our most recent statement --
        #: the read-your-writes token replica routing passes as
        #: ``min_lsn`` (see ``repro.repl.router``).
        self.last_lsn: Optional[int] = None
        #: Driver-side telemetry, mostly for the tests and benchmarks.
        self.stats: Dict[str, int] = {
            "connects": 0,
            "statements": 0,
            "busy_retries": 0,
            "network_retries": 0,
            "transaction_retries": 0,
        }

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------

    def connect(self) -> "ReproClient":
        """(Re)connect, with backoff across transient connect failures."""
        attempt = 0
        while True:
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.connect_timeout
                )
                break
            except OSError as exc:
                attempt += 1
                if attempt > self.max_retries:
                    raise TransientNetworkError(
                        f"cannot connect to {self.host}:{self.port}: {exc}"
                    ) from exc
                self.stats["network_retries"] += 1
                time.sleep(self._backoff(attempt))
        sock.settimeout(self.read_timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self.in_transaction = False
        self.stats["connects"] += 1
        protocol.write_frame(sock, protocol.hello(self.client_name))
        reply = protocol.read_frame(sock)
        if reply is None or reply.get("kind") != "welcome":
            self._teardown()
            raise TransientNetworkError(f"handshake failed: {reply!r}")
        self.connection_id = reply.get("connection_id")
        return self

    def close(self) -> None:
        sock = self._sock
        if sock is None:
            return
        try:
            protocol.write_frame(sock, protocol.quit_())
            protocol.read_frame(sock)  # best-effort "bye"
        except (OSError, protocol.ProtocolError):
            pass
        self._teardown()

    def _teardown(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        self._sock = None
        self.connection_id = None

    def __enter__(self) -> "ReproClient":
        if self._sock is None:
            self.connect()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _backoff(self, attempt: int) -> float:
        """Exponential backoff with full jitter (attempts are 1-based)."""
        ceiling = min(self.backoff_cap, self.backoff_base * (2 ** (attempt - 1)))
        return self._rng.uniform(self.backoff_base / 4, ceiling)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _mint_trace_id(self) -> str:
        """A 128-bit hex trace id from the (injectable) driver rng."""
        return "%032x" % self._rng.getrandbits(128)

    def execute(
        self,
        sql: str,
        *,
        explain_profile: bool = False,
        min_lsn: Optional[int] = None,
    ) -> Any:
        """Run one statement, retrying what is safe to retry.

        Returns the statement's value (rows come back as a list of
        dicts with engine objects rendered to text).  With tracing on,
        each statement carries a fresh ``trace_id`` (stable across this
        call's retries) that the server stamps through its span tree;
        with ``explain_profile=True`` the return value is a
        :class:`Profiled` stitching the client span over the server's
        tree for that trace.  ``min_lsn`` demands the server have
        applied at least that WAL position first; a replica that cannot
        answers ``REPLICA_STALE`` (routing retries elsewhere).
        """
        trace_id = parent_span_id = None
        if self.tracing or explain_profile:
            trace_id = self._mint_trace_id()
            parent_span_id = next(self._span_ids)
            self.last_trace_id = trace_id
        request = protocol.execute(
            sql,
            trace_id=trace_id,
            parent_span_id=parent_span_id,
            profile=explain_profile,
            min_lsn=min_lsn,
        )
        attempt = 0
        while True:
            try:
                if self._sock is None:
                    self.connect()
                assert self._sock is not None
                attempt_started = time.perf_counter()
                protocol.write_frame(self._sock, request)
                reply = protocol.read_frame(self._sock)
                if reply is None:
                    raise protocol.ProtocolError("server closed the connection")
            except (OSError, protocol.ProtocolError) as exc:
                was_in_transaction = self.in_transaction
                self._teardown()
                self.in_transaction = False
                if was_in_transaction:
                    raise ConnectionLostInTransaction(
                        f"connection lost mid-transaction running {sql!r}: {exc}"
                    ) from exc
                attempt += 1
                if attempt > self.max_retries:
                    raise TransientNetworkError(
                        f"giving up on {sql!r} after {self.max_retries} "
                        f"network retries: {exc}"
                    ) from exc
                self.stats["network_retries"] += 1
                time.sleep(self._backoff(attempt))
                continue
            kind = reply.get("kind")
            if kind == "result":
                self.stats["statements"] += 1
                if reply.get("lsn") is not None:
                    self.last_lsn = reply["lsn"]
                if _is_begin(sql):
                    self.in_transaction = True
                elif _is_end(sql):
                    self.in_transaction = False
                value = reply.get("value")
                if not explain_profile:
                    return value
                duration = time.perf_counter() - attempt_started
                server_tree = reply.get("profile")
                trace = {
                    "name": "client.execute",
                    "span_id": parent_span_id or 0,
                    "attrs": {
                        "sql": sql,
                        "trace_id": trace_id,
                        "client": self.client_name,
                        "conn": self.connection_id,
                    },
                    "duration": duration,
                    "metric_deltas": {},
                    "children": [server_tree] if server_tree else [],
                }
                return Profiled(
                    value, trace_id, trace, reply.get("elapsed")
                )
            if kind != "error":
                raise ReproClientError(f"unexpected reply {reply!r}")
            code = reply.get("code")
            if code in (protocol.SERVER_BUSY, protocol.SHUTTING_DOWN) and not (
                self.in_transaction and code == protocol.SHUTTING_DOWN
            ):
                attempt += 1
                if attempt > self.max_retries:
                    raise ServerBusyError(
                        f"{code} after {self.max_retries} retries: "
                        f"{reply.get('message')}"
                    )
                self.stats["busy_retries"] += 1
                time.sleep(self._backoff(attempt))
                continue
            error = RemoteStatementError(reply)
            if error.aborted_transaction:
                self.in_transaction = False
            raise error

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def run_transaction(
        self,
        body: Callable[["ReproClient"], Any],
        *,
        isolation: Optional[str] = None,
        attempts: int = 8,
    ) -> Any:
        """Run ``body`` inside BEGIN/COMMIT, retrying lock casualties.

        ``body`` receives this client and issues statements through it;
        it must be idempotent up to its own reads (it is re-executed
        from scratch on retry).  Retried failures: ``LOCK_TIMEOUT``
        (the server already aborted us as a deadlock-by-timeout victim),
        ``SERVER_BUSY`` exhaustion, and a connection lost mid-flight.
        With ``isolation="REPEATABLE READ"`` this is the serializable
        retry loop the Section 5.3 lock discussion calls for.
        """
        last_error: Optional[Exception] = None
        for attempt in range(1, attempts + 1):
            try:
                if isolation is not None:
                    self.execute(f"SET ISOLATION TO {isolation}")
                self.execute("BEGIN WORK")
                value = body(self)
                self.execute("COMMIT WORK")
                return value
            except RemoteStatementError as error:
                if error.code not in protocol.TRANSACTION_RETRYABLE:
                    self._rollback_quietly()
                    raise
                last_error = error
            except (
                ConnectionLostInTransaction,
                ServerBusyError,
                TransientNetworkError,
            ) as error:
                last_error = error
            self._rollback_quietly()
            self.stats["transaction_retries"] += 1
            time.sleep(self._backoff(attempt))
        raise RetryExhaustedError(
            f"transaction failed after {attempts} attempts: {last_error}"
        ) from last_error

    def _rollback_quietly(self) -> None:
        """Best-effort ROLLBACK; the transaction may already be gone."""
        if not self.in_transaction:
            return
        try:
            self.execute("ROLLBACK WORK")
        except ReproClientError:
            self.in_transaction = False

    # ------------------------------------------------------------------

    def ping(self) -> bool:
        try:
            if self._sock is None:
                self.connect()
            assert self._sock is not None
            protocol.write_frame(self._sock, protocol.ping())
            reply = protocol.read_frame(self._sock)
            return bool(reply) and reply.get("kind") == "pong"
        except (OSError, protocol.ProtocolError):
            self._teardown()
            return False

    def metrics(self) -> str:
        """Scrape the server's Prometheus-text metrics exposition."""
        try:
            if self._sock is None:
                self.connect()
            assert self._sock is not None
            protocol.write_frame(self._sock, protocol.metrics())
            reply = protocol.read_frame(self._sock)
        except (OSError, protocol.ProtocolError) as exc:
            self._teardown()
            raise TransientNetworkError(f"metrics scrape failed: {exc}") from exc
        if reply is None or reply.get("kind") != "metrics_result":
            raise ReproClientError(f"unexpected metrics reply {reply!r}")
        return reply.get("text", "")


def connect(host: str, port: int, **kwargs: Any) -> ReproClient:
    """Convenience: build a :class:`ReproClient` and connect it."""
    return ReproClient(host, port, **kwargs).connect()
