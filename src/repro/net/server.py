"""A threaded TCP front end over :class:`~repro.server.DatabaseServer`.

Architecture (one process, many threads)::

    accept thread ──> per-connection reader threads ──> bounded job queue
                                                             │
                                      worker pool (N threads)┘
                                             │
                              engine big lock (one statement at a time)

Each accepted connection gets its *own* :class:`~repro.server.session.
Session`, so explicit transactions, isolation levels, and the Section
5.4 per-transaction current-time pin are per-client state, exactly as
they would be in the paper's Informix deployment.  Statements travel
through a bounded queue; when it is full the server answers with a
typed ``SERVER_BUSY`` error *immediately* instead of letting latency
grow without bound -- backpressure, not collapse.

Lock conflicts block *outside* the engine: a statement that hits a
:class:`~repro.storage.locks.LockConflictError` releases the engine and
retries with jittered backoff until ``lock_timeout`` elapses, at which
point the server aborts the waiting transaction (deadlock-by-timeout)
and reports ``LOCK_TIMEOUT``.  A connection that dies mid-transaction is
rolled back on the spot, releasing every lock it held, so one killed
client can never wedge the rest of the fleet for longer than the
lock-acquire timeout.
"""

from __future__ import annotations

import itertools
import queue
import random
import socket
import threading
import time
from typing import Dict, Optional, Tuple

from repro.faults import SimulatedCrash
from repro.net import protocol
from repro.obs.export import prometheus_text
from repro.server import DatabaseServer, ServerError
from repro.server.errors import ReplicaStaleError
from repro.server.session import Session
from repro.storage.locks import LockConflictError

#: Worker-loop poison pill.
_STOP = object()


class _Connection:
    """Server-side connection state: socket + session + serialization."""

    def __init__(self, conn_id: int, sock: socket.socket, session: Session) -> None:
        self.conn_id = conn_id
        self.sock = sock
        self.session = session
        #: Set when this connection subscribed as a replica; teardown
        #: then also unsubscribes it from the WAL shipper.
        self.replica_name: Optional[str] = None
        #: One frame writer at a time (reader replies + worker replies).
        self.write_lock = threading.Lock()
        #: One in-flight statement per connection: a pipelining client
        #: cannot get two workers racing on the same session.
        self.exec_lock = threading.Lock()
        self.closed = threading.Event()
        self._drop_once = threading.Lock()
        self._dropped = False

    def begin_drop(self) -> bool:
        """Atomically claim the teardown; True for exactly one caller."""
        with self._drop_once:
            if self._dropped:
                return False
            self._dropped = True
            return True


class NetServer:
    """Serve a :class:`DatabaseServer` to concurrent TCP clients."""

    def __init__(
        self,
        db: DatabaseServer,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        workers: int = 4,
        queue_depth: int = 32,
        lock_timeout: float = 2.0,
        lock_retry_interval: float = 0.005,
        drain_timeout: float = 10.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("need at least one worker thread")
        if queue_depth < 1:
            raise ValueError("admission queue needs capacity >= 1")
        self.db = db
        self.host = host
        self.port = port
        self.workers = workers
        self.queue_depth = queue_depth
        #: How long a statement may wait for a conflicting lock before
        #: the server gives up and aborts its transaction.
        self.lock_timeout = lock_timeout
        self.lock_retry_interval = lock_retry_interval
        self.drain_timeout = drain_timeout
        self._rng = rng if rng is not None else random.Random()
        self._jobs: "queue.Queue[object]" = queue.Queue(maxsize=queue_depth)
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._worker_threads: list[threading.Thread] = []
        self._reader_threads: list[threading.Thread] = []
        self._connections: Dict[int, _Connection] = {}
        self._conn_lock = threading.Lock()
        self._conn_ids = itertools.count(1)
        self._started = False
        self._draining = threading.Event()
        self._stopped = threading.Event()
        # Serving counters (pulled by the ``net`` metrics collector).
        self._stats_lock = threading.Lock()
        self._stats: Dict[str, int] = {
            "connections_total": 0,
            "statements": 0,
            "statement_errors": 0,
            "busy_rejections": 0,
            "lock_timeouts": 0,
            "aborted_on_disconnect": 0,
            "stale_rejections": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "NetServer":
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(128)
        self._listener = listener
        self.host, self.port = listener.getsockname()[:2]
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-net-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._worker_threads.append(thread)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-net-accept", daemon=True
        )
        self._accept_thread.start()
        self.db.obs.metrics.register_collector("net", self._collect)
        return self

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    @property
    def connection_count(self) -> int:
        with self._conn_lock:
            return len(self._connections)

    def __enter__(self) -> "NetServer":
        if not self._started:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def serve_forever(self, poll_interval: float = 0.5) -> None:
        """Block until :meth:`shutdown` is called (or KeyboardInterrupt)."""
        try:
            while not self._stopped.wait(poll_interval):
                pass
        except KeyboardInterrupt:
            self.shutdown()

    def shutdown(self, drain: bool = True) -> None:
        """Stop serving: quiesce admission, drain, abort, disconnect.

        The sequence (documented in ``docs/serving.md``):

        1. stop accepting connections and admitting statements -- new
           ``execute`` frames get a ``SHUTTING_DOWN`` error;
        2. with ``drain=True``, wait for queued and in-flight statements
           to finish (bounded by ``drain_timeout``);
        3. roll back every connection's open transaction so no lock
           outlives the server;
        4. close the client sockets and stop the worker pool.
        """
        if self._stopped.is_set() or not self._started:
            self._stopped.set()
            return
        self._draining.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if drain:
            self._wait_for_drain()
        if self.db.repl_shipper is not None:
            self.db.repl_shipper.stop()
            self.db.repl_shipper = None
        # Abort transactions left open by now-idle connections.
        with self._conn_lock:
            connections = list(self._connections.values())
        for conn in connections:
            with conn.exec_lock:
                if self.db.abort_session(conn.session):
                    self._count("aborted_on_disconnect")
        for conn in connections:
            self._close_socket(conn)
        for _ in self._worker_threads:
            self._jobs.put(_STOP)
        for thread in self._worker_threads:
            thread.join(timeout=self.drain_timeout)
        for thread in self._reader_threads:
            thread.join(timeout=1.0)
        self._stopped.set()

    close = shutdown

    def _wait_for_drain(self) -> None:
        deadline = time.monotonic() + self.drain_timeout
        while time.monotonic() < deadline:
            with self._conn_lock:
                connections = list(self._connections.values())
            busy = not self._jobs.empty() or any(
                conn.exec_lock.locked() for conn in connections
            )
            if not busy:
                return
            time.sleep(0.01)

    # ------------------------------------------------------------------
    # Accept / read path
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        listener = self._listener
        assert listener is not None
        while not self._draining.is_set():
            try:
                sock, _addr = listener.accept()
            except OSError:
                return  # listener closed by shutdown
            if self._draining.is_set():
                try:
                    protocol.write_frame(
                        sock,
                        protocol.error(
                            protocol.SHUTTING_DOWN, "server is shutting down"
                        ),
                    )
                    sock.close()
                except OSError:
                    pass
                continue
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            session = self.db.create_session()
            conn = _Connection(next(self._conn_ids), sock, session)
            session.connection_id = conn.conn_id
            with self._conn_lock:
                self._connections[conn.conn_id] = conn
            self._count("connections_total")
            reader = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name=f"repro-net-conn-{conn.conn_id}",
                daemon=True,
            )
            self._reader_threads.append(reader)
            reader.start()

    def _serve_connection(self, conn: _Connection) -> None:
        try:
            while not conn.closed.is_set():
                message = protocol.read_frame(conn.sock)
                if message is None:
                    break
                faults = self.db.faults
                if faults is not None and faults.fire_action("net.recv"):
                    # The frame is "lost" in the server: sever the link
                    # without a reply, as a mid-receive failure would.
                    self.db.obs.inc("net.fault_drops")
                    break
                kind = message.get("kind")
                if kind == "hello":
                    self._send(conn, protocol.welcome(conn.conn_id))
                elif kind == "ping":
                    self._send(conn, protocol.pong())
                elif kind == "metrics":
                    # A /metrics-style scrape: rendered on the reader
                    # thread (the registry is thread-safe), never queued
                    # behind statements, so scrapers see a busy server.
                    self.db.obs.inc("net.metrics_scrapes")
                    self._send(
                        conn,
                        protocol.metrics_result(
                            prometheus_text(self.db.obs.metrics)
                        ),
                    )
                elif kind == "quit":
                    self._send(conn, protocol.bye())
                    break
                elif kind == "execute":
                    self._admit(conn, message)
                elif kind == "wal_subscribe":
                    self._subscribe_replica(conn, message)
                elif kind == "wal_ack":
                    shipper = self.db.repl_shipper
                    if shipper is not None:
                        shipper.on_ack(
                            str(message.get("replica", "replica")),
                            int(message.get("applied_lsn", -1)),
                        )
                else:
                    self._send(
                        conn,
                        protocol.error(
                            protocol.PROTOCOL_ERROR,
                            f"unknown message kind {kind!r}",
                        ),
                    )
        except (protocol.ProtocolError, OSError):
            pass
        finally:
            self._drop_connection(conn)

    def _subscribe_replica(self, conn: _Connection, message: Dict[str, object]) -> None:
        """Turn this connection into a WAL-frame push stream.

        After the subscribe, the reader thread keeps running -- it
        consumes the replica's ``wal_ack`` progress reports -- while a
        shipper-owned sender thread pushes ``wal_frame`` messages
        through the connection's write lock.
        """
        if not self.db.wal.ship_rows:
            self._send(
                conn,
                protocol.error(
                    protocol.PROTOCOL_ERROR,
                    "this server is not a replication primary "
                    "(WAL shipping is not enabled)",
                ),
            )
            return
        shipper = self.db.ensure_wal_shipper()
        name = str(message.get("replica") or f"replica-{conn.conn_id}")
        from_lsn = int(message.get("from_lsn", 0))

        def send_bytes(data: bytes) -> None:
            with conn.write_lock:
                conn.sock.sendall(data)

        conn.replica_name = name
        self.db.obs.inc("net.wal_subscribes")
        shipper.subscribe(
            name, from_lsn, send_bytes, close=lambda: self._drop_connection(conn)
        )

    def _admit(self, conn: _Connection, message: Dict[str, object]) -> None:
        """Admission control: bounded queue, typed rejection when full."""
        if self._draining.is_set():
            self._send(
                conn,
                protocol.error(
                    protocol.SHUTTING_DOWN, "server is draining; reconnect later"
                ),
            )
            return
        sql = message.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            self._send(
                conn,
                protocol.error(
                    protocol.PROTOCOL_ERROR, "execute frame carries no sql"
                ),
            )
            return
        try:
            self._jobs.put_nowait((conn, message, time.perf_counter()))
        except queue.Full:
            self._count("busy_rejections")
            self.db.obs.inc("net.busy_rejections")
            self._send(
                conn,
                protocol.error(
                    protocol.SERVER_BUSY,
                    f"admission queue full ({self.queue_depth} waiting)",
                    retryable=True,
                ),
            )

    # ------------------------------------------------------------------
    # Worker pool
    # ------------------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            item = self._jobs.get()
            if item is _STOP:
                self._jobs.task_done()
                return
            conn, message, enqueued = item
            try:
                if conn.closed.is_set():
                    continue
                self.db.obs.observe(
                    "net.queue_wait_seconds", time.perf_counter() - enqueued
                )
                with conn.exec_lock:
                    reply = self._run_statement(conn, message)
                self._send(conn, reply)
            # repro: allow(bare-except-swallows-crash): over the wire a crash
            # is an instant restart-and-recover, documented below.
            except SimulatedCrash:
                # A crash failpoint fired inside the engine.  A shared
                # server cannot stay wedged for its other clients, so
                # over the wire a "crash" behaves like an instant
                # restart-and-recover: the connection is severed without
                # a reply and its transaction is rolled back (true
                # frozen-state crashes belong to the embedded harness,
                # tests/faults/harness.py).
                self.db.obs.inc("net.fault_crashes")
                self._drop_connection(conn)
            finally:
                self._jobs.task_done()

    def _run_statement(self, conn: _Connection, message: Dict[str, object]):
        """Execute with lock-conflict waiting outside the engine lock.

        The engine raises :class:`LockConflictError` without blocking;
        blocking here (engine released) means the lock holder can still
        commit, so waiting actually helps.  After ``lock_timeout``
        seconds the transaction is the victim of deadlock-by-timeout:
        it is rolled back and the client told to retry it whole.

        The execute frame's optional trace context is pinned onto the
        session for exactly the duration of this statement, so its root
        span (and everything beneath it) joins the client's distributed
        trace; with ``profile`` set, the reply carries that finished
        span tree back to the driver.  Lock-retry waits happen between
        span trees, so they show up in ``locks.wait_seconds`` and the
        reply's ``elapsed``, not inside any one span.
        """
        sql = message.get("sql")
        session = conn.session
        trace_id = message.get("trace_id")
        session.trace_id = trace_id if isinstance(trace_id, str) else None
        parent = message.get("parent_span_id")
        session.parent_span_id = parent if isinstance(parent, int) else None
        session.last_root_span = None
        try:
            return self._run_statement_locked(conn, sql, message)
        finally:
            session.trace_id = None
            session.parent_span_id = None

    def _run_statement_locked(
        self, conn: _Connection, sql: str, message: Dict[str, object]
    ):
        min_lsn = message.get("min_lsn")
        if isinstance(min_lsn, int) and min_lsn >= 0:
            if not self.db.repl_wait_for_lsn(min_lsn):
                self._count("stale_rejections")
                self.db.obs.inc("net.stale_rejections")
                return protocol.error(
                    protocol.REPLICA_STALE,
                    f"replica has applied LSN "
                    f"{self.db.repl_link.applied_lsn if self.db.repl_link else -1}"
                    f", statement demands {min_lsn}",
                    retryable=True,
                )
        deadline = time.monotonic() + self.lock_timeout
        attempt = 0
        while True:
            started = time.perf_counter()
            try:
                value = self.db.execute(sql, conn.session)
            except LockConflictError as exc:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self._count("lock_timeouts")
                    self.db.obs.inc("net.lock_timeouts")
                    aborted = self.db.abort_session(conn.session)
                    return protocol.error(
                        protocol.LOCK_TIMEOUT,
                        f"gave up after {self.lock_timeout:.3f}s: {exc}",
                        retryable=True,
                        error_type=type(exc).__name__,
                        aborted_transaction=aborted,
                    )
                attempt += 1
                base = min(self.lock_retry_interval * (2 ** min(attempt, 5)), 0.05)
                delay = min(remaining, base * (0.5 + self._rng.random()))
                time.sleep(max(delay, 0.0005))
                continue
            except ReplicaStaleError as exc:
                self._count("stale_rejections")
                self.db.obs.inc("net.stale_rejections")
                return protocol.error(
                    protocol.REPLICA_STALE,
                    str(exc),
                    retryable=True,
                    error_type=type(exc).__name__,
                )
            except ServerError as exc:
                self._count("statement_errors")
                return protocol.error(
                    protocol.SQL_ERROR,
                    str(exc),
                    error_type=type(exc).__name__,
                )
            except Exception as exc:  # pragma: no cover - server bug surface
                self._count("statement_errors")
                return protocol.error(
                    protocol.INTERNAL_ERROR,
                    f"{type(exc).__name__}: {exc}",
                    error_type=type(exc).__name__,
                )
            elapsed = time.perf_counter() - started
            self._count("statements")
            self.db.obs.observe("net.statement_seconds", elapsed)
            profile = None
            if message.get("profile"):
                root = conn.session.last_root_span
                if root is not None:
                    profile = root.to_dict()
            # Replication-aware servers stamp their WAL position on the
            # reply: the primary's last LSN is the read-your-writes
            # token; a replica reports how far it has applied.  Plain
            # servers keep their frames byte-identical.
            lsn = None
            if self.db.repl_link is not None:
                lsn = self.db.repl_link.applied_lsn
            elif self.db.wal.ship_rows:
                lsn = self.db.wal.last_lsn()
            return protocol.result(value, elapsed, profile, lsn=lsn)

    # ------------------------------------------------------------------
    # Connection teardown
    # ------------------------------------------------------------------

    def _send(self, conn: _Connection, message: Dict[str, object]) -> None:
        if conn.closed.is_set():
            return
        faults = self.db.faults
        try:
            if faults is not None:
                payload = protocol.encode_frame(message)
                try:
                    payload, severed = faults.torn_payload("net.send", payload)
                # repro: allow(bare-except-swallows-crash): a crash armed on
                # net.send means the server died before the reply left the
                # kernel -- mapped to "send nothing, sever the link" so the
                # client observes exactly what a real process death looks
                # like from the other end of the socket.
                except SimulatedCrash:
                    payload, severed = b"", True
                if severed:
                    # Send whatever survived (nothing for a plain drop,
                    # a truncated or corrupted frame otherwise), then
                    # kill the link: the client sees a dead connection
                    # or a protocol error, never a valid reply.
                    self.db.obs.inc("net.fault_drops")
                    with conn.write_lock:
                        if payload:
                            try:
                                conn.sock.sendall(payload)
                            except OSError:
                                pass
                    self._drop_connection(conn)
                    return
                with conn.write_lock:
                    conn.sock.sendall(payload)
                return
            with conn.write_lock:
                protocol.write_frame(conn.sock, message)
        except OSError:
            self._drop_connection(conn)

    def _drop_connection(self, conn: _Connection) -> None:
        """Tear down a connection, rolling back its open transaction.

        The lock-leak fix of this PR: a client that dies mid-transaction
        used to leave its locks granted forever (``release_all`` only ran
        on explicit commit/rollback).  Taking ``exec_lock`` first lets an
        in-flight statement finish, then the rollback releases every lock
        the transaction held and wakes blocked waiters.
        """
        if not conn.begin_drop():
            return
        conn.closed.set()
        with conn.exec_lock:
            if self.db.abort_session(conn.session):
                self._count("aborted_on_disconnect")
                self.db.obs.inc("net.aborted_on_disconnect")
        self._close_socket(conn)
        if conn.replica_name is not None and self.db.repl_shipper is not None:
            self.db.repl_shipper.unsubscribe(conn.replica_name)
        with self._conn_lock:
            self._connections.pop(conn.conn_id, None)

    def _close_socket(self, conn: _Connection) -> None:
        conn.closed.set()
        try:
            conn.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            conn.sock.close()
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        with self._stats_lock:
            self._stats[name] += amount

    def _collect(self) -> Dict[str, float]:
        """The ``net.*`` metrics collector (pulled at snapshot time)."""
        with self._stats_lock:
            stats = dict(self._stats)
        stats["connections_open"] = self.connection_count
        stats["queue_depth"] = self._jobs.qsize()
        stats["queue_capacity"] = self.queue_depth
        stats["workers"] = self.workers
        return stats
