"""Prometheus text-format exposition of the metrics registry.

External scrapers should not need to speak this project's JSON: the
de-facto interchange format for pull-based metrics is the Prometheus
text exposition format (``# TYPE`` lines, ``name{labels} value``
samples, cumulative ``_bucket{le="..."}`` histogram series).  This
module renders the registry into that format -- reachable as
``repro stats --prometheus`` and as a ``metrics`` frame on the wire
server -- and ships a small parser used by the tests to prove the
export round-trips.

Mapping rules:

* counters export as ``repro_<name>_total`` (Prometheus counter
  convention), gauges as ``repro_<name>``;
* collector-pulled values are monotonically increasing in this codebase
  except for the obvious gauges (``held_resources``, ``resident_pages``,
  ``cached_nodes``, ``size``, ``active``), which export as gauges;
* histograms export the full cumulative bucket series plus ``_sum`` and
  ``_count``, with the conventional ``+Inf`` terminal bucket;
* metric names are sanitized (``[^a-zA-Z0-9_]`` -> ``_``) since the
  registry's dotted names are not legal Prometheus identifiers.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Mapping, Tuple

from repro.obs.metrics import Histogram, MetricsRegistry

__all__ = ["prometheus_text", "parse_prometheus_text"]

_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")

#: Snapshot keys whose last path component marks a point-in-time level,
#: not a monotone count -- these export as gauges.
_GAUGE_SUFFIXES = (
    "held_resources",
    "resident_pages",
    "cached_nodes",
    "size",
    "active",
    "hit_ratio",
)


def _sanitize(name: str) -> str:
    return _NAME_SANITIZE.sub("_", name)


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _histogram_lines(prefix: str, histogram: Histogram) -> List[str]:
    name = f"{prefix}_{_sanitize(histogram.name)}"
    lines = [f"# TYPE {name} histogram"]
    cumulative = 0
    for edge, tally in zip(histogram.boundaries, histogram.bucket_counts):
        cumulative += tally
        lines.append(
            f'{name}_bucket{{le="{_format_value(float(edge))}"}} {cumulative}'
        )
    lines.append(f'{name}_bucket{{le="+Inf"}} {histogram.count}')
    lines.append(f"{name}_sum {_format_value(histogram.total)}")
    lines.append(f"{name}_count {histogram.count}")
    return lines


def prometheus_text(registry: MetricsRegistry, prefix: str = "repro") -> str:
    """Render the registry in Prometheus text exposition format."""
    snapshot = registry.snapshot()
    lines: List[str] = []
    for key in sorted(snapshot):
        value = snapshot[key]
        is_gauge = key.rsplit(".", 1)[-1] in _GAUGE_SUFFIXES
        name = f"{prefix}_{_sanitize(key)}"
        if is_gauge:
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_format_value(value)}")
        else:
            lines.append(f"# TYPE {name}_total counter")
            lines.append(f"{name}_total {_format_value(value)}")
    for _, histogram in sorted(registry.histograms().items()):
        lines.extend(_histogram_lines(prefix, histogram))
    return "\n".join(lines) + "\n"


def parse_prometheus_text(
    text: str,
) -> Tuple[Dict[str, float], Dict[str, str]]:
    """Parse exposition text into ``(samples, types)``.

    ``samples`` maps the full sample name (labels included, verbatim) to
    its value; ``types`` maps metric names to their declared type.  The
    parser accepts exactly the subset :func:`prometheus_text` emits --
    it exists so the export is covered by a round-trip test rather than
    by string-contains assertions.
    """
    samples: Dict[str, float] = {}
    types: Dict[str, str] = {}
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        name, _, value = line.rpartition(" ")
        if not name:
            raise ValueError(f"malformed sample on line {lineno}: {raw!r}")
        samples[name] = float(value)
    return samples, types


def collect_histogram_buckets(
    samples: Mapping[str, float], name: str
) -> List[Tuple[str, float]]:
    """The ``(le, cumulative_count)`` series of one parsed histogram."""
    bucket = re.compile(
        re.escape(name) + r'_bucket\{le="([^"]+)"\}'
    )
    series = []
    for sample, value in samples.items():
        match = bucket.fullmatch(sample)
        if match:
            series.append((match.group(1), value))
    return series
