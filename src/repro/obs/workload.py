"""Statement fingerprinting and per-fingerprint workload statistics.

The scale-out roadmap (divergent per-replica index tuning, Extend-dist
style) needs a *workload model*: which statement shapes run, how often,
how slow, and how much I/O they cause.  This module builds that model
from the spans the observability layer already records.

A **fingerprint** is a stable hash of a statement with its literals and
parameters normalized away -- ``SELECT n FROM e WHERE Overlaps(te,
'...')`` and the same query over a different extent share one
fingerprint, exactly like ``pg_stat_statements`` query ids.  The
normalizer is deliberately lexical (strings and numbers become ``?``,
whitespace collapses, keywords upper-case): it must not depend on the
SQL parser, both to stay cheap and to fingerprint even statements that
fail to parse.

Per fingerprint the model keeps rolling statistics fed from completed
root spans: execution counts, a fixed-bucket latency histogram (p50/p95/
p99 via :meth:`~repro.obs.metrics.Histogram.quantile`), rows returned,
pages read/written, node-cache hit ratio, and lock wait/conflict
traffic.  ``SHOW WORKLOAD`` renders the model; ``WorkloadModel.to_dict``
is the machine-readable form a replica tuner consumes.
"""

from __future__ import annotations

import hashlib
import re
import threading
from typing import Any, Dict, List, Mapping, Optional

from repro.obs.metrics import Histogram

__all__ = ["fingerprint", "normalize", "FingerprintStats", "WorkloadModel"]

#: Quoted strings (with doubled-quote escapes) and numeric literals.
_STRING = r"'(?:[^']|'')*'|\"(?:[^\"]|\"\")*\""
_NUMBER = r"(?<![A-Za-z0-9_.])-?\d+(?:\.\d+)?"
_LITERALS = re.compile(f"(?:{_STRING})|(?:{_NUMBER})")
_WHITESPACE = re.compile(r"\s+")

#: Orderings ``SHOW WORKLOAD TOP n BY <key>`` accepts.
ORDERINGS = ("calls", "total_time", "mean_time")


def normalize(sql: str) -> str:
    """Literal-free, whitespace-collapsed, upper-cased statement text."""
    text = _LITERALS.sub("?", sql)
    return _WHITESPACE.sub(" ", text).strip().upper()


def fingerprint(sql: str) -> str:
    """A stable 12-hex-digit fingerprint of the normalized statement."""
    digest = hashlib.blake2b(normalize(sql).encode("utf-8"), digest_size=6)
    return digest.hexdigest()


def _delta_sum(deltas: Mapping[str, float], suffix: str) -> float:
    """Sum the span metric deltas whose key ends with ``.suffix``."""
    return sum(
        value for key, value in deltas.items() if key.endswith(suffix)
    )


class FingerprintStats:
    """Rolling statistics for one statement fingerprint."""

    __slots__ = (
        "fingerprint",
        "statement",
        "example",
        "calls",
        "errors",
        "total_time",
        "latency",
        "rows_returned",
        "pages_read",
        "pages_written",
        "cache_hits",
        "cache_misses",
        "lock_waits",
        "lock_wait_seconds",
        "last_seq",
    )

    def __init__(self, fp: str, statement: str, example: str) -> None:
        self.fingerprint = fp
        self.statement = statement
        #: One raw statement text, kept for operators reading the report.
        self.example = example
        self.calls = 0
        self.errors = 0
        self.total_time = 0.0
        self.latency = Histogram(f"workload.{fp}")
        self.rows_returned = 0
        self.pages_read = 0.0
        self.pages_written = 0.0
        self.cache_hits = 0.0
        self.cache_misses = 0.0
        #: Lock conflicts observed while the statement's span was open.
        self.lock_waits = 0.0
        self.lock_wait_seconds = 0.0
        #: Recency stamp for bounded-size eviction.
        self.last_seq = 0

    @property
    def mean_time(self) -> float:
        return self.total_time / self.calls if self.calls else 0.0

    @property
    def cache_hit_ratio(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 1.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "fingerprint": self.fingerprint,
            "statement": self.statement,
            "example": self.example,
            "calls": self.calls,
            "errors": self.errors,
            "total_time": self.total_time,
            "mean_time": self.mean_time,
            "p50": self.latency.quantile(0.50),
            "p95": self.latency.quantile(0.95),
            "p99": self.latency.quantile(0.99),
            "rows_returned": self.rows_returned,
            "pages_read": self.pages_read,
            "pages_written": self.pages_written,
            "cache_hit_ratio": self.cache_hit_ratio,
            "lock_waits": self.lock_waits,
            "lock_wait_seconds": self.lock_wait_seconds,
        }


class WorkloadModel:
    """Per-fingerprint statistics over everything the server executed.

    Thread-safe (the serving layer's workers all feed one model).  The
    model is bounded: when more than ``max_fingerprints`` distinct
    statement shapes are live, the least-recently-executed shape is
    evicted -- a workload model is about the hot shapes, and an unbounded
    map would be a slow leak under generated SQL.
    """

    def __init__(self, max_fingerprints: int = 512) -> None:
        self.max_fingerprints = max_fingerprints
        self._stats: Dict[str, FingerprintStats] = {}
        self._lock = threading.Lock()
        self._seq = 0
        #: Distinct fingerprints dropped by the size bound.
        self.evicted = 0

    def observe(
        self,
        sql: str,
        duration: float,
        *,
        rows: Optional[int] = None,
        deltas: Optional[Mapping[str, float]] = None,
        error: bool = False,
    ) -> FingerprintStats:
        """Fold one completed statement into the model.

        ``deltas`` is the root span's metric-delta map; buffer-pool and
        sbspace reads/writes, node-cache traffic, and lock counters are
        extracted from it by suffix, so new pools and caches are counted
        without this module knowing their names.
        """
        fp = fingerprint(sql)
        with self._lock:
            self._seq += 1
            stats = self._stats.get(fp)
            if stats is None:
                stats = FingerprintStats(fp, normalize(sql), sql)
                # Stamp recency *before* the eviction scan, or the new
                # entry (last_seq 0) would evict itself.
                stats.last_seq = self._seq
                self._stats[fp] = stats
                if len(self._stats) > self.max_fingerprints:
                    victim = min(
                        self._stats.values(), key=lambda s: s.last_seq
                    )
                    del self._stats[victim.fingerprint]
                    self.evicted += 1
            stats.last_seq = self._seq
            stats.calls += 1
            stats.total_time += duration
            stats.latency.observe(duration)
            if error:
                stats.errors += 1
            if rows is not None:
                stats.rows_returned += rows
            if deltas:
                stats.pages_read += _delta_sum(deltas, ".logical_reads")
                stats.pages_written += _delta_sum(deltas, ".logical_writes")
                stats.cache_hits += _delta_sum(deltas, ".hits")
                stats.cache_misses += _delta_sum(deltas, ".misses")
                stats.lock_waits += deltas.get("locks.conflicts", 0)
                stats.lock_wait_seconds += deltas.get("locks.wait_seconds", 0)
            return stats

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._stats)

    def get(self, fp: str) -> Optional[FingerprintStats]:
        with self._lock:
            return self._stats.get(fp)

    def top(
        self, n: Optional[int] = None, by: str = "total_time"
    ) -> List[FingerprintStats]:
        """The heaviest fingerprints, descending by *by*."""
        if by not in ORDERINGS:
            raise ValueError(
                f"unknown workload ordering {by!r} (choose from {ORDERINGS})"
            )
        with self._lock:
            stats = list(self._stats.values())
        stats.sort(key=lambda s: getattr(s, by), reverse=True)
        return stats if n is None else stats[: max(0, n)]

    def to_dict(
        self, top: Optional[int] = None, by: str = "total_time"
    ) -> Dict[str, Any]:
        """The machine-readable workload model (JSON-serializable)."""
        return {
            "fingerprints": [s.to_dict() for s in self.top(top, by)],
            "distinct_statements": len(self),
            "evicted": self.evicted,
            "ordered_by": by,
        }

    def report(self, top: Optional[int] = 20, by: str = "total_time") -> str:
        """The ``SHOW WORKLOAD`` text table."""
        stats = self.top(top, by)
        if not stats:
            return "(no statements recorded)"
        lines = [
            f"workload model -- {len(self)} fingerprint(s), top "
            f"{len(stats)} by {by}",
            f"{'fingerprint':<14} {'calls':>7} {'errs':>5} {'total_s':>9} "
            f"{'mean_ms':>8} {'p95_ms':>8} {'rows':>7} {'pg_rd':>7} "
            f"{'pg_wr':>7} {'cache%':>7} {'lk_wait':>8}",
        ]
        for s in stats:
            lines.append(
                f"{s.fingerprint:<14} {s.calls:>7} {s.errors:>5} "
                f"{s.total_time:>9.4f} {s.mean_time * 1000:>8.2f} "
                f"{s.latency.quantile(0.95) * 1000:>8.2f} "
                f"{s.rows_returned:>7} {s.pages_read:>7g} "
                f"{s.pages_written:>7g} {s.cache_hit_ratio * 100:>6.1f}% "
                f"{s.lock_wait_seconds:>8.4f}"
            )
            lines.append(f"    {s.statement[:110]}")
        return "\n".join(lines)

    def reset(self) -> None:
        with self._lock:
            self._stats.clear()
            self._seq = 0
            self.evicted = 0
