"""The metrics registry: counters, gauges, histograms, and collectors.

Counters and gauges are plain name -> number maps so the hot-path cost
of an increment is one dict update.  Histograms use *fixed* bucket
boundaries, so two runs over the same workload produce byte-identical
exports.  Nothing in this module reads the wall clock on its own: the
registry is constructed with an injected monotonic ``timer`` (defaulting
to :func:`time.perf_counter`) that tests replace with a deterministic
counter, exactly like the paper's trace facility keeps its Figure 6
sequence numbers deterministic.

Besides *push* metrics, the registry supports pull-based *collectors*:
callables returning a flat ``{name: number}`` mapping that are read at
snapshot time.  Storage components (buffer pools, the lock manager, the
WAL, sbspaces) already keep their own plain-int statistics, so they are
exported by registering a collector -- their hot paths stay untouched.

The registry is shared by every worker thread of the serving layer
(``repro.net``), so all mutations and reads go through one re-entrant
lock: without it, concurrent ``inc`` calls lose updates (read-modify-
write on a dict slot) and a snapshot taken mid-update can observe a
histogram whose ``count`` and bucket tallies disagree.
"""

from __future__ import annotations

import bisect
import threading
import time
from typing import Callable, Dict, List, Mapping, Optional, Sequence

#: Default latency buckets (seconds).  Fixed, so exports are stable.
DEFAULT_BUCKETS: Sequence[float] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


class Histogram:
    """A fixed-boundary histogram: counts, total, and per-bucket tallies.

    ``boundaries`` are upper-inclusive bucket edges; one extra overflow
    bucket collects everything above the last edge.
    """

    __slots__ = ("name", "boundaries", "bucket_counts", "count", "total")

    def __init__(
        self, name: str, boundaries: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        edges = tuple(float(b) for b in boundaries)
        if not edges:
            raise ValueError("histogram needs at least one bucket boundary")
        if any(a >= b for a, b in zip(edges, edges[1:])):
            raise ValueError(f"bucket boundaries must ascend: {edges}")
        self.name = name
        self.boundaries = edges
        self.bucket_counts: List[int] = [0] * (len(edges) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.boundaries, value)] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the *q*-quantile (0..1) from the bucket tallies.

        Standard fixed-bucket estimation: find the bucket holding the
        q-th observation and interpolate linearly inside it, taking 0 as
        the lower edge of the first bucket.  Values in the overflow
        bucket cannot be interpolated, so anything past the last edge
        clamps to that edge -- the estimator never invents a value the
        boundaries cannot express.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        lower = 0.0
        for edge, tally in zip(self.boundaries, self.bucket_counts):
            if tally and cumulative + tally >= rank:
                within = (rank - cumulative) / tally
                return lower + (edge - lower) * max(0.0, within)
            cumulative += tally
            lower = edge
        return self.boundaries[-1]

    def summary(self) -> Dict[str, float]:
        """Count, sum, mean, and the p50/p95/p99 estimates."""
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def to_dict(self) -> Dict[str, object]:
        return {
            "boundaries": list(self.boundaries),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.total,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Counters, gauges, histograms, and pull-based collectors."""

    def __init__(self, timer: Optional[Callable[[], float]] = None) -> None:
        #: Monotonic time source; injected so tests are deterministic.
        self.timer: Callable[[], float] = (
            time.perf_counter if timer is None else timer
        )
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._collectors: Dict[str, Callable[[], Mapping[str, float]]] = {}
        #: Guards every map above; re-entrant because collectors pulled
        #: during a snapshot may themselves read the registry.
        self._lock = threading.RLock()

    # -- push metrics ---------------------------------------------------

    def inc(self, name: str, amount: float = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def counter(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0)

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def gauge(self, name: str) -> float:
        with self._lock:
            return self._gauges.get(name, 0)

    def histogram(
        self, name: str, boundaries: Optional[Sequence[float]] = None
    ) -> Histogram:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = Histogram(
                    name, DEFAULT_BUCKETS if boundaries is None else boundaries
                )
                self._histograms[name] = histogram
            return histogram

    def observe(
        self,
        name: str,
        value: float,
        boundaries: Optional[Sequence[float]] = None,
    ) -> None:
        with self._lock:
            self.histogram(name, boundaries).observe(value)

    def histograms(self) -> Dict[str, Histogram]:
        """A point-in-time copy of the histogram map (values shared)."""
        with self._lock:
            return dict(self._histograms)

    # -- pull metrics ---------------------------------------------------

    def register_collector(
        self, prefix: str, fn: Callable[[], Mapping[str, float]]
    ) -> None:
        """Register *fn*; its values appear in snapshots as ``prefix.key``.

        Re-registering a prefix replaces the previous collector (an index
        reopened with a fresh buffer pool keeps a single entry).
        """
        with self._lock:
            self._collectors[prefix] = fn

    def unregister_collector(self, prefix: str) -> None:
        with self._lock:
            self._collectors.pop(prefix, None)

    def collector_prefixes(self) -> List[str]:
        with self._lock:
            return sorted(self._collectors)

    # -- snapshots ------------------------------------------------------

    def snapshot(self) -> Dict[str, float]:
        """A flat name -> value map of counters, gauges, and collectors."""
        with self._lock:
            values = dict(self._counters)
            values.update(self._gauges)
            collectors = list(self._collectors.items())
        for prefix, fn in collectors:
            for key, value in fn().items():
                values[f"{prefix}.{key}"] = value
        return values

    @staticmethod
    def delta(
        before: Mapping[str, float], after: Mapping[str, float]
    ) -> Dict[str, float]:
        """Nonzero differences ``after - before`` (missing keys read 0)."""
        changed = {}
        for key, value in after.items():
            diff = value - before.get(key, 0)
            if diff:
                changed[key] = diff
        return changed

    def to_dict(self) -> Dict[str, object]:
        """Structured export (JSON-serializable)."""
        with self._lock:
            return {
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "collected": {
                    key: value
                    for key, value in sorted(self.snapshot().items())
                    if key not in self._counters and key not in self._gauges
                },
                "histograms": {
                    name: h.to_dict()
                    for name, h in sorted(self._histograms.items())
                },
            }

    def reset(self) -> None:
        """Zero push metrics; collectors stay registered (their sources
        own their own counters)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
