"""Structured event log: slow queries, errors, faults -- as JSONL.

The paper's trace facility prints human-oriented lines (Figure 6); a
server that other tools watch needs *structured* events too.  The event
log is a bounded in-memory ring plus an optional append-only JSONL file
(one JSON object per line, the de-facto structured-log interchange
format), so an operator can ``tail -f`` a live server or replay the file
into analysis tooling.

Event producers are the serving layers: ``DatabaseServer.execute`` emits
``slow_query`` events for statements slower than the configurable
threshold (``SET SLOW QUERY THRESHOLD <ms>``) and ``error`` events for
statements that raise -- including fault-injected aborts, which carry
the fault's failpoint name so crash-consistency experiments can line up
the event log against the fault schedule.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Callable, Dict, List, Optional

__all__ = ["Event", "EventLog"]

#: Default slow-query threshold: disabled until SET SLOW QUERY THRESHOLD.
DEFAULT_SLOW_QUERY_MS: Optional[float] = None


class Event:
    """One structured event: a type, a timestamp, and flat fields."""

    __slots__ = ("type", "time", "seq", "fields")

    def __init__(
        self, type: str, time: float, seq: int, fields: Dict[str, Any]
    ) -> None:
        self.type = type
        self.time = time
        self.seq = seq
        self.fields = fields

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {"event": self.type, "time": self.time,
                                  "seq": self.seq}
        record.update(self.fields)
        return record

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, default=str)


class EventLog:
    """A bounded ring of events with optional JSONL file mirroring.

    ``timer`` is injected (like the metrics registry's) so event
    timestamps are deterministic under test.  File writes happen inside
    the lock: events from concurrent workers interleave as whole lines,
    never torn.  A write failure disables the file sink rather than
    failing the statement that triggered the event -- observability must
    never take the server down.
    """

    def __init__(
        self,
        capacity: int = 256,
        path: Optional[str] = None,
        timer: Optional[Callable[[], float]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("event log capacity must be positive")
        self.capacity = capacity
        self.path = path
        self.timer = timer if timer is not None else _default_timer
        #: Slow-query threshold in milliseconds; ``None`` disables.
        self.slow_query_threshold_ms: Optional[float] = DEFAULT_SLOW_QUERY_MS
        self._events: List[Event] = []
        self._seq = 0
        self._dropped = 0
        self._sink_error: Optional[str] = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------

    def emit(self, type: str, **fields: Any) -> Event:
        """Record one event (and mirror it to the JSONL file, if any)."""
        with self._lock:
            self._seq += 1
            event = Event(type, self.timer(), self._seq, fields)
            self._events.append(event)
            if len(self._events) > self.capacity:
                del self._events[: len(self._events) - self.capacity]
                self._dropped += 1
            if self.path is not None and self._sink_error is None:
                try:
                    with open(self.path, "a", encoding="utf-8") as sink:
                        sink.write(event.to_json() + "\n")
                except OSError as exc:
                    self._sink_error = str(exc)
            return event

    # ------------------------------------------------------------------

    def tail(self, n: Optional[int] = None) -> List[Event]:
        """The most recent *n* events (all when ``n`` is ``None``)."""
        with self._lock:
            events = list(self._events)
        if n is not None and n >= 0:
            events = events[len(events) - min(n, len(events)):]
        return events

    def to_dicts(self, n: Optional[int] = None) -> List[Dict[str, Any]]:
        return [event.to_dict() for event in self.tail(n)]

    def to_jsonl(self, n: Optional[int] = None) -> str:
        return "\n".join(event.to_json() for event in self.tail(n))

    def report(self, n: Optional[int] = 20) -> str:
        """The ``SHOW EVENTS`` text rendering."""
        events = self.tail(n)
        if not events:
            return "(no events recorded)"
        lines = [f"event log -- {len(events)} most recent "
                 f"(dropped {self._dropped} to stay within "
                 f"{self.capacity})"]
        for event in events:
            fields = " ".join(
                f"{key}={value!r}"
                for key, value in sorted(event.fields.items())
            )
            lines.append(f"#{event.seq} {event.type} {fields}")
        return "\n".join(lines)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    @property
    def dropped(self) -> int:
        with self._lock:
            return self._dropped

    @property
    def sink_error(self) -> Optional[str]:
        with self._lock:
            return self._sink_error

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self._dropped = 0


def _default_timer() -> float:
    import time

    return time.time()
