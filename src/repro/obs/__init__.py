"""The unified observability layer (metrics, spans, inspection).

The paper (Section 6.4) found trace classes/levels to be the single most
effective debugging instrument while developing the GR-tree DataBlade.
This package grows that facility into the three pillars a production
server needs:

* a :class:`~repro.obs.metrics.MetricsRegistry` of counters, gauges, and
  fixed-bucket histograms that the buffer pools, sbspaces, WAL, lock
  manager, and executor report into (storage components are *pulled* via
  collectors, so their hot paths carry no new code);
* hierarchical :mod:`~repro.obs.spans` giving each SQL statement an
  EXPLAIN-ANALYZE-style tree (parse -> plan -> purpose-function calls)
  annotated with per-span metric deltas;
* an ``onstat``-style inspection surface: :meth:`Observability.report`
  (text) and :meth:`Observability.to_dict` (JSON), reachable through the
  ``SHOW STATS`` / ``SHOW SPANS`` SQL statements and the ``repro.cli
  stats`` subcommand.

Everything is gated by :attr:`Observability.enabled`; with the hub
disabled (or simply not attached -- raw index structures default to
``obs=None``) the instrumented paths cost one attribute test.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.obs.events import Event, EventLog
from repro.obs.export import parse_prometheus_text, prometheus_text
from repro.obs.metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry
from repro.obs.spans import Span, SpanRecorder
from repro.obs.workload import FingerprintStats, WorkloadModel, fingerprint

__all__ = [
    "DEFAULT_BUCKETS",
    "Event",
    "EventLog",
    "FingerprintStats",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "Span",
    "SpanRecorder",
    "WorkloadModel",
    "fingerprint",
    "parse_prometheus_text",
    "prometheus_text",
]


class _NoopSpan:
    """Shared do-nothing context manager returned while disabled."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return False


_NOOP_SPAN = _NoopSpan()


class Observability:
    """The hub: one registry + one span recorder + attachment points."""

    def __init__(
        self,
        trace=None,
        timer: Optional[Callable[[], float]] = None,
        enabled: bool = True,
        max_span_roots: int = 128,
    ) -> None:
        self.trace = trace
        self.metrics = MetricsRegistry(timer=timer)
        self.spans = SpanRecorder(self.metrics, max_roots=max_span_roots)
        #: Per-fingerprint statement statistics fed from completed spans.
        self.workload = WorkloadModel()
        #: Structured slow-query/error event log (JSONL-exportable).
        self.events = EventLog(timer=timer)
        self.enabled = enabled
        #: Buffer pools attached by name (inspection convenience).
        self.pools: Dict[str, Any] = {}
        #: Counters carried over from replaced pools, keyed by pool name.
        #: An index reopen creates a fresh pool; folding the old pool's
        #: final counters in here keeps ``buffer.<name>.*`` monotonic, so
        #: span deltas stay correct across the reopen.
        self._pool_bases: Dict[str, Dict[str, float]] = {}
        #: Deserialized-node caches attached by name (usually one per
        #: open GR-tree index, mirroring :attr:`pools`).
        self.node_caches: Dict[str, Any] = {}
        self._node_cache_bases: Dict[str, Dict[str, float]] = {}
        #: Specialization bundles attached by name (one per open index
        #: running the specialized/vectorized hot paths).
        self.specializers: Dict[str, Any] = {}
        self._specializer_bases: Dict[str, Dict[str, float]] = {}
        #: Fault-injection registry, when one is attached (``SET FAULT``).
        self.faults_registry = None

    # ------------------------------------------------------------------
    # Gating
    # ------------------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    # ------------------------------------------------------------------
    # Guarded push API (the hot-path entry points)
    # ------------------------------------------------------------------

    def inc(self, name: str, amount: float = 1) -> None:
        if self.enabled:
            self.metrics.inc(name, amount)

    def set_gauge(self, name: str, value: float) -> None:
        if self.enabled:
            self.metrics.set_gauge(name, value)

    def observe(self, name: str, value: float, boundaries=None) -> None:
        if self.enabled:
            self.metrics.observe(name, value, boundaries)

    def span(self, name: str, **attrs):
        if not self.enabled:
            return _NOOP_SPAN
        return self.spans.span(name, **attrs)

    # ------------------------------------------------------------------
    # Attachment points (pull-based collectors)
    # ------------------------------------------------------------------

    def attach_buffer_pool(self, name: str, pool) -> None:
        """Export a buffer pool's I/O counters as ``buffer.<name>.*``.

        Attaching a different pool under an existing name (an index
        reopen) folds the old pool's counters into a base so the
        exported values never go backwards.
        """
        base = self._pool_bases.setdefault(name, {})
        previous = self.pools.get(name)
        if previous is not None and previous is not pool:
            for key, value in previous.stats.to_dict().items():
                if key != "hit_ratio":
                    base[key] = base.get(key, 0) + value
        self.pools[name] = pool

        def collect() -> Dict[str, float]:
            stats = {
                key: value + base.get(key, 0)
                for key, value in pool.stats.to_dict().items()
                if key != "hit_ratio"  # ratios make noisy span deltas
            }
            stats["resident_pages"] = pool.resident_pages
            return stats

        self.metrics.register_collector(f"buffer.{name}", collect)

    def detach_buffer_pool(self, name: str) -> None:
        self.pools.pop(name, None)
        self._pool_bases.pop(name, None)
        self.metrics.unregister_collector(f"buffer.{name}")

    def attach_node_cache(self, name: str, store) -> None:
        """Export a :class:`GRNodeStore`'s cache counters as ``nodecache.<name>.*``.

        Same reopen-folding contract as :meth:`attach_buffer_pool`: the
        exported counters never go backwards when an index reopen swaps
        in a fresh store.
        """
        base = self._node_cache_bases.setdefault(name, {})
        previous = self.node_caches.get(name)
        if previous is not None and previous is not store:
            for key, value in previous.cache_stats.to_dict().items():
                base[key] = base.get(key, 0) + value
        self.node_caches[name] = store

        def collect() -> Dict[str, float]:
            stats = {
                key: value + base.get(key, 0)
                for key, value in store.cache_stats.to_dict().items()
            }
            stats["cached_nodes"] = store.cached_nodes
            stats["size"] = store.node_cache_size
            return stats

        self.metrics.register_collector(f"nodecache.{name}", collect)

    def detach_node_cache(self, name: str) -> None:
        self.node_caches.pop(name, None)
        self._node_cache_bases.pop(name, None)
        self.metrics.unregister_collector(f"nodecache.{name}")

    def node_cache_counters(self, name: str) -> Dict[str, float]:
        """Lifetime node-cache counters for one name (reopen-cumulative)."""
        base = self._node_cache_bases.get(name, {})
        return {
            key: value + base.get(key, 0)
            for key, value in self.node_caches[name].cache_stats.to_dict().items()
        }

    def attach_specializer(self, name: str, spec) -> None:
        """Export a :class:`SpecializedOps` bundle's counters as
        ``spec.<name>.*``.

        Same reopen-folding contract as :meth:`attach_buffer_pool`: when
        an index reopen builds a fresh bundle, the replaced bundle's
        final counters fold into a base so the exported values never go
        backwards.
        """
        base = self._specializer_bases.setdefault(name, {})
        previous = self.specializers.get(name)
        if previous is not None and previous is not spec:
            for key, value in previous.stats.to_dict().items():
                base[key] = base.get(key, 0) + value
        self.specializers[name] = spec

        def collect() -> Dict[str, float]:
            stats = {
                key: value + base.get(key, 0)
                for key, value in spec.stats.to_dict().items()
            }
            stats["vectorized"] = int(spec.vectorized)
            return stats

        self.metrics.register_collector(f"spec.{name}", collect)

    def detach_specializer(self, name: str) -> None:
        self.specializers.pop(name, None)
        self._specializer_bases.pop(name, None)
        self.metrics.unregister_collector(f"spec.{name}")

    def specializer_counters(self, name: str) -> Dict[str, float]:
        """Lifetime specialization counters for one name
        (reopen-cumulative)."""
        base = self._specializer_bases.get(name, {})
        return {
            key: value + base.get(key, 0)
            for key, value in self.specializers[name].stats.to_dict().items()
        }

    def attach_lock_manager(self, locks) -> None:
        self.metrics.register_collector(
            "locks",
            lambda: {
                "acquires": locks.acquires,
                "releases": locks.releases,
                "conflicts": locks.conflicts,
                "timeouts": locks.timeouts,
                "wait_seconds": locks.wait_seconds,
                "held_resources": locks.locked_resources,
            },
        )

    def attach_wal(self, wal) -> None:
        self.metrics.register_collector("wal", wal.stats)

    def attach_sbspace(self, space) -> None:
        self.metrics.register_collector(f"sbspace.{space.name}", space.stats)

    def attach_faults(self, registry) -> None:
        """Export failpoint hit/trigger counters as ``faults.*``."""
        self.faults_registry = registry
        self.metrics.register_collector("faults", registry.stats)

    # ------------------------------------------------------------------
    # Aggregation and export
    # ------------------------------------------------------------------

    def pool_counters(self, name: str) -> Dict[str, float]:
        """Lifetime I/O counters for one pool name (reopen-cumulative)."""
        base = self._pool_bases.get(name, {})
        counters = {
            key: value + base.get(key, 0)
            for key, value in self.pools[name].stats.to_dict().items()
            if key != "hit_ratio"
        }
        reads = counters["logical_reads"]
        counters["hit_ratio"] = (
            1.0 - counters["physical_reads"] / reads if reads else 1.0
        )
        return counters

    def buffer_totals(self) -> Dict[str, float]:
        """Summed I/O counters (plus hit ratio) across attached pools."""
        totals = {
            "logical_reads": 0,
            "physical_reads": 0,
            "logical_writes": 0,
            "physical_writes": 0,
        }
        for name in self.pools:
            counters = self.pool_counters(name)
            for key in totals:
                totals[key] += counters[key]
        reads = totals["logical_reads"]
        totals["hit_ratio"] = (
            1.0 - totals["physical_reads"] / reads if reads else 1.0
        )
        return totals

    def to_dict(self) -> Dict[str, Any]:
        """Full JSON-serializable export: registry, spans, trace levels."""
        result: Dict[str, Any] = {
            "enabled": self.enabled,
            "metrics": self.metrics.to_dict(),
            "buffer_totals": self.buffer_totals(),
            "spans": self.spans.to_dicts(),
            "workload": self.workload.to_dict(),
            "events": self.events.to_dicts(),
        }
        if self.trace is not None:
            result["trace_levels"] = self.trace.levels()
        return result

    def prometheus(self) -> str:
        """The registry in Prometheus text exposition format."""
        return prometheus_text(self.metrics)

    def report(self) -> str:
        """The ``onstat``-style text dump (the ``SHOW STATS`` body)."""
        lines: List[str] = ["repro observability -- onstat-style report", ""]
        snapshot = self.metrics.snapshot()

        def section(title: str) -> None:
            lines.append(f"== {title} ==")

        section("counters")
        counters = {
            name: value
            for name, value in sorted(snapshot.items())
            if not name.startswith(
                (
                    "buffer.",
                    "locks.",
                    "wal.",
                    "sbspace.",
                    "nodecache.",
                    "spec.",
                    "net.",
                    "faults.",
                    "repl.",
                    "hblade.",
                )
            )
        }
        if counters:
            width = max(len(name) for name in counters)
            for name, value in counters.items():
                lines.append(f"{name:<{width}}  {value:g}")
        else:
            lines.append("(none)")

        lines.append("")
        section("buffer pools")
        if self.pools:
            header = (
                f"{'pool':<24} {'lreads':>8} {'preads':>8} "
                f"{'lwrites':>8} {'pwrites':>8} {'hit%':>7} {'resident':>9} "
                f"{'frames':>7}"
            )
            lines.append(header)
            for name in sorted(self.pools):
                stats = self.pool_counters(name)
                lines.append(
                    f"{name:<24} {stats['logical_reads']:>8} "
                    f"{stats['physical_reads']:>8} {stats['logical_writes']:>8} "
                    f"{stats['physical_writes']:>8} "
                    f"{stats['hit_ratio'] * 100:>6.1f}% "
                    f"{self.pools[name].resident_pages:>9} "
                    f"{self.pools[name].capacity:>7}"
                )
            totals = self.buffer_totals()
            lines.append(
                f"{'(total)':<24} {totals['logical_reads']:>8} "
                f"{totals['physical_reads']:>8} {totals['logical_writes']:>8} "
                f"{totals['physical_writes']:>8} "
                f"{totals['hit_ratio'] * 100:>6.1f}%"
            )
            lines.append(f"buffer hit ratio: {totals['hit_ratio']:.4f}")
        else:
            lines.append("(no buffer pools attached)")

        if self.node_caches:
            lines.append("")
            section("node caches")
            header = (
                f"{'cache':<24} {'hits':>8} {'misses':>8} "
                f"{'evicts':>8} {'invals':>8} {'cached':>7} {'size':>6}"
            )
            lines.append(header)
            for name in sorted(self.node_caches):
                stats = self.node_cache_counters(name)
                store = self.node_caches[name]
                lines.append(
                    f"{name:<24} {stats['hits']:>8} {stats['misses']:>8} "
                    f"{stats['evictions']:>8} {stats['invalidations']:>8} "
                    f"{store.cached_nodes:>7} {store.node_cache_size:>6}"
                )

        if self.specializers:
            lines.append("")
            section("specialization")
            header = (
                f"{'index':<24} {'scans':>7} {'batched':>8} {'fallbk':>7} "
                f"{'maskhit':>8} {'choices':>8} {'bounds':>7} {'vec':>4}"
            )
            lines.append(header)
            for name in sorted(self.specializers):
                stats = self.specializer_counters(name)
                spec = self.specializers[name]
                lines.append(
                    f"{name:<24} {stats['scans_compiled']:>7} "
                    f"{stats['nodes_batched']:>8} {stats['nodes_fallback']:>7} "
                    f"{stats['mask_cache_hits']:>8} "
                    f"{stats['choices_vectorized']:>8} "
                    f"{stats['bounds_vectorized']:>7} "
                    f"{'yes' if spec.vectorized else 'no':>4}"
                )

        lines.append("")
        section("locks")
        lines.append(
            "acquires {0:g}  releases {1:g}  conflicts {2:g}  "
            "timeouts {3:g}  held {4:g}".format(
                snapshot.get("locks.acquires", 0),
                snapshot.get("locks.releases", 0),
                snapshot.get("locks.conflicts", 0),
                snapshot.get("locks.timeouts", 0),
                snapshot.get("locks.held_resources", 0),
            )
        )

        net_items = sorted(
            (name, value)
            for name, value in snapshot.items()
            if name.startswith("net.")
        )
        if net_items:
            lines.append("")
            section("serving")
            lines.append(
                "  ".join(
                    f"{name[len('net.'):]} {value:g}"
                    for name, value in net_items
                )
            )

        hblade_items = sorted(
            (name, value)
            for name, value in snapshot.items()
            if name.startswith("hblade.")
        )
        if hblade_items:
            lines.append("")
            section("hybrid")
            lines.append(
                "  ".join(
                    f"{name[len('hblade.'):]} {value:g}"
                    for name, value in hblade_items
                )
            )

        repl_items = sorted(
            (name, value)
            for name, value in snapshot.items()
            if name.startswith("repl.")
        )
        if repl_items:
            lines.append("")
            section("replication")
            lines.append(
                "  ".join(
                    f"{name[len('repl.'):]} {value:g}"
                    for name, value in repl_items
                )
            )

        lines.append("")
        section("write-ahead log")
        lines.append(
            "records {0:g}  commits {1:g}  aborts {2:g}  active {3:g}".format(
                snapshot.get("wal.records", 0),
                snapshot.get("wal.commits", 0),
                snapshot.get("wal.aborts", 0),
                snapshot.get("wal.active", 0),
            )
        )

        sbspace_keys = sorted(
            {
                name.split(".", 2)[1]
                for name in snapshot
                if name.startswith("sbspace.")
            }
        )
        if sbspace_keys:
            lines.append("")
            section("sbspaces")
            for space in sbspace_keys:
                prefix = f"sbspace.{space}."
                fields = "  ".join(
                    f"{name[len(prefix):]} {value:g}"
                    for name, value in sorted(snapshot.items())
                    if name.startswith(prefix)
                )
                lines.append(f"{space}: {fields}")

        if self.faults_registry is not None:
            lines.append("")
            section("faults")
            lines.extend(self.faults_registry.report_lines())

        if self.trace is not None:
            lines.append("")
            section("trace classes")
            levels = self.trace.levels()
            lines.append(
                "  ".join(
                    f"{cls}={lvl}" for cls, lvl in sorted(levels.items())
                )
                or "(all disabled)"
            )

        histograms = self.metrics.histograms()
        if histograms:
            lines.append("")
            section("latency histograms")
            width = max(len(name) for name in histograms)
            lines.append(
                f"{'histogram':<{width}} {'count':>7} {'mean_ms':>9} "
                f"{'p50_ms':>9} {'p95_ms':>9} {'p99_ms':>9} {'buckets':>8}"
            )
            for name in sorted(histograms):
                h = histograms[name]
                occupied = sum(1 for tally in h.bucket_counts if tally)
                lines.append(
                    f"{name:<{width}} {h.count:>7} {h.mean * 1000:>9.3f} "
                    f"{h.quantile(0.50) * 1000:>9.3f} "
                    f"{h.quantile(0.95) * 1000:>9.3f} "
                    f"{h.quantile(0.99) * 1000:>9.3f} {occupied:>8}"
                )

        lines.append("")
        finished = len(self.spans.select())
        lines.append(f"spans recorded: {finished} (SHOW SPANS to display)")
        lines.append(
            f"workload fingerprints: {len(self.workload)} "
            "(SHOW WORKLOAD to display)"
        )
        threshold = self.events.slow_query_threshold_ms
        lines.append(
            f"events recorded: {len(self.events)} "
            f"(SHOW EVENTS to display; slow-query threshold "
            f"{'off' if threshold is None else f'{threshold:g} ms'})"
        )
        return "\n".join(lines)

    def reset(self) -> None:
        """Clear push metrics, span history, the workload model, and the
        event ring (collectors stay attached)."""
        self.metrics.reset()
        self.spans.clear()
        self.workload.reset()
        self.events.clear()
