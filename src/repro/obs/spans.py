"""Hierarchical query spans: the EXPLAIN-ANALYZE view of a statement.

Every SQL statement the server executes opens a *root span*; nested
operations (parse, plan choice, each purpose-function call) open child
spans, producing a tree.  A span records its duration (from the
registry's injected timer) and -- the part the paper's flat trace
messages cannot express -- the *metric deltas* that occurred while it
was open: a metrics snapshot is taken when the span starts and again
when it finishes, so each span shows exactly the page I/O, lock traffic,
and purpose-function calls it caused.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry


class Span:
    """One node of a span tree."""

    __slots__ = (
        "name",
        "attrs",
        "children",
        "start_time",
        "end_time",
        "metric_deltas",
        "_metrics_before",
    )

    def __init__(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.attrs: Dict[str, Any] = attrs or {}
        self.children: List["Span"] = []
        self.start_time: Optional[float] = None
        self.end_time: Optional[float] = None
        self.metric_deltas: Dict[str, float] = {}
        self._metrics_before: Optional[Dict[str, float]] = None

    @property
    def finished(self) -> bool:
        return self.end_time is not None

    @property
    def duration(self) -> float:
        if self.start_time is None or self.end_time is None:
            return 0.0
        return self.end_time - self.start_time

    def find(self, name: str) -> Optional["Span"]:
        """Depth-first search for a descendant (or self) named *name*."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "duration": self.duration,
            "metric_deltas": dict(sorted(self.metric_deltas.items())),
            "children": [child.to_dict() for child in self.children],
        }

    def format(self, indent: int = 0) -> List[str]:
        pad = "  " * indent
        attrs = "".join(
            f" {key}={value!r}" for key, value in sorted(self.attrs.items())
        )
        timing = (
            f" [{self.duration * 1000.0:.3f} ms]" if self.finished else " [open]"
        )
        lines = [f"{pad}{self.name}{timing}{attrs}"]
        for key, value in sorted(self.metric_deltas.items()):
            rendered = f"{value:+g}" if isinstance(value, (int, float)) else value
            lines.append(f"{pad}  . {key} {rendered}")
        for child in self.children:
            lines.extend(child.format(indent + 1))
        return lines

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, children={len(self.children)})"


class SpanRecorder:
    """Builds span trees; keeps the most recent *max_roots* root spans."""

    def __init__(self, registry: MetricsRegistry, max_roots: int = 128) -> None:
        self.registry = registry
        self.max_roots = max_roots
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    @property
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, **attrs):
        span = Span(name, attrs)
        span.start_time = self.registry.timer()
        span._metrics_before = self.registry.snapshot()
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
            if len(self.roots) > self.max_roots:
                del self.roots[: len(self.roots) - self.max_roots]
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()
            span.end_time = self.registry.timer()
            span.metric_deltas = self.registry.delta(
                span._metrics_before, self.registry.snapshot()
            )
            span._metrics_before = None

    def add_completed_child(
        self, name: str, start_time: float, end_time: float, **attrs
    ) -> Span:
        """Attach an already-measured interval as a child of the current
        span (used for work timed before its parent span existed, e.g.
        parsing, which decides whether the statement is traced at all)."""
        span = Span(name, attrs)
        span.start_time = start_time
        span.end_time = end_time
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        return span

    # ------------------------------------------------------------------

    def last_root(self, name: Optional[str] = None) -> Optional[Span]:
        """The most recent finished root span (optionally by name)."""
        for span in reversed(self.roots):
            if not span.finished:
                continue
            if name is None or span.name == name:
                return span
        return None

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [span.to_dict() for span in self.roots if span.finished]

    def format_trees(self, limit: Optional[int] = None) -> str:
        finished = [span for span in self.roots if span.finished]
        if limit is not None:
            finished = finished[-limit:]
        if not finished:
            return "(no spans recorded)"
        lines: List[str] = []
        for span in finished:
            lines.extend(span.format())
        return "\n".join(lines)

    def clear(self) -> None:
        self.roots.clear()
