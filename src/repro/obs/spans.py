"""Hierarchical query spans: the EXPLAIN-ANALYZE view of a statement.

Every SQL statement the server executes opens a *root span*; nested
operations (parse, plan choice, each purpose-function call) open child
spans, producing a tree.  A span records its duration (from the
registry's injected timer) and -- the part the paper's flat trace
messages cannot express -- the *metric deltas* that occurred while it
was open: a metrics snapshot is taken when the span starts and again
when it finishes, so each span shows exactly the page I/O, lock traffic,
and purpose-function calls it caused.

The recorder is shared by every worker thread of the serving layer, but
a span tree belongs to exactly one statement on one thread, so the
*current-span stack* is thread-local: two interleaved wire clients can
never parent their spans under each other's trees.  Only the finished
root list (and the id sequence) is shared, guarded by one lock.
"""

from __future__ import annotations

import itertools
import threading
from contextlib import contextmanager
from typing import Any, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry


class Span:
    """One node of a span tree."""

    __slots__ = (
        "name",
        "span_id",
        "attrs",
        "children",
        "start_time",
        "end_time",
        "metric_deltas",
        "_metrics_before",
    )

    def __init__(
        self,
        name: str,
        attrs: Optional[Dict[str, Any]] = None,
        span_id: int = 0,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.attrs: Dict[str, Any] = attrs or {}
        self.children: List["Span"] = []
        self.start_time: Optional[float] = None
        self.end_time: Optional[float] = None
        self.metric_deltas: Dict[str, float] = {}
        self._metrics_before: Optional[Dict[str, float]] = None

    @property
    def finished(self) -> bool:
        return self.end_time is not None

    @property
    def duration(self) -> float:
        if self.start_time is None or self.end_time is None:
            return 0.0
        return self.end_time - self.start_time

    @property
    def trace_id(self) -> Optional[str]:
        """The distributed trace this span belongs to (root attr)."""
        return self.attrs.get("trace_id")

    def find(self, name: str) -> Optional["Span"]:
        """Depth-first search for a descendant (or self) named *name*."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def leaves(self) -> List["Span"]:
        """All descendants without children (self when childless)."""
        if not self.children:
            return [self]
        result: List["Span"] = []
        for child in self.children:
            result.extend(child.leaves())
        return result

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "attrs": dict(self.attrs),
            "duration": self.duration,
            "metric_deltas": dict(sorted(self.metric_deltas.items())),
            "children": [child.to_dict() for child in self.children],
        }

    def format(self, indent: int = 0) -> List[str]:
        pad = "  " * indent
        attrs = "".join(
            f" {key}={value!r}" for key, value in sorted(self.attrs.items())
        )
        timing = (
            f" [{self.duration * 1000.0:.3f} ms]" if self.finished else " [open]"
        )
        lines = [f"{pad}{self.name}{timing}{attrs}"]
        for key, value in sorted(self.metric_deltas.items()):
            rendered = f"{value:+g}" if isinstance(value, (int, float)) else value
            lines.append(f"{pad}  . {key} {rendered}")
        for child in self.children:
            lines.extend(child.format(indent + 1))
        return lines

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, children={len(self.children)})"


class SpanRecorder:
    """Builds span trees; keeps the most recent *max_roots* root spans.

    Thread contract: each statement's span tree is built by one thread.
    The open-span stack lives in ``threading.local`` storage, so trees
    built by concurrent sessions stay disjoint; the shared root list is
    guarded by :attr:`_roots_lock`.
    """

    def __init__(self, registry: MetricsRegistry, max_roots: int = 128) -> None:
        self.registry = registry
        self.max_roots = max_roots
        self.roots: List[Span] = []
        self._roots_lock = threading.Lock()
        self._local = threading.local()
        self._ids = itertools.count(1)

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @property
    def current(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    def _add_root(self, span: Span) -> None:
        with self._roots_lock:
            self.roots.append(span)
            if len(self.roots) > self.max_roots:
                del self.roots[: len(self.roots) - self.max_roots]

    @contextmanager
    def span(self, name: str, **attrs):
        span = Span(name, attrs, span_id=next(self._ids))
        span.start_time = self.registry.timer()
        span._metrics_before = self.registry.snapshot()
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        else:
            self._add_root(span)
        stack.append(span)
        try:
            yield span
        finally:
            stack.pop()
            span.end_time = self.registry.timer()
            span.metric_deltas = self.registry.delta(
                span._metrics_before, self.registry.snapshot()
            )
            span._metrics_before = None

    def add_completed_child(
        self, name: str, start_time: float, end_time: float, **attrs
    ) -> Span:
        """Attach an already-measured interval as a child of the current
        span (used for work timed before its parent span existed, e.g.
        parsing, which decides whether the statement is traced at all)."""
        span = Span(name, attrs, span_id=next(self._ids))
        span.start_time = start_time
        span.end_time = end_time
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        else:
            self._add_root(span)
        return span

    # ------------------------------------------------------------------

    def select(
        self,
        *,
        name: Optional[str] = None,
        connection: Optional[int] = None,
        trace_id: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[Span]:
        """Finished roots, oldest first, filtered and tail-limited.

        ``connection`` matches the ``conn`` attribute the serving layer
        stamps onto statement spans; ``trace_id`` matches the propagated
        wire trace context; ``limit`` keeps only the most recent *n*.
        """
        with self._roots_lock:
            roots = list(self.roots)
        selected = [
            span
            for span in roots
            if span.finished
            and (name is None or span.name == name)
            and (connection is None or span.attrs.get("conn") == connection)
            and (trace_id is None or span.attrs.get("trace_id") == trace_id)
        ]
        if limit is not None and limit >= 0:
            selected = selected[len(selected) - min(limit, len(selected)):]
        return selected

    def last_root(self, name: Optional[str] = None) -> Optional[Span]:
        """The most recent finished root span (optionally by name)."""
        spans = self.select(name=name, limit=1)
        return spans[-1] if spans else None

    def to_dicts(
        self,
        *,
        connection: Optional[int] = None,
        trace_id: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        return [
            span.to_dict()
            for span in self.select(
                connection=connection, trace_id=trace_id, limit=limit
            )
        ]

    def format_trees(
        self,
        limit: Optional[int] = None,
        *,
        connection: Optional[int] = None,
        trace_id: Optional[str] = None,
    ) -> str:
        finished = self.select(
            connection=connection, trace_id=trace_id, limit=limit
        )
        if not finished:
            return "(no spans recorded)"
        lines: List[str] = []
        for span in finished:
            lines.extend(span.format())
        return "\n".join(lines)

    def clear(self) -> None:
        with self._roots_lock:
            self.roots.clear()
