"""High-level facade: a bitemporal database in a few lines.

:class:`BitemporalDatabase` assembles the full stack the paper describes
-- server, sbspace, GR-tree DataBlade, a table with a
``GRT_TimeExtent_t`` column, and a virtual index on it -- behind a small
API for applications that just want now-relative bitemporal tables.
Everything underneath remains reachable (``db.server``, ``db.blade``)
for users who need the extensibility machinery itself.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.datablade import register_grtree_blade
from repro.server import DatabaseServer
from repro.server.errors import ServerError
from repro.temporal.chronon import Chronon, Clock, Granularity, format_chronon
from repro.temporal.extent import TimeExtent
from repro.temporal.variables import NOW, UC

__all__ = ["BitemporalDatabase", "TimeExtent", "NOW", "UC"]


class BitemporalDatabase:
    """A bitemporal table with a GR-tree index, ready to use.

    >>> db = BitemporalDatabase(["employee", "department"])
    >>> db.clock.set(100)
    100
    >>> _ = db.insert({"employee": "Jane", "department": "Sales"}, vt_begin=100)
    >>> [r["employee"] for r in db.current()]
    ['Jane']
    """

    TABLE = "bitemporal_data"
    EXTENT_COLUMN = "time_extent"
    INDEX = "bitemporal_grt_index"

    def __init__(
        self,
        columns: Sequence[str],
        granularity: Granularity = Granularity.DAY,
        clock: Optional[Clock] = None,
        time_horizon: int = 20,
    ) -> None:
        if self.EXTENT_COLUMN in columns:
            raise ValueError(f"{self.EXTENT_COLUMN} is reserved")
        self.columns = list(columns)
        self.server = DatabaseServer(clock=clock, granularity=granularity)
        self.server.create_sbspace("spc")
        self.blade = register_grtree_blade(self.server, time_horizon=time_horizon)
        column_ddl = ", ".join(f"{c} LVARCHAR" for c in self.columns)
        self.server.execute(
            f"CREATE TABLE {self.TABLE} ({column_ddl}, "
            f"{self.EXTENT_COLUMN} GRT_TimeExtent_t)"
        )
        self.server.execute(
            f"CREATE INDEX {self.INDEX} ON {self.TABLE}"
            f"({self.EXTENT_COLUMN} grt_opclass) USING grtree_am IN spc"
        )
        self.server.prefer_virtual_index = True

    # ------------------------------------------------------------------

    @property
    def clock(self) -> Clock:
        return self.server.clock

    @property
    def now(self) -> Chronon:
        return self.server.clock.now

    def _fmt(self, value) -> str:
        from repro.temporal.variables import is_ground

        if not is_ground(value):
            return value.name
        return format_chronon(value, self.clock.granularity)

    # ------------------------------------------------------------------
    # Updates (the Section 2 semantics)
    # ------------------------------------------------------------------

    def insert(
        self,
        values: Dict[str, str],
        vt_begin: Chronon,
        vt_end=NOW,
    ) -> None:
        """Insert a fact valid over ``[vt_begin, vt_end]``; transaction
        time starts now and remains UC."""
        extent = TimeExtent(self.now, UC, vt_begin, vt_end)
        extent.validate_insertion(self.now)
        names = ", ".join(self.columns + [self.EXTENT_COLUMN])
        rendered = ", ".join(
            ["'%s'" % str(values[c]).replace("'", "''") for c in self.columns]
            + ["'%s'" % extent.to_text(self.clock.granularity)]
        )
        self.server.execute(
            f"INSERT INTO {self.TABLE} ({names}) VALUES ({rendered})"
        )

    def delete_where(self, column: str, value: str) -> int:
        """Logically delete current tuples with ``column = value``."""
        current = [
            row for row in self.current() if str(row[column]) == value
        ]
        count = 0
        for row in current:
            extent: TimeExtent = row[self.EXTENT_COLUMN]
            frozen = extent.logically_deleted(self.now)
            old_text = extent.to_text(self.clock.granularity)
            self.server.execute(
                f"UPDATE {self.TABLE} SET {self.EXTENT_COLUMN} = "
                f"'{frozen.to_text(self.clock.granularity)}' "
                f"WHERE {column} = '{value}' AND "
                f"Equal({self.EXTENT_COLUMN}, '{old_text}')"
            )
            count += 1
        return count

    def modify(
        self,
        column: str,
        value: str,
        new_values: Dict[str, str],
        vt_begin: Chronon,
        vt_end=NOW,
    ) -> int:
        """A modification: logical deletion plus insertion (Section 2)."""
        count = self.delete_where(column, value)
        for _ in range(count):
            self.insert(new_values, vt_begin, vt_end)
        return count

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def overlapping(self, query: TimeExtent) -> List[Dict[str, Any]]:
        """All tuples whose region overlaps the query extent's region."""
        text = query.to_text(self.clock.granularity)
        return self.server.execute(
            f"SELECT * FROM {self.TABLE} "
            f"WHERE Overlaps({self.EXTENT_COLUMN}, '{text}')"
        )

    def current(self) -> List[Dict[str, Any]]:
        """The current database state, valid now."""
        return self.timeslice(self.now, self.now)

    def timeslice(self, valid_time: Chronon, transaction_time: Chronon) -> List[
        Dict[str, Any]
    ]:
        """Who was true at *valid_time* per our *transaction_time*
        knowledge (the paper's Julie query, answered correctly)."""
        point = TimeExtent(
            transaction_time, transaction_time, valid_time, valid_time
        )
        return self.overlapping(point)

    def current_rows_sql(self, column: str, value: str) -> List[Dict[str, Any]]:
        query = TimeExtent(self.now, self.now, self.now, self.now)
        text = query.to_text(self.clock.granularity)
        return self.server.execute(
            f"SELECT * FROM {self.TABLE} "
            f"WHERE Overlaps({self.EXTENT_COLUMN}, '{text}') "
            f"AND {column} = '{value}'"
        )

    def sql(self, statement: str) -> Any:
        """Escape hatch: run raw SQL against the underlying server."""
        return self.server.execute(statement)

    def check_index(self) -> str:
        return self.server.execute(f"CHECK INDEX {self.INDEX}")

    def statistics(self) -> Dict[str, float]:
        return self.server.execute(f"UPDATE STATISTICS FOR INDEX {self.INDEX}")
