"""Evaluation baselines for the GR-tree.

The companion evaluation pits the GR-tree against R-tree variants that
cannot represent growing regions.  The standard workaround -- and our
primary baseline -- substitutes the *maximum timestamp* for ``UC`` and
``NOW``: a now-relative tuple is indexed as if it reached the end of
time.  Overlap queries against such an index return a superset of the
answer (every false positive costs a base-table fetch and an exact-
geometry check), which is precisely the dead-space/overlap penalty the
GR-tree's stair-shaped bounds avoid.

``SequentialScanIndex`` is the no-index floor: every query reads all
pages.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.rtree.geometry import Rect
from repro.rtree.node import NodeStore
from repro.rtree.rstar import RStarTree
from repro.storage.buffer import BufferPool
from repro.storage.pages import InMemoryPageStore
from repro.temporal.chronon import Chronon, Clock
from repro.temporal.extent import TimeExtent
from repro.temporal.variables import NOW, UC

#: The "end of time" chronon used by the maximum-timestamp substitution.
MAX_TIME = 10**9


class MaxTimestampRTree:
    """An R*-tree over extents with UC/NOW replaced by MAX_TIME.

    The index sees every growing region as a rectangle stretching to the
    end of time; searches therefore return candidates that must be
    verified against the exact bitemporal geometry (counted as
    ``last_false_positives``).
    """

    def __init__(
        self,
        clock: Clock,
        page_size: int = 2048,
        buffer_capacity: int = 64,
    ) -> None:
        self.clock = clock
        pool = BufferPool(InMemoryPageStore(page_size=page_size), buffer_capacity)
        self.tree = RStarTree(NodeStore(pool, ndim=2))
        self.pool = pool
        self._extents: Dict[int, TimeExtent] = {}
        self.last_node_accesses = 0
        self.last_candidates = 0
        self.last_false_positives = 0

    # ------------------------------------------------------------------

    @staticmethod
    def _rect_of(extent: TimeExtent) -> Rect:
        tt_end = MAX_TIME if extent.tt_end is UC else extent.tt_end
        vt_end = MAX_TIME if extent.vt_end is NOW else extent.vt_end
        return Rect(
            (float(extent.tt_begin), float(extent.vt_begin)),
            (float(tt_end), float(vt_end)),
        )

    def insert(self, extent: TimeExtent, rowid: int) -> None:
        self.tree.insert(self._rect_of(extent), rowid)
        self._extents[rowid] = extent

    def delete(self, extent: TimeExtent, rowid: int) -> bool:
        found = self.tree.delete(self._rect_of(extent), rowid)
        if found:
            self._extents.pop(rowid, None)
        return found

    def search(
        self, query: TimeExtent, now: Optional[Chronon] = None
    ) -> List[int]:
        """Exact answer: index candidates filtered by true geometry."""
        at = self.clock.now if now is None else now
        query_region = query.region(at)
        query_rect = Rect(
            (float(query_region.tt_lo), float(query_region.vt_lo)),
            (float(query_region.tt_hi), float(query_region.vt_hi)),
        )
        candidates = self.tree.search(query_rect)
        self.last_node_accesses = self.tree.last_node_accesses
        self.last_candidates = len(candidates)
        results = []
        for rowid, _ in candidates:
            extent = self._extents[rowid]
            if extent.region(at).overlaps(query_region):
                results.append(rowid)
        self.last_false_positives = self.last_candidates - len(results)
        return sorted(results)

    def io_cost_of_last_search(self) -> int:
        """Node accesses plus one base-table fetch per candidate."""
        return self.last_node_accesses + self.last_candidates

    def stats(self):
        return self.tree.stats()


class SequentialScanIndex:
    """The no-index baseline: a heap of extents, scanned per query."""

    ROWS_PER_PAGE = 32

    def __init__(self, clock: Clock) -> None:
        self.clock = clock
        self._extents: Dict[int, TimeExtent] = {}
        self.last_pages_read = 0

    def insert(self, extent: TimeExtent, rowid: int) -> None:
        self._extents[rowid] = extent

    def delete(self, extent: TimeExtent, rowid: int) -> bool:
        return self._extents.pop(rowid, None) is not None

    def search(
        self, query: TimeExtent, now: Optional[Chronon] = None
    ) -> List[int]:
        at = self.clock.now if now is None else now
        q = query.region(at)
        self.last_pages_read = max(
            1, math.ceil(len(self._extents) / self.ROWS_PER_PAGE)
        )
        return sorted(
            rowid
            for rowid, extent in self._extents.items()
            if extent.region(at).overlaps(q)
        )

    def io_cost_of_last_search(self) -> int:
        return self.last_pages_read
