"""Synthetic workload generators and evaluation baselines.

The paper has no public dataset; its data model is the six-case taxonomy
of Figure 2.  The generator produces bitemporal histories with a
controlled fraction of now-relative tuples, update/delete mixes, and the
query families of the companion evaluation (current/past timeslices and
bitemporal windows).  The baselines reproduce what the GR-tree was
evaluated against: an R\\*-tree indexing the extents with ``UC``/``NOW``
substituted by the maximum timestamp, and a sequential scan.
"""

from repro.workloads.generator import BitemporalWorkload, WorkloadConfig
from repro.workloads.baselines import MaxTimestampRTree, SequentialScanIndex

__all__ = [
    "BitemporalWorkload",
    "WorkloadConfig",
    "MaxTimestampRTree",
    "SequentialScanIndex",
]
