"""Bitemporal workload generation.

A workload is a reproducible stream of operations over a simulated clock:

* insertions, a configurable fraction now-relative in valid time
  (``VTend = NOW``) -- the data the GR-tree exists for;
* logical deletions and modifications, which freeze transaction time and
  produce the stopped cases of Figure 2;
* queries: current timeslices ("who works here now?"), past timeslices
  (the Julie query shape), and bitemporal window queries.

All six cases of Figure 2 arise naturally from the mix.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.temporal.chronon import Clock
from repro.temporal.extent import TimeExtent
from repro.temporal.variables import NOW, UC


@dataclass
class WorkloadConfig:
    """Knobs of the generator; defaults give a balanced mixed history."""

    seed: int = 42
    #: Fraction of insertions with VTend = NOW.
    now_relative_fraction: float = 0.5
    #: Probability that a step logically deletes a live tuple.
    delete_fraction: float = 0.1
    #: Probability that a step modifies (delete + re-insert) a live tuple.
    update_fraction: float = 0.1
    #: Probability of advancing the clock one chronon after a step.
    clock_advance_probability: float = 0.2
    #: Valid-time begin lag behind the insertion time, inclusive bounds.
    vt_lag: Tuple[int, int] = (0, 60)
    #: Fraction of now-relative tuples recorded the moment they become
    #: true (lag 0: Figure 2's cases 3/4 rather than 5/6).
    zero_lag_fraction: float = 0.3
    #: Length of fixed valid-time intervals, inclusive bounds.
    vt_length: Tuple[int, int] = (0, 40)
    #: Fixed valid times may also lie in the future by up to this much.
    vt_future: int = 20


@dataclass
class LiveTuple:
    rowid: int
    extent: TimeExtent


class BitemporalWorkload:
    """A reproducible bitemporal history over a simulated clock.

    Drive it against any *sink* exposing ``insert(extent, rowid)`` and
    ``delete(extent, rowid)`` -- a GR-tree, a baseline index, or a list.
    """

    def __init__(
        self, clock: Clock, config: Optional[WorkloadConfig] = None
    ) -> None:
        self.clock = clock
        self.config = config or WorkloadConfig()
        self.rng = random.Random(self.config.seed)
        self.live: dict[int, TimeExtent] = {}
        self.history: dict[int, TimeExtent] = {}
        self._next_rowid = 0

    # ------------------------------------------------------------------
    # Data generation
    # ------------------------------------------------------------------

    def make_extent(self) -> TimeExtent:
        """A fresh extent obeying the insertion constraints at the clock."""
        cfg, now = self.config, self.clock.now
        if self.rng.random() < cfg.now_relative_fraction:
            if self.rng.random() < cfg.zero_lag_fraction:
                lag = 0
            else:
                lag = self.rng.randint(*cfg.vt_lag)
            return TimeExtent(now, UC, max(0, now - lag), NOW)
        vt_begin = now + self.rng.randint(-cfg.vt_lag[1], cfg.vt_future)
        vt_begin = max(0, vt_begin)
        vt_end = vt_begin + self.rng.randint(*cfg.vt_length)
        return TimeExtent(now, UC, vt_begin, vt_end)

    def step(self, sink) -> str:
        """Run one operation against *sink*; returns what happened."""
        cfg = self.config
        roll = self.rng.random()
        if self.live and roll < cfg.delete_fraction:
            action = self._delete(sink)
        elif self.live and roll < cfg.delete_fraction + cfg.update_fraction:
            action = self._update(sink)
        else:
            action = self._insert(sink)
        if self.rng.random() < cfg.clock_advance_probability:
            self.clock.advance(1)
        return action

    def run(self, sink, steps: int) -> None:
        for _ in range(steps):
            self.step(sink)

    def populate(self, sink, count: int) -> None:
        """Insertions only (with clock advances): a pure loading phase."""
        for _ in range(count):
            self._insert(sink)
            if self.rng.random() < self.config.clock_advance_probability:
                self.clock.advance(1)

    def _insert(self, sink) -> str:
        extent = self.make_extent()
        rowid = self._next_rowid
        self._next_rowid += 1
        sink.insert(extent, rowid)
        self.live[rowid] = extent
        self.history[rowid] = extent
        return "insert"

    def _delete(self, sink) -> str:
        """Logical deletion: the live entry is replaced by a frozen one
        (the tuple stays in the database and in the index)."""
        rowid = self.rng.choice(sorted(self.live))
        old = self.live.pop(rowid)
        if self.clock.now <= old.tt_begin:
            self.clock.advance(1)
        frozen = old.logically_deleted(self.clock.now)
        sink.delete(old, rowid)
        sink.insert(frozen, rowid)
        self.history[rowid] = frozen
        return "delete"

    def _update(self, sink) -> str:
        self._delete(sink)
        self._insert(sink)
        return "update"

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def current_timeslice_query(self) -> TimeExtent:
        """Everything current and valid right now."""
        now = self.clock.now
        return TimeExtent(now, UC, now, NOW)

    def past_timeslice_query(self) -> TimeExtent:
        """The Julie shape: knowledge at a past time about a past time."""
        now = self.clock.now
        tt = now - self.rng.randint(0, max(1, now // 2))
        vt = now - self.rng.randint(0, max(1, now // 2))
        return TimeExtent(max(0, tt), max(0, tt), max(0, vt), max(0, vt))

    def window_query(self, tt_span: int = 10, vt_span: int = 10) -> TimeExtent:
        now = self.clock.now
        tt_lo = max(0, now - self.rng.randint(0, now or 1))
        vt_lo = max(0, now - self.rng.randint(0, now or 1))
        return TimeExtent(tt_lo, tt_lo + tt_span, vt_lo, vt_lo + vt_span)

    # ------------------------------------------------------------------
    # Oracle
    # ------------------------------------------------------------------

    def oracle_overlapping(self, query: TimeExtent) -> List[int]:
        """Linear-scan answer over everything ever inserted and live."""
        now = self.clock.now
        q = query.region(now)
        return sorted(
            rowid
            for rowid, extent in self.all_extents().items()
            if extent.region(now).overlaps(q)
        )

    def all_extents(self) -> dict:
        return dict(self.history)
