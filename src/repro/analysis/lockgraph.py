"""Dynamic lock-order (deadlock-potential) detector.

:class:`LockGraph` monkeypatches ``threading.Lock``/``threading.RLock``
so every lock created while it is installed is wrapped in a
:class:`TrackedLock`.  Each acquisition records, per thread, the set of
locks already held; every (held -> acquired) pair becomes an edge in a
directed acquisition-order graph.  A cycle in that graph is a potential
deadlock, reported with the stack of the first acquisition that created
each edge -- the lockdep idea, scaled down to the test suite.

Gate-lock exclusion
-------------------
The engine serialises statements under a global RLock, so two inner
locks taken in opposite orders *under the engine lock* can never
actually deadlock.  Each edge therefore remembers the intersection of
"other locks held at the time" across all its observations (its
*gates*); a cycle is only reported when its edges share **no** common
gate lock.

Usage (the ``lock_audit`` pytest fixture wraps this)::

    with lockgraph.watching() as graph:
        ...  # create locks, run threads
    graph.assert_no_cycles()

Only locks created *while installed* are tracked, so install the graph
before building the structures under audit.  The wrappers implement
``_is_owned`` / ``_release_save`` / ``_acquire_restore`` so
``threading.Condition`` (and therefore ``Event`` and ``queue.Queue``)
keep working on top of them, and they degrade to pure delegation after
:meth:`LockGraph.uninstall`, so daemon threads that outlive a test are
safe.
"""

from __future__ import annotations

import _thread
import threading
import traceback
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Set, Tuple

__all__ = ["LockGraph", "LockOrderViolation", "TrackedLock", "watching"]

# How many inner frames (this module + threading) to trim off edge stacks.
_STACK_LIMIT = 18


class LockOrderViolation(AssertionError):
    """Raised by :meth:`LockGraph.assert_no_cycles` when a cycle survives
    gate-lock exclusion."""


class TrackedLock:
    """Wrapper around a real Lock/RLock that reports to a LockGraph."""

    def __init__(self, graph: "LockGraph", inner, name: str) -> None:
        self._graph = graph
        self._inner = inner
        self.name = name

    # -- core lock protocol -------------------------------------------

    def acquire(self, blocking: bool = True, timeout: float = -1):
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._graph._note_acquire(self)
        return got

    def release(self) -> None:
        self._graph._note_release(self)
        self._inner.release()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def locked(self) -> bool:
        probe = getattr(self._inner, "locked", None)
        if probe is not None:
            return probe()
        return self._is_owned()

    # -- Condition support --------------------------------------------

    def _is_owned(self) -> bool:
        inner_owned = getattr(self._inner, "_is_owned", None)
        if inner_owned is not None:
            return inner_owned()
        if self._inner.acquire(False):
            self._inner.release()
            return False
        return True

    def _release_save(self):
        save = getattr(self._inner, "_release_save", None)
        if save is not None:
            state = save()
        else:
            state = None
            self._inner.release()
        depth = self._graph._note_release_all(self)
        return (state, depth)

    def _acquire_restore(self, saved) -> None:
        state, depth = saved
        restore = getattr(self._inner, "_acquire_restore", None)
        if restore is not None:
            restore(state)
        else:
            self._inner.acquire()
        self._graph._note_restore(self, depth)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TrackedLock {self.name} wrapping {self._inner!r}>"


class _ThreadState(threading.local):
    """Per-thread held-lock bookkeeping."""

    def __init__(self) -> None:
        self.order: List[int] = []  # lock ids, outermost first
        self.depth: Dict[int, int] = {}


class LockGraph:
    """Acquisition-order graph over every lock created while installed."""

    _install_mutex = threading.Lock()
    _installed: Optional["LockGraph"] = None

    def __init__(self) -> None:
        # Raw C lock: the graph must never route through threading.Lock
        # while the factories are patched to point back at us.
        self._mutex = _thread.allocate_lock()
        self._tls = _ThreadState()
        self._active = False
        self._serial = 0
        # Strong refs keep lock ids stable for the life of the audit.
        self._locks: Dict[int, TrackedLock] = {}
        # (src_id, dst_id) -> {"gates": set, "stack": str, "count": int}
        self._edges: Dict[Tuple[int, int], Dict[str, object]] = {}
        self._orig_lock = None
        self._orig_rlock = None

    # ------------------------------------------------------------------
    # Install / uninstall
    # ------------------------------------------------------------------

    def install(self) -> "LockGraph":
        with LockGraph._install_mutex:
            if LockGraph._installed is not None:
                raise RuntimeError("another LockGraph is already installed")
            LockGraph._installed = self
            self._orig_lock = threading.Lock
            self._orig_rlock = threading.RLock
            self._active = True

            def make_lock():
                return self._wrap(self._orig_lock(), kind="Lock")

            def make_rlock():
                return self._wrap(self._orig_rlock(), kind="RLock")

            threading.Lock = make_lock  # type: ignore[assignment]
            threading.RLock = make_rlock  # type: ignore[assignment]
        return self

    def uninstall(self) -> None:
        with LockGraph._install_mutex:
            if LockGraph._installed is not self:
                return
            threading.Lock = self._orig_lock  # type: ignore[assignment]
            threading.RLock = self._orig_rlock  # type: ignore[assignment]
            LockGraph._installed = None
            self._active = False

    def _wrap(self, inner, kind: str) -> TrackedLock:
        site = self._creation_site()
        with self._mutex:
            self._serial += 1
            name = f"{kind}#{self._serial}@{site}"
        lock = TrackedLock(self, inner, name)
        with self._mutex:
            self._locks[id(lock)] = lock
        return lock

    @staticmethod
    def _creation_site() -> str:
        for frame in reversed(traceback.extract_stack(limit=12)):
            filename = frame.filename.replace("\\", "/")
            if "/analysis/lockgraph" in filename or filename.endswith("threading.py"):
                continue
            parts = filename.rsplit("/", 2)
            short = "/".join(parts[-2:])
            return f"{short}:{frame.lineno}"
        return "<unknown>"

    # ------------------------------------------------------------------
    # Acquisition bookkeeping (called from TrackedLock)
    # ------------------------------------------------------------------

    def _note_acquire(self, lock: TrackedLock) -> None:
        if not self._active:
            return
        tls = self._tls
        lock_id = id(lock)
        if tls.depth.get(lock_id, 0) > 0:
            tls.depth[lock_id] += 1  # re-entrant re-acquire: no new edge
            return
        if tls.order:
            held = set(tls.order)
            src = tls.order[-1]
            # Edge only from the *innermost* held lock: transitive edges
            # (outer -> new) add no cycles the chain does not already
            # imply, and skipping them keeps the graph small.
            self._record_edge(src, lock_id, gates=held - {src})
        tls.order.append(lock_id)
        tls.depth[lock_id] = 1

    def _note_release(self, lock: TrackedLock) -> None:
        tls = self._tls
        lock_id = id(lock)
        depth = tls.depth.get(lock_id, 0)
        if depth == 0:
            return  # acquired before install or after uninstall
        if depth > 1:
            tls.depth[lock_id] = depth - 1
            return
        del tls.depth[lock_id]
        try:
            tls.order.remove(lock_id)
        except ValueError:  # pragma: no cover - defensive
            pass

    def _note_release_all(self, lock: TrackedLock) -> int:
        """Condition.wait: the lock is fully released regardless of depth."""
        tls = self._tls
        lock_id = id(lock)
        depth = tls.depth.pop(lock_id, 0)
        try:
            tls.order.remove(lock_id)
        except ValueError:
            pass
        return depth

    def _note_restore(self, lock: TrackedLock, depth: int) -> None:
        """Condition.wait returned: the lock is held again at `depth`."""
        if depth == 0:
            depth = 1
        tls = self._tls
        lock_id = id(lock)
        if self._active and tls.order:
            held = set(tls.order)
            src = tls.order[-1]
            self._record_edge(src, lock_id, gates=held - {src})
        tls.order.append(lock_id)
        tls.depth[lock_id] = depth

    def _record_edge(self, src: int, dst: int, gates: Set[int]) -> None:
        with self._mutex:
            edge = self._edges.get((src, dst))
            if edge is None:
                stack = "".join(traceback.format_stack(limit=_STACK_LIMIT)[:-2])
                self._edges[(src, dst)] = {
                    "gates": set(gates),
                    "stack": stack,
                    "count": 1,
                }
            else:
                edge["gates"] &= gates  # type: ignore[operator]
                edge["count"] = edge["count"] + 1  # type: ignore[operator]

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------

    def edge_count(self) -> int:
        with self._mutex:
            return len(self._edges)

    def cycles(self, max_len: int = 6) -> List[Dict[str, object]]:
        """Acquisition-order cycles that survive gate-lock exclusion."""
        with self._mutex:
            edges = {
                pair: {"gates": set(info["gates"]), "stack": info["stack"]}
                for pair, info in self._edges.items()
            }
            names = {lid: lock.name for lid, lock in self._locks.items()}
        adjacency: Dict[int, List[int]] = {}
        for (src, dst) in edges:
            adjacency.setdefault(src, []).append(dst)

        reports: List[Dict[str, object]] = []
        seen_cycles: Set[Tuple[int, ...]] = set()

        def dfs(start: int, node: int, path: List[int]) -> None:
            for nxt in adjacency.get(node, ()):
                if nxt == start and len(path) >= 2:
                    cycle = tuple(path)
                    canonical = tuple(sorted(cycle))
                    if canonical in seen_cycles:
                        continue
                    seen_cycles.add(canonical)
                    report = self._judge_cycle(cycle, edges, names)
                    if report is not None:
                        reports.append(report)
                elif nxt > start and nxt not in path and len(path) < max_len:
                    path.append(nxt)
                    dfs(start, nxt, path)
                    path.pop()

        for start in sorted(adjacency):
            dfs(start, start, [start])
        return reports

    @staticmethod
    def _judge_cycle(
        cycle: Tuple[int, ...],
        edges: Dict[Tuple[int, int], Dict[str, object]],
        names: Dict[int, str],
    ) -> Optional[Dict[str, object]]:
        cycle_edges = [
            (cycle[i], cycle[(i + 1) % len(cycle)]) for i in range(len(cycle))
        ]
        common_gates: Optional[Set[int]] = None
        for pair in cycle_edges:
            gates = set(edges[pair]["gates"]) - set(cycle)  # type: ignore[arg-type]
            common_gates = gates if common_gates is None else (common_gates & gates)
        if common_gates:
            return None  # always taken under a shared outer lock: benign
        return {
            "locks": [names.get(lid, f"<lock {lid}>") for lid in cycle],
            "edges": [
                {
                    "from": names.get(src, f"<lock {src}>"),
                    "to": names.get(dst, f"<lock {dst}>"),
                    "stack": edges[(src, dst)]["stack"],
                }
                for src, dst in cycle_edges
            ],
        }

    def assert_no_cycles(self, max_len: int = 6) -> None:
        reports = self.cycles(max_len=max_len)
        if not reports:
            return
        lines: List[str] = [
            f"lock-order audit found {len(reports)} potential deadlock cycle(s):"
        ]
        for i, report in enumerate(reports, 1):
            chain = " -> ".join(report["locks"] + [report["locks"][0]])  # type: ignore[index]
            lines.append(f"\ncycle {i}: {chain}")
            for edge in report["edges"]:  # type: ignore[union-attr]
                lines.append(
                    f"  edge {edge['from']} -> {edge['to']} first acquired at:"
                )
                lines.append(
                    "    " + str(edge["stack"]).rstrip().replace("\n", "\n    ")
                )
        raise LockOrderViolation("\n".join(lines))


@contextmanager
def watching() -> Iterator[LockGraph]:
    """Install a LockGraph for the duration of the block."""
    graph = LockGraph()
    graph.install()
    try:
        yield graph
    finally:
        graph.uninstall()
