"""Repo-specific invariant rules for the repro linter.

Each rule enforces one of the engine's cross-cutting contracts; the
rationale for every rule lives in ``docs/static_analysis.md``.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.linter import Finding, ModuleContext, Project, Rule

__all__ = ["all_rules"]

# Fault-registry API methods that take a failpoint name as first argument.
_FAULT_NAME_APIS = frozenset(
    {"hit", "fire_action", "on_write", "torn_payload", "set_fault", "clear_fault"}
)
# The subset that *fires* failpoints and therefore needs the
# ``faults is not None`` zero-cost guard at call sites.
_FAULT_FIRE_APIS = frozenset({"hit", "fire_action", "on_write", "torn_payload"})

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

_METRIC_ATTRS = frozenset(
    {"inc", "observe", "span", "add_completed_child", "_inc"}
)
_METRIC_RECEIVERS = frozenset({"obs", "metrics", "spans"})
_METRIC_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")
_METRIC_SEGMENT_RE = re.compile(r"^[a-z0-9_]+$")

# Which metric component prefixes each repro package may own.  Packages
# not listed get the grammar check only.  ``obs`` is the metrics
# framework itself and is exempt entirely (names flow through it as
# variables).
_COMPONENTS_BY_PACKAGE: Dict[str, Set[str]] = {
    "server": {"sql", "am", "plan", "session"},
    "net": {"net"},
    "repl": {"repl"},
    "grtree": {"grtree", "spec"},
    "hblade": {"hblade"},
    "storage": {"storage", "buffer", "wal", "lock", "locks", "sbspace", "osfile"},
    "datablade": {"datablade", "grtree", "spec", "index"},
    "bblade": {"bblade", "btree"},
    "rblade": {"rblade", "rtree"},
    "faults": {"faults"},
}

_BLOCKING_ATTRS = frozenset(
    {
        "sleep",
        "fsync",
        "send",
        "sendall",
        "sendto",
        "recv",
        "recvfrom",
        "recv_into",
        "connect",
        "accept",
        "read_frame",
        "write_frame",
        "send_frame",
    }
)
_BLOCKING_NAMES = frozenset({"sleep", "fsync", "read_frame", "write_frame"})

_IMMUTABLE_FACTORIES = frozenset(
    {"MappingProxyType", "frozenset", "tuple", "namedtuple"}
)
_SHARED_STATE_EXEMPT_NAMES = frozenset({"__all__", "__path__"})


def _unparse(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse failure on exotic nodes
        return ""


def _attr_chain_tail(node: ast.AST) -> str:
    """Last dotted segment of an expression ('self.db.obs' -> 'obs')."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


class BareExceptSwallowsCrash(Rule):
    """``SimulatedCrash`` subclasses BaseException precisely so rollback
    paths cannot intercept a simulated process death; any handler broad
    enough to catch it must re-raise."""

    id = "bare-except-swallows-crash"
    summary = (
        "bare except / except BaseException / except SimulatedCrash "
        "without re-raising the crash"
    )

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ctx.walk():
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._catches_crash(node.type):
                continue
            if self._reraises(node):
                continue
            caught = _unparse(node.type) if node.type is not None else "<bare>"
            yield Finding(
                rule=self.id,
                path=ctx.path,
                line=node.lineno,
                message=(
                    f"handler for {caught} can swallow SimulatedCrash; "
                    "re-raise it or narrow the exception type"
                ),
            )

    @staticmethod
    def _catches_crash(type_node: Optional[ast.expr]) -> bool:
        if type_node is None:
            return True
        names: List[str] = []
        if isinstance(type_node, ast.Tuple):
            names = [_attr_chain_tail(elt) for elt in type_node.elts]
        else:
            names = [_attr_chain_tail(type_node)]
        return any(name in ("BaseException", "SimulatedCrash") for name in names)

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, _FUNCTION_NODES):
                continue
            if isinstance(node, ast.Raise):
                if node.exc is None:
                    return True
                if isinstance(node.exc, ast.Name) and node.exc.id == handler.name:
                    return True
                tail = _attr_chain_tail(
                    node.exc.func if isinstance(node.exc, ast.Call) else node.exc
                )
                if tail == "SimulatedCrash":
                    return True
        return False


class UnguardedFailpoint(Rule):
    """Failpoint hits must sit behind ``<registry> is not None`` so that
    production paths pay a single attribute load when faults are off."""

    id = "unguarded-failpoint"
    summary = "faults.hit/fire_action/... call not behind an 'is not None' guard"

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        if ctx.package == "faults":
            return  # the registry's own methods run on a live self
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) or func.attr not in _FAULT_FIRE_APIS:
                continue
            receiver = _unparse(func.value)
            tail = _attr_chain_tail(func.value)
            if "faults" not in receiver and tail != "registry":
                continue
            if receiver in ("self", "cls"):
                continue
            if self._guarded(ctx, node, receiver):
                continue
            yield Finding(
                rule=self.id,
                path=ctx.path,
                line=node.lineno,
                message=(
                    f"'{receiver}.{func.attr}(...)' is not behind an "
                    f"'{receiver} is not None' guard"
                ),
            )

    @staticmethod
    def _is_guard_expr(expr: ast.expr, receiver: str) -> bool:
        return (
            isinstance(expr, ast.Compare)
            and len(expr.ops) == 1
            and isinstance(expr.ops[0], ast.IsNot)
            and isinstance(expr.comparators[0], ast.Constant)
            and expr.comparators[0].value is None
            and _unparse(expr.left) == receiver
        )

    @classmethod
    def _test_guards(cls, test: ast.expr, receiver: str) -> bool:
        return any(
            cls._is_guard_expr(sub, receiver)
            for sub in ast.walk(test)
            if isinstance(sub, ast.Compare)
        )

    @classmethod
    def _guarded(cls, ctx: ModuleContext, call: ast.Call, receiver: str) -> bool:
        child: ast.AST = call
        for anc in ctx.ancestors(call):
            if isinstance(anc, ast.BoolOp) and isinstance(anc.op, ast.And):
                for value in anc.values:
                    if value is child or any(n is child for n in ast.walk(value)):
                        break
                    if cls._is_guard_expr(value, receiver):
                        return True
            elif isinstance(anc, ast.IfExp):
                in_body = anc.body is child or any(n is child for n in ast.walk(anc.body))
                if in_body and cls._test_guards(anc.test, receiver):
                    return True
            elif isinstance(anc, (ast.If, ast.While)):
                in_body = any(
                    stmt is child or any(n is child for n in ast.walk(stmt))
                    for stmt in anc.body
                )
                if in_body and cls._test_guards(anc.test, receiver):
                    return True
            elif isinstance(anc, ast.Assert):
                if cls._test_guards(anc.test, receiver):
                    return True
            elif isinstance(anc, _FUNCTION_NODES + (ast.Module, ast.ClassDef)):
                break
            child = anc
        return False


class UnknownFailpointName(Rule):
    """String literals handed to fault APIs must exist in CATALOG, and
    (reverse) every CATALOG entry must be referenced by some call site."""

    id = "unknown-failpoint-name"
    summary = "failpoint name literal not present in faults.registry.CATALOG"

    def __init__(self) -> None:
        from repro.faults.registry import CATALOG

        self._catalog = dict(CATALOG)

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        state = ctx.project.state.setdefault(
            self.id, {"referenced": set(), "registry_file": None, "catalog_line": 1}
        )
        if ctx.repro_parts[-2:] == ("faults", "registry.py"):
            state["registry_file"] = ctx.path
            for node in ctx.walk():
                targets: List[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, ast.AnnAssign) and node.target is not None:
                    targets = [node.target]
                for target in targets:
                    if isinstance(target, ast.Name) and target.id == "CATALOG":
                        state["catalog_line"] = node.lineno
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) or func.attr not in _FAULT_NAME_APIS:
                continue
            receiver = _unparse(func.value)
            tail = _attr_chain_tail(func.value)
            if "faults" not in receiver and tail != "registry" and receiver not in (
                "self",
                "cls",
            ):
                continue
            if not node.args:
                continue
            first = node.args[0]
            if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
                continue
            name = first.value
            state["referenced"].add(name)
            if name not in self._catalog:
                yield Finding(
                    rule=self.id,
                    path=ctx.path,
                    line=node.lineno,
                    message=(
                        f"failpoint name '{name}' is not in faults.registry.CATALOG"
                    ),
                )

    def finish(self, project: Project) -> Iterable[Finding]:
        state = project.state.get(self.id)
        # The reverse check only makes sense when the scan covered the
        # registry module itself (i.e. a whole-tree lint, not a fixture).
        if not state or state["registry_file"] is None:
            return
        missing = sorted(set(self._catalog) - state["referenced"])
        for name in missing:
            yield Finding(
                rule=self.id,
                path=state["registry_file"],
                line=state["catalog_line"],
                message=(
                    f"CATALOG entry '{name}' has no call site in the scanned "
                    "tree; dead failpoints hide coverage gaps"
                ),
            )


class BlockingUnderEngineLock(Rule):
    """The engine lock serialises every statement; sleeping or doing
    socket/disk I/O while holding it turns one slow client into a
    whole-server stall."""

    id = "blocking-under-engine-lock"
    summary = "time.sleep/socket/fsync/wire-protocol call inside 'with *_engine_lock:'"

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ctx.walk():
            if not isinstance(node, ast.With):
                continue
            if not any(
                _unparse(item.context_expr).rstrip(")").endswith("_engine_lock")
                for item in node.items
            ):
                continue
            for finding in self._scan_body(ctx, node):
                yield finding

    def _scan_body(self, ctx: ModuleContext, with_node: ast.With) -> Iterable[Finding]:
        stack: List[ast.AST] = list(with_node.body)
        while stack:
            node = stack.pop()
            if isinstance(node, _FUNCTION_NODES):
                continue  # deferred execution escapes the lock scope
            if isinstance(node, ast.Call):
                blocked = self._blocking_name(node.func)
                if blocked is not None:
                    yield Finding(
                        rule=self.id,
                        path=ctx.path,
                        line=node.lineno,
                        message=(
                            f"'{blocked}' blocks while holding the engine lock "
                            f"(entered at line {with_node.lineno})"
                        ),
                    )
            stack.extend(ast.iter_child_nodes(node))

    @staticmethod
    def _blocking_name(func: ast.expr) -> Optional[str]:
        if isinstance(func, ast.Attribute) and func.attr in _BLOCKING_ATTRS:
            return f"{_unparse(func)}"
        if isinstance(func, ast.Name) and func.id in _BLOCKING_NAMES:
            return func.id
        return None


class MetricNameGrammar(Rule):
    """Metric/span names are the observability API surface: they must be
    ``component.snake_name`` and the component must belong to the
    emitting package so dashboards can attribute cost."""

    id = "metric-name-grammar"
    summary = "metric/span name literal violates component.snake_name grammar"

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        if ctx.package == "obs":
            return  # the framework itself passes names through variables
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) or func.attr not in _METRIC_ATTRS:
                continue
            tail = _attr_chain_tail(func.value)
            if func.attr != "_inc" and tail not in _METRIC_RECEIVERS:
                continue
            if not node.args:
                continue
            for literal, exact in self._name_literals(node.args[0]):
                for finding in self._check_name(ctx, node, literal, exact):
                    yield finding

    @staticmethod
    def _name_literals(arg: ast.expr) -> List[Tuple[str, bool]]:
        """Extract (text, is_exact) candidates from a name argument."""
        if isinstance(arg, ast.Constant):
            if isinstance(arg.value, str):
                return [(arg.value, True)]
            return []
        if isinstance(arg, ast.BinOp) and isinstance(arg.op, ast.Add):
            left = arg.left
            if isinstance(left, ast.Constant) and isinstance(left.value, str):
                return [(left.value, False)]
            return []
        if isinstance(arg, ast.JoinedStr) and arg.values:
            head = arg.values[0]
            if isinstance(head, ast.Constant) and isinstance(head.value, str):
                return [(head.value, False)]
            return []
        if isinstance(arg, ast.IfExp):
            out: List[Tuple[str, bool]] = []
            out.extend(MetricNameGrammar._name_literals(arg.body))
            out.extend(MetricNameGrammar._name_literals(arg.orelse))
            return out
        return []

    def _check_name(
        self, ctx: ModuleContext, node: ast.Call, text: str, exact: bool
    ) -> Iterable[Finding]:
        if exact:
            grammar_ok = bool(_METRIC_NAME_RE.match(text))
        else:
            # A prefix like "am." or "sql.statements.": every segment seen
            # so far must be a valid snake segment, starting lowercase.
            segments = text.rstrip(".").split(".") if text.rstrip(".") else []
            grammar_ok = (
                bool(segments)
                and bool(re.match(r"^[a-z][a-z0-9_]*$", segments[0]))
                and all(_METRIC_SEGMENT_RE.match(seg) for seg in segments[1:])
            )
        if not grammar_ok:
            yield Finding(
                rule=self.id,
                path=ctx.path,
                line=node.lineno,
                message=(
                    f"metric/span name '{text}' does not match the "
                    "'component.snake_name' grammar"
                ),
            )
            return
        component = text.split(".", 1)[0]
        allowed = _COMPONENTS_BY_PACKAGE.get(ctx.package or "")
        if allowed is not None and component not in allowed:
            yield Finding(
                rule=self.id,
                path=ctx.path,
                line=node.lineno,
                message=(
                    f"metric component '{component}' is not owned by package "
                    f"'{ctx.package}' (allowed: {', '.join(sorted(allowed))})"
                ),
            )


class MutableDefaultOrSharedState(Rule):
    """Mutable argument defaults leak state across calls; module-level
    mutable containers in modules that spawn/coordinate threads are data
    races waiting for the de-GIL refactor."""

    id = "mutable-default-or-shared-state"
    summary = (
        "mutable default argument, or unlocked module-level mutable state "
        "in a threaded module"
    )

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ctx.walk():
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for default in list(node.args.defaults) + [
                    d for d in node.args.kw_defaults if d is not None
                ]:
                    if isinstance(default, (ast.List, ast.Dict, ast.Set)):
                        yield Finding(
                            rule=self.id,
                            path=ctx.path,
                            line=default.lineno,
                            message=(
                                f"mutable default argument in '{node.name}'; "
                                "use None and construct inside the function"
                            ),
                        )
        if not self._imports_threading(ctx):
            return
        lock_names = self._module_lock_names(ctx)
        for stmt in ctx.tree.body:
            name, value = self._module_assignment(stmt)
            if name is None or value is None:
                continue
            if name in _SHARED_STATE_EXEMPT_NAMES:
                continue
            if not self._is_mutable_container(value):
                continue
            if self._has_companion_lock(name, lock_names):
                continue
            yield Finding(
                rule=self.id,
                path=ctx.path,
                line=stmt.lineno,
                message=(
                    f"module-level mutable '{name}' in a threaded module has no "
                    "companion lock; freeze it (MappingProxyType/tuple/frozenset) "
                    "or add one"
                ),
            )

    @staticmethod
    def _imports_threading(ctx: ModuleContext) -> bool:
        for node in ctx.tree.body:
            if isinstance(node, ast.Import):
                if any(alias.name in ("threading", "_thread") for alias in node.names):
                    return True
            elif isinstance(node, ast.ImportFrom):
                if node.module in ("threading", "_thread"):
                    return True
        return False

    @staticmethod
    def _module_assignment(
        stmt: ast.stmt,
    ) -> Tuple[Optional[str], Optional[ast.expr]]:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                return target.id, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            return stmt.target.id, stmt.value
        return None, None

    @staticmethod
    def _is_mutable_container(value: ast.expr) -> bool:
        if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(value, ast.Call):
            tail = _attr_chain_tail(value.func)
            if tail in _IMMUTABLE_FACTORIES:
                return False
            if tail in ("dict", "list", "set", "defaultdict", "deque", "OrderedDict", "Counter"):
                return True
        return False

    @staticmethod
    def _module_lock_names(ctx: ModuleContext) -> Set[str]:
        names: Set[str] = set()
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name) and isinstance(stmt.value, ast.Call):
                    tail = _attr_chain_tail(stmt.value.func)
                    if tail in ("Lock", "RLock", "Condition", "Semaphore"):
                        names.add(target.id)
        return names

    @staticmethod
    def _has_companion_lock(name: str, lock_names: Set[str]) -> bool:
        if not lock_names:
            return False
        lowered = name.lower().strip("_")
        candidates = {
            f"{name}_lock",
            f"_{name}_lock",
            f"{lowered}_lock",
            f"_{lowered}_lock",
            "_lock",
            "_LOCK",
        }
        return bool(candidates & lock_names) or any(
            lowered in lock.lower() for lock in lock_names
        )


def all_rules() -> List[Rule]:
    return [
        BareExceptSwallowsCrash(),
        UnguardedFailpoint(),
        UnknownFailpointName(),
        BlockingUnderEngineLock(),
        MetricNameGrammar(),
        MutableDefaultOrSharedState(),
    ]
