"""AST invariant linter framework.

A *rule* inspects one parsed module at a time and yields
:class:`Finding` objects; rules that need whole-tree knowledge (the
CATALOG reverse-completeness check) additionally implement ``finish``
and are handed the accumulated :class:`Project` state after every file
has been scanned.

Suppressions
------------
Findings are silenced with comments carrying a **mandatory** reason::

    risky_line()  # repro: allow(rule-id): why this is safe here

A standalone comment line suppresses the next line, so multi-line
statements stay readable::

    # repro: allow(blocking-under-engine-lock): simulated latency knob
    time.sleep(self.simulated_io_s)

``# repro: allow-file(rule-id): reason`` anywhere in a file suppresses
the rule for the whole file.  A suppression without a reason is itself
reported (``bad-suppression``) and a suppression that silences nothing
is reported under ``--strict`` (``unused-suppression``); neither of
those meta-findings can be suppressed.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Finding",
    "LintReport",
    "ModuleContext",
    "Project",
    "Rule",
    "Suppression",
    "lint_paths",
    "lint_source",
]

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*(allow|allow-file)\(([a-z0-9][a-z0-9-]*)\)\s*(?::\s*(\S.*?))?\s*$"
)

# Meta rule ids emitted by the framework itself; never suppressible.
BAD_SUPPRESSION = "bad-suppression"
UNUSED_SUPPRESSION = "unused-suppression"
_META_RULES = frozenset({BAD_SUPPRESSION, UNUSED_SUPPRESSION})


@dataclass
class Finding:
    """One rule violation at a specific source line."""

    rule: str
    path: str
    line: int
    message: str
    suppressed: bool = False
    suppress_reason: Optional[str] = None

    def sort_key(self) -> Tuple[str, int, str]:
        return (self.path, self.line, self.rule)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "suppressed": self.suppressed,
            "suppress_reason": self.suppress_reason,
        }


@dataclass
class Suppression:
    """A parsed ``# repro: allow(...)`` comment."""

    rule: str
    line: int  # line the suppression *targets* (not necessarily the comment line)
    comment_line: int
    reason: Optional[str]
    file_wide: bool
    used: bool = False


class Project:
    """Cross-file state accumulated over a lint run."""

    def __init__(self) -> None:
        # rule-owned scratch space, keyed by rule id
        self.state: Dict[str, object] = {}
        self.files: List[str] = []


class ModuleContext:
    """Everything a rule needs to inspect one module."""

    def __init__(self, path: str, source: str, tree: ast.Module, project: Project):
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.project = project
        self._parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    # -- path helpers -------------------------------------------------

    @property
    def repro_parts(self) -> Tuple[str, ...]:
        """Path components after the last ``repro`` directory, or ()."""
        parts = Path(self.path).parts
        for i in range(len(parts) - 1, -1, -1):
            if parts[i] == "repro":
                return parts[i + 1 :]
        return ()

    @property
    def package(self) -> Optional[str]:
        """Top-level package under ``repro`` owning this module."""
        parts = self.repro_parts
        if not parts:
            return None
        if len(parts) == 1:
            return Path(parts[0]).stem
        return parts[0]

    # -- tree helpers -------------------------------------------------

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        cur = self._parents.get(node)
        while cur is not None:
            yield cur
            cur = self._parents.get(cur)

    def walk(self, node: Optional[ast.AST] = None) -> Iterator[ast.AST]:
        return ast.walk(node if node is not None else self.tree)


class Rule:
    """Base class: subclasses set ``id``/``summary`` and implement check."""

    id: str = ""
    summary: str = ""

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        return ()

    def finish(self, project: Project) -> Iterable[Finding]:
        """Called once after all modules are scanned."""
        return ()


# ----------------------------------------------------------------------
# Suppression parsing
# ----------------------------------------------------------------------


def parse_suppressions(source: str, path: str) -> Tuple[List[Suppression], List[Finding]]:
    """Extract suppression comments; malformed ones become findings."""
    suppressions: List[Suppression] = []
    findings: List[Finding] = []
    lines = source.splitlines()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        tokens = []
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(tok.string)
        if match is None:
            if "repro:" in tok.string and "allow" in tok.string:
                findings.append(
                    Finding(
                        rule=BAD_SUPPRESSION,
                        path=path,
                        line=tok.start[0],
                        message=(
                            "malformed suppression comment; expected "
                            "'# repro: allow(rule-id): reason'"
                        ),
                    )
                )
            continue
        kind, rule_id, reason = match.group(1), match.group(2), match.group(3)
        comment_line = tok.start[0]
        if reason is None or not reason.strip():
            findings.append(
                Finding(
                    rule=BAD_SUPPRESSION,
                    path=path,
                    line=comment_line,
                    message=(
                        f"suppression for '{rule_id}' is missing its reason; "
                        "every allow() must say why the violation is safe"
                    ),
                )
            )
            continue
        if rule_id in _META_RULES:
            findings.append(
                Finding(
                    rule=BAD_SUPPRESSION,
                    path=path,
                    line=comment_line,
                    message=f"'{rule_id}' findings cannot be suppressed",
                )
            )
            continue
        target = comment_line
        if kind == "allow":
            before = lines[comment_line - 1][: tok.start[1]] if comment_line <= len(lines) else ""
            if not before.strip():
                # Standalone comment: applies to the first code line below,
                # skipping the rest of the comment block and blank lines.
                target = comment_line + 1
                while target <= len(lines):
                    stripped = lines[target - 1].strip()
                    if stripped and not stripped.startswith("#"):
                        break
                    target += 1
        suppressions.append(
            Suppression(
                rule=rule_id,
                line=target,
                comment_line=comment_line,
                reason=reason.strip(),
                file_wide=(kind == "allow-file"),
            )
        )
    return suppressions, findings


def apply_suppressions(
    findings: List[Finding], suppressions: List[Suppression]
) -> None:
    """Mark findings covered by a suppression (mutates in place)."""
    by_line: Dict[Tuple[str, int], Suppression] = {}
    file_wide: Dict[str, Suppression] = {}
    for sup in suppressions:
        if sup.file_wide:
            file_wide.setdefault(sup.rule, sup)
        else:
            by_line.setdefault((sup.rule, sup.line), sup)
    for finding in findings:
        if finding.rule in _META_RULES:
            continue
        sup = by_line.get((finding.rule, finding.line)) or file_wide.get(finding.rule)
        if sup is not None:
            finding.suppressed = True
            finding.suppress_reason = sup.reason
            sup.used = True


# ----------------------------------------------------------------------
# Report
# ----------------------------------------------------------------------


@dataclass
class LintReport:
    """Outcome of a lint run over a set of files."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    paths: List[str] = field(default_factory=list)
    strict: bool = False
    rules: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def active(self) -> List[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def active_count(self) -> int:
        return len(self.active)

    @property
    def suppressed_count(self) -> int:
        return sum(1 for f in self.findings if f.suppressed)

    @property
    def exit_code(self) -> int:
        return 1 if self.active else 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": 1,
            "tool": "repro-lint",
            "strict": self.strict,
            "paths": list(self.paths),
            "files_scanned": self.files_scanned,
            "rules": [{"id": rid, "summary": summary} for rid, summary in self.rules],
            "findings": [f.to_dict() for f in sorted(self.findings, key=Finding.sort_key)],
            "counts": {
                "total": len(self.findings),
                "suppressed": self.suppressed_count,
                "active": self.active_count,
            },
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def to_text(self) -> str:
        out: List[str] = []
        for finding in sorted(self.findings, key=Finding.sort_key):
            status = "suppressed" if finding.suppressed else "error"
            out.append(
                f"{finding.path}:{finding.line}: [{finding.rule}] "
                f"{finding.message} ({status})"
            )
        out.append(
            f"{self.files_scanned} file(s) scanned: "
            f"{self.active_count} active finding(s), "
            f"{self.suppressed_count} suppressed"
        )
        return "\n".join(out)


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------


def default_rules() -> List[Rule]:
    from repro.analysis import rules as rules_mod

    return rules_mod.all_rules()


def _collect_files(paths: Sequence[str]) -> List[Path]:
    files: List[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_file():
            if p.suffix == ".py":
                files.append(p)
        elif p.is_dir():
            files.extend(
                f
                for f in sorted(p.rglob("*.py"))
                if "__pycache__" not in f.parts
            )
        else:
            raise FileNotFoundError(f"lint path does not exist: {raw}")
    return files


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
    strict: bool = False,
    project: Optional[Project] = None,
    run_finish: bool = True,
) -> LintReport:
    """Lint a single in-memory module (fixture/test entry point)."""
    active_rules = list(rules) if rules is not None else default_rules()
    project = project if project is not None else Project()
    report = LintReport(strict=strict, paths=[path], rules=[(r.id, r.summary) for r in active_rules])
    findings, suppressions = _lint_one(source, path, active_rules, project)
    if run_finish:
        for rule in active_rules:
            findings.extend(rule.finish(project))
    apply_suppressions(findings, suppressions)
    findings.extend(_unused(suppressions, path, strict))
    report.findings = findings
    report.files_scanned = 1
    return report


def lint_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    strict: bool = False,
) -> LintReport:
    """Lint every ``.py`` file under the given files/directories."""
    active_rules = list(rules) if rules is not None else default_rules()
    files = _collect_files(paths)
    project = Project()
    report = LintReport(
        strict=strict,
        paths=[str(p) for p in paths],
        rules=[(r.id, r.summary) for r in active_rules],
    )
    all_findings: List[Finding] = []
    all_suppressions: List[Tuple[str, List[Suppression]]] = []
    for file_path in files:
        try:
            source = file_path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            all_findings.append(
                Finding(
                    rule=BAD_SUPPRESSION,
                    path=str(file_path),
                    line=1,
                    message=f"could not read file: {exc}",
                )
            )
            continue
        findings, suppressions = _lint_one(source, str(file_path), active_rules, project)
        all_findings.extend(findings)
        all_suppressions.append((str(file_path), suppressions))
    for rule in active_rules:
        all_findings.extend(rule.finish(project))
    flat_sups = [s for _, sups in all_suppressions for s in sups]
    apply_suppressions(all_findings, flat_sups)
    for file_path_str, sups in all_suppressions:
        all_findings.extend(_unused(sups, file_path_str, strict))
    report.findings = all_findings
    report.files_scanned = len(files)
    return report


def _lint_one(
    source: str, path: str, rules: Sequence[Rule], project: Project
) -> Tuple[List[Finding], List[Suppression]]:
    findings: List[Finding] = []
    suppressions, sup_findings = parse_suppressions(source, path)
    findings.extend(sup_findings)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        findings.append(
            Finding(
                rule=BAD_SUPPRESSION,
                path=path,
                line=exc.lineno or 1,
                message=f"syntax error prevents linting: {exc.msg}",
            )
        )
        return findings, suppressions
    ctx = ModuleContext(path, source, tree, project)
    project.files.append(path)
    for rule in rules:
        findings.extend(rule.check_module(ctx))
    return findings, suppressions


def _unused(
    suppressions: Sequence[Suppression], path: str, strict: bool
) -> List[Finding]:
    if not strict:
        return []
    return [
        Finding(
            rule=UNUSED_SUPPRESSION,
            path=path,
            line=sup.comment_line,
            message=(
                f"suppression for '{sup.rule}' silences nothing; "
                "delete it or fix the target line reference"
            ),
        )
        for sup in suppressions
        if not sup.used
    ]
