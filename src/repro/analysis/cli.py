"""``repro lint`` -- run the invariant linter from the command line.

Exit codes: 0 clean, 1 active (unsuppressed) findings, 2 usage error.
The ``--json`` report follows the schema documented in
``docs/static_analysis.md`` (and validated by
:func:`repro.analysis.reporting.validate_report`).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def lint_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST invariant linter for the repro engine contracts",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable JSON report instead of text",
    )
    parser.add_argument(
        "--json-out",
        metavar="FILE",
        default=None,
        help="also write the JSON report to FILE (CI artifact)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="additionally fail on unused suppressions",
    )
    try:
        opts = parser.parse_args(argv)
    except SystemExit as exc:
        return 2 if exc.code not in (0, None) else 0

    from repro.analysis.linter import lint_paths

    try:
        report = lint_paths(opts.paths, strict=opts.strict)
    except FileNotFoundError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2

    if opts.json_out:
        try:
            with open(opts.json_out, "w", encoding="utf-8") as fh:
                fh.write(report.to_json())
                fh.write("\n")
        except OSError as exc:
            print(f"repro lint: cannot write {opts.json_out}: {exc}", file=sys.stderr)
            return 2

    if opts.json:
        print(report.to_json())
    else:
        print(report.to_text())
    return report.exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(lint_main())
