"""The documented JSON report schema for ``repro lint --json``.

The schema is expressed as a plain dict (JSON-Schema-shaped, but
validated by :func:`validate_report` with stdlib code -- the container
does not carry a jsonschema dependency).  CI uploads the report as an
artifact; consumers should treat unknown keys as forward-compatible
additions and key off ``version``.
"""

from __future__ import annotations

from typing import Any, Dict, List

__all__ = ["REPORT_SCHEMA", "validate_report"]

REPORT_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro-lint report",
    "type": "object",
    "required": [
        "version",
        "tool",
        "strict",
        "paths",
        "files_scanned",
        "rules",
        "findings",
        "counts",
    ],
    "properties": {
        "version": {"type": "integer", "const": 1},
        "tool": {"type": "string", "const": "repro-lint"},
        "strict": {"type": "boolean"},
        "paths": {"type": "array", "items": {"type": "string"}},
        "files_scanned": {"type": "integer", "minimum": 0},
        "rules": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["id", "summary"],
                "properties": {
                    "id": {"type": "string"},
                    "summary": {"type": "string"},
                },
            },
        },
        "findings": {
            "type": "array",
            "items": {
                "type": "object",
                "required": [
                    "rule",
                    "path",
                    "line",
                    "message",
                    "suppressed",
                    "suppress_reason",
                ],
                "properties": {
                    "rule": {"type": "string"},
                    "path": {"type": "string"},
                    "line": {"type": "integer", "minimum": 1},
                    "message": {"type": "string"},
                    "suppressed": {"type": "boolean"},
                    "suppress_reason": {"type": ["string", "null"]},
                },
            },
        },
        "counts": {
            "type": "object",
            "required": ["total", "suppressed", "active"],
            "properties": {
                "total": {"type": "integer", "minimum": 0},
                "suppressed": {"type": "integer", "minimum": 0},
                "active": {"type": "integer", "minimum": 0},
            },
        },
    },
}


def validate_report(report: Any) -> List[str]:
    """Return a list of schema violations (empty when valid)."""
    errors: List[str] = []

    def expect(cond: bool, msg: str) -> bool:
        if not cond:
            errors.append(msg)
        return cond

    if not expect(isinstance(report, dict), "report must be an object"):
        return errors
    expect(report.get("version") == 1, "version must be 1")
    expect(report.get("tool") == "repro-lint", "tool must be 'repro-lint'")
    expect(isinstance(report.get("strict"), bool), "strict must be a boolean")
    paths = report.get("paths")
    expect(
        isinstance(paths, list) and all(isinstance(p, str) for p in paths),
        "paths must be a list of strings",
    )
    expect(
        isinstance(report.get("files_scanned"), int)
        and report.get("files_scanned", -1) >= 0,
        "files_scanned must be a non-negative integer",
    )
    rules = report.get("rules")
    if expect(isinstance(rules, list), "rules must be a list"):
        for i, rule in enumerate(rules):
            expect(
                isinstance(rule, dict)
                and isinstance(rule.get("id"), str)
                and isinstance(rule.get("summary"), str),
                f"rules[{i}] must have string 'id' and 'summary'",
            )
    findings = report.get("findings")
    if expect(isinstance(findings, list), "findings must be a list"):
        for i, finding in enumerate(findings):
            if not expect(isinstance(finding, dict), f"findings[{i}] must be an object"):
                continue
            expect(isinstance(finding.get("rule"), str), f"findings[{i}].rule must be a string")
            expect(isinstance(finding.get("path"), str), f"findings[{i}].path must be a string")
            expect(
                isinstance(finding.get("line"), int) and finding.get("line", 0) >= 1,
                f"findings[{i}].line must be a positive integer",
            )
            expect(
                isinstance(finding.get("message"), str),
                f"findings[{i}].message must be a string",
            )
            expect(
                isinstance(finding.get("suppressed"), bool),
                f"findings[{i}].suppressed must be a boolean",
            )
            reason = finding.get("suppress_reason")
            expect(
                reason is None or isinstance(reason, str),
                f"findings[{i}].suppress_reason must be a string or null",
            )
            if finding.get("suppressed") is True:
                expect(
                    isinstance(reason, str) and bool(reason.strip()),
                    f"findings[{i}] is suppressed but carries no reason",
                )
    counts = report.get("counts")
    if expect(isinstance(counts, dict), "counts must be an object"):
        for key in ("total", "suppressed", "active"):
            expect(
                isinstance(counts.get(key), int) and counts.get(key, -1) >= 0,
                f"counts.{key} must be a non-negative integer",
            )
        if not errors and isinstance(findings, list):
            expect(counts["total"] == len(findings), "counts.total must match findings length")
            suppressed = sum(1 for f in findings if f.get("suppressed"))
            expect(
                counts["suppressed"] == suppressed,
                "counts.suppressed must match suppressed findings",
            )
            expect(
                counts["active"] == len(findings) - suppressed,
                "counts.active must match unsuppressed findings",
            )
    return errors
