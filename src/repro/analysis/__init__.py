"""Static and dynamic conformance checking for the repro engine.

The engine's cross-cutting contracts -- ``SimulatedCrash`` must
propagate, failpoints stay behind ``faults is not None`` guards and use
names from :data:`repro.faults.registry.CATALOG`, nothing blocks under
the engine lock, metric names follow the ``component.snake_name``
grammar, threaded modules keep no unlocked module-level mutable state --
existed only as review conventions.  This package makes them executable:

* :mod:`repro.analysis.linter` -- AST rule framework (suppressions,
  reporters, exit codes) and the rule catalog in
  :mod:`repro.analysis.rules`.
* :mod:`repro.analysis.lockgraph` -- dynamic lock-order detector that
  wraps ``threading.Lock``/``RLock`` and reports acquisition-order
  cycles with both stacks.
* ``repro lint`` CLI (:mod:`repro.analysis.cli`).

Everything here is stdlib-only so the no-numpy CI job can run it.
"""

from repro.analysis.linter import (  # noqa: F401
    Finding,
    LintReport,
    lint_paths,
    lint_source,
)

__all__ = ["Finding", "LintReport", "lint_paths", "lint_source"]
