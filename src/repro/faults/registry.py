"""Deterministic failpoint registry.

Crash-consistency claims are only trusted once the failure paths are
exercised adversarially (Griffin's discipline, PAPERS.md): a torn page
write, an fsync that never happens, a frame dropped mid-commit.  This
module provides the machinery: named *failpoints* compiled into the
storage and net layers fire configurable *actions* when armed.

Design constraints, in order:

1. **Zero cost when unused.**  Every instrumented component holds a
   ``faults`` attribute that defaults to ``None`` and guards the hit
   with ``if self.faults is not None``.  The read-path benchmark gate
   (``bench_perf_read_path.py``) enforces this stays unmeasurable.
2. **Deterministic.**  Trigger-on-Nth-hit counting and seeded
   probability mean a failing randomized run replays exactly from its
   seed.
3. **Crash is not an error.**  :class:`SimulatedCrash` subclasses
   ``BaseException`` so ordinary ``except Exception`` recovery code --
   most importantly the session layer's rollback-on-error -- does *not*
   intercept it.  A real crash does not get to run rollback; neither
   does a simulated one.

Actions:

``raise``
    Raise :class:`FaultInjected` (a ``RuntimeError``).  The engine
    treats it like any other statement failure: the transaction is
    rolled back and the error reported.
``crash``
    Raise :class:`SimulatedCrash`.  The process "dies" at the
    failpoint: no rollback, no cleanup -- volatile state is frozen
    exactly as the crash left it.  The crash-consistency harness
    catches it at top level and drives WAL recovery.
``torn``
    Only meaningful at write failpoints: the first half of the new
    data is written, the old tail remains (a torn/partial page write).
    At non-write failpoints it degrades to ``raise``.
``corrupt``
    Only meaningful at write failpoints: a few deterministically
    chosen bytes of the written data are bit-flipped.  At non-write
    failpoints it degrades to ``raise``.
``drop`` / ``dup`` / ``reorder``
    Frame-level actions for the replication stream (``repl.send``):
    the WAL shipper silently drops the frame, sends it twice, or swaps
    it with the next one.  The replica's apply loop must absorb all
    three (idempotency by LSN, reorder buffering, gap resubscribe).
    At failpoints that cannot act on frames they degrade to ``raise``.
"""

from __future__ import annotations

import random
import threading
from types import MappingProxyType
from typing import Dict, Mapping, Optional, Tuple


class FaultInjected(RuntimeError):
    """An armed ``raise`` failpoint fired."""

    def __init__(self, name: str) -> None:
        super().__init__(f"fault injected at '{name}'")
        self.point = name


class SimulatedCrash(BaseException):
    """An armed ``crash`` failpoint fired: the engine 'died' here.

    Deliberately a ``BaseException``: rollback-on-error handlers must
    not see it, because a real crash would not have run them either.
    """

    def __init__(self, name: str) -> None:
        super().__init__(f"simulated crash at '{name}'")
        self.point = name


ACTIONS = ("raise", "crash", "torn", "corrupt", "drop", "dup", "reorder")

#: Every failpoint compiled into the engine, with the layer it lives in.
#: ``set_fault`` validates names against this catalog so a typo in a
#: test arms an error instead of a no-op.  Frozen: the catalog is shared
#: read-only across every engine thread, so it must not be mutable.
CATALOG: Mapping[str, str] = MappingProxyType({
    "wal.append": "storage: before any record is appended to the log",
    "wal.fsync": "storage: at commit, before the COMMIT record is durable",
    "sbspace.page_read": "storage: SmartBlob.read_page",
    "sbspace.page_write": "storage: SmartBlob.write_page (torn/corrupt capable)",
    "sbspace.open": "storage: Sbspace.open (lock acquisition + descriptor)",
    "osfile.read": "storage: OSFilePageStore.read_page",
    "osfile.write": "storage: OSFilePageStore.write_page (torn/corrupt capable)",
    "buffer.flush": "storage: BufferPool.flush of dirty frames",
    "lock.acquire": "storage: LockManager.acquire",
    "net.send": "net: server about to send a reply frame",
    "net.recv": "net: server received a request frame",
    "repl.send": "repl: primary about to ship a WAL frame "
    "(drop/dup/reorder/torn capable)",
    "repl.apply": "repl: replica about to apply a committed transaction",
    "hblade.hash_write": "hblade: before the hash-directory half of a "
    "hybrid-index mutation",
    "hblade.tree_write": "hblade: between the hash and tree halves of a "
    "hybrid-index mutation",
})


class FaultPoint:
    """One armed failpoint: the action plus its trigger conditions."""

    __slots__ = (
        "name",
        "action",
        "hit_at",
        "probability",
        "times",
        "enabled",
        "hits",
        "triggers",
        "_rng",
    )

    def __init__(
        self,
        name: str,
        action: str,
        *,
        hit_at: Optional[int] = None,
        probability: Optional[float] = None,
        times: Optional[int] = 1,
        seed: int = 0,
    ) -> None:
        self.name = name
        self.action = action
        self.hit_at = hit_at
        self.probability = probability
        self.times = times
        self.enabled = True
        self.hits = 0
        self.triggers = 0
        self._rng = random.Random(seed)

    def _decide(self) -> bool:
        """Count one traversal; report whether the action fires."""
        self.hits += 1
        if not self.enabled:
            return False
        if self.times is not None and self.triggers >= self.times:
            return False
        if self.hit_at is not None and self.hits < self.hit_at:
            return False
        if self.probability is not None and self._rng.random() >= self.probability:
            return False
        self.triggers += 1
        return True

    def describe(self) -> str:
        parts = [self.action]
        if self.hit_at is not None:
            parts.append(f"hit={self.hit_at}")
        if self.probability is not None:
            parts.append(f"p={self.probability:g}")
        if self.times is not None:
            parts.append(f"times={self.times}")
        if not self.enabled:
            parts.append("off")
        parts.append(f"hits={self.hits}")
        parts.append(f"triggers={self.triggers}")
        return " ".join(parts)


class FaultRegistry:
    """Named failpoints with deterministic trigger conditions.

    Thread-safe: the serving layer hits ``net.*`` points from reader
    threads while workers hit storage points.  The fast path -- nothing
    armed at this name -- is a single dict lookup outside the lock.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: Enabled points only; the fast path probes this dict.
        self._armed: Dict[str, FaultPoint] = {}
        #: Every point ever armed (counts survive ``clear`` for stats).
        self._points: Dict[str, FaultPoint] = {}

    # ------------------------------------------------------------------
    # Arming
    # ------------------------------------------------------------------

    def set_fault(
        self,
        name: str,
        action: str = "raise",
        *,
        hit: Optional[int] = None,
        probability: Optional[float] = None,
        times: Optional[int] = 1,
        seed: int = 0,
    ) -> FaultPoint:
        """Arm a failpoint.

        ``hit``: fire only from the Nth traversal on (1-based).
        ``probability``: fire with this chance per traversal, from a
        private RNG seeded with ``seed`` (deterministic replays).
        ``times``: stop firing after this many triggers (``None`` =
        keep firing forever).
        """
        if name not in CATALOG:
            known = ", ".join(sorted(CATALOG))
            raise ValueError(f"unknown failpoint '{name}' (known: {known})")
        if action not in ACTIONS:
            raise ValueError(
                f"unknown fault action '{action}' (known: {', '.join(ACTIONS)})"
            )
        if hit is not None and hit < 1:
            raise ValueError("hit counts are 1-based")
        if probability is not None and not (0.0 <= probability <= 1.0):
            raise ValueError("probability must be within [0, 1]")
        point = FaultPoint(
            name,
            action,
            hit_at=hit,
            probability=probability,
            times=times,
            seed=seed,
        )
        with self._lock:
            self._points[name] = point
            self._armed[name] = point
        return point

    def clear_fault(self, name: str) -> None:
        """Disarm one failpoint (its hit counts survive for stats)."""
        with self._lock:
            point = self._armed.pop(name, None)
            if point is not None:
                point.enabled = False

    def clear_all(self) -> None:
        with self._lock:
            for point in self._armed.values():
                point.enabled = False
            self._armed.clear()

    def armed(self) -> Dict[str, str]:
        """Snapshot of enabled points, name -> description."""
        with self._lock:
            return {name: p.describe() for name, p in self._armed.items()}

    # ------------------------------------------------------------------
    # Firing
    # ------------------------------------------------------------------

    def fire_action(self, name: str) -> Optional[str]:
        """Count a traversal of *name*; return the action if it fires.

        Sites that need custom handling (the net layer severs sockets
        instead of raising) call this directly; everything else goes
        through :meth:`hit` or :meth:`on_write`.
        """
        point = self._armed.get(name)
        if point is None:
            return None
        with self._lock:
            if not point._decide():
                return None
        return point.action

    def hit(self, name: str) -> None:
        """Traverse a non-write failpoint; raise if it fires.

        ``torn``/``corrupt`` make no sense without data to mangle, so
        they degrade to ``raise`` here.
        """
        action = self.fire_action(name)
        if action is None:
            return
        if action == "crash":
            raise SimulatedCrash(name)
        raise FaultInjected(name)

    def on_write(self, name: str, new: bytes, old: bytes) -> bytes:
        """Traverse a write failpoint; return the bytes to really write.

        ``raise``/``crash`` fire *before* the write (nothing reaches
        the medium).  ``torn`` returns the new prefix spliced onto the
        old tail -- the classic torn page.  ``corrupt`` bit-flips a few
        deterministically chosen bytes.
        """
        action = self.fire_action(name)
        if action is None:
            return new
        if action == "crash":
            raise SimulatedCrash(name)
        if action == "torn":
            return self._tear(new, old)
        if action == "corrupt":
            return self._flip(self._points[name], new)
        # ``raise`` and frame-level actions (meaningless here) degrade.
        raise FaultInjected(name)

    @staticmethod
    def _tear(new: bytes, old: bytes) -> bytes:
        cut = max(1, len(new) // 2)
        tail = old[cut : len(new)]
        tail = tail.ljust(len(new) - cut, b"\x00")
        return new[:cut] + tail

    @staticmethod
    def _flip(point: FaultPoint, data: bytes) -> bytes:
        if not data:
            return data
        mangled = bytearray(data)
        for _ in range(min(8, len(data))):
            index = point._rng.randrange(len(data))
            mangled[index] ^= 0xFF
        return bytes(mangled)

    def torn_payload(self, name: str, payload: bytes) -> Tuple[bytes, bool]:
        """Net-layer variant of :meth:`on_write`: there is no 'old'
        data on a wire, so ``torn`` truncates and ``corrupt`` flips.
        Returns ``(bytes_to_send, severed)``; ``severed`` means the
        sender must close the socket afterwards."""
        action = self.fire_action(name)
        if action is None:
            return payload, False
        if action == "crash":
            raise SimulatedCrash(name)
        if action == "torn":
            return payload[: max(1, len(payload) // 2)], True
        if action == "corrupt":
            return self._flip(self._points[name], payload), True
        # ``raise`` and frame-level actions degrade to a severed link.
        return b"", True

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Flat counters pulled by the observability collector."""
        with self._lock:
            out: Dict[str, int] = {"armed": len(self._armed)}
            for name, point in self._points.items():
                out[f"{name}.hits"] = point.hits
                out[f"{name}.triggers"] = point.triggers
            return out

    def report_lines(self) -> list[str]:
        """Human-readable lines for SHOW STATS / the CLI."""
        with self._lock:
            if not self._points:
                return ["no failpoints armed"]
            width = max(len(name) for name in self._points)
            return [
                f"{name:<{width}}  {point.describe()}"
                for name, point in sorted(self._points.items())
            ]
