"""Deterministic fault injection for crash-consistency testing.

See :mod:`repro.faults.registry` for the model and
``docs/fault-injection.md`` for the failpoint catalog, the
``SET FAULT`` statement, and the crash harness.
"""

from repro.faults.registry import (
    ACTIONS,
    CATALOG,
    FaultInjected,
    FaultPoint,
    FaultRegistry,
    SimulatedCrash,
)

__all__ = [
    "ACTIONS",
    "CATALOG",
    "FaultInjected",
    "FaultPoint",
    "FaultRegistry",
    "SimulatedCrash",
]
