"""B+-tree node layout over fixed-size pages.

Keys are stored as *encoded bytes* (the opaque type's binary send/receive
representation), so the tree itself never interprets them -- ordering
comes entirely from the pluggable comparator, which is what lets a new
operator class substitute ``compare()`` without touching the structure.

Node capacity is byte-budgeted rather than entry-counted because keys
are variable length.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional

from repro.storage.buffer import BufferPool

#: leaf flag, entry count, next-leaf page id (leaves only; -1 otherwise).
_NODE_HEADER = struct.Struct("<BHq")
#: Per entry: key length; then key bytes; then the pointer struct.
_KEY_LEN = struct.Struct("<H")
_LEAF_PTR = struct.Struct("<qi")   # rowid, fragid
_CHILD_PTR = struct.Struct("<q")   # child page id


@dataclass
class BTreeEntry:
    key: bytes
    rowid: Optional[int] = None
    fragid: int = 0
    child: Optional[int] = None

    def encoded_size(self, leaf: bool) -> int:
        ptr = _LEAF_PTR.size if leaf else _CHILD_PTR.size
        return _KEY_LEN.size + len(self.key) + ptr


@dataclass
class BTreeNode:
    page_id: int
    leaf: bool
    entries: List[BTreeEntry] = field(default_factory=list)
    next_leaf: int = -1
    #: Internal nodes: leftmost child (covers keys below entries[0].key).
    leftmost: int = -1

    def byte_size(self) -> int:
        size = _NODE_HEADER.size + (_CHILD_PTR.size if not self.leaf else 0)
        return size + sum(e.encoded_size(self.leaf) for e in self.entries)

    def __len__(self) -> int:
        return len(self.entries)


class BTreeNodeStore:
    """Serializes B+-tree nodes, one per page."""

    def __init__(self, buffer: BufferPool) -> None:
        self.buffer = buffer
        self.page_size = buffer.store.page_size
        if self.page_size < 128:
            raise ValueError("page size too small for a B+-tree node")

    def fits(self, node: BTreeNode) -> bool:
        return node.byte_size() <= self.page_size

    def allocate(self, leaf: bool) -> BTreeNode:
        return BTreeNode(self.buffer.allocate(), leaf)

    def read(self, page_id: int) -> BTreeNode:
        data = self.buffer.read(page_id)
        leaf, count, next_leaf = _NODE_HEADER.unpack_from(data, 0)
        offset = _NODE_HEADER.size
        node = BTreeNode(page_id, bool(leaf), next_leaf=next_leaf)
        if not leaf:
            (node.leftmost,) = _CHILD_PTR.unpack_from(data, offset)
            offset += _CHILD_PTR.size
        for _ in range(count):
            (key_len,) = _KEY_LEN.unpack_from(data, offset)
            offset += _KEY_LEN.size
            key = data[offset : offset + key_len]
            offset += key_len
            if leaf:
                rowid, fragid = _LEAF_PTR.unpack_from(data, offset)
                offset += _LEAF_PTR.size
                node.entries.append(BTreeEntry(key, rowid=rowid, fragid=fragid))
            else:
                (child,) = _CHILD_PTR.unpack_from(data, offset)
                offset += _CHILD_PTR.size
                node.entries.append(BTreeEntry(key, child=child))
        return node

    def write(self, node: BTreeNode) -> None:
        if not self.fits(node):
            raise ValueError(
                f"B+-tree node overflow: {node.byte_size()} bytes "
                f"> page size {self.page_size}"
            )
        parts = [_NODE_HEADER.pack(node.leaf, len(node.entries), node.next_leaf)]
        if not node.leaf:
            parts.append(_CHILD_PTR.pack(node.leftmost))
        for entry in node.entries:
            parts.append(_KEY_LEN.pack(len(entry.key)))
            parts.append(entry.key)
            if node.leaf:
                parts.append(_LEAF_PTR.pack(entry.rowid, entry.fragid))
            else:
                parts.append(_CHILD_PTR.pack(entry.child))
        self.buffer.write(node.page_id, b"".join(parts))

    def free(self, page_id: int) -> None:
        self.buffer.free(page_id)
