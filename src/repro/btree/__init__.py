"""A disk-based B+-tree with a pluggable comparator.

The paper's Step 4 uses the B+-tree access method as its running example
of operator-class machinery: ``GreaterThan()`` and ``LessThanOrEqual()``
are strategy functions, and ``compare()`` is *the* support function -- a
programmer can change the sort order of an entire index by registering a
new operator class with a substitute ``compare()`` ("the natural order
for integers is -2, -1, 0, 1, 2, but the programmer may want to change
this order to 0, -1, 1, -2, 2").  This subpackage provides the index
structure that makes that example executable.
"""

from repro.btree.tree import BPlusTree
from repro.btree.node import BTreeNodeStore

__all__ = ["BPlusTree", "BTreeNodeStore"]
