"""The B+-tree proper: comparator-driven, duplicate-tolerant, paged.

Deletion is *lazy* (entries are removed; structurally empty nodes are
tolerated and the root collapses when possible) -- the common production
trade-off, and consistent with the paper's observation that eager
re-organization on deletion hurts index availability (Section 5.5).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Tuple

from repro.btree.node import BTreeEntry, BTreeNode, BTreeNodeStore

#: A comparator over *encoded* keys: negative / zero / positive.
Comparator = Callable[[bytes, bytes], int]


class BPlusTree:
    """A B+-tree over a :class:`BTreeNodeStore` with a pluggable order."""

    def __init__(
        self,
        store: BTreeNodeStore,
        compare: Comparator,
        root_id: Optional[int] = None,
        height: int = 1,
        size: int = 0,
    ) -> None:
        self.store = store
        self.compare = compare
        if root_id is None:
            root = store.allocate(leaf=True)
            store.write(root)
            root_id = root.page_id
        self.root_id = root_id
        self.height = height
        self.size = size
        self.last_node_accesses = 0

    # ------------------------------------------------------------------
    # Descent
    # ------------------------------------------------------------------

    def _bisect(
        self, entries: List[BTreeEntry], key: bytes, right: bool
    ) -> int:
        """Binary search over a node's sorted entries.

        ``right=True`` counts entries with ``entry.key <= key``
        (bisect_right), ``right=False`` entries with ``entry.key < key``
        (bisect_left).  Nodes hold hundreds of variable-length keys, so
        descent cost is dominated by comparator calls -- each of which
        re-resolves a support UDR -- making this log/linear distinction
        the hot-path difference for bulk loads."""
        lo, hi = 0, len(entries)
        while lo < hi:
            mid = (lo + hi) // 2
            cmp = self.compare(entries[mid].key, key)
            if cmp < 0 or (right and cmp == 0):
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _child_for(self, node: BTreeNode, key: bytes) -> int:
        index = self._bisect(node.entries, key, right=True)
        return node.leftmost if index == 0 else node.entries[index - 1].child

    def _descend_to_leaf(self, key: bytes) -> List[BTreeNode]:
        path = [self.store.read(self.root_id)]
        while not path[-1].leaf:
            path.append(self.store.read(self._child_for(path[-1], key)))
        return path

    def _descend_left(self, key: bytes) -> List[BTreeNode]:
        """Left-biased descent: reaches the *leftmost* leaf that can hold
        *key*, so duplicate runs straddling a split are not skipped."""
        path = [self.store.read(self.root_id)]
        while not path[-1].leaf:
            node = path[-1]
            index = self._bisect(node.entries, key, right=False)
            child = (
                node.leftmost if index == 0 else node.entries[index - 1].child
            )
            path.append(self.store.read(child))
        return path

    def _leftmost_leaf(self) -> BTreeNode:
        node = self.store.read(self.root_id)
        while not node.leaf:
            node = self.store.read(node.leftmost)
        return node

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------

    def insert(self, key: bytes, rowid: int, fragid: int = 0) -> None:
        if len(key) > self.store.page_size // 4:
            raise ValueError("key too large for the configured page size")
        path = self._descend_to_leaf(key)
        leaf = path[-1]
        index = self._bisect(leaf.entries, key, right=True)
        leaf.entries.insert(index, BTreeEntry(key, rowid=rowid, fragid=fragid))
        self.size += 1
        self._write_with_splits(path)

    def _write_with_splits(self, path: List[BTreeNode]) -> None:
        for depth in range(len(path) - 1, -1, -1):
            node = path[depth]
            if self.store.fits(node):
                self.store.write(node)
                return
            promoted_key, sibling_id = self._split(node)
            self.store.write(node)
            if depth == 0:
                new_root = self.store.allocate(leaf=False)
                new_root.leftmost = node.page_id
                new_root.entries = [BTreeEntry(promoted_key, child=sibling_id)]
                self.store.write(new_root)
                self.root_id = new_root.page_id
                self.height += 1
                return
            parent = path[depth - 1]
            index = self._bisect(parent.entries, promoted_key, right=True)
            parent.entries.insert(
                index, BTreeEntry(promoted_key, child=sibling_id)
            )

    def _split(self, node: BTreeNode) -> Tuple[bytes, int]:
        """Split *node* in half; returns (separator key, new page id)."""
        sibling = self.store.allocate(leaf=node.leaf)
        middle = len(node.entries) // 2
        if node.leaf:
            sibling.entries = node.entries[middle:]
            node.entries = node.entries[:middle]
            separator = sibling.entries[0].key
            sibling.next_leaf = node.next_leaf
            node.next_leaf = sibling.page_id
        else:
            separator = node.entries[middle].key
            sibling.leftmost = node.entries[middle].child
            sibling.entries = node.entries[middle + 1 :]
            node.entries = node.entries[:middle]
        self.store.write(sibling)
        return separator, sibling.page_id

    # ------------------------------------------------------------------
    # Deletion (lazy)
    # ------------------------------------------------------------------

    def delete(self, key: bytes, rowid: int, fragid: int = 0) -> bool:
        path = self._descend_left(key)
        leaf: Optional[BTreeNode] = path[-1]
        # Equal keys may continue in right siblings; chain until passed.
        while leaf is not None:
            for i, entry in enumerate(leaf.entries):
                cmp = self.compare(entry.key, key)
                if cmp > 0:
                    return False
                if cmp == 0 and entry.rowid == rowid and entry.fragid == fragid:
                    del leaf.entries[i]
                    self.store.write(leaf)
                    self.size -= 1
                    self._shrink_root()
                    return True
            leaf = (
                self.store.read(leaf.next_leaf) if leaf.next_leaf != -1 else None
            )
        return False

    def _shrink_root(self) -> None:
        root = self.store.read(self.root_id)
        while not root.leaf and not root.entries:
            child_id = root.leftmost
            self.store.free(root.page_id)
            self.root_id = child_id
            self.height -= 1
            root = self.store.read(child_id)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def search_range(
        self,
        low: Optional[bytes] = None,
        high: Optional[bytes] = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> List[Tuple[bytes, int, int]]:
        """All (key, rowid, fragid) within the bounds, in comparator
        order, via a leftmost descent plus leaf chaining."""
        self.last_node_accesses = 0
        if low is None:
            leaf = self._leftmost_leaf_counted()
        else:
            path = self._descend_left(low)
            self.last_node_accesses += len(path)
            leaf = path[-1]
        results: List[Tuple[bytes, int, int]] = []
        while leaf is not None:
            for entry in leaf.entries:
                if low is not None:
                    cmp_low = self.compare(entry.key, low)
                    if cmp_low < 0 or (cmp_low == 0 and not low_inclusive):
                        continue
                if high is not None:
                    cmp_high = self.compare(entry.key, high)
                    if cmp_high > 0 or (cmp_high == 0 and not high_inclusive):
                        return results
                results.append((entry.key, entry.rowid, entry.fragid))
            if leaf.next_leaf == -1:
                return results
            leaf = self.store.read(leaf.next_leaf)
            self.last_node_accesses += 1
        return results

    def _leftmost_leaf_counted(self) -> BTreeNode:
        node = self.store.read(self.root_id)
        self.last_node_accesses += 1
        while not node.leaf:
            node = self.store.read(node.leftmost)
            self.last_node_accesses += 1
        return node

    def search_equal(self, key: bytes) -> List[Tuple[int, int]]:
        return [
            (rowid, fragid)
            for _, rowid, fragid in self.search_range(key, key)
        ]

    def iter_all(self) -> Iterable[Tuple[bytes, int, int]]:
        return self.search_range(None, None)

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------

    def check(self) -> None:
        """Verify ordering within and across leaves, separator sanity,
        and the recorded size."""
        previous: Optional[bytes] = None
        counted = 0
        leaf = self._leftmost_leaf()
        while True:
            for entry in leaf.entries:
                if previous is not None and self.compare(previous, entry.key) > 0:
                    raise AssertionError("keys out of order in leaf chain")
                previous = entry.key
                counted += 1
            if leaf.next_leaf == -1:
                break
            leaf = self.store.read(leaf.next_leaf)
        if counted != self.size:
            raise AssertionError(
                f"size mismatch: counted {counted}, recorded {self.size}"
            )
        self._check_node(self.store.read(self.root_id), None, None)

    def _check_node(self, node: BTreeNode, low, high) -> None:
        if node.leaf:
            for entry in node.entries:
                if low is not None and self.compare(entry.key, low) < 0:
                    raise AssertionError("leaf key below separator")
                if high is not None and self.compare(entry.key, high) > 0:
                    raise AssertionError("leaf key above separator")
            return
        children = [(node.leftmost, low, node.entries[0].key if node.entries else high)]
        for i, entry in enumerate(node.entries):
            upper = (
                node.entries[i + 1].key if i + 1 < len(node.entries) else high
            )
            children.append((entry.child, entry.key, upper))
        for child_id, lo, hi in children:
            self._check_node(self.store.read(child_id), lo, hi)

    def stats(self) -> dict:
        return {"height": self.height, "size": self.size}
