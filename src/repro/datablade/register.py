"""BladeManager stand-in: registering the GR-tree DataBlade (Section 6.1).

Registration mirrors what happens when BladeManager runs the generated
SQL scripts against a database: the shared library's symbols become
CREATE FUNCTION targets, the opaque type is registered (the type support
functions are native code, so they are installed through the type
registry directly), and the access method, operator class, and the
blade's metadata table are created.  Unregistration reverses all of it.
"""

from __future__ import annotations

from typing import Optional

from repro.datablade import bladesmith
from repro.datablade.blade import GRTreeDataBlade
from repro.datablade.strategies import make_strategy_functions
from repro.datablade.supports import make_support_functions
from repro.datablade.time_extent import TYPE_NAME, make_time_extent_type


def register_grtree_blade(
    server,
    buffer_capacity: Optional[int] = None,
    time_horizon: int = 20,
    node_cache_size: Optional[int] = None,
    handle_cache: bool = True,
) -> GRTreeDataBlade:
    """Install the GR-tree DataBlade into *server*; returns the blade.

    ``buffer_capacity``/``node_cache_size`` default to the server-wide
    settings (``DatabaseServer(buffer_capacity=..., node_cache_size=...)``);
    ``handle_cache=False`` restores the paper's literal behaviour of
    rebuilding the Tree object on every ``grt_open``.
    """
    blade = GRTreeDataBlade(
        server,
        buffer_capacity=buffer_capacity,
        time_horizon=time_horizon,
        node_cache_size=node_cache_size,
        handle_cache=handle_cache,
    )

    # Step 1 (Section 4): the new data type and its support functions.
    server.types.register(make_time_extent_type(server.clock.granularity))

    # The shared library: purpose functions plus strategy/support UDRs.
    exports = dict(blade.purpose_function_exports())
    strategies = make_strategy_functions(lambda: blade.current_time())
    supports = make_support_functions(lambda: blade.current_time())
    symbol_map = {
        "grt_overlaps_udr": strategies["Overlaps"],
        "grt_equal_udr": strategies["Equal"],
        "grt_contains_udr": strategies["Contains"],
        "grt_containedin_udr": strategies["ContainedIn"],
        "grt_union_udr": supports["GRT_Union"],
        "grt_size_udr": supports["GRT_Size"],
        "grt_intersection_udr": supports["GRT_Intersection"],
    }
    exports.update(symbol_map)
    server.library.register_module(GRTreeDataBlade.LIBRARY_PATH, exports)

    # Steps 2-4 plus the blade's metadata table, via the generated script.
    # Provisioning scope: registration DDL is node-local (replicas install
    # their own blades), so it is never logged for replication.
    script = bladesmith.generate_register_script(GRTreeDataBlade.LIBRARY_PATH)
    with server.provisioning():
        server.run_script(script)

    # Informix's association hints (Section 5.2): commutators only --
    # there is no way to declare "not overlaps implies not equal".
    routines = server.catalog.routines
    routines.set_commutator("Overlaps", "Overlaps")
    routines.set_commutator("Equal", "Equal")
    routines.set_commutator("Contains", "ContainedIn")
    routines.set_commutator("ContainedIn", "Contains")

    return blade


def unregister_grtree_blade(server) -> None:
    """Remove every object the registration script created."""
    for info in list(server.catalog.index_names()):
        index = server.catalog.get_index(info)
        if index.am_name.lower() == GRTreeDataBlade.AM_NAME:
            raise RuntimeError(
                f"index {index.name} still uses {GRTreeDataBlade.AM_NAME}; "
                "drop it before unregistering the DataBlade"
            )
    script = bladesmith.generate_unregister_script()
    with server.provisioning():
        server.run_script(script)
    server.types.unregister(TYPE_NAME)
