"""Support functions of the GR-tree operator class (Section 5.2).

Analogues of the R-tree's ``Union()``, ``Size()``, and ``Inter()``:
used internally by the access method to maintain the index structure, yet
registered as UDRs and declared in the operator class (so a programmer
can see them and, in the non-hard-coded design, replace them).

``GRT_Union`` is *symbolic*: it bounds two extents preserving the
``UC``/``NOW`` variables (via the same bounding logic the tree uses), so
the result keeps growing with its inputs.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.grtree.entries import GREntry, bound_entries
from repro.temporal.chronon import Chronon
from repro.temporal.extent import TimeExtent
from repro.temporal.regions import Region


def make_support_functions(
    current_time: Callable[[], Chronon]
) -> Dict[str, Callable]:
    """Build the support-function UDRs, closed over a current-time source."""

    def grt_union(ext1: TimeExtent, ext2: TimeExtent) -> GREntry:
        """Minimum bounding region of two extents, variables preserved."""
        entries = [
            GREntry.from_extent(ext1, rowid=0),
            GREntry.from_extent(ext2, rowid=1),
        ]
        return bound_entries(entries, current_time())

    def grt_size(ext: TimeExtent) -> int:
        """Area of the extent's region at the current time."""
        return ext.region(current_time()).area()

    def grt_intersection(
        ext1: TimeExtent, ext2: TimeExtent
    ) -> Optional[Region]:
        """Intersection of the two regions at the current time."""
        now = current_time()
        return ext1.region(now).intersection(ext2.region(now))

    return {
        "GRT_Union": grt_union,
        "GRT_Size": grt_size,
        "GRT_Intersection": grt_intersection,
    }
