"""Strategy functions of the GR-tree operator class (Section 5.2).

``Overlaps``, ``Equal``, ``Contains``, and ``ContainedIn`` operate on two
``GRT_TimeExtent_t`` values.  Registered as UDRs, they serve two roles:

* in a WHERE clause processed *without* the index, the server invokes
  them once per table record;
* when a virtual index is used, ``grt_getnext`` dynamically resolves
  which strategy function appeared in the qualification and runs the
  corresponding *hard-coded internal* version on index entries
  (:class:`repro.grtree.entries.Predicate`) -- the design alternative the
  paper's implementation chose (Section 5.2: hard coding disables
  operator-class extension but avoids per-entry UDR dispatch overhead).
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.grtree.entries import Predicate
from repro.temporal.chronon import Chronon
from repro.temporal.extent import TimeExtent

#: Maps SQL-level strategy-function names to the hard-coded internal
#: predicate grt_getnext applies to index entries.
HARD_CODED_PREDICATES: Dict[str, Predicate] = {
    "overlaps": Predicate.OVERLAPS,
    "equal": Predicate.EQUAL,
    "contains": Predicate.CONTAINS,
    "containedin": Predicate.CONTAINED_IN,
}

#: Predicate to evaluate when the *column* is the second argument:
#: Contains(constant, column) means the column value is contained in the
#: constant, and vice versa; Overlaps and Equal are commutative.
COMMUTED_PREDICATES: Dict[Predicate, Predicate] = {
    Predicate.OVERLAPS: Predicate.OVERLAPS,
    Predicate.EQUAL: Predicate.EQUAL,
    Predicate.CONTAINS: Predicate.CONTAINED_IN,
    Predicate.CONTAINED_IN: Predicate.CONTAINS,
}


def make_strategy_functions(
    current_time: Callable[[], Chronon]
) -> Dict[str, Callable[[TimeExtent, TimeExtent], bool]]:
    """Build the four UDR callables, closed over a current-time source.

    Every bitemporal predicate must resolve ``UC``/``NOW`` against the
    same current time for both arguments (Section 5.1).
    """

    def overlaps(ext1: TimeExtent, ext2: TimeExtent) -> bool:
        now = current_time()
        return ext1.region(now).overlaps(ext2.region(now))

    def equal(ext1: TimeExtent, ext2: TimeExtent) -> bool:
        now = current_time()
        return ext1.region(now).equal(ext2.region(now))

    def contains(ext1: TimeExtent, ext2: TimeExtent) -> bool:
        now = current_time()
        return ext1.region(now).contains(ext2.region(now))

    def containedin(ext1: TimeExtent, ext2: TimeExtent) -> bool:
        now = current_time()
        return ext1.region(now).contained_in(ext2.region(now))

    return {
        "Overlaps": overlaps,
        "Equal": equal,
        "Contains": contains,
        "ContainedIn": containedin,
    }
