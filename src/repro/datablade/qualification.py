"""Breaking complex qualifications into simple ones (Section 6.3).

"For the manipulation of the qualification descriptor, we had to code
the logic for how to break a complex qualification (containing several
strategy functions separated by AND's or OR's) into simple ones ... and
for how to invoke appropriate strategy functions."

The qualification descriptor arrives as a tree of AND/OR nodes over
single-column strategy predicates.  The blade normalizes it into
disjunctive normal form: a list of OR branches, each a list of simple
predicates.  A scan runs one index probe per branch -- driven by the
branch's first predicate -- and filters the probe's results through the
branch's remaining predicates, de-duplicating rowids across branches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.grtree.entries import Predicate
from repro.server.access_method import (
    BooleanOperator,
    CompoundQualification,
    Qualification,
    SimpleQualification,
)
from repro.server.errors import AccessMethodError
from repro.datablade.strategies import COMMUTED_PREDICATES, HARD_CODED_PREDICATES
from repro.temporal.extent import TimeExtent


@dataclass(frozen=True)
class SimplePredicate:
    """A resolved simple predicate: internal predicate + query extent."""

    predicate: Predicate
    query: TimeExtent


@dataclass
class QualificationPlan:
    """DNF of the qualification: OR over AND-branches of predicates."""

    branches: List[List[SimplePredicate]]

    @property
    def predicate_count(self) -> int:
        return sum(len(branch) for branch in self.branches)


def resolve_simple(qual: SimpleQualification) -> SimplePredicate:
    """Dynamically resolve which strategy function the qualification
    names, mapping to the hard-coded internal version (Section 5.2)."""
    try:
        predicate = HARD_CODED_PREDICATES[qual.function.lower()]
    except KeyError:
        raise AccessMethodError(
            f"{qual.function} is not a GR-tree strategy function"
        ) from None
    if not qual.has_constant:
        raise AccessMethodError(
            f"{qual.function} requires a constant time extent argument"
        )
    if not isinstance(qual.constant, TimeExtent):
        raise AccessMethodError(
            f"{qual.function} constant must be a GRT_TimeExtent_t, "
            f"got {type(qual.constant).__name__}"
        )
    if qual.constant_first:
        predicate = COMMUTED_PREDICATES[predicate]
    return SimplePredicate(predicate, qual.constant)


def build_plan(qual: Qualification) -> QualificationPlan:
    """Normalize a qualification tree into DNF branches."""
    return QualificationPlan(_to_dnf(qual))


def _to_dnf(qual: Qualification) -> List[List[SimplePredicate]]:
    if isinstance(qual, SimpleQualification):
        return [[resolve_simple(qual)]]
    if not isinstance(qual, CompoundQualification):
        raise AccessMethodError(f"unsupported qualification node {qual!r}")
    child_dnfs = [_to_dnf(child) for child in qual.children]
    if qual.operator is BooleanOperator.OR:
        branches: List[List[SimplePredicate]] = []
        for dnf in child_dnfs:
            branches.extend(dnf)
        return branches
    # AND: the cross product of the children's branches.
    result: List[List[SimplePredicate]] = [[]]
    for dnf in child_dnfs:
        result = [
            existing + branch for existing in result for branch in dnf
        ]
    return result
