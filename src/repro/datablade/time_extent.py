"""The opaque data type ``GRT_TimeExtent_t`` (Sections 5.1, 6.3).

The paper settles on representing a tuple's whole time extent as *one*
column of an opaque type, because the qualification descriptor only
admits single-column predicates: all four timestamps must be interpreted
together (the Julie anomaly of Table 3), so splitting them over two or
four columns would make the index unusable.

Type support functions:

* text input/output -- ``"12/10/95, UC, 12/10/95, NOW"`` <-> the internal
  structure (a :class:`~repro.temporal.extent.TimeExtent`), including the
  handling of ``UC``/``NOW`` and the 4TS well-formedness constraints;
* binary send/receive -- a fixed-width packing of the four timestamps
  with a sentinel encoding for the variables;
* text-file import/export -- reuse the text pair (the de-duplication the
  paper wished BladeSmith had generated).
"""

from __future__ import annotations

import struct
from typing import Union

from repro.server.datatypes import OpaqueType
from repro.server.errors import DataTypeError
from repro.temporal.chronon import Granularity
from repro.temporal.extent import ExtentError, TimeExtent
from repro.temporal.variables import NOW, UC, is_ground

#: The SQL-visible name of the opaque type.
TYPE_NAME = "GRT_TimeExtent_t"

_BINARY = struct.Struct("<4q")
_SENTINEL = 2**62


def extent_input(text: str, granularity: Granularity) -> TimeExtent:
    """Text input support function, with constraint checking."""
    try:
        return TimeExtent.from_text(text, granularity)
    except (ExtentError, ValueError) as exc:
        raise DataTypeError(f"invalid {TYPE_NAME} literal {text!r}: {exc}") from exc


def extent_output(value: TimeExtent, granularity: Granularity) -> str:
    return value.to_text(granularity)


def extent_send(value: TimeExtent) -> bytes:
    """Binary send: the client/server wire representation."""
    tte = value.tt_end if is_ground(value.tt_end) else _SENTINEL
    vte = value.vt_end if is_ground(value.vt_end) else _SENTINEL + 1
    return _BINARY.pack(value.tt_begin, tte, value.vt_begin, vte)


def extent_receive(data: bytes) -> TimeExtent:
    try:
        ttb, tte, vtb, vte = _BINARY.unpack(data)
    except struct.error as exc:
        raise DataTypeError(f"bad {TYPE_NAME} wire value") from exc
    return TimeExtent(
        ttb,
        UC if tte == _SENTINEL else tte,
        vtb,
        NOW if vte == _SENTINEL + 1 else vte,
    )


def extent_validate(value: Union[TimeExtent, str]) -> TimeExtent:
    if isinstance(value, TimeExtent):
        return value
    raise DataTypeError(f"{TYPE_NAME} expected, got {value!r}")


def make_time_extent_type(granularity: Granularity = Granularity.DAY) -> OpaqueType:
    """Construct the registered opaque type for a given granularity."""
    return OpaqueType(
        TYPE_NAME,
        input_fn=lambda text: extent_input(text, granularity),
        output_fn=lambda value: extent_output(value, granularity),
        send_fn=extent_send,
        receive_fn=extent_receive,
        # Import/export reuse the text pair (see the module docstring).
        import_fn=lambda text: extent_input(text, granularity),
        export_fn=lambda value: extent_output(value, granularity),
        validate_fn=extent_validate,
    )
