"""BLOB manipulation functions (Section 6.3, "280 LOC" in Table 4).

The GR-tree stores a whole index in one smart blob (the Section 5.3
choice: "In our implementation, we chose a single large object for the
whole index").  This layer wraps the sbspace API with the Create/Drop/
Open/Close/Read/Write surface the paper lists, wiring locks to the
session's transaction and isolation level, and exposing the blob as the
page store the GR-tree's buffer pool sits on.
"""

from __future__ import annotations

from typing import Optional

from repro.server.errors import AccessMethodError
from repro.storage.locks import IsolationLevel
from repro.storage.sbspace import LargeObjectHandle, OpenMode, Sbspace, SmartBlob


class BladeBlob:
    """One open large object, tracked with its lock context."""

    def __init__(self, space: Sbspace, handle: LargeObjectHandle) -> None:
        self.space = space
        self.handle = handle
        self._open_mode: Optional[OpenMode] = None
        self._txn_id: Optional[int] = None
        self._isolation = IsolationLevel.COMMITTED_READ

    # -- the Create/Drop/Open/Close/Read/Write surface -------------------

    @classmethod
    def create(cls, space: Sbspace) -> "BladeBlob":
        blob = space.create()
        return cls(space, blob.handle)

    def drop(self) -> None:
        if self._open_mode is not None:
            self.close()
        self.space.drop(self.handle)

    def open(self, session, mode: OpenMode = OpenMode.READ) -> SmartBlob:
        """Open with the automatic object-level lock (Section 5.3)."""
        if self._open_mode is not None:
            raise AccessMethodError(f"{self.handle} is already open")
        txn = session.transaction if session is not None else None
        self._txn_id = txn.txn_id if txn is not None else None
        self._isolation = (
            session.isolation if session is not None
            else IsolationLevel.COMMITTED_READ
        )
        blob = self.space.open(
            self.handle, mode, txn_id=self._txn_id, isolation=self._isolation
        )
        self._open_mode = mode
        return blob

    def ensure_writable(self) -> None:
        """Upgrade a read open to write before the first modification."""
        if self._open_mode is OpenMode.WRITE:
            return
        if self._open_mode is None:
            raise AccessMethodError(f"{self.handle} is not open")
        # Re-acquire at exclusive strength (upgrade by the sole holder).
        self.space.open(
            self.handle,
            OpenMode.WRITE,
            txn_id=self._txn_id,
            isolation=self._isolation,
        )
        self.space.stats_opens -= 1  # an upgrade, not a second open
        self._open_mode = OpenMode.WRITE

    def close(self) -> None:
        if self._open_mode is None:
            raise AccessMethodError(f"{self.handle} is not open")
        self.space.close(
            self.handle,
            self._open_mode,
            txn_id=self._txn_id,
            isolation=self._isolation,
        )
        self._open_mode = None
        self._txn_id = None

    @property
    def is_open(self) -> bool:
        return self._open_mode is not None

    def read(self, offset: int, length: int) -> bytes:
        return self.space.get(self.handle).read_bytes(offset, length)

    def write(self, offset: int, data: bytes) -> None:
        self.ensure_writable()
        self.space.get(self.handle).write_bytes(offset, data)

    def page_store(self) -> SmartBlob:
        """The blob as a page store for the GR-tree's buffer pool."""
        return self.space.get(self.handle)
