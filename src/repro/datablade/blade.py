"""The GR-tree DataBlade: purpose functions and blade state (Appendix A).

The fourteen ``grt_*`` purpose functions follow the steps of the paper's
Table 5, traced step by step under the ``grt`` trace class so that the
Table 5 benchmark can verify them.  Blade state lives where the paper
puts it:

* the ``Tree`` object and the open BLOB in the *index descriptor*'s user
  data (created by ``grt_create``/``grt_open``, deleted by ``grt_close``);
* the ``Cursor`` in the *scan descriptor*'s user data (created by
  ``grt_beginscan`` from the qualification descriptor);
* the transaction's constant current-time value in *named memory* keyed
  by session id, freed by a transaction-end callback (Section 5.4);
* the (index name, fragment id, BLOB handle) record in the table
  associated with the access method, ``grtree_indexdata``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.datablade.blob import BladeBlob
from repro.datablade.qualification import QualificationPlan, build_plan
from repro.datablade.time_extent import TYPE_NAME
from repro.grtree.cursor import Cursor
from repro.grtree.node import GRNodeStore
from repro.grtree.specialize import SpecializedOps
from repro.grtree.tree import GRTree
from repro.server.access_method import (
    IndexDescriptor,
    RowReference,
    ScanDescriptor,
)
from repro.server.errors import AccessMethodError
from repro.server.memory import Duration
from repro.storage.buffer import BufferPool
from repro.storage.sbspace import LargeObjectHandle, OpenMode
from repro.temporal.chronon import Chronon
from repro.temporal.extent import TimeExtent

#: Trace class for purpose-function steps (the Table 5 reproduction).
TRACE_GRT = "grt"


class GRTreeDataBlade:
    """Configuration and implementation of the GR-tree access method."""

    LIBRARY_PATH = "usr/functions/grtree.bld"
    AM_NAME = "grtree_am"
    OPCLASS_NAME = "grt_opclass"
    METADATA_TABLE = "grtree_indexdata"

    def __init__(
        self,
        server,
        buffer_capacity: Optional[int] = None,
        time_horizon: int = 20,
        node_cache_size: Optional[int] = None,
        handle_cache: bool = True,
        specialize: Optional[bool] = None,
    ) -> None:
        self.server = server
        #: Compile specialized/vectorized kernels for each index at
        #: ``CREATE INDEX``/``grt_open`` time (see
        #: :mod:`repro.grtree.specialize`).  ``False`` keeps the paper's
        #: literal per-entry purpose-function call sequence; a
        #: ``CREATE INDEX ... WITH (specialize = ...)`` clause overrides
        #: per index.
        self.specialize = (
            specialize
            if specialize is not None
            else getattr(server, "specialize_indexes", True)
        )
        # ``None`` means "use the server-wide default"; a ``CREATE INDEX
        # ... WITH (...)`` clause can still override per index.
        self.buffer_capacity = (
            buffer_capacity
            if buffer_capacity is not None
            else getattr(server, "buffer_capacity", 64)
        )
        self.node_cache_size = (
            node_cache_size
            if node_cache_size is not None
            else getattr(server, "node_cache_size", 128)
        )
        self.time_horizon = time_horizon
        #: Keep Tree/pool/BLOB objects of closed indices for the next
        #: ``grt_open`` instead of rebuilding them per statement.  The
        #: BLOB is still opened and closed per statement (locks follow
        #: the paper's protocol); only the object rebuild is skipped.
        self.handle_cache = handle_cache
        self._handles: Dict[str, Dict[str, Any]] = {}

    # ------------------------------------------------------------------
    # Current time and transactions (Section 5.4)
    # ------------------------------------------------------------------

    def _named_now_key(self, session) -> str:
        return f"grt_now.session{session.session_id}"

    def current_time(self, session=None) -> Chronon:
        """The transaction's constant current time, if sampled; else the
        clock (seqscan UDR invocations run outside any index open)."""
        if session is not None and session.in_transaction:
            key = self._named_now_key(session)
            if self.server.memory.named_exists(key):
                return self.server.memory.named_get(key)
        return self.server.clock.now

    def _sample_current_time(self, session) -> Chronon:
        """First index use in the transaction samples the clock into
        named memory and registers the freeing callback."""
        if session is None or not session.in_transaction:
            return self.server.clock.now
        key = self._named_now_key(session)
        if self.server.memory.named_exists(key):
            return self.server.memory.named_get(key)
        value = self.server.clock.now
        self.server.memory.named_allocate(key, value)

        def free_named_now(ended_session, committed: bool) -> None:
            if self.server.memory.named_exists(key):
                self.server.memory.named_free(key)

        session.register_end_callback(free_named_now)
        return value

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _trace(self, function: str, step: int, text: str) -> None:
        self.server.trace.emit(TRACE_GRT, 2, f"{function}({step}) {text}")

    def _metadata_table(self):
        return self.server.catalog.get_table(self.METADATA_TABLE)

    def _metadata_row(self, index_name: str) -> Tuple[int, Dict[str, Any]]:
        for rowid, row in self._metadata_table().scan():
            if row["indexname"] == index_name:
                return rowid, row
        raise AccessMethodError(
            f"no {self.METADATA_TABLE} record for index {index_name}"
        )

    def _tree(self, td: IndexDescriptor) -> GRTree:
        tree = td.user_data.get("tree")
        if tree is None:
            raise AccessMethodError(
                f"index {td.index_name} is not open (grt_open was not called)"
            )
        return tree

    def _blob(self, td: IndexDescriptor) -> BladeBlob:
        blob = td.user_data.get("blob")
        if blob is None:
            raise AccessMethodError(f"index {td.index_name} has no open BLOB")
        return blob

    def _cache_sizes(self, td: IndexDescriptor) -> Tuple[int, int]:
        """Resolve (buffer capacity, node-cache size) for one index:
        ``CREATE INDEX ... WITH (...)`` parameters win over blade/server
        defaults."""
        params = td.parameters or {}
        capacity = int(params.get("buffer_capacity", self.buffer_capacity))
        node_cache = int(params.get("node_cache", self.node_cache_size))
        return capacity, node_cache

    def _spec_enabled(self, td: IndexDescriptor) -> bool:
        """Resolve the specialization switch for one index: a
        ``CREATE INDEX ... WITH (specialize = ...)`` parameter wins over
        the blade/server default."""
        params = td.parameters or {}
        value = params.get("specialize", self.specialize)
        if isinstance(value, bool):
            return value
        if isinstance(value, (int, float)):
            return bool(value)
        if isinstance(value, str):
            lowered = value.strip().lower()
            if lowered in ("true", "on", "yes", "1"):
                return True
            if lowered in ("false", "off", "no", "0"):
                return False
        raise AccessMethodError(
            f"specialize expects a boolean, got {value!r}"
        )

    def _attach_tree(self, td: IndexDescriptor, blob: BladeBlob, meta_page, create):
        capacity, node_cache = self._cache_sizes(td)
        pool = BufferPool(
            blob.page_store(),
            capacity=capacity,
            faults=getattr(self.server, "faults", None),
        )
        store = GRNodeStore(pool, node_cache_size=node_cache)
        if create:
            tree = GRTree.create(
                store, self.server.clock, time_horizon=self.time_horizon
            )
        else:
            tree = GRTree.open(store, self.server.clock, meta_page=meta_page)
        if self._spec_enabled(td):
            # Specialize once per handle: the bundle (and every kernel
            # compiled from it) lives and dies with the tree object, so
            # the storage-epoch check that invalidates the handle cache
            # invalidates the compiled code too.
            tree.spec = SpecializedOps()
        obs = getattr(self.server, "obs", None)
        if obs is not None:
            # Reopening replaces the previous pool under the same name, so
            # ``SHOW STATS`` always shows the live pool of each index.
            obs.attach_buffer_pool(f"index.{td.index_name}", pool)
            obs.attach_node_cache(f"index.{td.index_name}", store)
            if tree.spec is not None:
                obs.attach_specializer(f"index.{td.index_name}", tree.spec)
            tree.obs = obs
        td.user_data["tree"] = tree
        td.user_data["blob"] = blob
        td.user_data["pool"] = pool
        td.user_data["store"] = store
        td.user_data["epoch"] = self.server.storage_epoch
        return tree

    # ------------------------------------------------------------------
    # Purpose functions (Table 5)
    # ------------------------------------------------------------------

    def grt_create(self, td: IndexDescriptor) -> int:
        self._trace("grt_create", 1, "create Tree object")
        if tuple(t.upper() for t in td.column_types) != (TYPE_NAME.upper(),):
            self._trace("grt_create", 2, "column type check failed")
            raise AccessMethodError(
                f"{self.AM_NAME} indexes exactly one {TYPE_NAME} column, "
                f"got {td.column_types}"
            )
        self._trace("grt_create", 2, "column types accepted")
        from repro.datablade.strategies import HARD_CODED_PREDICATES

        for opclass_name in td.opclass_names:
            opclass = self.server.catalog.opclasses.get(opclass_name)
            unknown = [
                s for s in opclass.strategies
                if s.lower() not in HARD_CODED_PREDICATES
            ]
            if unknown:
                self._trace("grt_create", 3, "operator class check failed")
                raise AccessMethodError(
                    f"operator class {opclass.name} declares strategies the "
                    f"hard-coded GR-tree cannot serve: {unknown} (Section 5.2)"
                )
        self._trace("grt_create", 3, "operator class accepted")
        duplicate = [
            info
            for info in self.server.catalog.indices_on(td.table_name)
            if info.name.lower() != td.index_name.lower()
            and tuple(c.lower() for c in info.columns)
            == tuple(c.lower() for c in td.columns)
            and info.am_name.lower() == td.am_name.lower()
            and info.parameters == td.parameters
        ]
        if duplicate:
            self._trace("grt_create", 4, "duplicate index check failed")
            raise AccessMethodError(
                f"an equivalent {self.AM_NAME} index already exists: "
                f"{duplicate[0].name}"
            )
        self._trace("grt_create", 4, "no equivalent index exists")
        # A cached handle under the same name (dropped + recreated
        # index) must never shadow the fresh BLOB.
        self._handles.pop(td.index_name.lower(), None)
        space = self.server.get_sbspace(td.space_name)
        blob = BladeBlob.create(space)
        self._trace("grt_create", 5, f"created BLOB {blob.handle}")
        self._metadata_table().insert_row(
            {
                "indexname": td.index_name,
                "fragid": 0,
                "blobhandle": blob.handle.value,
                "metapage": 0,
            }
        )
        self._trace("grt_create", 6, "inserted record into grtree_indexdata")
        blob.open(td.session, OpenMode.WRITE)
        self._trace("grt_create", 7, "opened the BLOB")
        tree = self._attach_tree(td, blob, meta_page=None, create=True)
        # Record where the meta page landed so grt_open can find it.
        rowid, row = self._metadata_row(td.index_name)
        self._metadata_table().update_row(rowid, {"metapage": tree.meta_page})
        self._sample_current_time(td.session)
        return 0

    def grt_drop(self, td: IndexDescriptor) -> int:
        self._trace("grt_drop", 1, "get Tree object pointer")
        if "tree" not in td.user_data:
            # Dropping a closed index: open the BLOB to drop it.
            self.grt_open(td)
        blob = self._blob(td)
        self._trace("grt_drop", 2, f"drop BLOB {blob.handle}")
        blob.drop()
        self._trace("grt_drop", 3, "delete Tree object")
        td.user_data.clear()
        self._handles.pop(td.index_name.lower(), None)
        rowid, _ = self._metadata_row(td.index_name)
        self._metadata_table().delete_row(rowid)
        self._trace("grt_drop", 4, "deleted record from grtree_indexdata")
        return 0

    def _revive_handle(self, td: IndexDescriptor) -> bool:
        """Reattach a cached Tree/pool/BLOB from a previous close, if it
        is still safe: the BLOB must still be the same live object in
        its sbspace (recovery and DROP replace it) and storage must not
        have been rewritten underneath the pool (transaction rollback
        restores pages directly, bumping ``server.storage_epoch``)."""
        key = td.index_name.lower()
        entry = self._handles.get(key)
        if entry is None:
            return False
        blob: BladeBlob = entry["blob"]
        pool: BufferPool = entry["pool"]
        try:
            same_store = blob.page_store() is pool.store
        except Exception:
            same_store = False  # BLOB dropped or sbspace re-initialised
        if not same_store or entry["epoch"] != self.server.storage_epoch:
            del self._handles[key]
            return False
        self._trace("grt_open", 2, "reuse cached Tree object")
        blob.open(td.session, OpenMode.READ)
        self._trace("grt_open", 4, "opened the BLOB")
        obs = getattr(self.server, "obs", None)
        if obs is not None:
            obs.attach_buffer_pool(f"index.{td.index_name}", pool)
            obs.attach_node_cache(f"index.{td.index_name}", entry["store"])
            tree = entry["tree"]
            if tree is not None and tree.spec is not None:
                obs.attach_specializer(f"index.{td.index_name}", tree.spec)
        td.user_data["tree"] = entry["tree"]
        td.user_data["blob"] = blob
        td.user_data["pool"] = pool
        td.user_data["store"] = entry["store"]
        td.user_data["epoch"] = entry["epoch"]
        return True

    def grt_open(self, td: IndexDescriptor) -> int:
        if "tree" in td.user_data:
            if td.user_data.get("epoch") == self.server.storage_epoch:
                self._trace(
                    "grt_open", 1, "invoked right after grt_create; exit"
                )
                self._sample_current_time(td.session)
                return 0
            # The attachment survived an abnormal unwind -- a crash or an
            # error that interrupted grt_close before it could clean up --
            # and storage has since been rewritten underneath it (rollback
            # or WAL recovery bumps the epoch).  Reusing the stale tree
            # would resurrect rolled-back entries from its dirty pool.
            self._trace("grt_open", 1, "discard stale Tree attachment")
            td.user_data.clear()
        if self.handle_cache and self._revive_handle(td):
            self._sample_current_time(td.session)
            return 0
        self._trace("grt_open", 2, "create Tree object")
        rowid, row = self._metadata_row(td.index_name)
        self._trace("grt_open", 3, f"got BLOB handle {row['blobhandle'][:20]}...")
        space = self.server.get_sbspace(td.space_name)
        blob = BladeBlob(space, LargeObjectHandle(row["blobhandle"]))
        blob.open(td.session, OpenMode.READ)
        self._trace("grt_open", 4, "opened the BLOB")
        self._attach_tree(td, blob, meta_page=row["metapage"], create=False)
        self._sample_current_time(td.session)
        return 0

    def grt_close(self, td: IndexDescriptor) -> int:
        self._trace("grt_close", 1, "get Tree object pointer")
        blob = self._blob(td)
        pool = td.user_data.get("pool")
        if pool is not None:
            pool.flush()  # write dirty index pages into the BLOB
        blob.close()
        self._trace("grt_close", 2, "closed the BLOB")
        if self.handle_cache and pool is not None:
            self._handles[td.index_name.lower()] = {
                "tree": td.user_data.get("tree"),
                "blob": blob,
                "pool": pool,
                "store": td.user_data.get("store"),
                "epoch": self.server.storage_epoch,
            }
            self._trace("grt_close", 3, "cached Tree object for reuse")
        else:
            self._trace("grt_close", 3, "deleted Tree object")
        td.user_data.pop("tree", None)
        td.user_data.pop("blob", None)
        td.user_data.pop("pool", None)
        td.user_data.pop("store", None)
        td.user_data.pop("epoch", None)
        return 0

    # -- scanning ---------------------------------------------------------

    def grt_beginscan(self, sd: ScanDescriptor) -> int:
        self._trace("grt_beginscan", 1, "get qualification descriptor qd")
        if sd.qualification is None:
            raise AccessMethodError("grt_beginscan needs a qualification")
        plan = build_plan(sd.qualification)
        self._trace("grt_beginscan", 2, "get index descriptor td")
        tree = self._tree(sd.index)
        now = self._sample_current_time(sd.index.session)
        self._trace(
            "grt_beginscan",
            3,
            f"create Cursor ({len(plan.branches)} DNF branch(es))",
        )
        sd.user_data["scan"] = _BladeScan(tree, plan, now)
        self._trace("grt_beginscan", 4, "saved Cursor pointer in td")
        return 0

    def grt_rescan(self, sd: ScanDescriptor) -> int:
        self._trace("grt_rescan", 1, "get index descriptor td")
        scan = self._scan(sd)
        self._trace("grt_rescan", 2, "get Cursor pointer")
        scan.reset()
        self._trace("grt_rescan", 3, "reset Cursor")
        return 0

    def grt_getnext(self, sd: ScanDescriptor) -> Optional[RowReference]:
        scan = self._scan(sd)
        entry = scan.next()
        if entry is None:
            return None
        self._trace(
            "grt_getnext", 4, f"formed retrowid from rowid={entry.rowid}"
        )
        return RowReference(
            rowid=entry.rowid, fragid=entry.fragid, row=(entry.extent(),)
        )

    def grt_endscan(self, sd: ScanDescriptor) -> int:
        self._trace("grt_endscan", 1, "get index descriptor td")
        self._trace("grt_endscan", 2, "get Cursor pointer")
        sd.user_data.pop("scan", None)
        self._trace("grt_endscan", 3, "deleted Cursor")
        return 0

    def _scan(self, sd: ScanDescriptor) -> "_BladeScan":
        scan = sd.user_data.get("scan")
        if scan is None:
            raise AccessMethodError("no scan in progress (grt_beginscan missing)")
        return scan

    # -- updates ------------------------------------------------------------

    def grt_insert(self, td: IndexDescriptor, newrow, newrowid: int) -> int:
        self._trace("grt_insert", 1, "get Tree object pointer")
        tree = self._tree(td)
        extent = self._extent_of(newrow)
        self._trace("grt_insert", 2, f"formed entry for rowid={newrowid}")
        self._blob(td).ensure_writable()
        tree.insert(extent, newrowid)
        self._trace("grt_insert", 3, "inserted entry via Tree.insert()")
        return 0

    def grt_delete(self, td: IndexDescriptor, oldrow, oldrowid: int) -> int:
        self._trace("grt_delete", 1, "get Tree object pointer")
        tree = self._tree(td)
        extent = self._extent_of(oldrow)
        self._blob(td).ensure_writable()
        if not tree.delete(extent, oldrowid):
            raise AccessMethodError(
                f"index {td.index_name} has no entry for rowid {oldrowid}"
            )
        self._trace("grt_delete", 4, "deleted entry via Tree.delete()")
        if tree.condensed:
            self._trace("grt_delete", 5, "tree condensed: open cursors reset")
        return 0

    def grt_update(
        self, td: IndexDescriptor, oldrow, oldrowid: int, newrow, newrowid: int
    ) -> int:
        self._trace("grt_update", 1, "invoke grt_delete")
        self.grt_delete(td, oldrow, oldrowid)
        self._trace("grt_update", 2, "invoke grt_insert")
        self.grt_insert(td, newrow, newrowid)
        return 0

    def _extent_of(self, row) -> TimeExtent:
        value = row[0]
        if not isinstance(value, TimeExtent):
            raise AccessMethodError(
                f"GR-tree rows carry one {TYPE_NAME}, got {value!r}"
            )
        return value

    # -- costing, statistics, checking ---------------------------------------

    def grt_scancost(self, sd: ScanDescriptor) -> float:
        if sd.qualification is None:
            return float("inf")
        plan = build_plan(sd.qualification)
        tree, transient = self._tree_for_estimation(sd.index)
        now = self.current_time(sd.index.session)
        cost = 0.0
        for branch in plan.branches:
            cost += tree.scan_cost(branch[0].query, now=now)
        return cost

    def grt_stats(self, td: IndexDescriptor) -> Dict[str, float]:
        tree = self._tree(td)
        stats = tree.stats()
        stats.update(tree.quality())
        self._trace("grt_stats", 1, f"collected statistics: {sorted(stats)}")
        return stats

    def grt_check(self, td: IndexDescriptor) -> int:
        tree = self._tree(td)
        try:
            tree.check()
        except AssertionError as exc:
            raise AccessMethodError(f"index {td.index_name} corrupt: {exc}") from exc
        self._trace("grt_check", 1, "index is consistent")
        return 0

    def _tree_for_estimation(self, td: IndexDescriptor):
        """A tree view for costing without taking locks (planning time)."""
        if "tree" in td.user_data:
            return td.user_data["tree"], False
        rowid, row = self._metadata_row(td.index_name)
        space = self.server.get_sbspace(td.space_name)
        blob = space.get(LargeObjectHandle(row["blobhandle"]))
        pool = BufferPool(blob, capacity=8)
        tree = GRTree.open(GRNodeStore(pool), self.server.clock, row["metapage"])
        return tree, True

    # ------------------------------------------------------------------

    def purpose_function_exports(self) -> Dict[str, Any]:
        """The symbols the shared library ``grtree.bld`` exports."""
        return {
            "grt_create": self.grt_create,
            "grt_drop": self.grt_drop,
            "grt_open": self.grt_open,
            "grt_close": self.grt_close,
            "grt_beginscan": self.grt_beginscan,
            "grt_endscan": self.grt_endscan,
            "grt_rescan": self.grt_rescan,
            "grt_getnext": self.grt_getnext,
            "grt_insert": self.grt_insert,
            "grt_delete": self.grt_delete,
            "grt_update": self.grt_update,
            "grt_scancost": self.grt_scancost,
            "grt_stats": self.grt_stats,
            "grt_check": self.grt_check,
        }


class _BladeScan:
    """Cursor state over the DNF plan: one GR-tree cursor per branch,
    branch-local residual predicates, cross-branch de-duplication."""

    def __init__(self, tree: GRTree, plan: QualificationPlan, now: Chronon) -> None:
        self.tree = tree
        self.plan = plan
        self.now = now
        self._branch = 0
        self._cursor: Optional[Cursor] = None
        self._seen: set = set()

    def reset(self) -> None:
        self._branch = 0
        self._cursor = None
        self._seen.clear()

    def next(self):
        while self._branch < len(self.plan.branches):
            branch = self.plan.branches[self._branch]
            if self._cursor is None:
                primary = branch[0]
                self._cursor = self.tree.search(
                    primary.query, primary.predicate, now=self.now
                )
            entry = self._cursor.next()
            if entry is None:
                self._branch += 1
                self._cursor = None
                continue
            key = (entry.rowid, entry.fragid)
            if key in self._seen:
                continue
            region = entry.region(self.now)
            if all(
                pred.predicate.leaf_test(region, pred.query.region(self.now))
                for pred in branch[1:]
            ):
                self._seen.add(key)
                return entry
        return None
